"""Reproduce the paper's headline comparison on a subset of the suite.

Runs G-PR, G-HKDW, P-DBFS and the sequential PR on a handful of suite
instances (one per structural family), prints a miniature Table I and the
per-instance G-PR speedups (Figure 4 style), and shows how the adaptive
global-relabeling strategy compares with a fixed one (Figure 1 style).

Run with::

    python examples/gpu_vs_cpu_study.py
"""

from __future__ import annotations

from repro.bench.harness import SuiteRunner, geometric_mean, modeled_seconds_for, reference_device
from repro.bench.reports import build_figure4, build_table1, render_table
from repro.core.gpr import GPRConfig, gpr_matching
from repro.generators.suite import generate_instance
from repro.seq.greedy import cheap_matching

INSTANCES = ("amazon0505", "kron_g500-logn20", "roadNet-PA", "delaunay_n21",
             "soc-LiveJournal1", "hugetrace-00000")


def main() -> None:
    runner = SuiteRunner(profile="small", instances=INSTANCES)
    results = runner.run()

    print("Miniature Table I (modelled milliseconds):")
    print(render_table(build_table1(results)))
    print()

    rows, average = build_figure4(results)
    print("G-PR speedup over sequential PR (Figure 4 style):")
    for instance_id, name, speedup in rows:
        bar = "#" * max(1, int(round(speedup * 4)))
        print(f"  {instance_id:>2} {name:<20} {speedup:5.2f}x  {bar}")
    print(f"  average: {average:.2f}x")
    print()

    print("Global-relabeling strategy comparison on this subset (Figure 1 style):")
    for strategy in ("adaptive:0.7", "fix:10"):
        times = []
        for name in INSTANCES:
            graph = generate_instance(name, profile="small")
            initial = cheap_matching(graph).matching
            result = gpr_matching(
                graph, initial=initial, config=GPRConfig(strategy=strategy),
                device=reference_device(),
            )
            times.append(modeled_seconds_for(result))
        print(f"  {strategy:<14} geometric-mean modelled time: {geometric_mean(times) * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
