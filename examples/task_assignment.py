"""Task-to-worker assignment (the scheduling motivation of the paper).

Bipartite matching answers the basic feasibility question of scheduling: can
every task be assigned to a qualified worker, one task per worker?  This
example builds a skill-constrained assignment instance, then submits the
GPU, multicore and sequential solvers as jobs to the execution engine
(:mod:`repro.engine`) — streaming results back as each finishes via
``as_completed`` — and reports which tasks remain unassignable (and why —
the Hall violator witnessed by the distance labels of the final matching).

Run with::

    python examples/task_assignment.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import modeled_seconds_for
from repro.engine import Engine, JobStatus, MatchingJob
from repro.graph import from_edges


def build_assignment_instance(n_workers: int = 1200, n_tasks: int = 1400, seed: int = 3):
    """Workers have 1-3 of 12 skills; a task needs one skill and accepts any worker having it."""
    rng = np.random.default_rng(seed)
    n_skills = 12
    worker_skills = [
        rng.choice(n_skills, size=rng.integers(1, 4), replace=False) for _ in range(n_workers)
    ]
    by_skill: dict[int, list[int]] = {s: [] for s in range(n_skills)}
    for worker, skills in enumerate(worker_skills):
        for s in skills:
            by_skill[int(s)].append(worker)
    # Skill demand is skewed: a few skills are requested far more often than others.
    demand = rng.zipf(1.6, size=n_tasks) % n_skills
    edges = []
    for task, skill in enumerate(demand):
        for worker in by_skill[int(skill)]:
            edges.append((worker, task))
    return from_edges(edges, n_rows=n_workers, n_cols=n_tasks, name="assignment"), demand


def main() -> None:
    graph, demand = build_assignment_instance()
    print(f"{graph.n_rows} workers, {graph.n_cols} tasks, {graph.n_edges} qualification edges")

    results = {}
    with Engine(backend="thread", max_workers=3) as engine:
        handles = engine.map(
            [MatchingJob(graph=graph, algorithm=name, job_id=name)
             for name in ("g-pr", "p-dbfs", "pr")]
        )
        # Stream outcomes in completion order; a failing solver would be
        # reported here without aborting its siblings.
        for handle in engine.as_completed(handles):
            name = handle.job.job_id
            if handle.status is not JobStatus.OK:
                print(f"{name:>7}: {handle.status.value} ({handle.failure})")
                continue
            result = handle.result()
            results[name] = result
            print(f"{name:>7}: assigned {result.cardinality} tasks, "
                  f"modelled time {modeled_seconds_for(result) * 1e3:.3f} ms "
                  f"(ran on {handle.worker}, {handle.seconds * 1e3:.1f} ms wall)")

    if not results:
        raise SystemExit("no solver completed successfully")
    cardinalities = {r.cardinality for r in results.values()}
    assert len(cardinalities) == 1, "all algorithms must agree on the assignment size"

    # Prefer G-PR's matching for the analysis, but any survivor will do.
    best = results.get("g-pr") or next(iter(results.values()))
    unassigned = [t for t in range(graph.n_cols) if best.matching.col_match[t] < 0]
    print(f"unassigned tasks: {len(unassigned)}")
    if unassigned:
        # Explain the bottleneck: the most over-demanded skills among unassigned tasks.
        skills, counts = np.unique(demand[unassigned], return_counts=True)
        worst = skills[np.argsort(-counts)][:3]
        print(f"bottleneck skills (most unassigned demand): {worst.tolist()}")


if __name__ == "__main__":
    main()
