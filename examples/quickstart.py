"""Quickstart: compute a maximum cardinality bipartite matching with G-PR.

Generates a random bipartite graph, runs the paper's GPU push-relabel
algorithm on the virtual device, cross-checks the result against the
sequential push-relabel baseline, and prints the modelled runtimes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import max_bipartite_matching
from repro.bench.harness import modeled_seconds_for
from repro.generators import uniform_random_bipartite
from repro.seq import is_maximum_matching


def main() -> None:
    graph = uniform_random_bipartite(2000, 2000, avg_degree=5.0, seed=42, name="quickstart")
    print(f"graph: {graph.n_rows} rows, {graph.n_cols} columns, {graph.n_edges} edges")

    gpu = max_bipartite_matching(graph, algorithm="g-pr")
    cpu = max_bipartite_matching(graph, algorithm="pr")

    print(f"G-PR matching cardinality : {gpu.cardinality}")
    print(f"PR   matching cardinality : {cpu.cardinality}")
    assert gpu.cardinality == cpu.cardinality
    assert is_maximum_matching(graph, gpu.matching)

    print(f"G-PR modelled time        : {modeled_seconds_for(gpu) * 1e3:.3f} ms "
          f"({gpu.counters['kernel_launches']} kernel launches, "
          f"{gpu.counters['global_relabels']} global relabels)")
    print(f"PR   modelled time        : {modeled_seconds_for(cpu) * 1e3:.3f} ms")
    print(f"matched pairs (first 5)   : {gpu.matching.pairs()[:5]}")


if __name__ == "__main__":
    main()
