"""Maximum transversal of a sparse matrix (the paper's sparse-solver motivation).

The introduction of the paper motivates bipartite matching with sparse linear
solvers: a maximum matching of the rows and columns of a coefficient matrix
(a *maximum transversal*) tells whether the matrix can be permuted to have a
zero-free diagonal, and the matching itself provides that column permutation.
This example builds a structurally singular sparse matrix, computes its
maximum transversal with G-PR, reports the structural rank, and applies the
column permutation so the permuted matrix has the transversal on its
diagonal.

Run with::

    python examples/sparse_matrix_transversal.py
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro import max_bipartite_matching
from repro.graph import from_scipy_sparse


def build_matrix(n: int = 1500, density: float = 0.002, seed: int = 7) -> sparse.csr_matrix:
    """A random sparse square matrix with a handful of structurally empty columns."""
    rng = np.random.default_rng(seed)
    matrix = sparse.random(n, n, density=density, random_state=rng, format="lil")
    # Guarantee most of the diagonal so the matrix is nearly structurally full rank.
    for i in range(0, n, 3):
        matrix[i, i] = 1.0
    # Knock out a few columns entirely: the matrix becomes structurally singular.
    for col in rng.choice(n, size=5, replace=False):
        matrix[:, col] = 0.0
    return matrix.tocsr()


def main() -> None:
    matrix = build_matrix()
    graph = from_scipy_sparse(matrix, name="coefficient-matrix")
    result = max_bipartite_matching(graph, algorithm="g-pr")

    n = matrix.shape[0]
    structural_rank = result.cardinality
    print(f"matrix: {n} x {n}, {matrix.nnz} non-zeros")
    print(f"structural rank (maximum transversal): {structural_rank}")
    print(f"structurally singular: {structural_rank < n}")

    # Column permutation that moves the transversal onto the diagonal: column
    # j is sent to position row_match-of-j; unmatched columns fill the gaps.
    col_match = result.matching.col_match
    permutation = np.full(n, -1, dtype=np.int64)
    for col in range(n):
        if col_match[col] >= 0:
            permutation[col_match[col]] = col
    spare = iter([c for c in range(n) if c not in set(permutation[permutation >= 0].tolist())])
    for pos in range(n):
        if permutation[pos] < 0:
            permutation[pos] = next(spare)
    permuted = matrix[:, permutation]
    diagonal_nonzeros = int((permuted.diagonal() != 0).sum())
    print(f"non-zero diagonal entries after permutation: {diagonal_nonzeros} "
          f"(equals the structural rank: {diagonal_nonzeros == structural_rank})")


if __name__ == "__main__":
    main()
