"""Tests of the repo-native invariant linter (`repro lint`, RPR0xx rules)."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.linting import format_violations, lint_paths, lint_source

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _codes(violations):
    return [v.code for v in violations]


# --------------------------------------------------------------------------
# one fixture per rule: each contains exactly one violation of that rule
# --------------------------------------------------------------------------
def test_rpr001_wall_clock_in_solver_scope():
    source = textwrap.dedent(
        """
        import time

        def solve():
            started = time.time()
            return started
        """
    )
    violations = lint_source(source, "src/repro/core/fixture.py")
    assert _codes(violations) == ["RPR001"]
    assert violations[0].line == 5
    assert "time.time" in violations[0].message


def test_rpr001_perf_counter_is_allowed():
    source = "import time\nt0 = time.perf_counter()\n"
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_rpr001_out_of_scope_module_is_exempt():
    source = "import time\nstamp = time.time()\n"
    assert lint_source(source, "src/repro/server/fixture.py") == []


def test_rpr002_unseeded_rng():
    source = textwrap.dedent(
        """
        import numpy as np

        def jitter():
            rng = np.random.default_rng()
            return rng.random()
        """
    )
    violations = lint_source(source, "src/repro/gpusim/fixture.py")
    assert _codes(violations) == ["RPR002"]
    assert violations[0].line == 5


def test_rpr002_seeded_rng_and_legacy_global_state():
    ok = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert lint_source(ok, "src/repro/seq/fixture.py") == []
    legacy = "import numpy as np\nx = np.random.rand(3)\n"
    assert _codes(lint_source(legacy, "src/repro/seq/fixture.py")) == ["RPR002"]


def test_rpr003_lock_discipline():
    source = textwrap.dedent(
        """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def good(self):
                with self._lock:
                    self.count += 1

            def bad(self):
                self.count += 1
        """
    )
    violations = lint_source(source, "src/repro/engine/fixture.py")
    assert _codes(violations) == ["RPR003"]
    assert violations[0].line == 14
    assert "self.count" in violations[0].message and "Pool" in violations[0].message


def test_rpr003_lockless_classes_and_other_packages_exempt():
    lockless = "class Plain:\n    def set(self):\n        self.x = 1\n"
    assert lint_source(lockless, "src/repro/engine/fixture.py") == []
    source = (
        "import threading\n"
        "class P:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def bad(self):\n"
        "        self.x = 1\n"
    )
    # Same class outside the locked packages: not in scope.
    assert lint_source(source, "src/repro/core/fixture.py") == []


def test_rpr004_hot_path_accessor():
    source = textwrap.dedent(
        """
        def scan(graph, cols):
            total = 0
            # hot-path
            for v in cols:
                ptr, ind = graph.csr_lists("col")
                total += ptr[v + 1] - ptr[v]
            # end hot-path
            return total
        """
    )
    violations = lint_source(source, "src/repro/seq/fixture.py")
    assert _codes(violations) == ["RPR004"]
    assert violations[0].line == 6
    assert "csr_lists" in violations[0].message


def test_rpr004_hoisted_accessor_is_clean():
    source = textwrap.dedent(
        """
        def scan(graph, cols):
            ptr, ind = graph.csr_lists("col")
            total = 0
            # hot-path
            for v in cols:
                total += ptr[v + 1] - ptr[v]
            # end hot-path
            return total
        """
    )
    assert lint_source(source, "src/repro/seq/fixture.py") == []


def test_rpr004_unclosed_region_is_reported():
    source = "# hot-path\nx = 1\n"
    violations = lint_source(source, "src/repro/seq/fixture.py")
    assert _codes(violations) == ["RPR004"]
    assert "unclosed" in violations[0].message


def test_rpr004_stray_end_marker_is_reported():
    source = "x = 1\n# end hot-path\n"
    violations = lint_source(source, "src/repro/seq/fixture.py")
    assert _codes(violations) == ["RPR004"]
    assert "stray" in violations[0].message


def test_rpr004_annotated_marker_opens_a_region():
    source = textwrap.dedent(
        """
        def scan(graph, cols):
            total = 0
            # hot-path compiled=alternating_level_bfs
            for v in cols:
                ptr, ind = graph.csr_lists("col")
                total += ptr[v + 1] - ptr[v]
            # end hot-path
            return total
        """
    )
    violations = lint_source(source, "src/repro/seq/fixture.py")
    # The annotated marker still delimits a region (the accessor is caught)
    # and the known entry name passes validation.
    assert _codes(violations) == ["RPR004"]
    assert "csr_lists" in violations[0].message


def test_rpr004_unknown_compiled_entry_is_reported():
    source = textwrap.dedent(
        """
        # hot-path compiled=no_such_twin
        x = 1
        # end hot-path
        """
    )
    violations = lint_source(source, "src/repro/seq/fixture.py")
    assert _codes(violations) == ["RPR004"]
    assert "no_such_twin" in violations[0].message
    assert "no registered dispatch entry" in violations[0].message


def test_rpr004_dispatch_lookup_inside_region_is_reported():
    source = textwrap.dedent(
        """
        def scan(cols, ptr):
            total = 0
            # hot-path
            for v in cols:
                fn = _compiled.implementation_for("expand_frontier")
                total += ptr[v]
            # end hot-path
            return total
        """
    )
    violations = lint_source(source, "src/repro/seq/fixture.py")
    assert _codes(violations) == ["RPR004"]
    assert "implementation_for" in violations[0].message
    assert "above the loop" in violations[0].message


def test_rpr004_hoisted_dispatch_lookup_is_clean():
    source = textwrap.dedent(
        """
        def scan(cols, ptr):
            fn = _compiled.implementation_for("expand_frontier")
            total = 0
            # hot-path compiled=expand_frontier
            for v in cols:
                total += ptr[v]
            # end hot-path
            return total
        """
    )
    assert lint_source(source, "src/repro/seq/fixture.py") == []


def test_rpr005_bare_except_and_swallowed_failure():
    source = textwrap.dedent(
        """
        def run(job):
            try:
                job()
            except:
                pass

        def run2(job):
            try:
                job()
            except Exception:
                pass
        """
    )
    violations = lint_source(source, "src/repro/tools/fixture.py")
    assert _codes(violations) == ["RPR005", "RPR005"]
    assert "bare" in violations[0].message
    assert "swallows" in violations[1].message


def test_rpr005_handled_broad_except_is_clean():
    source = textwrap.dedent(
        """
        def run(job, log):
            try:
                job()
            except Exception as exc:
                log(exc)
        """
    )
    assert lint_source(source, "src/repro/tools/fixture.py") == []


def test_rpr006_deprecated_algorithms_mapping():
    source = "from repro.core.api import ALGORITHMS\nnames = list(ALGORITHMS)\n"
    violations = lint_source(source, "src/repro/bench/fixture.py")
    assert _codes(violations) == ["RPR006"]
    assert violations[0].line == 1


# --------------------------------------------------------------------------
# framework behaviour
# --------------------------------------------------------------------------
def test_suppression_on_line_and_file_wide():
    source = "import time\nt = time.time()  # repro-lint: disable=RPR001\n"
    assert lint_source(source, "src/repro/core/fixture.py") == []
    source = "# repro-lint: disable-file=RPR001\nimport time\nt = time.time()\n"
    assert lint_source(source, "src/repro/core/fixture.py") == []
    # Suppressing a different code does not silence the violation.
    source = "import time\nt = time.time()  # repro-lint: disable=RPR002\n"
    assert _codes(lint_source(source, "src/repro/core/fixture.py")) == ["RPR001"]


def test_syntax_error_reports_rpr000():
    violations = lint_source("def broken(:\n", "src/repro/core/fixture.py")
    assert _codes(violations) == ["RPR000"]


def test_violations_render_file_line_code():
    violations = lint_source("import time\nt = time.time()\n", "src/repro/core/fixture.py")
    rendered = format_violations(violations)
    assert rendered.startswith("src/repro/core/fixture.py:2: RPR001 ")


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    (pkg / "good.py").write_text("x = 1\n")
    violations = lint_paths([str(tmp_path)])
    assert _codes(violations) == ["RPR001"]
    assert violations[0].path.endswith("bad.py")


def test_shipped_tree_is_lint_clean():
    violations = lint_paths([str(SRC_DIR)])
    assert violations == [], format_violations(violations)


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------
def _run_cli(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )


def test_cli_lint_exit_codes(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("import time\nt = time.time()\n")

    proc = _run_cli("lint", str(bad))
    assert proc.returncode == 1
    assert f"{bad}:2: RPR001" in proc.stdout

    proc = _run_cli("lint", str(SRC_DIR))
    assert proc.returncode == 0, proc.stdout + proc.stderr

    proc = _run_cli("lint", "--list-rules")
    assert proc.returncode == 0
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert code in proc.stdout

    proc = _run_cli("lint", str(tmp_path / "does-not-exist"))
    assert proc.returncode == 2


def test_cli_lint_json_format(tmp_path):
    import json

    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = _run_cli("lint", "--format", "json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload[0]["code"] == "RPR001" and payload[0]["line"] == 2


def test_lint_and_sanitizer_import_without_optional_deps():
    """The minimal-install CI job has no scipy/networkx; block them and import."""
    script = textwrap.dedent(
        """
        import sys

        class _Blocker:
            def find_module(self, name, path=None):
                if name.split(".")[0] in ("scipy", "networkx"):
                    return self

            def load_module(self, name):
                raise ImportError(f"blocked optional dependency: {name}")

        sys.meta_path.insert(0, _Blocker())

        import repro.analysis
        from repro.analysis.linting import lint_source
        from repro.analysis.hazards import AccessLog, ShadowArray

        assert lint_source("x = 1\\n", "src/repro/core/f.py") == []
        assert AccessLog().segments == []
        print("minimal-install-ok")
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "minimal-install-ok" in proc.stdout
