"""Tests for the benchmark harness, the report builders and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    SuiteRunner,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
    build_table1,
    geometric_mean,
    modeled_seconds_for,
    performance_profile,
    render_table,
    speedup_profile,
)
from repro.cli import main
from repro.matching import MatchingResult, Matching
from repro.graph.builders import empty_graph

_TINY_SUBSET = ("amazon0505", "roadNet-PA", "hugetrace-00000", "delaunay_n20")


@pytest.fixture(scope="module")
def tiny_suite_results():
    runner = SuiteRunner(profile="tiny", instances=_TINY_SUBSET)
    return runner.run()


# ------------------------------------------------------------------ harness
def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_modeled_seconds_for_cpu_and_gpu():
    gpu_like = MatchingResult.create("x", Matching.empty(empty_graph(1, 1)), modeled_time=0.5)
    assert modeled_seconds_for(gpu_like) == 0.5
    cpu_like = MatchingResult.create(
        "y",
        Matching.empty(empty_graph(1, 1)),
        counters={"edges_scanned": 1000, "gr_edges_scanned": 500, "relabels": 100},
    )
    assert modeled_seconds_for(cpu_like) > 0


def test_suite_runner_unknown_instance():
    with pytest.raises(KeyError):
        SuiteRunner(profile="tiny", instances=("no-such-graph",)).specs()


def test_suite_runner_results_structure(tiny_suite_results):
    assert len(tiny_suite_results) == len(_TINY_SUBSET)
    for res in tiny_suite_results:
        assert set(res.runs) == {"G-PR", "G-HKDW", "P-DBFS", "PR"}
        cards = {run.cardinality for run in res.runs.values()}
        assert len(cards) == 1  # every algorithm reaches the same maximum cardinality
        assert res.maximum_matching >= res.initial_matching
        for run in res.runs.values():
            assert run.modeled_seconds > 0
        assert res.speedup("G-PR") == pytest.approx(
            res.runs["PR"].modeled_seconds / res.runs["G-PR"].modeled_seconds
        )


# ----------------------------------------------------------------- profiles
def test_speedup_profile_shape():
    curves = speedup_profile({"A": [0.5, 2.0, 4.0], "B": [1.0, 1.0, 1.0]}, xs=np.array([0, 1, 3]))
    assert curves["A"] == [(0.0, 1.0), (1.0, pytest.approx(2 / 3)), (3.0, pytest.approx(1 / 3))]
    assert curves["B"][1] == (1.0, 1.0)
    with pytest.raises(ValueError):
        speedup_profile({"A": []})


def test_performance_profile_shape():
    curves = performance_profile(
        {"A": [1.0, 2.0], "B": [2.0, 1.0]}, xs=np.array([1.0, 2.0, 3.0])
    )
    assert curves["A"][0] == (1.0, 0.5)
    assert curves["A"][1] == (2.0, 1.0)
    with pytest.raises(ValueError):
        performance_profile({})
    with pytest.raises(ValueError):
        performance_profile({"A": [0.0]})


# ------------------------------------------------------------------ reports
def test_build_figure1_tiny():
    cells = build_figure1(
        profile="tiny",
        instances=("amazon0505", "roadNet-PA"),
        strategies=("adaptive:0.7", "fix:10"),
    )
    assert len(cells) == 3 * 2
    assert all(cell.geomean_seconds > 0 for cell in cells)
    variants = {cell.variant for cell in cells}
    assert variants == {"G-PR-First", "G-PR-NoShr", "G-PR-Shr"}


def test_build_figures_2_3_4(tiny_suite_results):
    fig2 = build_figure2(tiny_suite_results)
    assert set(fig2) == {"G-PR", "G-HKDW", "P-DBFS"}
    fig3 = build_figure3(tiny_suite_results)
    for points in fig3.values():
        assert points[-1][1] <= 1.0
    rows, average = build_figure4(tiny_suite_results)
    assert len(rows) == len(tiny_suite_results)
    assert average > 0


def test_build_and_render_table1(tiny_suite_results):
    table = build_table1(tiny_suite_results)
    assert len(table["rows"]) == len(_TINY_SUBSET)
    assert set(table["geomeans"]) == {"G-PR", "G-HKDW", "P-DBFS", "PR"}
    text = render_table(table)
    assert "GEOMEAN" in text
    assert "amazon0505" in text


# ---------------------------------------------------------------------- CLI
def test_cli_run_suite_instance(capsys):
    assert main(["run", "--graph", "amazon0505", "--profile", "tiny", "--algorithm", "pr"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["graph"] == "amazon0505"
    assert payload["cardinality"] > 0
    assert payload["modeled_seconds"] > 0


def test_cli_run_mtx(tmp_path, capsys, tiny_graph):
    from repro.graph import write_matrix_market

    path = tmp_path / "g.mtx"
    write_matrix_market(tiny_graph, path)
    assert main(["run", "--mtx", str(path), "--algorithm", "g-pr"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cardinality"] == 3


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "amazon0505" in out
    assert "g-pr" in out


def test_cli_table1(capsys):
    assert main(["table1", "--profile", "tiny", "--instances", "amazon0505", "roadNet-PA"]) == 0
    out = capsys.readouterr().out
    assert "GEOMEAN" in out


@pytest.mark.parametrize("figure", ["2", "3", "4"])
def test_cli_figures(capsys, figure):
    assert (
        main(
            [
                "figures",
                "--figure",
                figure,
                "--profile",
                "tiny",
                "--instances",
                "amazon0505",
                "roadNet-PA",
            ]
        )
        == 0
    )
    assert capsys.readouterr().out.strip()


def test_cli_figure1(capsys):
    assert main(["figures", "--figure", "1", "--profile", "tiny", "--instances", "amazon0505"]) == 0
    assert "G-PR-Shr" in capsys.readouterr().out


# ------------------------------------------------------------------- stream
def test_cli_stream_synthesized_trace(capsys):
    assert (
        main(
            [
                "stream",
                "--graph", "roadNet-PA",
                "--profile", "tiny",
                "--synthesize", "50",
                "--batch-size", "10",
                "--threshold", "1000",
                "--algorithm", "hk",
                "--format", "json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    events = payload["events"]
    assert events[0]["type"] == "initial"
    batches = [e for e in events if e["type"] == "batch"]
    assert len(batches) == 5
    assert all(b["mode"] == "incremental" for b in batches)
    summary = events[-1]
    assert summary["type"] == "summary"
    assert summary["updates"] == 50
    assert summary["recomputes"] == 0
    assert summary["cardinality"] > 0


def test_cli_stream_replays_jsonl_trace_through_engine(tmp_path, capsys):
    from repro.dynamic import write_update_trace
    from repro.generators import generate_instance, random_update_trace

    graph = generate_instance("roadNet-PA", profile="tiny", seed=20130421)
    trace = tmp_path / "updates.jsonl"
    write_update_trace(random_update_trace(graph, 40, seed=3), trace)
    assert (
        main(
            [
                "stream",
                "--graph", "roadNet-PA",
                "--profile", "tiny",
                "--trace", str(trace),
                "--batch-size", "20",
                "--threshold", "20",
                "--backend", "thread",
                "--algorithm", "pr",
            ]
        )
        == 0
    )
    lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    batches = [e for e in lines if e["type"] == "batch"]
    assert len(batches) == 2
    assert all(b["mode"] == "delegated" for b in batches)
    summary = lines[-1]
    # No backend field: stream output must serialise byte-identically
    # whichever engine backend ran the delegated recomputes.
    assert "backend" not in summary
    assert summary["recomputes"] == 2
    assert summary["delegate_edges_scanned"] > 0


def test_cli_stream_rejects_bad_trace(tmp_path, capsys):
    trace = tmp_path / "bad.jsonl"
    trace.write_text('{"op": "insert", "u": 0, "v": 0}\n{"op": "warp"}\n')
    assert main(["stream", "--graph", "roadNet-PA", "--profile", "tiny",
                 "--trace", str(trace)]) == 2
    err = capsys.readouterr().err
    assert "bad.jsonl:2" in err and "warp" in err


def test_cli_stream_requires_exactly_one_source(capsys):
    assert main(["stream", "--graph", "roadNet-PA"]) == 2
    assert main(["stream", "--graph", "roadNet-PA", "--trace", "x.jsonl",
                 "--synthesize", "5"]) == 2
    assert "exactly one of" in capsys.readouterr().err


# --------------------------------------------------------------- weighted CLI
def test_cli_run_weighted(capsys):
    assert main([
        "run", "--graph", "amazon0505", "--profile", "tiny",
        "--algorithm", "weighted-sap", "--weights", "uniform:1:50",
        "--objective", "min",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["algorithm"] == "W-SAP"
    assert payload["objective"] == "min"
    assert payload["total_weight"] >= payload["cardinality"]  # weights start at 1


def test_cli_run_weighted_mtx_values(tmp_path, capsys):
    import numpy as np

    from repro.generators import uniform_random_bipartite, uniform_weights
    from repro.graph import read_matrix_market, write_matrix_market

    graph = uniform_weights(
        uniform_random_bipartite(20, 20, avg_degree=3.0, seed=1), seed=2
    )
    path = tmp_path / "w.mtx"
    write_matrix_market(graph, path)
    assert main([
        "run", "--mtx", str(path), "--algorithm", "weighted-auction",
        "--weights", "values",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    from repro.weighted import weighted_sap_matching

    reread = read_matrix_market(path, with_weights=True)
    expected = weighted_sap_matching(reread).counters["total_weight"]
    assert payload["total_weight"] == pytest.approx(expected)
    assert np.isfinite(payload["total_weight"])


def test_cli_run_objective_rejected_for_cardinality_algorithms(capsys):
    code = main([
        "run", "--graph", "amazon0505", "--profile", "tiny",
        "--algorithm", "pr", "--objective", "min",
    ])
    assert code == 2
    assert "unexpected keyword" in capsys.readouterr().err


def test_cli_batch_weighted_manifest(tmp_path, capsys):
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "algorithm": "weighted-sap", '
        '"weights": "uniform:1:9", "objective": "max", "id": "sap"}\n'
        '{"graph": "roadNet-PA", "algorithm": "weighted-auction", '
        '"weights": "uniform:1:9", "objective": "max", "id": "auction"}\n'
    )
    assert main([
        "batch", "--manifest", str(manifest), "--profile", "tiny",
        "--no-cache", "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_id = {row["id"]: row for row in payload["results"]}
    assert by_id["sap"]["status"] == by_id["auction"]["status"] == "ok"
    assert by_id["sap"]["cardinality"] == by_id["auction"]["cardinality"]


def test_cli_run_unknown_graph_is_a_clean_error(capsys):
    # Regression: an unknown suite instance used to escape as a raw KeyError
    # traceback from `run` (batch and stream already caught it).
    assert main(["run", "--graph", "nonsense", "--profile", "tiny"]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_batch_generates_structural_graph_once_across_weight_specs(
    tmp_path, capsys, monkeypatch
):
    # Regression: keying the memo on the weight spec regenerated the same
    # structural instance once per distinct spec.
    import repro.cli as cli_module

    calls = []
    original = cli_module.generate_instance

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli_module, "generate_instance", counting)
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "algorithm": "weighted-sap", "weights": "uniform:1:9"}\n'
        '{"graph": "roadNet-PA", "algorithm": "weighted-sap", "weights": "geometric:0.2"}\n'
        '{"graph": "roadNet-PA", "algorithm": "pr"}\n'
    )
    assert main(["batch", "--manifest", str(manifest), "--profile", "tiny",
                 "--no-cache"]) == 0
    capsys.readouterr()
    assert len(calls) == 1


def test_cli_batch_rejects_bad_weight_spec(tmp_path, capsys):
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text('{"graph": "roadNet-PA", "weights": "gaussian", "id": "x"}\n')
    assert main(["batch", "--manifest", str(manifest), "--profile", "tiny"]) == 2
    assert "unknown weight spec" in capsys.readouterr().err


def test_cli_batch_objective_default_only_touches_weighted_jobs(tmp_path, capsys):
    # Regression: the CLI-level --objective default used to be folded into
    # every job's kwargs, so mixed manifests failed on the cardinality jobs.
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "algorithm": "weighted-sap", '
        '"weights": "uniform:1:9", "id": "w"}\n'
        '{"graph": "roadNet-PA", "algorithm": "pr", "id": "card"}\n'
    )
    assert main([
        "batch", "--manifest", str(manifest), "--profile", "tiny",
        "--no-cache", "--objective", "min", "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert all(row["status"] == "ok" for row in payload["results"])
    # An explicit per-line objective on a cardinality job still fails fast.
    manifest.write_text('{"graph": "roadNet-PA", "algorithm": "pr", "objective": "min"}\n')
    assert main(["batch", "--manifest", str(manifest), "--profile", "tiny"]) == 2
    assert "unexpected keyword" in capsys.readouterr().err


def test_cli_batch_weights_default_only_touches_weighted_jobs(tmp_path, capsys):
    # Regression: the --weights default used to re-weight cardinality jobs'
    # graphs too, changing their cache keys (and 'values' aborted the batch).
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "algorithm": "weighted-sap", "id": "w"}\n'
        '{"graph": "roadNet-PA", "algorithm": "pr", "id": "card"}\n'
    )
    assert main([
        "batch", "--manifest", str(manifest), "--profile", "tiny",
        "--no-cache", "--weights", "uniform:1:9", "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert all(row["status"] == "ok" for row in payload["results"])
    # The weighted job saw the weights; totals differ from plain cardinality.
    by_id = {row["id"]: row for row in payload["results"]}
    assert by_id["w"]["cardinality"] == by_id["card"]["cardinality"]


def test_cli_batch_values_spec_requires_mtx_source(tmp_path, capsys, monkeypatch):
    # Regression: weights="values" on a suite instance only failed in phase 2,
    # after graph generation; also spec kinds are case-insensitive.
    import repro.cli as cli_module

    monkeypatch.setattr(
        cli_module, "generate_instance",
        lambda *a, **k: (_ for _ in ()).throw(AssertionError("graph built")),
    )
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text('{"graph": "roadNet-PA", "weights": "VALUES", "id": "x"}\n')
    assert main(["batch", "--manifest", str(manifest), "--profile", "tiny"]) == 2
    assert "needs an 'mtx' source" in capsys.readouterr().err


def test_cli_run_values_spec_is_case_insensitive(tmp_path, capsys):
    import numpy as np

    from repro.generators import uniform_random_bipartite, uniform_weights
    from repro.graph import write_matrix_market

    graph = uniform_weights(
        uniform_random_bipartite(15, 15, avg_degree=3.0, seed=3), seed=4
    )
    path = tmp_path / "w.mtx"
    write_matrix_market(graph, path)
    assert main([
        "run", "--mtx", str(path), "--algorithm", "weighted-sap", "--weights", "Values",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert np.isfinite(payload["total_weight"]) and payload["total_weight"] > 0


def test_cli_batch_rejects_bad_weight_spec_before_building_graphs(
    tmp_path, capsys, monkeypatch
):
    # Regression: a bad spec on the last line used to surface only in phase 2,
    # after every earlier graph had been generated.
    import repro.cli as cli_module

    def exploding(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("graph generation ran before manifest validation finished")

    monkeypatch.setattr(cli_module, "generate_instance", exploding)
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "id": "ok"}\n'
        '{"graph": "roadNet-PA", "weights": "uniform:a:b", "id": "bad"}\n'
    )
    assert main(["batch", "--manifest", str(manifest), "--profile", "tiny"]) == 2
    err = capsys.readouterr().err
    assert ":2: malformed weight spec" in err
