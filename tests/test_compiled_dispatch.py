"""The compiled tier: dispatch mechanics and tier parity.

The parity tests run on every install: without numba the twins execute as
plain Python (the identity ``jit`` fallback keeps them callable), so the
scalar ports are proven bit-identical to the vectorized NumPy paths even in
the numpy-only environment.  The ``requires_numba`` tests additionally pin
behaviour that only exists with the ``[compiled]`` extra installed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.compiled import dispatch
from repro.compiled.calibrate import CALIBRATION_SCHEMA, calibrate, default_instances
from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.engine import BACKEND_NAMES, CompiledBackend, Engine, create_backend
from repro.generators import (
    chung_lu_bipartite,
    grid_graph,
    rmat_bipartite,
    uniform_random_bipartite,
)
from repro.graph.frontier import (
    alternating_level_bfs,
    distance_label_bfs,
    expand_frontier,
    first_occurrence_mask,
    multi_source_bfs,
)
from repro.seq.greedy import cheap_matching

requires_numba = pytest.mark.skipif(
    not dispatch.NUMBA_AVAILABLE, reason="numba not installed (the [compiled] extra)"
)

# Four generator families x seeds: distinct degree structure so the twins
# are exercised over uniform, scale-free, power-law and mesh regimes.
FAMILIES = [
    ("uniform", lambda seed: uniform_random_bipartite(90, 110, avg_degree=5.0, seed=seed)),
    ("rmat", lambda seed: rmat_bipartite(6, edge_factor=5.0, seed=seed)),
    ("chung-lu", lambda seed: chung_lu_bipartite(100, 90, avg_degree=5.0, seed=seed)),
    ("grid", lambda seed: grid_graph(8 + seed % 3, 9)),
]
SEEDS = [3, 17]


@pytest.fixture(params=FAMILIES, ids=lambda p: p[0])
def family(request):
    return request.param[1]


@pytest.fixture(params=SEEDS, ids=lambda s: f"seed{s}")
def graph(family, request):
    return family(request.param)


def _both_tiers(fn):
    """Run ``fn`` once per tier and return (numpy_result, twin_result)."""
    with dispatch.override(False):
        base = fn()
    with dispatch.override(True):
        twin = fn()
    return base, twin


# ---------------------------------------------------------------- primitives
def test_expand_frontier_parity(graph):
    frontier = np.flatnonzero(np.arange(graph.n_cols) % 3 == 0)
    (bt, bo), (tt, to) = _both_tiers(
        lambda: expand_frontier(graph.col_ptr, graph.col_ind, frontier)
    )
    np.testing.assert_array_equal(bt, tt)
    np.testing.assert_array_equal(bo, to)
    assert tt.dtype == np.int64 and to.dtype == np.int64


def test_first_occurrence_mask_parity(graph):
    frontier = np.arange(graph.n_cols, dtype=np.int64)
    targets, _ = expand_frontier(graph.col_ptr, graph.col_ind, frontier)
    base, twin = _both_tiers(lambda: first_occurrence_mask(targets))
    np.testing.assert_array_equal(base, twin)
    assert twin.dtype == np.bool_


def test_multi_source_bfs_parity(graph):
    matching = cheap_matching(graph).matching
    for side in ("col", "row"):
        mates = matching.col_match if side == "col" else matching.row_match
        sources = np.flatnonzero(mates == -1)
        if len(sources) == 0:
            sources = np.array([0], dtype=np.int64)
        base, twin = _both_tiers(
            lambda side=side, sources=sources: multi_source_bfs(graph, sources, side=side)
        )
        np.testing.assert_array_equal(base.row_level, twin.row_level)
        np.testing.assert_array_equal(base.col_level, twin.col_level)
        np.testing.assert_array_equal(base.row_parent, twin.row_parent)
        np.testing.assert_array_equal(base.col_parent, twin.col_parent)
        assert base.edges_scanned == twin.edges_scanned


def test_alternating_level_bfs_parity(graph):
    matching = cheap_matching(graph).matching
    base, twin = _both_tiers(
        lambda: alternating_level_bfs(
            graph.col_ptr, graph.col_ind, matching.row_match, matching.col_match
        )
    )
    np.testing.assert_array_equal(base[0], twin[0])
    assert base[1:] == twin[1:]


def test_distance_label_bfs_parity(graph):
    matching = cheap_matching(graph).matching
    infinity = graph.infinity_label

    def run():
        psi_row = np.full(graph.n_rows, infinity, dtype=np.int64)
        psi_col = np.full(graph.n_cols, infinity, dtype=np.int64)
        out = distance_label_bfs(
            graph.row_ptr,
            graph.row_ind,
            matching.row_match,
            matching.col_match,
            psi_row,
            psi_col,
            infinity,
        )
        return out, psi_row, psi_col

    (base, b_row, b_col), (twin, t_row, t_col) = _both_tiers(run)
    assert base == twin
    np.testing.assert_array_equal(b_row, t_row)
    np.testing.assert_array_equal(b_col, t_col)


# ----------------------------------------------------------------- full runs
def _assert_results_identical(base, twin):
    np.testing.assert_array_equal(base.matching.row_match, twin.matching.row_match)
    np.testing.assert_array_equal(base.matching.col_match, twin.matching.col_match)
    assert base.counters == twin.counters
    assert base.modeled_time == twin.modeled_time


@pytest.mark.parametrize("variant", list(GPRVariant))
@pytest.mark.parametrize("waves", [1, 2])
def test_gpr_counter_golden_parity(graph, variant, waves):
    config = GPRConfig(variant=variant, waves_in_flight=waves, seed=5)
    base, twin = _both_tiers(lambda: gpr_matching(graph, config=config))
    _assert_results_identical(base, twin)


def test_ghkdw_counter_golden_parity(graph):
    base, twin = _both_tiers(lambda: ghkdw_matching(graph))
    _assert_results_identical(base, twin)


# ----------------------------------------------------------------- dispatch
def test_implementation_for_none_when_disabled():
    with dispatch.override(False):
        assert dispatch.implementation_for("alternating_level_bfs") is None
        assert dispatch.warm_up() == 0
    with dispatch.override(True):
        assert callable(dispatch.implementation_for("alternating_level_bfs"))
        assert dispatch.implementation_for("no-such-function") is None


def test_override_restores_previous_state():
    before = dispatch.enabled()
    with dispatch.override(not before):
        assert dispatch.enabled() is not before
        with dispatch.override(before):
            assert dispatch.enabled() is before
        assert dispatch.enabled() is not before
    assert dispatch.enabled() is before


def test_override_restores_on_error():
    before = dispatch.enabled()
    with pytest.raises(RuntimeError):
        with dispatch.override(not before):
            raise RuntimeError("boom")
    assert dispatch.enabled() is before


def test_registered_names_cover_all_shims():
    assert dispatch.registered() == (
        "alternating_level_bfs",
        "distance_label_bfs",
        "expand_frontier",
        "first_occurrence_mask",
        "ghkdw_augment",
        "global_relabel",
        "multi_source_bfs",
        "push_active_wave",
        "push_wave",
    )


def test_warm_up_calls_every_entry():
    called = []
    registry = {
        name: dispatch.Entry(name, lambda: None, lambda name=name: called.append(name))
        for name in dispatch.registered()
    }
    with dispatch.override(True):
        count = dispatch.warm_up(registry)
    assert count == len(registry)
    assert sorted(called) == sorted(registry)


def test_recording_detects_shadow_arrays():
    from repro.analysis.hazards import AccessLog, shadow_wrap

    plain = np.zeros(4, dtype=np.int64)
    assert not dispatch.recording(plain, np.ones(2))
    wrapped = shadow_wrap(np.zeros(4, dtype=np.int64), "x", AccessLog())
    assert dispatch.recording(plain, wrapped)


def test_shadow_arrays_keep_the_numpy_path(graph, monkeypatch):
    """An instrumented run must never reach a twin (it cannot record accesses)."""
    from repro.analysis.hazards import AccessLog
    from repro.gpusim.device import DeviceSpec, VirtualGPU

    def explode(*args, **kwargs):
        raise AssertionError("compiled twin reached under shadow instrumentation")

    registry = {
        name: dispatch.Entry(name, explode, lambda: None) for name in dispatch.registered()
    }
    monkeypatch.setattr(dispatch, "_REGISTRY", registry)
    gpu = VirtualGPU(DeviceSpec(), shadow=AccessLog())
    with dispatch.override(True):
        result = gpr_matching(graph, device=gpu)
    assert result.cardinality > 0


def test_capability_report_schema():
    report = dispatch.capability_report()
    assert report["schema"] == "repro-backends/1"
    assert report["numpy"]["available"] is True
    assert report["numba"]["available"] is dispatch.NUMBA_AVAILABLE
    assert report["functions"] == list(dispatch.registered())
    assert report["compiled_dispatch_enabled"] is dispatch.enabled()


# ------------------------------------------------------------------ backend
def test_backend_registry_includes_compiled():
    assert "compiled" in BACKEND_NAMES


@pytest.mark.skipif(
    dispatch.NUMBA_AVAILABLE, reason="error path only exists without numba"
)
def test_compiled_backend_requires_numba():
    with pytest.raises(ValueError, match=r"\[compiled\]"):
        CompiledBackend()
    with pytest.raises(ValueError, match="numba"):
        create_backend("compiled")


@requires_numba
def test_compiled_backend_runs_jobs(graph):
    from repro.engine import MatchingJob

    with Engine(backend="compiled") as engine:
        handle = engine.submit(MatchingJob(graph=graph, algorithm="g-pr"))
        result = handle.result()
    assert handle.worker == "compiled"
    assert result.cardinality == gpr_matching(graph).cardinality


# -------------------------------------------------------------- calibration
def test_calibrate_schema_and_fits():
    doc = calibrate(profile="tiny", repeats=1)
    assert doc["schema"] == CALIBRATION_SCHEMA
    assert doc["tier"] == ("compiled" if dispatch.enabled() else "numpy")
    assert doc["numba"]["available"] is dispatch.NUMBA_AVAILABLE
    assert len(doc["instances"]) == 4
    assert doc["kernels"], "no kernels measured"
    for name, kernel in doc["kernels"].items():
        assert kernel["family"] in ("device", "frontier")
        assert kernel["points"] >= 1
        assert kernel["modeled_seconds"] > 0.0
        assert kernel["measured_seconds"] > 0.0
        assert kernel["constant"] > 0.0
        assert kernel["rms_log10_residual"] >= 0.0
    # The tracked hot functions all appear in the fit.
    for expected in ("alternating_level_bfs", "distance_label_bfs", "g-pr-krnl", "g-gr-krnl"):
        assert expected in doc["kernels"]
    assert 0 < len(doc["most_divergent"]) <= 5
    assert set(doc["most_divergent"]) <= set(doc["kernels"])
    json.dumps(doc)  # the CLI emits it verbatim


def test_calibrate_rejects_bad_inputs():
    with pytest.raises(ValueError):
        calibrate(profile="tiny", repeats=0)
    with pytest.raises(ValueError):
        default_instances(profile="no-such-profile")


def test_calibrate_accepts_explicit_instances():
    graphs = [uniform_random_bipartite(40, 40, avg_degree=4.0, seed=1, name="only")]
    doc = calibrate(instances=graphs, repeats=1)
    assert doc["instances"] == ["only"]
    assert doc["profile"] is None


def test_cli_perf_calibrate_json(capsys):
    from repro.cli import main

    code = main(["perf", "--calibrate", "--profile", "tiny", "--repeats", "1",
                 "--format", "json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == CALIBRATION_SCHEMA
    assert doc["kernels"]


def test_cli_perf_calibrate_rejects_compare_and_update(tmp_path, capsys):
    from repro.cli import main

    assert main(["perf", "--calibrate", "--compare", str(tmp_path / "b.json")]) == 2
    assert "--calibrate" in capsys.readouterr().err
    assert main(["perf", "--calibrate", "--update", str(tmp_path / "b.json")]) == 2
    assert main(["perf", "--calibrate", "--shards", "2"]) == 2


def test_cli_perf_reports_backend_capabilities(capsys):
    from repro.cli import main

    code = main(["perf", "--profile", "tiny", "--instances", "amazon0505",
                 "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    report = payload["backends"]
    assert report["schema"] == "repro-backends/1"
    assert report["numba"]["available"] is dispatch.NUMBA_AVAILABLE
