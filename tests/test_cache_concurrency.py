"""Concurrency hammer for :class:`ResultCache` (the server's warm result tier).

The server reads/writes the cache from the asyncio loop *and* from backend
completion paths concurrently; these tests pin the properties that make it
safe: no lost updates, no double-eviction (``len`` never exceeds the bound,
every surviving key maps to a complete, well-formed result), isolation of
served copies, and exact hit/miss accounting under contention.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.matching import Matching, MatchingResult
from repro.service.cache import ResultCache


def _result(tag: int, size: int = 8) -> MatchingResult:
    """A distinguishable result: row u matched to column (u + tag) % size."""
    row_match = (np.arange(size, dtype=np.int64) + tag) % size
    col_match = np.empty(size, dtype=np.int64)
    col_match[row_match] = np.arange(size, dtype=np.int64)
    return MatchingResult(
        algorithm=f"alg-{tag}",
        matching=Matching(row_match=row_match, col_match=col_match),
        cardinality=size,
        counters={"tag": tag},
    )


def _hammer(cache: ResultCache, *, threads: int, keys: int, rounds: int) -> list:
    """``threads`` workers put/get over ``keys`` shared keys; returns errors."""
    errors: list[str] = []
    barrier = threading.Barrier(threads)

    def worker(worker_id: int) -> None:
        barrier.wait()
        for round_number in range(rounds):
            key = ("key", (worker_id + round_number) % keys)
            tag = key[1]
            cache.put(key, _result(tag))
            served = cache.get(key)
            if served is None:
                continue  # evicted under pressure: legal, never corrupt
            # Whatever version was served must be internally consistent:
            # the row_match shift must agree with the counters tag (a torn
            # read mixing two writers' entries would break this).
            expected = _result(served.counters["tag"])
            if not np.array_equal(served.matching.row_match, expected.matching.row_match):
                errors.append(f"torn read at {key}: {served.counters}")
            # … and served copies must be isolated from the cached entry.
            served.matching.row_match[:] = -1
            reread = cache.get(key)
            if reread is not None and (reread.matching.row_match < 0).any():
                errors.append(f"served copy aliases the cache at {key}")

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return errors


def test_hammer_no_lost_updates_when_capacity_suffices():
    cache = ResultCache(max_entries=64)
    errors = _hammer(cache, threads=8, keys=16, rounds=200)
    assert errors == []
    # No evictions were possible, so every key must have survived — a lost
    # update would show up as a missing key here.
    assert len(cache) == 16
    for key_index in range(16):
        served = cache.get(("key", key_index))
        assert served is not None
        assert served.counters["tag"] == key_index


def test_hammer_under_eviction_pressure_keeps_bound_exact():
    cache = ResultCache(max_entries=8)
    errors = _hammer(cache, threads=8, keys=32, rounds=150)
    assert errors == []
    # Double-eviction (or a missed one) would leave len off the bound; the
    # LRU loop must land exactly at capacity after this much churn.
    assert len(cache) == 8
    survivors = [cache.get(("key", i)) for i in range(32)]
    held = [r for r in survivors if r is not None]
    assert len(held) == 8
    for result in held:
        tag = result.counters["tag"]
        assert np.array_equal(
            result.matching.row_match, _result(tag).matching.row_match
        )


def test_hit_and_miss_accounting_is_exact_under_contention():
    cache = ResultCache(max_entries=128)
    threads, per_thread = 8, 250
    barrier = threading.Barrier(threads)

    def worker(worker_id: int) -> None:
        barrier.wait()
        key = ("worker", worker_id)
        cache.get(key)  # one guaranteed miss
        cache.put(key, _result(worker_id))
        for _ in range(per_thread):
            assert cache.get(key) is not None  # private key: always a hit

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert cache.misses == threads
    assert cache.hits == threads * per_thread


def test_validation_and_clear():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)
    cache = ResultCache(max_entries=4)
    cache.put(("k",), _result(1))
    assert ("k",) in cache
    cache.clear()
    assert len(cache) == 0
    assert cache.get(("k",)) is None
