"""Smoke tests: every example script runs end-to-end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
