"""Tests for the execution engine (repro.engine): backends, futures, failures.

Backend parity reuses the invariant suite's generator families: the same job
list must yield bit-identical matchings on every backend.  The failure-path
tests use a job that resolves cleanly but raises at run time (the serialized
G-PR reference engine rejects the shrink variant), so the whole
submit-validation tier is unaffected.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.engine.execution as execution_mod
from repro.engine import (
    DevicePoolBackend,
    Engine,
    InlineBackend,
    JobCancelledError,
    JobFailedError,
    JobStatus,
    JobTimeoutError,
    MatchingJob,
    ProcessPoolBackend,
    ThreadBackend,
    as_completed,
    create_backend,
)
from repro.generators import (
    chung_lu_bipartite,
    rmat_bipartite,
    uniform_random_bipartite,
)

BACKEND_FACTORIES = {
    "inline": lambda: InlineBackend(),
    "thread": lambda: ThreadBackend(max_workers=2),
    "process": lambda: ProcessPoolBackend(max_workers=2),
    "device": lambda: DevicePoolBackend(devices=2),
}

# One instance per generator family, as in the invariant suite.
_FAMILY_GRAPHS = (
    lambda: uniform_random_bipartite(140, 150, avg_degree=4.0, seed=41),
    lambda: chung_lu_bipartite(120, 120, avg_degree=5.0, seed=42),
    lambda: rmat_bipartite(6, edge_factor=5.0, seed=43),
)


@pytest.fixture(scope="module")
def family_graphs():
    return [build() for build in _FAMILY_GRAPHS]


@pytest.fixture(scope="module")
def parity_jobs(family_graphs):
    return [
        MatchingJob(graph=g, algorithm=name, job_id=f"{i}/{name}")
        for i, g in enumerate(family_graphs)
        for name in ("g-pr", "p-dbfs", "pr", "hk")
    ]


def _boom_job(graph, job_id="boom"):
    """Resolves fine; raises ValueError at run time on every backend."""
    return MatchingJob(
        graph=graph, algorithm="g-pr", kwargs={"engine": "serialized"}, job_id=job_id
    )


# ------------------------------------------------------------- backend parity
@pytest.fixture(scope="module")
def inline_reference(parity_jobs):
    with Engine(backend="inline") as engine:
        return [engine.run(job) for job in parity_jobs]


@pytest.mark.parametrize("backend", sorted(BACKEND_FACTORIES))
def test_backend_parity(backend, parity_jobs, inline_reference):
    with Engine(backend=BACKEND_FACTORIES[backend](), own_backend=True) as engine:
        handles = engine.map(parity_jobs)
        results = [handle.result() for handle in handles]
    for result, reference in zip(results, inline_reference, strict=True):
        assert result.cardinality == reference.cardinality
        assert np.array_equal(result.matching.row_match, reference.matching.row_match)
        assert np.array_equal(result.matching.col_match, reference.matching.col_match)


# ---------------------------------------------------------- failure isolation
@pytest.mark.parametrize("backend", sorted(BACKEND_FACTORIES))
def test_failing_job_leaves_siblings_completed(backend, family_graphs):
    g = family_graphs[0]
    jobs = [
        MatchingJob(graph=g, algorithm="pr", job_id="before"),
        _boom_job(g),
        MatchingJob(graph=g, algorithm="hk", job_id="after"),
    ]
    with Engine(backend=BACKEND_FACTORIES[backend](), own_backend=True) as engine:
        handles = engine.map(jobs)
        outcomes = {h.job.job_id: h for h in engine.as_completed(handles, timeout=120)}
    boom = outcomes["boom"]
    assert boom.status is JobStatus.FAILED
    assert boom.failure is not None and boom.failure.exc_type == "ValueError"
    assert "serialized" in boom.failure.message
    with pytest.raises(JobFailedError, match="serialized"):
        boom.result()
    assert outcomes["before"].status is JobStatus.OK
    assert outcomes["after"].status is JobStatus.OK
    assert outcomes["before"].result().cardinality == outcomes["after"].result().cardinality


def test_invalid_jobs_raise_at_submit(family_graphs):
    g = family_graphs[0]
    with Engine() as engine:
        with pytest.raises(ValueError, match="unknown algorithm"):
            engine.submit(MatchingJob(graph=g, algorithm="quantum"))
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.submit(MatchingJob(graph=g, algorithm="pr", kwargs={"bogus": 1}))
        with pytest.raises(TypeError, match="warm-start"):
            engine.submit(MatchingJob(graph=g, algorithm="cheap", initial="karp-sipser"))


def test_map_validates_every_job_before_executing_any(family_graphs, monkeypatch):
    # Regression: map() used to submit one-by-one, so jobs ahead of an
    # invalid one were already executing when the error raised; it now
    # validates the whole list before the first submission.
    executed = []
    original = execution_mod.execute_job

    def counting(job, plan=None, initial_matching=None):
        executed.append(job.job_id)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", counting)
    g = family_graphs[0]
    with Engine() as engine:
        with pytest.raises(ValueError, match="unknown algorithm"):
            engine.map([
                MatchingJob(graph=g, algorithm="hk", job_id="ok"),
                MatchingJob(graph=g, algorithm="quantum", job_id="bad"),
            ])
    assert executed == []


# --------------------------------------------------------------- cancellation
def test_cancel_pending_job(family_graphs, monkeypatch):
    g = family_graphs[0]
    release = threading.Event()
    original = execution_mod.execute_job

    def gated(job, plan=None, initial_matching=None):
        if job.job_id == "slow":
            assert release.wait(30)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", gated)
    engine = Engine(backend="thread", max_workers=1)
    try:
        slow = engine.submit(MatchingJob(graph=g, algorithm="hk", job_id="slow"))
        queued = engine.submit(MatchingJob(graph=g, algorithm="pr", job_id="queued"))
        assert queued.cancel()  # never started: the single worker is busy
        assert queued.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            queued.result()
        assert queued.cancel()  # idempotent
        release.set()
        assert slow.result(timeout=60).cardinality > 0
        assert not slow.cancel()  # already finished
    finally:
        release.set()
        engine.shutdown()


# ------------------------------------------------------------------ deadlines
def test_deadline_expired_before_start(family_graphs, monkeypatch):
    calls = []
    original = execution_mod.execute_job

    def counted(job, plan=None, initial_matching=None):
        calls.append(job)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", counted)
    with Engine(backend="inline") as engine:
        handle = engine.submit(
            MatchingJob(graph=family_graphs[0], algorithm="hk"), timeout=-1.0
        )
    assert handle.status is JobStatus.TIMEOUT
    assert calls == []  # expired jobs are never executed
    with pytest.raises(JobTimeoutError):
        handle.result()


def test_deadline_expired_before_start_process_backend(family_graphs):
    with Engine(backend="process", max_workers=1) as engine:
        handle = engine.submit(
            MatchingJob(graph=family_graphs[0], algorithm="hk"), timeout=-1.0
        )
        assert handle.wait(60)
    assert handle.status is JobStatus.TIMEOUT
    assert "before the job started" in handle.failure.message


def test_result_arriving_after_deadline_is_marked_timeout(family_graphs, monkeypatch):
    g = family_graphs[0]
    original = execution_mod.execute_job
    entered = threading.Event()
    release = threading.Event()

    def slow(job, plan=None, initial_matching=None):
        entered.set()
        assert release.wait(30)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", slow)
    engine = Engine(backend="thread", max_workers=1, default_timeout=0.05)
    try:
        handle = engine.submit(MatchingJob(graph=g, algorithm="hk"))
        assert entered.wait(30)  # the job did start (before its deadline)
        handle.wait(0.2)  # let the deadline pass while the job is running
        release.set()
        assert handle.wait(60)
        assert handle.status is JobStatus.TIMEOUT  # late result discarded
        assert "deadline exceeded" in handle.failure.message
    finally:
        release.set()
        engine.shutdown()


# ------------------------------------------------------------------ streaming
def test_as_completed_yields_in_completion_order(family_graphs, monkeypatch):
    g = family_graphs[0]
    original = execution_mod.execute_job
    release_slow = threading.Event()

    def gated(job, plan=None, initial_matching=None):
        if job.job_id == "slow":
            assert release_slow.wait(30)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", gated)
    engine = Engine(backend="thread", max_workers=2)
    try:
        slow = engine.submit(MatchingJob(graph=g, algorithm="hk", job_id="slow"))
        fast = engine.submit(MatchingJob(graph=g, algorithm="pr", job_id="fast"))
        stream = engine.as_completed([slow, fast], timeout=60)
        first = next(stream)
        assert first is fast  # completion order, not submission order
        release_slow.set()
        assert next(stream) is slow
    finally:
        release_slow.set()
        engine.shutdown()


def test_as_completed_timeout(family_graphs, monkeypatch):
    g = family_graphs[0]
    release = threading.Event()
    original = execution_mod.execute_job

    def gated(job, plan=None, initial_matching=None):
        assert release.wait(30)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", gated)
    engine = Engine(backend="thread", max_workers=1)
    try:
        handle = engine.submit(MatchingJob(graph=g, algorithm="hk"))
        with pytest.raises(TimeoutError, match="still pending"):
            list(as_completed([handle], timeout=0.05))
    finally:
        release.set()
        engine.shutdown()


# ------------------------------------------------------------------ API shape
def test_engine_map_preserves_submission_order(family_graphs):
    jobs = [
        MatchingJob(graph=family_graphs[0], algorithm=a, job_id=a) for a in ("pr", "hk", "pfp")
    ]
    with Engine(backend="thread", max_workers=2) as engine:
        handles = engine.map(jobs)
        assert [h.job.job_id for h in handles] == ["pr", "hk", "pfp"]
        assert len({h.result().cardinality for h in handles}) == 1


def test_engine_run_convenience(family_graphs):
    with Engine() as engine:
        result = engine.run(MatchingJob(graph=family_graphs[0], algorithm="pr"))
    assert result.cardinality > 0


def test_engine_rejects_submissions_after_shutdown(family_graphs):
    engine = Engine()
    engine.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        engine.submit(MatchingJob(graph=family_graphs[0], algorithm="pr"))


def test_create_backend_validation():
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("quantum")
    with pytest.raises(TypeError, match="ExecutionBackend"):
        create_backend(42)
    backend = InlineBackend()
    assert create_backend(backend) is backend
    with pytest.raises(ValueError):
        ThreadBackend(max_workers=0)
    with pytest.raises(ValueError):
        ProcessPoolBackend(max_workers=-1)
    with pytest.raises(ValueError):
        DevicePoolBackend(devices=0)
    with pytest.raises(ValueError):
        DevicePoolBackend(devices=[])
    with pytest.raises(ValueError):
        create_backend("device", devices=0)  # explicit 0 is an error, not a default


def test_abandoned_engine_releases_its_pool(family_graphs):
    import gc

    engine = Engine(backend="thread", max_workers=1)
    engine.run(MatchingJob(graph=family_graphs[0], algorithm="pr"))
    backend = engine.backend
    assert not backend._closed
    del engine
    gc.collect()
    assert backend._closed  # the finalizer shut the abandoned pool down


def test_device_pool_resets_ledger_per_job(family_graphs):
    g = family_graphs[0]
    job = MatchingJob(graph=g, algorithm="g-pr")
    with Engine(backend=DevicePoolBackend(devices=1), own_backend=True) as engine:
        first = engine.run(job)
        second = engine.run(job)
    # Same pooled device, fresh ledger each run: modelled time is per-job,
    # not cumulative across the device's lifetime.
    assert second.modeled_time == pytest.approx(first.modeled_time)


def test_suite_runner_backend_parity():
    from repro.bench.harness import SuiteRunner

    instances = ("amazon0505", "roadNet-PA")
    inline = SuiteRunner(profile="tiny", instances=instances).run()
    threaded_runner = SuiteRunner(profile="tiny", instances=instances, backend="thread")
    try:
        threaded = threaded_runner.run()
    finally:
        threaded_runner.close()
    for a, b in zip(inline, threaded, strict=True):
        for name in a.runs:
            assert a.runs[name].cardinality == b.runs[name].cardinality
            assert a.runs[name].modeled_seconds == pytest.approx(b.runs[name].modeled_seconds)


def test_jobs_submitted_is_exact_under_concurrent_submission(family_graphs):
    """Regression (RPR003): ``jobs_submitted`` is incremented under the
    in-flight lock, so racing submitters cannot lose counts."""
    g = family_graphs[0]
    per_thread, n_threads = 25, 8
    with Engine(backend=ThreadBackend(max_workers=4), own_backend=True) as engine:
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                engine.submit(MatchingJob(graph=g, algorithm="cheap"))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert engine.jobs_submitted == per_thread * n_threads
