"""Tests for the synthetic workload generators and the 28-instance suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    SUITE_SPECS,
    bubbles_graph,
    chung_lu_bipartite,
    delaunay_like_graph,
    generate_instance,
    generate_suite,
    grid_graph,
    instance_names,
    kronecker_graph,
    perfect_matching_plus_noise,
    power_law_web_graph,
    rmat_bipartite,
    road_network_graph,
    trace_graph,
    uniform_random_bipartite,
)
from repro.graph.validate import validate_graph
from repro.seq.verify import maximum_matching_cardinality


def test_uniform_determinism():
    a = uniform_random_bipartite(200, 210, avg_degree=3.0, seed=7)
    b = uniform_random_bipartite(200, 210, avg_degree=3.0, seed=7)
    assert np.array_equal(a.col_ind, b.col_ind)
    c = uniform_random_bipartite(200, 210, avg_degree=3.0, seed=8)
    assert not np.array_equal(a.col_ind, c.col_ind)


def test_uniform_shape_and_density():
    g = uniform_random_bipartite(500, 400, avg_degree=5.0, seed=1)
    assert g.shape == (500, 400)
    # duplicates are merged so the edge count is at most the request
    assert 0.8 * 400 * 5 <= g.n_edges <= 400 * 5


def test_uniform_rejects_bad_args():
    with pytest.raises(ValueError):
        uniform_random_bipartite(0, 10)
    with pytest.raises(ValueError):
        uniform_random_bipartite(10, 10, avg_degree=-1)


def test_perfect_matching_plus_noise_has_perfect_matching():
    g = perfect_matching_plus_noise(300, extra_degree=2.0, seed=3)
    assert maximum_matching_cardinality(g) == 300


def test_rmat_properties():
    g = rmat_bipartite(9, edge_factor=8.0, seed=5)
    assert g.n_rows == 512
    assert g.n_cols == 512
    validate_graph(g)
    # Kronecker degree distributions are heavily skewed.
    degs = g.col_degrees
    assert degs.max() > 4 * max(1.0, degs.mean())


def test_rmat_rejects_bad_scale():
    with pytest.raises(ValueError):
        rmat_bipartite(0)
    with pytest.raises(ValueError):
        rmat_bipartite(30)
    with pytest.raises(ValueError):
        rmat_bipartite(5, a=0.9, b=0.2, c=0.2)


def test_kronecker_alias():
    g = kronecker_graph(7, edge_factor=4.0, seed=2)
    assert g.n_rows == 128


def test_chung_lu_power_law_skew():
    g = chung_lu_bipartite(600, 600, avg_degree=8.0, exponent=2.0, seed=9)
    degs = np.concatenate([g.row_degrees, g.col_degrees])
    assert degs.max() > 5 * degs.mean()


def test_chung_lu_rejects_bad_exponent():
    with pytest.raises(ValueError):
        chung_lu_bipartite(10, 10, exponent=0.9)


def test_power_law_web_graph():
    g = power_law_web_graph(400, avg_degree=8.0, seed=4)
    assert g.shape == (400, 400)
    validate_graph(g)


def test_grid_graph_structure():
    g = grid_graph(5, 4)
    assert g.shape == (20, 20)
    # Interior vertices of a 4-neighbour grid have degree 4.
    assert g.row_degrees.max() == 4
    assert g.row_degrees.min() == 2


def test_grid_graph_diagonal_adds_edges():
    plain = grid_graph(6, 6)
    tri = grid_graph(6, 6, diagonal=True)
    assert tri.n_edges > plain.n_edges


def test_road_network_near_perfect_matching():
    g = road_network_graph(400, removal_fraction=0.2, seed=21)
    mm = maximum_matching_cardinality(g)
    assert 0.85 * g.n_rows <= mm <= g.n_rows


def test_delaunay_perfect_or_near_perfect():
    g = delaunay_like_graph(300, seed=22)
    assert g.shape == (300, 300)
    mm = maximum_matching_cardinality(g)
    assert mm >= 0.98 * g.n_rows
    # Delaunay triangulations have bounded average degree ~6.
    assert g.col_degrees.mean() < 8.5


def test_trace_graph_sparse_and_matchable():
    g = trace_graph(600, seed=23)
    assert g.col_degrees.mean() < 7
    mm = maximum_matching_cardinality(g)
    assert mm >= 0.97 * g.n_rows


def test_bubbles_graph():
    g = bubbles_graph(600, n_bubbles=4, seed=24)
    validate_graph(g)
    mm = maximum_matching_cardinality(g)
    assert mm >= 0.95 * g.n_rows


def test_generator_input_validation():
    with pytest.raises(ValueError):
        grid_graph(0, 3)
    with pytest.raises(ValueError):
        road_network_graph(-1)
    with pytest.raises(ValueError):
        road_network_graph(100, removal_fraction=1.5)
    with pytest.raises(ValueError):
        trace_graph(100, strip_height=1)
    with pytest.raises(ValueError):
        bubbles_graph(100, n_bubbles=0)
    with pytest.raises(ValueError):
        delaunay_like_graph(2)
    with pytest.raises(ValueError):
        perfect_matching_plus_noise(0)


# ----------------------------------------------------------------- suite


def test_suite_has_28_instances():
    assert len(SUITE_SPECS) == 28
    assert len(instance_names()) == 28
    assert instance_names()[0] == "amazon0505"
    assert instance_names()[-1] == "hugebubbles-00000"


def test_suite_paper_metadata_matches_table1():
    by_name = {spec.name: spec for spec in SUITE_SPECS}
    assert by_name["delaunay_n24"].paper.rows == 16_777_216
    assert by_name["delaunay_n24"].paper.time_pr == pytest.approx(23.01)
    assert by_name["hugetrace-00000"].paper.speedup_gpr_vs_pr == pytest.approx(0.31, abs=0.01)
    assert by_name["delaunay_n24"].paper.speedup_gpr_vs_pr == pytest.approx(12.57, abs=0.05)
    # Ordered by increasing row count, as in the paper.
    rows = [spec.paper.rows for spec in SUITE_SPECS]
    assert rows == sorted(rows)


def test_generate_instance_by_name_and_id():
    g1 = generate_instance("amazon0505", profile="tiny", seed=1)
    g2 = generate_instance(1, profile="tiny", seed=1)
    assert g1.name == "amazon0505"
    assert np.array_equal(g1.col_ind, g2.col_ind)


def test_generate_instance_deterministic():
    a = generate_instance("roadNet-PA", profile="tiny", seed=5)
    b = generate_instance("roadNet-PA", profile="tiny", seed=5)
    assert np.array_equal(a.col_ind, b.col_ind)


def test_generate_instance_unknown():
    with pytest.raises(KeyError):
        generate_instance("no-such-graph")
    with pytest.raises(KeyError):
        generate_instance(99)
    with pytest.raises(ValueError):
        generate_instance(1, profile="gigantic")


def test_suite_sizes_increase_with_paper_sizes():
    small = generate_instance(1, profile="tiny")
    large = generate_instance(28, profile="tiny")
    assert large.n_rows > small.n_rows


def test_generate_suite_family_filter():
    pairs = list(generate_suite(profile="tiny", families=("road",)))
    assert {spec.family for spec, _ in pairs} == {"road"}
    assert len(pairs) == 4


@pytest.mark.parametrize("spec", SUITE_SPECS, ids=lambda s: s.name)
def test_every_suite_instance_generates_valid_graph(spec):
    graph = spec.generate(150, seed=42)
    validate_graph(graph)
    assert graph.n_edges > 0
    assert graph.name == spec.name
