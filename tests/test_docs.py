"""Documentation honesty checks: intra-repo links and CLI help.

Run by the CI ``docs`` job (and the tier-1 suite).  Two guarantees:

* every relative link in ``docs/*.md`` and ``README.md`` points at a file
  that exists, so the docs tree cannot rot silently;
* ``python -m repro.cli <subcommand> --help`` works for every subcommand,
  and ``docs/cli.md`` documents exactly the subcommands and flags the
  parser actually exposes — so the CLI reference cannot drift.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    actions = [
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    assert len(actions) == 1
    return dict(actions[0].choices)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(doc):
    assert doc.is_file(), f"documentation file {doc} is missing"
    broken = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not (doc.parent / path).exists():
                broken.append(f"{doc.name}:{lineno}: broken link {target!r}")
    assert not broken, "\n".join(broken)


def test_every_subcommand_prints_help():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    for name in ["--help"] + [name for name in _subcommands()]:
        argv = [sys.executable, "-m", "repro.cli"]
        argv += [name, "--help"] if name != "--help" else [name]
        proc = subprocess.run(argv, capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, (name, proc.stderr)
        assert "usage:" in proc.stdout, name


def test_cli_doc_covers_every_subcommand_and_flag():
    cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    for name, sub in _subcommands().items():
        assert f"## {name}" in cli_doc, f"docs/cli.md lacks a section for {name!r}"
        for action in sub._actions:
            for option in action.option_strings:
                if option in ("-h", "--help"):
                    continue
                assert option in cli_doc, (
                    f"docs/cli.md does not document {option!r} of {name!r}"
                )


def test_cli_doc_mentions_no_phantom_subcommands():
    # Fenced command examples in the docs must use real subcommands.
    cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    known = set(_subcommands())
    for match in re.finditer(r"python -m repro\.cli (\w[\w-]*)", cli_doc):
        assert match.group(1) in known, f"docs/cli.md uses unknown subcommand {match.group(1)!r}"


def test_readme_documents_every_registered_algorithm():
    from repro.core.api import SPECS

    table = (REPO_ROOT / "README.md").read_text()
    for name in SPECS:
        assert f"`{name}`" in table, f"README's registry table lacks {name!r}"
