"""End-to-end tests of G-PR (all variants), G-HKDW, P-DBFS and the public API."""

from __future__ import annotations

import pytest

from repro import max_bipartite_matching
from repro.core import GPRConfig, GPRVariant, ghkdw_matching, gpr_matching
from repro.core.api import MAXIMUM_ALGORITHMS, SPECS, resolve_algorithm
from repro.core.strategies import AdaptiveStrategy, FixedStrategy, parse_strategy
from repro.generators import (
    chung_lu_bipartite,
    perfect_matching_plus_noise,
    uniform_random_bipartite,
)
from repro.graph import from_edges
from repro.graph.builders import empty_graph
from repro.gpusim import DeviceSpec, VirtualGPU
from repro.matching import Matching
from repro.multicore import PDBFSConfig, pdbfs_matching
from repro.seq import is_maximum_matching, is_valid_matching, maximum_matching_cardinality

GPU_VARIANTS = [GPRVariant.FIRST, GPRVariant.NO_SHRINK, GPRVariant.SHRINK]


# ------------------------------------------------------------------ strategies
def test_parse_strategy():
    assert isinstance(parse_strategy("adaptive:0.3"), AdaptiveStrategy)
    assert parse_strategy("adaptive:0.3").k == 0.3
    assert isinstance(parse_strategy("fix:50"), FixedStrategy)
    assert parse_strategy("fix:50").k == 50
    assert parse_strategy("adaptive").k == 0.7
    assert parse_strategy("fixed:5").k == 5
    strategy = AdaptiveStrategy(1.5)
    assert parse_strategy(strategy) is strategy
    with pytest.raises(ValueError):
        parse_strategy("bogus:1")
    with pytest.raises(ValueError):
        parse_strategy("adaptive:not-a-number")


def test_strategy_validation():
    with pytest.raises(ValueError):
        AdaptiveStrategy(0)
    with pytest.raises(ValueError):
        FixedStrategy(0)


def test_strategy_next_iteration():
    assert AdaptiveStrategy(0.5).next_iteration(10, 8) == 14
    assert AdaptiveStrategy(0.1).next_iteration(10, 2) == 11  # at least one iteration later
    assert FixedStrategy(10).next_iteration(3, 999) == 13
    assert AdaptiveStrategy(2.0).label == "adaptive-2"
    assert FixedStrategy(50).label == "fix-50"


# --------------------------------------------------------------------- G-PR
@pytest.mark.parametrize("variant", GPU_VARIANTS, ids=lambda v: v.value)
def test_gpr_reaches_maximum_on_tiny(variant, tiny_graph):
    result = gpr_matching(tiny_graph, config=GPRConfig(variant=variant))
    assert result.cardinality == 3
    assert is_maximum_matching(tiny_graph, result.matching)


@pytest.mark.parametrize("variant", GPU_VARIANTS, ids=lambda v: v.value)
def test_gpr_reaches_maximum_on_families(variant, family_graph):
    result = gpr_matching(family_graph, config=GPRConfig(variant=variant))
    assert result.cardinality == maximum_matching_cardinality(family_graph)
    assert is_valid_matching(family_graph, result.matching)


@pytest.mark.parametrize(
    "strategy", ["adaptive:0.3", "adaptive:0.7", "adaptive:2", "fix:10", "fix:50"]
)
def test_gpr_all_strategies_reach_maximum(strategy):
    g = chung_lu_bipartite(350, 350, avg_degree=5.0, seed=42)
    expected = maximum_matching_cardinality(g)
    result = gpr_matching(g, config=GPRConfig(variant=GPRVariant.SHRINK, strategy=strategy))
    assert result.cardinality == expected


def test_gpr_counters_and_modeled_time(family_graph):
    result = gpr_matching(family_graph, config=GPRConfig(variant=GPRVariant.SHRINK))
    assert result.modeled_time is not None and result.modeled_time > 0
    assert result.counters["kernel_launches"] > 0
    assert result.counters["global_relabels"] >= 1
    assert result.counters["loops"] >= 1
    assert result.counters["strategy"] == "adaptive-0.7"
    assert result.counters["variant"] == "shrink"
    assert "g-pr-pushkrnl" in result.counters["per_kernel_seconds"]


def test_gpr_first_uses_full_width_kernels(tiny_graph):
    gpu = VirtualGPU()
    gpr_matching(tiny_graph, config=GPRConfig(variant=GPRVariant.FIRST), device=gpu)
    push_launches = [k for k in gpu.ledger.launches if k.name == "g-pr-krnl"]
    assert push_launches
    assert all(k.n_threads == tiny_graph.n_cols for k in push_launches)


def test_gpr_active_list_uses_fewer_threads():
    g = perfect_matching_plus_noise(400, extra_degree=3.0, seed=11)
    gpu = VirtualGPU()
    gpr_matching(g, config=GPRConfig(variant=GPRVariant.NO_SHRINK), device=gpu)
    push_launches = [k for k in gpu.ledger.launches if k.name == "g-pr-pushkrnl"]
    assert push_launches
    # The cheap matching leaves far fewer unmatched columns than n.
    assert all(k.n_threads < g.n_cols for k in push_launches)


def test_gpr_shrink_threshold_controls_compaction():
    g = chung_lu_bipartite(500, 500, avg_degree=4.0, seed=3)
    gpu_shrunk = VirtualGPU()
    gpr_matching(
        g,
        config=GPRConfig(variant=GPRVariant.SHRINK, shrink_threshold=1),
        device=gpu_shrunk,
    )
    assert any(k.name == "g-pr-shrkrnl" for k in gpu_shrunk.ledger.launches)
    gpu_never = VirtualGPU()
    gpr_matching(
        g,
        config=GPRConfig(variant=GPRVariant.SHRINK, shrink_threshold=10**9),
        device=gpu_never,
    )
    assert not any(k.name == "g-pr-shrkrnl" for k in gpu_never.ledger.launches)


def test_gpr_serialized_engine_matches_lockstep_cardinality(tiny_graph, family_graph):
    for graph in (tiny_graph, family_graph):
        expected = maximum_matching_cardinality(graph)
        lockstep = gpr_matching(graph, config=GPRConfig(variant=GPRVariant.FIRST))
        serialized = gpr_matching(
            graph, config=GPRConfig(variant=GPRVariant.FIRST, engine="serialized", seed=7)
        )
        assert lockstep.cardinality == expected
        assert serialized.cardinality == expected


def test_gpr_serialized_engine_only_for_first(tiny_graph):
    with pytest.raises(ValueError):
        gpr_matching(tiny_graph, config=GPRConfig(variant=GPRVariant.SHRINK, engine="serialized"))
    with pytest.raises(ValueError):
        gpr_matching(tiny_graph, config=GPRConfig(engine="cuda"))


def test_gpr_accepts_initial_matching_and_empty_graph(family_graph):
    initial = Matching.empty(family_graph)
    result = gpr_matching(family_graph, initial=initial)
    assert result.cardinality == maximum_matching_cardinality(family_graph)
    assert gpr_matching(empty_graph(5, 8)).cardinality == 0


def test_gpr_rectangular_and_star_graphs():
    star = from_edges([(0, v) for v in range(40)], n_rows=1, n_cols=40)
    assert gpr_matching(star).cardinality == 1
    rect = uniform_random_bipartite(90, 200, avg_degree=3.0, seed=5)
    assert gpr_matching(rect).cardinality == maximum_matching_cardinality(rect)
    tall = uniform_random_bipartite(200, 90, avg_degree=3.0, seed=6)
    assert gpr_matching(tall).cardinality == maximum_matching_cardinality(tall)


def test_gpr_scaled_device():
    g = chung_lu_bipartite(300, 300, avg_degree=5.0, seed=1)
    gpu = VirtualGPU(DeviceSpec().scaled())
    result = gpr_matching(g, device=gpu)
    assert result.cardinality == maximum_matching_cardinality(g)
    assert result.modeled_time == pytest.approx(gpu.ledger.total_seconds)


def test_gpr_max_iterations_guard(tiny_graph):
    with pytest.raises(RuntimeError):
        gpr_matching(tiny_graph, config=GPRConfig(variant=GPRVariant.FIRST, max_iterations=0))


# ------------------------------------------------------------------- G-HKDW
def test_ghkdw_reaches_maximum(family_graph):
    result = ghkdw_matching(family_graph)
    assert result.cardinality == maximum_matching_cardinality(family_graph)
    assert result.modeled_time is not None and result.modeled_time > 0
    assert result.counters["phases"] >= 1


def test_ghkdw_empty_and_star():
    assert ghkdw_matching(empty_graph(4, 4)).cardinality == 0
    star = from_edges([(0, v) for v in range(20)], n_rows=1, n_cols=20)
    assert ghkdw_matching(star).cardinality == 1


def test_ghkdw_phase_guard(tiny_graph):
    with pytest.raises(RuntimeError):
        ghkdw_matching(tiny_graph, initial=Matching.empty(tiny_graph), max_phases=0)


# ------------------------------------------------------------------- P-DBFS
def test_pdbfs_reaches_maximum(family_graph):
    result = pdbfs_matching(family_graph)
    assert result.cardinality == maximum_matching_cardinality(family_graph)
    assert result.modeled_time is not None and result.modeled_time > 0
    assert result.counters["rounds"] >= 1


def test_pdbfs_thread_count_config():
    g = chung_lu_bipartite(300, 300, avg_degree=5.0, seed=9)
    expected = maximum_matching_cardinality(g)
    for threads in (1, 4, 16):
        result = pdbfs_matching(g, config=PDBFSConfig(n_threads=threads))
        assert result.cardinality == expected


def test_pdbfs_empty_graph():
    assert pdbfs_matching(empty_graph(3, 3)).cardinality == 0


# ----------------------------------------------------------------- public API
def test_api_unknown_algorithm(tiny_graph):
    with pytest.raises(ValueError):
        max_bipartite_matching(tiny_graph, algorithm="quantum")


def test_api_unknown_algorithm_suggests_nearest_name():
    # Regression: the unknown-algorithm error used to only dump the registry;
    # a near-miss now also names the closest registered algorithm.
    with pytest.raises(ValueError, match=r"did you mean 'hkdw'\?"):
        resolve_algorithm("hkwd")
    with pytest.raises(ValueError, match=r"did you mean 'weighted-sap'\?"):
        resolve_algorithm("weighted_sap")
    # No plausible near-miss: no suggestion, but the full list still shows.
    with pytest.raises(ValueError, match=r"available: ") as excinfo:
        resolve_algorithm("zzzzzz")
    assert "did you mean" not in str(excinfo.value)


def test_api_algorithm_registry_complete():
    for name in MAXIMUM_ALGORITHMS:
        assert name in SPECS


def test_legacy_algorithms_mapping_is_deprecated(tiny_graph):
    import repro.core.api as api_module

    with pytest.warns(DeprecationWarning, match="ALGORITHMS is deprecated"):
        legacy = api_module.ALGORITHMS
    assert set(legacy) == set(SPECS)
    assert legacy["hk"](tiny_graph).cardinality == 3  # the shim still dispatches
    with pytest.warns(DeprecationWarning):
        again = api_module.ALGORITHMS
    assert again is legacy  # stable identity, so legacy mutation patterns survive
    with pytest.warns(DeprecationWarning):
        import repro.core as core_module

        core_module.ALGORITHMS
    with pytest.raises(AttributeError):
        api_module.NO_SUCH_ATTRIBUTE


@pytest.mark.parametrize("name", sorted(MAXIMUM_ALGORITHMS))
def test_api_every_maximum_algorithm(name, tiny_graph):
    result = max_bipartite_matching(tiny_graph, algorithm=name)
    assert result.cardinality == 3


def test_api_greedy_algorithms(tiny_graph):
    cheap = max_bipartite_matching(tiny_graph, algorithm="cheap")
    ks = max_bipartite_matching(tiny_graph, algorithm="karp-sipser")
    assert 1 <= cheap.cardinality <= 3
    assert 1 <= ks.cardinality <= 3


def test_api_case_insensitive(tiny_graph):
    assert max_bipartite_matching(tiny_graph, algorithm="G-PR").cardinality == 3


def test_api_forwards_config(tiny_graph):
    result = max_bipartite_matching(tiny_graph, algorithm="g-pr", strategy="fix:10")
    assert result.counters["strategy"] == "fix-10"


@pytest.mark.parametrize("name", sorted(SPECS))
def test_api_unknown_kwargs_raise_uniformly(name, tiny_graph):
    # Regression: the old registry wrappers for "pr" / "p-dbfs" only consumed
    # **kwargs when building a config, and the no-config algorithms swallowed
    # them entirely — a typo'd knob was silently ignored.
    with pytest.raises(TypeError, match="unexpected keyword"):
        max_bipartite_matching(tiny_graph, algorithm=name, bogus_knob=1)


def test_api_config_conflicts_with_field_kwargs(tiny_graph):
    from repro.seq.push_relabel import PushRelabelConfig

    with pytest.raises(TypeError, match="not both"):
        max_bipartite_matching(
            tiny_graph, "pr", config=PushRelabelConfig(), global_relabel_k=0.7
        )
    with pytest.raises(TypeError, match="does not take a config"):
        max_bipartite_matching(tiny_graph, "hk", config=PushRelabelConfig())
    with pytest.raises(TypeError, match="expects a"):
        max_bipartite_matching(tiny_graph, "pr", config=GPRConfig())


def test_api_config_field_kwargs_build_config(tiny_graph):
    result = max_bipartite_matching(tiny_graph, "pr", global_relabel_k=0.25)
    assert result.cardinality == 3
    result = max_bipartite_matching(tiny_graph, "p-dbfs", n_threads=2)
    assert result.cardinality == 3


def test_api_device_rejected_for_cpu_algorithms(tiny_graph):
    with pytest.raises(TypeError, match="does not run on a device"):
        max_bipartite_matching(tiny_graph, "pr", device=VirtualGPU(DeviceSpec().scaled()))


def test_resolve_algorithm_plan_is_reusable(tiny_graph, perfect_graph):
    plan = resolve_algorithm("g-pr", strategy="fix:10")
    assert plan.algorithm == "g-pr"
    assert plan.run(tiny_graph).cardinality == 3
    assert plan.run(perfect_graph).cardinality == 5


def test_resolve_algorithm_variant_pinned():
    # The variant is part of the registry entry, not a free knob.
    with pytest.raises(TypeError, match="unexpected keyword"):
        resolve_algorithm("g-pr", variant=GPRVariant.FIRST)
    plan = resolve_algorithm("g-pr-first")
    assert plan.config.resolved_variant() == GPRVariant.FIRST
    # ... and an explicit config cannot smuggle a different variant in.
    with pytest.raises(TypeError, match="pins"):
        resolve_algorithm("g-pr-first", config=GPRConfig(variant=GPRVariant.SHRINK))
    ok = resolve_algorithm("g-pr-first", config=GPRConfig(variant=GPRVariant.FIRST))
    assert ok.config.resolved_variant() == GPRVariant.FIRST


def test_api_warm_start_rejected_for_heuristics(tiny_graph):
    initial = Matching.empty(tiny_graph)
    for name in ("cheap", "karp-sipser"):
        with pytest.raises(TypeError, match="warm-start"):
            max_bipartite_matching(tiny_graph, name, initial=initial)
