"""Cross-algorithm invariant suite.

All registered maximum-matching algorithms implement the same mathematical
object, so on any graph they must (a) return a valid matching and (b) agree
on the cardinality (Theorem 1 of the paper: a matching is maximum iff it
admits no augmenting path).  This suite sweeps that oracle over one
instance per generator family plus the degenerate shapes, and over the
warm-start paths (``initial=`` from cheap and Karp–Sipser), which the
per-algorithm tests do not cover.  The capacitated specs join the matrix
through their b=1 delegation; on genuinely capacitated graphs they are
checked against the independent flow oracle in ``tests/oracle.py``.
"""

from __future__ import annotations

import pytest

from oracle import max_b_matching_cardinality
from repro.capacity import is_valid_b_matching
from repro.core.api import MAXIMUM_ALGORITHMS, SPECS, max_bipartite_matching
from repro.generators import (
    apply_capacity_spec,
    chung_lu_bipartite,
    delaunay_like_graph,
    rmat_bipartite,
    road_network_graph,
    uniform_random_bipartite,
    uniform_weights,
)
from repro.graph.builders import empty_graph
from repro.seq.greedy import cheap_matching, karp_sipser_matching
from repro.seq.verify import is_valid_matching, maximum_matching_cardinality

# Maximum algorithms that accept a warm start (the weighted solvers build
# their dual certificates from scratch, so they reject initial matchings).
_WARMSTART_ALGORITHMS = tuple(
    name for name in MAXIMUM_ALGORITHMS if SPECS[name].accepts_initial
)
_CAPACITATED_ALGORITHMS = tuple(
    name for name in MAXIMUM_ALGORITHMS if SPECS[name].capacitated
)

_FAMILIES = {
    "mesh-road": lambda: road_network_graph(220, seed=31),
    "mesh-delaunay": lambda: delaunay_like_graph(200, seed=32),
    "rmat": lambda: rmat_bipartite(7, edge_factor=6.0, seed=33),
    "powerlaw": lambda: chung_lu_bipartite(180, 190, avg_degree=5.0, seed=34),
    "random-bipartite": lambda: uniform_random_bipartite(200, 180, avg_degree=4.0, seed=35),
    "degenerate-no-edges": lambda: empty_graph(12, 9),
    "degenerate-zero-rows": lambda: empty_graph(0, 7),
    "degenerate-zero-cols": lambda: empty_graph(7, 0),
}


@pytest.fixture(params=sorted(_FAMILIES), scope="module")
def family(request):
    graph = _FAMILIES[request.param]()
    return graph, maximum_matching_cardinality(graph)


def test_all_maximum_algorithms_agree(family):
    graph, reference = family
    cardinalities = {}
    for name in MAXIMUM_ALGORITHMS:
        result = max_bipartite_matching(graph, algorithm=name)
        assert is_valid_matching(graph, result.matching), name
        assert result.matching.cardinality == result.cardinality, name
        cardinalities[name] = result.cardinality
    assert set(cardinalities.values()) == {reference}, cardinalities


@pytest.mark.parametrize("name", sorted(_WARMSTART_ALGORITHMS))
@pytest.mark.parametrize("heuristic", ["cheap", "karp-sipser"])
def test_warm_start_paths_reach_the_same_maximum(name, heuristic):
    graph = uniform_random_bipartite(160, 170, avg_degree=4.0, seed=36)
    reference = maximum_matching_cardinality(graph)
    if heuristic == "cheap":
        initial = cheap_matching(graph).matching
    else:
        initial = karp_sipser_matching(graph, seed=7).matching
    assert 0 < initial.cardinality <= reference  # the warm start is a real head start
    result = max_bipartite_matching(graph, algorithm=name, initial=initial.copy())
    assert is_valid_matching(graph, result.matching)
    assert result.cardinality == reference


@pytest.mark.parametrize("name", sorted(_WARMSTART_ALGORITHMS))
def test_warm_start_from_a_different_graph_is_rejected(name):
    # Regression: a warm start built for another graph used to produce silent
    # nonsense or a cryptic IndexError deep inside a kernel; every algorithm
    # now rejects it up front with a clear message.
    graph = uniform_random_bipartite(60, 60, avg_degree=3.0, seed=1)
    other = uniform_random_bipartite(40, 50, avg_degree=3.0, seed=2)
    initial = cheap_matching(other).matching
    with pytest.raises(ValueError, match="warm-start matching"):
        max_bipartite_matching(graph, algorithm=name, initial=initial)


def test_warm_start_skip_reasons_are_recorded():
    # The sweep above only covers accepts_initial specs.  The rest must not
    # be silently skipped: each has to refuse a warm start with a reason
    # that names the offending spec, so a sweep log shows *why* it sat out.
    graph = uniform_random_bipartite(40, 40, avg_degree=3.0, seed=37)
    initial = cheap_matching(graph).matching
    skipped = {}
    for name in set(MAXIMUM_ALGORITHMS) - set(_WARMSTART_ALGORITHMS):
        with pytest.raises(TypeError, match="does not accept a warm-start") as excinfo:
            max_bipartite_matching(graph, algorithm=name, initial=initial.copy())
        skipped[name] = str(excinfo.value)
    assert skipped, "expected at least the weighted and capacitated specs here"
    for name, reason in skipped.items():
        assert name in reason, (name, reason)


def test_capacitated_specs_join_the_agreement_matrix():
    # Column-capacitated weighted instance — the one shape all three
    # capacitated specs support — checked against the independent flow
    # oracle rather than against each other alone.
    graph = uniform_weights(
        uniform_random_bipartite(40, 12, avg_degree=3.0, seed=38), seed=39
    )
    graph = apply_capacity_spec(graph, "cols:3", seed=40)
    reference = max_b_matching_cardinality(graph)
    cardinalities = {}
    for name in _CAPACITATED_ALGORITHMS:
        result = max_bipartite_matching(graph, algorithm=name)
        assert is_valid_b_matching(graph, result.matching), name
        cardinalities[name] = result.cardinality
    assert set(cardinalities) == {"b-expand", "b-aug", "b-auction"}
    assert set(cardinalities.values()) == {reference}, cardinalities


@pytest.mark.parametrize("heuristic", ["cheap", "karp-sipser"])
def test_warm_start_on_degenerate_graphs(heuristic):
    graph = empty_graph(5, 8)
    initial = (
        cheap_matching(graph).matching
        if heuristic == "cheap"
        else karp_sipser_matching(graph, seed=1).matching
    )
    for name in _WARMSTART_ALGORITHMS:
        result = max_bipartite_matching(graph, algorithm=name, initial=initial.copy())
        assert result.cardinality == 0
        assert is_valid_matching(graph, result.matching)
