"""The vectorized frontier layer: property suite and counter-accounting goldens.

Three guarantees:

* the whole-frontier traversals (``multi_source_bfs`` and the
  matching-aware variants) are bit-identical to their kept deque
  references — levels, parents, shortest lengths, claim order and
  scanned-edge totals — across the generator families, seeds and the
  empty-frontier / all-matched edge cases;
* the bulk counter accounting of the rewritten CPU baselines reproduces
  the historical per-edge accounting exactly: ``tests/data/counter_goldens.json``
  records counter end-values, cardinalities and full matchings captured
  from the pre-rewrite per-edge implementations on seeded graphs;
* the scalar fallback of ``alternating_level_bfs`` agrees with the
  vectorized path.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

import numpy as np
import pytest

from repro.generators.mesh import road_network_graph
from repro.generators.powerlaw import chung_lu_bipartite
from repro.generators.random_bipartite import uniform_random_bipartite
from repro.generators.rmat import rmat_bipartite
from repro.graph.frontier import (
    alternating_level_bfs,
    claiming_bfs,
    distance_label_bfs,
    expand_frontier,
    first_free_offset,
    first_occurrence_mask,
    first_true,
    multi_source_bfs,
    reference_bfs,
)
from repro.matching import UNMATCHED
from repro.multicore.pdbfs import pdbfs_matching
from repro.seq.greedy import cheap_matching
from repro.seq.hopcroft_karp import hkdw_matching, hopcroft_karp_matching
from repro.seq.pothen_fan import pothen_fan_matching
from repro.seq.push_relabel import push_relabel_matching

_INF = np.iinfo(np.int64).max

GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "counter_goldens.json").read_text()
)

#: The exact generator calls the goldens were captured from.
FAMILY_FACTORIES = {
    "random": lambda: uniform_random_bipartite(300, 320, avg_degree=4.0, seed=11),
    "rmat": lambda: rmat_bipartite(8, edge_factor=6.0, seed=12),
    "powerlaw": lambda: chung_lu_bipartite(280, 280, avg_degree=5.0, exponent=2.1, seed=13),
    "mesh": lambda: road_network_graph(300, removal_fraction=0.3, seed=14),
}

ALGORITHMS = {
    "cheap": cheap_matching,
    "hk": hopcroft_karp_matching,
    "hkdw": hkdw_matching,
    "pr": push_relabel_matching,
    "pfp": pothen_fan_matching,
    "p-dbfs": pdbfs_matching,
}


@pytest.fixture(params=sorted(FAMILY_FACTORIES), ids=str)
def golden_graph(request):
    graph = FAMILY_FACTORIES[request.param]()
    record = GOLDENS[request.param]
    assert (graph.n_rows, graph.n_cols, graph.n_edges) == (
        record["n_rows"], record["n_cols"], record["n_edges"],
    ), "generator drift: regenerate tests/data/counter_goldens.json"
    return request.param, graph


# ---------------------------------------------------------------- primitives
def test_expand_frontier_orders_edges_like_a_fifo_scan(tiny_graph):
    targets, origins = expand_frontier(
        tiny_graph.col_ptr, tiny_graph.col_ind, np.array([1, 0])
    )
    expected_t, expected_o = [], []
    for v in (1, 0):
        for u in tiny_graph.column_neighbors(v):
            expected_t.append(int(u))
            expected_o.append(v)
    assert targets.tolist() == expected_t
    assert origins.tolist() == expected_o


def test_expand_frontier_empty_and_isolated():
    targets, origins = expand_frontier(np.array([0, 0, 0]), np.empty(0, np.int64), np.array([0, 1]))
    assert targets.size == 0 and origins.size == 0
    targets, _ = expand_frontier(np.array([0]), np.empty(0, np.int64), np.empty(0, np.int64))
    assert targets.size == 0


def test_first_occurrence_mask_keeps_scan_order():
    values = np.array([7, 3, 7, 1, 3, 1, 9])
    mask = first_occurrence_mask(values)
    assert values[mask].tolist() == [7, 3, 1, 9]
    assert first_occurrence_mask(np.empty(0, np.int64)).tolist() == []


def test_first_true_and_first_free_offset():
    assert first_true(np.array([False, False, True, True])) == 2
    assert first_true(np.array([False, False])) == -1
    assert first_true(np.empty(0, dtype=bool)) == -1
    match = np.array([0, UNMATCHED, 2, UNMATCHED])
    assert first_free_offset(np.array([0, 2, 3]), match) == 2
    assert first_free_offset(np.array([0, 2]), match) == -1
    assert first_free_offset(np.empty(0, np.int64), match) == -1


# ------------------------------------------------- multi-source BFS property
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("side", ["col", "row"])
def test_multi_source_bfs_matches_reference(golden_graph, side, seed):
    _, graph = golden_graph
    rng = np.random.default_rng(seed)
    bound = graph.n_cols if side == "col" else graph.n_rows
    sources = rng.choice(bound, size=min(5, bound), replace=False)
    fast = multi_source_bfs(graph, sources, side=side)
    ref = reference_bfs(graph, sources, side=side)
    np.testing.assert_array_equal(fast.row_level, ref.row_level)
    np.testing.assert_array_equal(fast.col_level, ref.col_level)
    np.testing.assert_array_equal(fast.row_parent, ref.row_parent)
    np.testing.assert_array_equal(fast.col_parent, ref.col_parent)
    assert fast.edges_scanned == ref.edges_scanned


def test_multi_source_bfs_empty_frontier(golden_graph):
    _, graph = golden_graph
    fast = multi_source_bfs(graph, np.empty(0, np.int64))
    ref = reference_bfs(graph, np.empty(0, np.int64))
    assert np.all(fast.row_level == _INF) and np.all(fast.col_level == _INF)
    np.testing.assert_array_equal(fast.row_parent, ref.row_parent)
    assert fast.edges_scanned == ref.edges_scanned == 0


def test_multi_source_bfs_all_matched_edge_case():
    # On a graph with a perfect matching, HK's source frontier (the unmatched
    # columns) is empty after the solve — the BFS layer must handle it.
    graph = uniform_random_bipartite(60, 60, avg_degree=8.0, seed=5)
    matching = hopcroft_karp_matching(graph).matching
    sources = np.flatnonzero(matching.col_match == UNMATCHED)
    fast = multi_source_bfs(graph, sources)
    ref = reference_bfs(graph, sources)
    np.testing.assert_array_equal(fast.col_level, ref.col_level)
    assert fast.edges_scanned == ref.edges_scanned


def test_multi_source_bfs_duplicate_sources_match_reference(tiny_graph):
    # The deque reference enqueues only the first occurrence of a duplicated
    # source; the vectorized frontier must not expand it twice.
    sources = np.array([1, 0, 1, 1])
    fast = multi_source_bfs(tiny_graph, sources)
    ref = reference_bfs(tiny_graph, sources)
    np.testing.assert_array_equal(fast.row_level, ref.row_level)
    np.testing.assert_array_equal(fast.row_parent, ref.row_parent)
    assert fast.edges_scanned == ref.edges_scanned


def test_multi_source_bfs_validates_inputs(tiny_graph):
    with pytest.raises(ValueError):
        multi_source_bfs(tiny_graph, [0], side="diagonal")
    with pytest.raises(IndexError):
        multi_source_bfs(tiny_graph, [tiny_graph.n_cols])
    with pytest.raises(IndexError):
        reference_bfs(tiny_graph, [-1])


# --------------------------------------- matching-aware BFS deque references
def _reference_alternating_levels(graph, row_match, col_match):
    """The pre-rewrite deque implementation of HK's ``_bfs_levels``."""
    level = np.full(graph.n_cols, _INF, dtype=np.int64)
    queue = deque()
    for v in np.flatnonzero(col_match == UNMATCHED):
        level[v] = 0
        queue.append(int(v))
    shortest = _INF
    edges = 0
    while queue:
        v = queue.popleft()
        if level[v] >= shortest:
            continue
        for u in graph.column_neighbors(v):
            edges += 1
            w = row_match[u]
            if w == UNMATCHED:
                shortest = min(shortest, level[v] + 1)
            elif level[w] == _INF:
                level[w] = level[v] + 1
                queue.append(int(w))
    return level, int(shortest), edges


@pytest.mark.parametrize("scalar_lists", [False, True], ids=["vectorized", "with-scalars"])
def test_alternating_level_bfs_matches_deque_reference(golden_graph, scalar_lists):
    _, graph = golden_graph
    matching = cheap_matching(graph).matching
    scalars = None
    if scalar_lists:
        ptr, ind = graph.csr_lists("col")
        scalars = (ptr, ind, matching.row_match.tolist())
    level, shortest, edges = alternating_level_bfs(
        graph.col_ptr, graph.col_ind, matching.row_match, matching.col_match,
        scalars=scalars,
    )
    ref_level, ref_shortest, ref_edges = _reference_alternating_levels(
        graph, matching.row_match, matching.col_match
    )
    np.testing.assert_array_equal(level, ref_level)
    assert (shortest, edges) == (ref_shortest, ref_edges)


def test_alternating_level_bfs_all_matched():
    graph = uniform_random_bipartite(50, 50, avg_degree=8.0, seed=6)
    matching = hopcroft_karp_matching(graph).matching
    assert matching.cardinality == 50  # sanity: perfect
    level, shortest, edges = alternating_level_bfs(
        graph.col_ptr, graph.col_ind, matching.row_match, matching.col_match
    )
    assert shortest == _INF and edges == 0 and np.all(level == _INF)


def _reference_distance_labels(graph, row_match, col_match):
    """The pre-rewrite deque implementation of PR's global relabel."""
    infinity = graph.infinity_label
    psi_row = np.full(graph.n_rows, infinity, dtype=np.int64)
    psi_col = np.full(graph.n_cols, infinity, dtype=np.int64)
    queue = deque()
    for u in np.flatnonzero(row_match == UNMATCHED):
        psi_row[u] = 0
        queue.append(int(u))
    max_level = 0
    edges = 0
    while queue:
        u = queue.popleft()
        level = psi_row[u]
        for v in graph.row_neighbors(u):
            edges += 1
            v = int(v)
            if psi_col[v] == infinity:
                psi_col[v] = level + 1
                w = col_match[v]
                if w >= 0 and psi_row[w] == infinity:
                    psi_row[w] = level + 2
                    max_level = max(max_level, level + 2)
                    queue.append(int(w))
    return psi_row, psi_col, int(max_level), edges


def test_distance_label_bfs_matches_deque_reference(golden_graph):
    _, graph = golden_graph
    matching = cheap_matching(graph).matching
    psi_row = np.zeros(graph.n_rows, dtype=np.int64)
    psi_col = np.zeros(graph.n_cols, dtype=np.int64)
    max_level, edges = distance_label_bfs(
        graph.row_ptr, graph.row_ind, matching.row_match, matching.col_match,
        psi_row, psi_col, graph.infinity_label,
    )
    ref_row, ref_col, ref_max, ref_edges = _reference_distance_labels(
        graph, matching.row_match, matching.col_match
    )
    np.testing.assert_array_equal(psi_row, ref_row)
    np.testing.assert_array_equal(psi_col, ref_col)
    assert (max_level, edges) == (ref_max, ref_edges)


def _reference_claiming_bfs(graph, start, mu_row, owner, thread_id):
    """The pre-rewrite deque implementation of P-DBFS's thread search."""
    parent_col = {start: -1}
    parent_row = {}
    queue = deque([start])
    work = 1.0
    atomics = 0
    while queue:
        v = queue.popleft()
        for u in graph.column_neighbors(v):
            u = int(u)
            work += 1.0
            if owner[u] != -1 and owner[u] != thread_id:
                continue
            if u in parent_row:
                continue
            atomics += 1
            owner[u] = thread_id
            parent_row[u] = v
            if mu_row[u] == UNMATCHED:
                path = [u]
                col = v
                while col != -1:
                    path.append(col)
                    row = parent_col[col]
                    if row == -1:
                        break
                    path.append(row)
                    col = parent_row[row]
                path.reverse()
                return path, work, atomics
            w = int(mu_row[u])
            if w not in parent_col:
                parent_col[w] = u
                queue.append(w)
    return None, work, atomics


def test_claiming_bfs_matches_deque_reference(golden_graph):
    _, graph = golden_graph
    matching = cheap_matching(graph).matching
    mu_row = matching.row_match.tolist()
    ptr, ind = graph.csr_lists("col")
    # Interleave several simulated threads so claims block later searches —
    # owner state must evolve identically on both implementations.
    owner_fast = [-1] * graph.n_rows
    owner_ref = [-1] * graph.n_rows
    free_cols = [v for v in range(graph.n_cols) if matching.col_match[v] == UNMATCHED]
    for thread_id, start in enumerate(free_cols[:12]):
        fast = claiming_bfs(ptr, ind, start, mu_row, owner_fast, thread_id)
        ref = _reference_claiming_bfs(graph, start, matching.row_match, owner_ref, thread_id)
        assert fast == ref
    assert owner_fast == owner_ref


def test_claiming_bfs_blocked_by_other_threads_claims():
    # One column, one row: thread 1 cannot claim what thread 0 owns.
    graph = uniform_random_bipartite(30, 30, avg_degree=2.0, seed=9)
    ptr, ind = graph.csr_lists("col")
    mu_row = [UNMATCHED] * graph.n_rows
    owner = [0] * graph.n_rows  # every row pre-claimed by thread 0
    start = 0
    path, work, atomics = claiming_bfs(ptr, ind, start, mu_row, owner, thread_id=1)
    assert path is None and atomics == 0
    assert work == 1.0 + (ptr[start + 1] - ptr[start])


# --------------------------------------------- counter-accounting regression
def test_counters_and_matchings_match_preexisting_per_edge_accounting(golden_graph):
    """The bulk counter rewrites reproduce the old per-edge end-values exactly.

    The goldens were captured from the pre-rewrite implementations (per-edge
    deque loops with per-edge dict increments) on these seeded graphs; every
    counter end-value, the cardinality and the full matching must survive
    the vectorized/bulk rewrite bit-for-bit.
    """
    name, graph = golden_graph
    for algo, fn in ALGORITHMS.items():
        expected = GOLDENS[name][algo]
        result = fn(graph)
        got_counters = {
            k: (int(v) if float(v) == int(v) else float(v))
            for k, v in result.counters.items()
        }
        assert got_counters == expected["counters"], f"{algo} counters drifted"
        assert result.cardinality == expected["cardinality"], f"{algo} cardinality drifted"
        assert result.matching.row_match.tolist() == expected["row_match"], (
            f"{algo} matching drifted"
        )


# ------------------------------------------------------------ degree caches
def test_degree_properties_cached_and_read_only(tiny_graph):
    first = tiny_graph.col_degrees
    assert first is tiny_graph.col_degrees  # cached, not recomputed
    assert tiny_graph.row_degrees is tiny_graph.row_degrees
    with pytest.raises(ValueError):
        first[0] = 99
    np.testing.assert_array_equal(first, np.diff(tiny_graph.col_ptr))
    np.testing.assert_array_equal(tiny_graph.row_degrees, np.diff(tiny_graph.row_ptr))


def test_csr_lists_cached_and_consistent(tiny_graph):
    ptr, ind = tiny_graph.csr_lists("col")
    assert ptr == tiny_graph.col_ptr.tolist()
    assert ind == tiny_graph.col_ind.tolist()
    assert tiny_graph.csr_lists("col")[1] is ind  # cached
    rptr, rind = tiny_graph.csr_lists("row")
    assert rptr == tiny_graph.row_ptr.tolist()
    assert rind == tiny_graph.row_ind.tolist()
    with pytest.raises(ValueError):
        tiny_graph.csr_lists("diagonal")
