"""The perf-regression harness: capture, baseline IO, comparison, CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import perfbaseline
from repro.cli import main

INSTANCES = ["amazon0505", "roadNet-PA"]


@pytest.fixture(scope="module")
def capture_doc():
    return perfbaseline.capture(profile="tiny", instances=INSTANCES)


def test_capture_schema(capture_doc):
    assert capture_doc["schema"] == perfbaseline.SCHEMA_VERSION
    assert capture_doc["profile"] == "tiny"
    assert sorted(capture_doc["instances"]) == sorted(INSTANCES)
    assert capture_doc["algorithms"] == list(perfbaseline.PERF_ALGORITHMS)
    for inst in capture_doc["instances"].values():
        assert inst["n_edges"] > 0
        for name in perfbaseline.PERF_ALGORITHMS:
            rec = inst["algorithms"][name]
            assert rec["wall_seconds"] > 0
            assert rec["modeled_seconds"] > 0
            assert rec["cardinality"] > 0
    for agg in capture_doc["aggregate"].values():
        assert agg["geomean_wall_seconds"] > 0
        assert agg["total_wall_seconds"] > 0


def test_capture_rejects_bad_inputs():
    with pytest.raises(ValueError):
        perfbaseline.capture(profile="tiny", repeats=0)
    with pytest.raises(KeyError):
        perfbaseline.capture(profile="tiny", instances=["no-such-instance"])


def test_save_load_roundtrip(tmp_path, capture_doc):
    path = tmp_path / "BENCH_tiny.json"
    perfbaseline.save_baseline(path, capture_doc)
    assert perfbaseline.load_baseline(path) == capture_doc


def test_load_rejects_bad_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        perfbaseline.load_baseline(bad)
    bad.write_text(json.dumps({"schema": 99}))
    with pytest.raises(ValueError):
        perfbaseline.load_baseline(bad)
    bad.write_text(json.dumps({"schema": 1}))
    with pytest.raises(ValueError):
        perfbaseline.load_baseline(bad)
    with pytest.raises(OSError):
        perfbaseline.load_baseline(tmp_path / "missing.json")


def test_compare_identical_is_clean(capture_doc):
    comparison = perfbaseline.compare(capture_doc, capture_doc)
    assert comparison.ok
    assert not comparison.cross_profile
    assert comparison.checked == len(INSTANCES) * len(perfbaseline.PERF_ALGORITHMS)
    assert comparison.regressions == [] and comparison.improvements == []


def test_compare_flags_wall_regression(capture_doc):
    slow = copy.deepcopy(capture_doc)
    rec = slow["instances"][INSTANCES[0]]["algorithms"]["HK"]
    rec["wall_seconds"] *= 100.0  # the interpreter-tax scenario
    comparison = perfbaseline.compare(slow, capture_doc)
    assert not comparison.ok
    [delta] = comparison.regressions
    assert (delta.instance, delta.algorithm, delta.metric) == (INSTANCES[0], "HK", "wall")
    assert delta.ratio == pytest.approx(100.0)
    assert "wall" in delta.describe()


def test_compare_flags_modeled_work_blowup(capture_doc):
    slow = copy.deepcopy(capture_doc)
    slow["instances"][INSTANCES[1]]["algorithms"]["PR"]["modeled_seconds"] *= 2.0
    comparison = perfbaseline.compare(slow, capture_doc)
    assert [d.metric for d in comparison.regressions] == ["modeled"]


def test_compare_flags_cardinality_change(capture_doc):
    wrong = copy.deepcopy(capture_doc)
    wrong["instances"][INSTANCES[0]]["algorithms"]["PFP"]["cardinality"] -= 1
    comparison = perfbaseline.compare(wrong, capture_doc)
    assert any(d.metric == "cardinality" for d in comparison.regressions)
    # A different seed means different graphs: cardinality is not compared.
    wrong["seed"] = 1
    comparison = perfbaseline.compare(wrong, capture_doc)
    assert not any(d.metric == "cardinality" for d in comparison.regressions)


def test_compare_rejects_disjoint_documents(capture_doc):
    # Zero overlapping pairs must not read as a pass (silent no-op gate).
    foreign = copy.deepcopy(capture_doc)
    foreign["instances"] = {
        f"renamed-{name}": inst for name, inst in foreign["instances"].items()
    }
    with pytest.raises(ValueError, match="0 \\(instance, algorithm\\) pairs"):
        perfbaseline.compare(capture_doc, foreign)


def test_compare_reports_improvements(capture_doc):
    fast = copy.deepcopy(capture_doc)
    fast["instances"][INSTANCES[0]]["algorithms"]["HK"]["wall_seconds"] /= 100.0
    comparison = perfbaseline.compare(fast, capture_doc)
    assert comparison.ok
    assert [d.algorithm for d in comparison.improvements] == ["HK"]


def test_compare_cross_profile_aggregates(capture_doc):
    # Pretend the baseline came from another profile: per-pair noise must be
    # aggregated per (algorithm, metric) and judged with the scaled tolerance.
    other = copy.deepcopy(capture_doc)
    other["profile"] = "small"
    comparison = perfbaseline.compare(capture_doc, other)
    assert comparison.cross_profile
    assert comparison.ok  # identical timings: all aggregate ratios are 1.0
    assert comparison.wall_tolerance == pytest.approx(
        perfbaseline.DEFAULT_WALL_TOLERANCE * perfbaseline.CROSS_PROFILE_SLACK
    )
    # A uniform 100x slowdown of one algorithm trips its aggregate.
    slow = copy.deepcopy(capture_doc)
    for inst in slow["instances"].values():
        inst["algorithms"]["P-DBFS"]["wall_seconds"] *= 100.0
    comparison = perfbaseline.compare(slow, other)
    assert [
        (d.instance, d.algorithm, d.metric) for d in comparison.regressions
    ] == [("<aggregate>", "P-DBFS", "wall")]


# ------------------------------------------------------------------ warm-up
def test_warmup_compiles_dispatch_twins_before_plan_runs(monkeypatch):
    """JIT compilation must happen inside the warm-up, never in a timed run."""
    from repro.compiled import dispatch

    events = []
    monkeypatch.setattr(
        dispatch, "warm_up", lambda registry=None: (events.append("jit"), 9)[1]
    )

    class _Plan:
        def run(self, graph):
            events.append("plan")

    monkeypatch.setattr(
        perfbaseline, "_perf_plans", lambda shards=None, partition=None: {"X": _Plan()}
    )
    perfbaseline._warmup()
    assert events[0] == "jit"
    assert events.count("jit") == 1
    assert "plan" in events


def test_capture_warms_before_any_timed_run(monkeypatch):
    events = []
    monkeypatch.setattr(perfbaseline, "_warmup", lambda: events.append("warmup"))
    real_run = perfbaseline.SuiteRunner.run

    def spy_run(self):
        events.append("run")
        return real_run(self)

    monkeypatch.setattr(perfbaseline.SuiteRunner, "run", spy_run)
    perfbaseline.capture(profile="tiny", instances=[INSTANCES[0]])
    assert events[0] == "warmup"
    assert "run" in events


def test_second_capture_shows_no_first_repeat_outlier():
    """Once warmed in-process, a repeated capture has no compile-cost spike.

    A missed warm-up lands one-time JIT compilation (or interpreter cache
    misses) on the first repeat of the first (instance, algorithm) pair —
    a 100x-scale outlier on these micro instances.  Load noise stays well
    inside the generous bound checked here.
    """
    first = perfbaseline.capture(profile="tiny", instances=[INSTANCES[0]])
    second = perfbaseline.capture(profile="tiny", instances=[INSTANCES[0]])
    for name, rec in second["instances"][INSTANCES[0]]["algorithms"].items():
        base = first["instances"][INSTANCES[0]]["algorithms"][name]
        assert rec["wall_seconds"] < 10.0 * base["wall_seconds"] + 1e-3
        assert rec["modeled_seconds"] == base["modeled_seconds"]
        assert rec["cardinality"] == base["cardinality"]


# ------------------------------------------------------------------- the CLI
def test_cli_perf_update_then_compare(tmp_path, capsys):
    baseline = tmp_path / "BENCH_tiny.json"
    report = tmp_path / "report.json"
    argv = ["perf", "--profile", "tiny", "--instances", *INSTANCES]
    assert main(argv + ["--update", str(baseline)]) == 0
    doc = perfbaseline.load_baseline(baseline)
    assert doc["profile"] == "tiny"
    capsys.readouterr()
    code = main(argv + ["--compare", str(baseline), "--output", str(report), "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["comparison"]["ok"] is True
    assert payload["comparison"]["checked"] == len(INSTANCES) * len(
        perfbaseline.PERF_ALGORITHMS
    )
    assert report.is_file()  # the CI artifact


def test_cli_perf_detects_seeded_regression(tmp_path, capsys):
    baseline = tmp_path / "BENCH_tiny.json"
    argv = ["perf", "--profile", "tiny", "--instances", INSTANCES[0]]
    assert main(argv + ["--update", str(baseline)]) == 0
    doc = perfbaseline.load_baseline(baseline)
    for inst in doc["instances"].values():
        for rec in inst["algorithms"].values():
            rec["wall_seconds"] /= 1000.0  # impossible-to-beat baseline
    perfbaseline.save_baseline(baseline, doc)
    capsys.readouterr()
    assert main(argv + ["--compare", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_cli_perf_refuses_to_update_with_a_regressing_capture(tmp_path, capsys):
    # `--compare X --update X` on a regressed build must keep X intact;
    # overwriting it would mask the regression for every later run.
    baseline = tmp_path / "BENCH_tiny.json"
    argv = ["perf", "--profile", "tiny", "--instances", INSTANCES[0]]
    assert main(argv + ["--update", str(baseline)]) == 0
    doc = perfbaseline.load_baseline(baseline)
    for inst in doc["instances"].values():
        for rec in inst["algorithms"].values():
            rec["wall_seconds"] /= 1000.0
    perfbaseline.save_baseline(baseline, doc)
    capsys.readouterr()
    code = main(argv + ["--compare", str(baseline), "--update", str(baseline)])
    assert code == 1
    assert "not updating" in capsys.readouterr().err
    assert perfbaseline.load_baseline(baseline) == doc  # untouched


def test_cli_perf_disjoint_baseline_is_bad_input(tmp_path, capsys):
    baseline = tmp_path / "BENCH_tiny.json"
    argv = ["perf", "--profile", "tiny", "--instances", INSTANCES[0]]
    assert main(argv + ["--update", str(baseline)]) == 0
    doc = perfbaseline.load_baseline(baseline)
    doc["instances"] = {"renamed": doc["instances"][INSTANCES[0]]}
    perfbaseline.save_baseline(baseline, doc)
    capsys.readouterr()
    assert main(argv + ["--compare", str(baseline)]) == 2
    assert "0 (instance, algorithm) pairs" in capsys.readouterr().err


def test_cli_perf_bad_inputs(tmp_path, capsys):
    assert main(["perf", "--profile", "no-such-profile"]) == 2
    assert main(["perf", "--profile", "tiny", "--instances", "nope"]) == 2
    assert main(["perf", "--profile", "tiny", "--compare", str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()
