"""Unit tests for the individual GPU kernels (lockstep implementations)."""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    active_columns_mask,
    fix_matching_kernel,
    global_relabel_kernel,
    init_active_kernel,
    init_relabel_kernel,
    push_kernel_active_list,
    push_kernel_all_columns,
    push_kernel_all_columns_serialized,
    shrink_kernel,
)
from repro.core.relabel import gpu_global_relabel
from repro.graph import from_edges
from repro.gpusim import VirtualGPU
from repro.matching import UNMATCHABLE, UNMATCHED, Matching


def _state(graph, initial=None):
    if initial is None:
        matching = Matching.empty(graph)
    else:
        matching = initial.copy()
    psi_row = np.zeros(graph.n_rows, dtype=np.int64)
    psi_col = np.ones(graph.n_cols, dtype=np.int64)
    return matching.row_match, matching.col_match, psi_row, psi_col


# -------------------------------------------------------------- active mask
def test_active_mask_unmatched_and_inconsistent(tiny_graph):
    mu_row, mu_col, _, _ = _state(tiny_graph)
    mu_row[0] = 1
    mu_col[1] = 0  # consistent pair (0, 1)
    mu_col[2] = 0  # stale pointer: row 0 does not point back
    mu_col[3] = UNMATCHABLE  # retired
    mask = active_columns_mask(mu_row, mu_col)
    assert list(mask) == [True, False, True, False]


# ------------------------------------------------------------ global relabel
def test_init_relabel_kernel(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    mu_row[0] = 0
    mu_col[0] = 0
    work = init_relabel_kernel(tiny_graph, mu_row, psi_row, psi_col)
    inf = tiny_graph.infinity_label
    assert psi_row[0] == inf  # matched rows start at infinity
    assert set(psi_row[1:]) == {0}  # unmatched rows at 0
    assert np.all(psi_col == inf)
    assert len(work) == tiny_graph.n_vertices


def test_global_relabel_sets_exact_distances():
    # Path graph: c0 - r0 - c1 - r1, with (r0,c1),(r1,c1) matched as r1-c1.
    g = from_edges([(0, 0), (0, 1), (1, 1)], n_rows=2, n_cols=2)
    mu_row = np.array([UNMATCHED, 1], dtype=np.int64)
    mu_col = np.array([UNMATCHED, 1], dtype=np.int64)
    psi_row = np.zeros(2, dtype=np.int64)
    psi_col = np.zeros(2, dtype=np.int64)
    gpu = VirtualGPU()
    max_level = gpu_global_relabel(g, mu_row, mu_col, psi_row, psi_col, gpu)
    # r0 is the only unmatched row: distance 0; c0 and c1 at distance 1; r1 at 2.
    assert psi_row[0] == 0
    assert psi_col[0] == 1
    assert psi_col[1] == 1
    assert psi_row[1] == 2
    assert max_level >= 2
    assert gpu.ledger.n_launches >= 2


def test_global_relabel_marks_unreachable_vertices():
    # Column 1 has no neighbours; rows all matched except none reachable from it.
    g = from_edges([(0, 0)], n_rows=2, n_cols=2)
    mu_row = np.array([0, UNMATCHED], dtype=np.int64)
    mu_col = np.array([0, UNMATCHED], dtype=np.int64)
    psi_row = np.zeros(2, dtype=np.int64)
    psi_col = np.zeros(2, dtype=np.int64)
    gpu = VirtualGPU()
    gpu_global_relabel(g, mu_row, mu_col, psi_row, psi_col, gpu)
    inf = g.infinity_label
    assert psi_col[1] == inf  # isolated column: unreachable
    assert psi_row[1] == 0  # unmatched row is a BFS source


def test_global_relabel_kernel_empty_frontier(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    psi_row.fill(tiny_graph.infinity_label)
    added, work = global_relabel_kernel(tiny_graph, mu_row, mu_col, psi_row, psi_col, 0)
    assert not added
    assert len(work) == tiny_graph.n_rows


# ------------------------------------------------------------- push kernels
def test_push_kernel_single_push(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    gpu = VirtualGPU()
    gpu_global_relabel(tiny_graph, mu_row, mu_col, psi_row, psi_col, gpu)
    act, work = push_kernel_all_columns(tiny_graph, mu_row, mu_col, psi_row, psi_col)
    assert act
    # Every column with at least one neighbour got matched to some row (all
    # rows were unmatched, so every push is a single push and ψ(row) becomes 2).
    for v in range(3):
        assert mu_col[v] >= 0
        assert mu_row[mu_col[v]] in (0, 1, 2, 3)
    # Column 3 has no neighbours: it is retired.
    assert mu_col[3] == UNMATCHABLE
    assert len(work) == tiny_graph.n_cols


def test_push_kernel_no_active_columns(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    mu_col.fill(UNMATCHABLE)
    act, _ = push_kernel_all_columns(tiny_graph, mu_row, mu_col, psi_row, psi_col)
    assert not act


def test_push_kernel_conflict_resolution():
    # Two columns share their only row; exactly one can win the push.
    g = from_edges([(0, 0), (0, 1)], n_rows=1, n_cols=2)
    mu_row, mu_col, psi_row, psi_col = _state(g)
    act, _ = push_kernel_all_columns(g, mu_row, mu_col, psi_row, psi_col)
    assert act
    winner = mu_row[0]
    assert winner in (0, 1)
    # Both columns believe they are matched to row 0 (the paper's tolerated
    # inconsistency); only the winner is consistent.
    assert mu_col[0] == 0 and mu_col[1] == 0
    loser = 1 - winner
    mask = active_columns_mask(mu_row, mu_col)
    assert mask[loser] and not mask[winner]


def test_push_kernel_serialized_matches_semantics(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    gpu = VirtualGPU()
    gpu_global_relabel(tiny_graph, mu_row, mu_col, psi_row, psi_col, gpu)
    act, work = push_kernel_all_columns_serialized(
        tiny_graph, mu_row, mu_col, psi_row, psi_col, rng=np.random.default_rng(0)
    )
    assert act
    assert len(work) == tiny_graph.n_cols
    assert np.count_nonzero(mu_row >= 0) >= 1


def test_fix_matching_kernel(tiny_graph):
    mu_row, mu_col, _, _ = _state(tiny_graph)
    mu_row[0] = 1
    mu_col[1] = 0  # consistent
    mu_col[0] = 0  # stale
    mu_col[2] = UNMATCHABLE
    fix_matching_kernel(mu_row, mu_col)
    assert mu_col[1] == 0
    assert mu_col[0] == UNMATCHED
    assert mu_col[2] == UNMATCHED


# ---------------------------------------------------------- active-list path
def test_init_active_kernel_rolls_back_losers():
    g = from_edges([(0, 0), (0, 1)], n_rows=1, n_cols=2)
    mu_row, mu_col, psi_row, psi_col = _state(g)
    # Simulate the aftermath of a conflicting push round: both columns pushed
    # onto row 0, column 1 won.
    mu_row[0] = 1
    mu_col[0] = 0
    mu_col[1] = 0
    ap = np.array([0, 1], dtype=np.int64)  # both columns were processed
    ac = np.array([-1, -1], dtype=np.int64)  # neither push produced a new active column
    ia = np.full(2, -1, dtype=np.int64)
    act, work = init_active_kernel(mu_row, mu_col, ac, ap, ia, loop=5)
    assert act
    # Column 0 lost, so it must be rolled back into the active list; column 1
    # is consistently matched and must not reappear.
    assert 0 in ac
    assert 1 not in ac
    assert ia[0] == 5
    assert len(work) == 2


def test_init_active_kernel_deduplicates():
    mu_row = np.array([UNMATCHED], dtype=np.int64)
    mu_col = np.array([UNMATCHED, UNMATCHED], dtype=np.int64)
    ac = np.array([0, 0, 1], dtype=np.int64)  # column 0 appears twice
    ap = np.full(3, -1, dtype=np.int64)
    ia = np.full(2, -1, dtype=np.int64)
    act, _ = init_active_kernel(mu_row, mu_col, ac, ap, ia, loop=1)
    assert act
    assert np.count_nonzero(ac == 0) == 1
    assert np.count_nonzero(ac == 1) == 1


def test_init_active_kernel_empty():
    act, work = init_active_kernel(
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
        loop=0,
    )
    assert not act
    assert len(work) == 0


def test_push_kernel_active_list_basic(tiny_graph):
    mu_row, mu_col, psi_row, psi_col = _state(tiny_graph)
    gpu = VirtualGPU()
    gpu_global_relabel(tiny_graph, mu_row, mu_col, psi_row, psi_col, gpu)
    ac = np.array([0, 1, 2, 3], dtype=np.int64)
    ap = np.full(4, -1, dtype=np.int64)
    ia = np.full(4, -1, dtype=np.int64)
    ia[ac] = 0
    work = push_kernel_active_list(
        tiny_graph, mu_row, mu_col, psi_row, psi_col, ac, ap, ia, loop=0
    )
    assert len(work) == 4
    # Column 3 is isolated: retired and its slots cleared.
    assert mu_col[3] == UNMATCHABLE
    assert ac[3] == -1 and ap[3] == -1
    # The other columns performed single pushes, so no new active columns.
    assert set(ap[:3]) == {-1}


def test_push_kernel_active_list_double_push_records_victim():
    # Row 0 matched to column 1; column 0 (unmatched) will displace it.
    g = from_edges([(0, 0), (0, 1)], n_rows=1, n_cols=2)
    mu_row = np.array([1], dtype=np.int64)
    mu_col = np.array([UNMATCHED, 0], dtype=np.int64)
    psi_row = np.array([0], dtype=np.int64)
    psi_col = np.array([1, 1], dtype=np.int64)
    ac = np.array([0], dtype=np.int64)
    ap = np.array([-1], dtype=np.int64)
    ia = np.full(2, -1, dtype=np.int64)
    ia[0] = 3
    push_kernel_active_list(g, mu_row, mu_col, psi_row, psi_col, ac, ap, ia, loop=3)
    assert mu_row[0] == 0
    assert mu_col[0] == 0
    assert ap[0] == 1  # the displaced column is recorded as the new active column


def test_shrink_kernel_compacts():
    mu_row = np.array([UNMATCHED, UNMATCHED], dtype=np.int64)
    mu_col = np.array([UNMATCHED, 5, UNMATCHED], dtype=np.int64)  # column 1 stale-pointer active
    mu_col[1] = UNMATCHED
    ac = np.array([0, -1, -1, 2, -1, -1, -1, -1], dtype=np.int64)
    ap = np.full(8, -1, dtype=np.int64)
    ia = np.full(3, -1, dtype=np.int64)
    act, new_ac, new_ap, work = shrink_kernel(mu_row, mu_col, ac, ap, ia, loop=2)
    assert act
    assert sorted(new_ac.tolist()) == [0, 2]
    assert len(new_ap) == 2
    assert np.all(new_ap == -1)
    assert len(work) == 8


# --------------------------------------------------- lockstep race semantics
def test_lockstep_wave_reads_launch_state_without_snapshots():
    """Pins the lockstep visibility contract after the snapshot-copy removal.

    Within one wave every thread must observe launch-time memory (the
    vectorized kernels get this structurally: all reads happen before the
    first write), and conflicting writes resolve last-writer-wins.  Two
    columns sharing their minimum-label row must therefore BOTH select it
    from the launch-time labels — the later column wins the row — and the
    psi updates must reflect the shared pre-push minimum.
    """
    # col 0 -> {row 0};  col 1 -> {row 0, row 1}.
    g = from_edges([(0, 0), (0, 1), (1, 1)], n_rows=2, n_cols=2)
    mu_row, mu_col, psi_row, psi_col = _state(g)
    psi_row[:] = (0, 5)  # row 0 is the strict minimum for both columns
    psi_col[:] = (1, 1)
    act, work = push_kernel_all_columns(g, mu_row, mu_col, psi_row, psi_col)
    assert act
    # Both pushed to row 0 against the launch-time labels; column 1 wrote last.
    assert mu_col.tolist() == [0, 0]
    assert mu_row[0] == 1
    assert psi_col.tolist() == [1, 1]  # psi_min + 1 with psi_min = 0
    assert psi_row[0] == 2  # psi_min + 2 (both writers agreed on the value)
    assert mu_row[1] == UNMATCHED and psi_row[1] == 5  # untouched
    assert len(work) == 2


def test_later_waves_observe_earlier_waves_writes():
    """With wave_size=1 the second wave must see the first wave's updates:
    wave 0's push raises row 0's label from 0 to 2, past row 1's label 1,
    so wave 1 picks row 1 and no conflict occurs — whereas a single
    lockstep wave (previous test's shape) would have both columns fight
    over row 0.  This is the exact multi-wave visibility the engine models."""
    g = from_edges([(0, 0), (0, 1), (1, 1)], n_rows=2, n_cols=2)
    mu_row, mu_col, psi_row, psi_col = _state(g)
    psi_row[:] = (0, 1)  # row 0 is the launch-time minimum for both columns
    psi_col[:] = (1, 1)
    act, _ = push_kernel_all_columns(g, mu_row, mu_col, psi_row, psi_col, wave_size=1)
    assert act
    assert mu_col.tolist() == [0, 1]
    assert mu_row.tolist() == [0, 1]  # both consistent: no lost push
    assert psi_row.tolist() == [2, 3]  # wave 1 saw psi_row[0] == 2, took row 1 at 1


def test_active_list_push_reads_prepush_match_state():
    """Algorithm 9's double-push bookkeeping reads mu_row *before* any wave
    write: the displaced column recorded in ap must be the pre-push match
    even though the same launch overwrites mu_row in place."""
    g = from_edges([(0, 0), (0, 1)], n_rows=1, n_cols=2)
    mu_row = np.array([1], dtype=np.int64)  # row 0 currently matched to col 1
    mu_col = np.array([UNMATCHED, 0], dtype=np.int64)
    psi_row = np.zeros(1, dtype=np.int64)
    psi_col = np.ones(2, dtype=np.int64)
    ac = np.array([0], dtype=np.int64)
    ap = np.full(1, -1, dtype=np.int64)
    ia = np.full(2, -1, dtype=np.int64)
    ia[0] = 7
    push_kernel_active_list(g, mu_row, mu_col, psi_row, psi_col, ac, ap, ia, loop=7)
    assert mu_row[0] == 0 and mu_col[0] == 0
    assert ap[0] == 1  # the pre-push owner, read from live (not yet written) memory


def test_lockstep_and_serialized_agree_on_cardinality_after_races():
    """The paper's §III-B argument: any interleaving yields a maximum
    matching.  Run the conflict-heavy all-columns kernel to a fixpoint under
    both engines (snapshot-free lockstep vs fully serialized) and compare."""
    from repro.core.kernels import fix_matching_kernel as fix
    from repro.generators import uniform_random_bipartite
    from repro.seq.verify import maximum_matching_cardinality

    g = uniform_random_bipartite(40, 40, avg_degree=3.0, seed=21)
    outcomes = {}
    for engine in ("lockstep", "serialized"):
        mu_row, mu_col, psi_row, psi_col = _state(g)
        gpu_global_relabel(g, mu_row, mu_col, psi_row, psi_col, VirtualGPU())
        for _ in range(10_000):
            if engine == "lockstep":
                act, _ = push_kernel_all_columns(g, mu_row, mu_col, psi_row, psi_col)
            else:
                act, _ = push_kernel_all_columns_serialized(
                    g, mu_row, mu_col, psi_row, psi_col, rng=np.random.default_rng(3)
                )
            if not act:
                break
            gpu_global_relabel(g, mu_row, mu_col, psi_row, psi_col, VirtualGPU())
        fix(mu_row, mu_col)
        outcomes[engine] = int(np.count_nonzero(mu_row >= 0))
    expected = maximum_matching_cardinality(g)
    assert outcomes["lockstep"] == outcomes["serialized"] == expected
