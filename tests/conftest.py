"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    chung_lu_bipartite,
    delaunay_like_graph,
    road_network_graph,
    trace_graph,
    uniform_random_bipartite,
)
from repro.graph import BipartiteGraph, from_edges


@pytest.fixture
def tiny_graph() -> BipartiteGraph:
    """A 4x4 graph whose maximum matching has cardinality 3 (hand-checked)."""
    edges = [(0, 0), (0, 1), (1, 0), (2, 1), (2, 2), (3, 2)]
    return from_edges(edges, n_rows=4, n_cols=4, name="tiny")


@pytest.fixture
def perfect_graph() -> BipartiteGraph:
    """A 5x5 graph with a perfect matching (diagonal plus noise)."""
    edges = [(i, i) for i in range(5)] + [(0, 2), (3, 1), (4, 0)]
    return from_edges(edges, n_rows=5, n_cols=5, name="perfect")


@pytest.fixture(
    params=[
        ("uniform", lambda: uniform_random_bipartite(300, 320, avg_degree=4.0, seed=11)),
        ("powerlaw", lambda: chung_lu_bipartite(280, 280, avg_degree=6.0, seed=12)),
        ("road", lambda: road_network_graph(300, seed=13)),
        ("delaunay", lambda: delaunay_like_graph(250, seed=14)),
        ("trace", lambda: trace_graph(300, seed=15)),
    ],
    ids=lambda p: p[0],
)
def family_graph(request) -> BipartiteGraph:
    """One small graph per structural family of the evaluation suite."""
    return request.param[1]()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20130421)
