"""Tests for the batched matching service (repro.service)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import MAXIMUM_ALGORITHMS, max_bipartite_matching
from repro.generators import chung_lu_bipartite, uniform_random_bipartite
from repro.seq.verify import is_valid_matching
from repro.service import (
    BatchReport,
    DiskCache,
    MatchingJob,
    MatchingService,
    ResultCache,
)
import repro.service.service as service_mod


@pytest.fixture(scope="module")
def small_graphs():
    return [
        uniform_random_bipartite(120, 130, avg_degree=4.0, seed=21),
        chung_lu_bipartite(110, 110, avg_degree=5.0, seed=22),
    ]


@pytest.fixture
def counting_execute(monkeypatch):
    """Count actual computations by wrapping the service's execution path."""
    calls = []
    original = service_mod.execute_job

    def counted(job, plan=None):
        calls.append(job)
        return original(job, plan)

    monkeypatch.setattr(service_mod, "execute_job", counted)
    return calls


# --------------------------------------------------------------- batch == serial
def test_batch_identical_to_serial_for_every_maximum_algorithm(small_graphs):
    jobs = [
        MatchingJob(graph=g, algorithm=name)
        for g in small_graphs
        for name in MAXIMUM_ALGORITHMS
    ]
    report = MatchingService().submit_batch(jobs)
    assert report.n_jobs == len(jobs)
    for item in report.results:
        serial = max_bipartite_matching(item.job.graph, item.job.algorithm)
        assert item.result.cardinality == serial.cardinality
        assert is_valid_matching(item.job.graph, item.result.matching)
        # The pipeline is deterministic, so batch and serial dispatch return
        # the very same matching, not just the same cardinality.
        assert np.array_equal(item.result.matching.row_match, serial.matching.row_match)


def test_batch_preserves_submission_order(small_graphs):
    jobs = [
        MatchingJob(graph=small_graphs[0], algorithm="pr", job_id="a"),
        MatchingJob(graph=small_graphs[1], algorithm="hk", job_id="b"),
        MatchingJob(graph=small_graphs[0], algorithm="hk", job_id="c"),
    ]
    report = MatchingService().submit_batch(jobs)
    assert [r.job.job_id for r in report.results] == ["a", "b", "c"]


# --------------------------------------------------------------------- caching
def test_cache_hits_skip_recomputation(small_graphs, counting_execute):
    jobs = [MatchingJob(graph=g, algorithm="pr") for g in small_graphs]
    service = MatchingService(cache=True)
    first = service.submit_batch(jobs)
    assert len(counting_execute) == len(jobs)
    assert first.cache_hits == 0 and first.executed == len(jobs)

    second = service.submit_batch(jobs)
    assert len(counting_execute) == len(jobs)  # call-count probe: no recompute
    assert second.cache_hits == len(jobs) and second.executed == 0
    assert second.cardinalities() == first.cardinalities()
    assert all(r.cached and r.worker == "cache" for r in second.results)


def test_identical_jobs_in_one_batch_are_deduplicated(small_graphs, counting_execute):
    job = MatchingJob(graph=small_graphs[0], algorithm="hk")
    report = MatchingService().submit_batch([job] * 4)
    assert len(counting_execute) == 1
    assert report.executed == 1 and report.deduplicated == 3
    assert len(set(report.cardinalities())) == 1


def test_renamed_graph_shares_cache_entry(small_graphs, counting_execute):
    g = small_graphs[0]
    service = MatchingService()
    service.submit(MatchingJob(graph=g, algorithm="pr"))
    report = service.submit(MatchingJob(graph=g.with_name("alias"), algorithm="pr"))
    assert len(counting_execute) == 1
    assert report.cached


def test_no_cache_executes_every_job(small_graphs, counting_execute):
    jobs = [MatchingJob(graph=small_graphs[0], algorithm="hk")] * 3
    service = MatchingService(cache=False)
    report = service.submit_batch(jobs)
    report2 = service.submit_batch(jobs)
    assert len(counting_execute) == 6
    assert report.executed == report2.executed == 3
    assert report.cache_hits == report.deduplicated == 0


def test_distinct_kwargs_and_warm_starts_do_not_collide(small_graphs, counting_execute):
    g = small_graphs[0]
    jobs = [
        MatchingJob(graph=g, algorithm="pr"),
        MatchingJob(graph=g, algorithm="pr", kwargs={"global_relabel_k": 0.25}),
        MatchingJob(graph=g, algorithm="pr", initial="karp-sipser"),
    ]
    report = MatchingService().submit_batch(jobs)
    assert report.executed == 3 and len(counting_execute) == 3
    assert len(set(report.cardinalities())) == 1  # same maximum either way


def test_result_cache_lru_eviction():
    cache = ResultCache(max_entries=2)
    g = uniform_random_bipartite(30, 30, avg_degree=3.0, seed=5)
    result = max_bipartite_matching(g, "hk")
    for key in (("a",), ("b",), ("c",)):
        cache.put(key, result)
    assert len(cache) == 2
    assert cache.get(("a",)) is None  # evicted
    served = cache.get(("c",))
    assert served is not result  # defensive copy, not an alias
    assert served.cardinality == result.cardinality


def test_cache_hit_mutation_does_not_corrupt_cache(small_graphs):
    service = MatchingService()
    job = MatchingJob(graph=small_graphs[0], algorithm="pr")
    first = service.submit(job)
    first.result.matching.row_match[:] = -1  # caller misbehaves
    second = service.submit(job)
    assert second.cached
    assert second.result.cardinality == second.result.matching.cardinality
    assert is_valid_matching(job.graph, second.result.matching)


def test_deduplicated_results_do_not_alias(small_graphs):
    job = MatchingJob(graph=small_graphs[0], algorithm="hk")
    report = MatchingService().submit_batch([job, job])
    a, b = report.results
    assert a.result.matching.row_match is not b.result.matching.row_match
    a.result.matching.row_match[:] = -1
    assert b.result.matching.cardinality == b.result.cardinality


def test_disk_cache_persists_across_services(tmp_path, small_graphs):
    jobs = [MatchingJob(graph=g, algorithm="pfp") for g in small_graphs]
    first = MatchingService(cache=DiskCache(tmp_path)).submit_batch(jobs)
    second = MatchingService(cache=DiskCache(tmp_path)).submit_batch(jobs)
    assert second.executed == 0
    assert second.cache_hits == len(jobs)
    assert second.cardinalities() == first.cardinalities()


# ----------------------------------------------------------------- worker pool
def test_worker_pool_agrees_with_inline(small_graphs):
    jobs = [
        MatchingJob(graph=g, algorithm=name)
        for g in small_graphs
        for name in ("g-pr", "pr", "hk")
    ]
    inline = MatchingService(workers=0, cache=False).submit_batch(jobs)
    pooled = MatchingService(workers=2, cache=False).submit_batch(jobs)
    assert pooled.cardinalities() == inline.cardinalities()
    for a, b in zip(pooled.results, inline.results):
        assert np.array_equal(a.result.matching.row_match, b.result.matching.row_match)
    assert {r.worker for r in pooled.results} == {"pool"}


# ------------------------------------------------------------------ validation
def test_invalid_jobs_fail_fast_before_executing(small_graphs, counting_execute):
    good = MatchingJob(graph=small_graphs[0], algorithm="hk")
    bad = MatchingJob(graph=small_graphs[0], algorithm="pr", kwargs={"bogus": 1})
    with pytest.raises(TypeError):
        MatchingService().submit_batch([good, bad])
    assert counting_execute == []  # nothing ran
    with pytest.raises(ValueError):
        MatchingService().submit(MatchingJob(graph=small_graphs[0], algorithm="quantum"))


def test_unknown_warm_start_rejected(small_graphs):
    with pytest.raises(ValueError):
        MatchingJob(graph=small_graphs[0], initial="magic")


def test_job_hash_and_equality_follow_cache_key(small_graphs):
    g = small_graphs[0]
    a = MatchingJob(graph=g, algorithm="pr")
    b = MatchingJob(graph=g.with_name("alias"), algorithm="pr")
    assert a == b and hash(a) == hash(b)  # docs promise hashability
    assert len({a, b}) == 1
    assert a != MatchingJob(graph=g, algorithm="hk")


def test_job_rejects_non_mapping_kwargs(small_graphs):
    with pytest.raises(TypeError, match="mapping"):
        MatchingJob(graph=small_graphs[0], algorithm="pr", kwargs=5)


def test_warm_start_for_heuristic_fails_fast(small_graphs, counting_execute):
    job = MatchingJob(graph=small_graphs[0], algorithm="cheap", initial="karp-sipser")
    with pytest.raises(TypeError, match="warm-start"):
        MatchingService().submit_batch([job])
    assert counting_execute == []


def test_batch_report_accounting(small_graphs):
    g = small_graphs[0]
    jobs = [MatchingJob(graph=g, algorithm="hk")] * 3 + [
        MatchingJob(graph=g, algorithm="pr")
    ]
    service = MatchingService()
    report = service.submit_batch(jobs)
    assert report.executed + report.cache_hits + report.deduplicated == report.n_jobs
    assert report.hit_rate == pytest.approx(2 / 4)
    assert service.jobs_submitted == 4
    assert service.jobs_executed == 2


# ------------------------------------------------------------------------- CLI
def test_cli_batch_roundtrip(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.jsonl"
    lines = [
        {"graph": "roadNet-PA", "algorithm": a, "profile": "tiny", "id": f"j{i}"}
        for i, a in enumerate(("g-pr", "pr", "hk", "pr"))
    ]
    manifest.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    cache_dir = tmp_path / "cache"

    rc = main(["batch", "--manifest", str(manifest), "--cache-dir", str(cache_dir)])
    assert rc == 0
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    results = [row for row in rows if row["type"] == "result"]
    summary = rows[-1]
    assert [r["id"] for r in results] == ["j0", "j1", "j2", "j3"]
    assert summary["executed"] == 3 and summary["deduplicated"] == 1
    cards = {r["id"]: r["cardinality"] for r in results}
    assert len(set(cards.values())) == 1  # all maximum algorithms agree

    # Second CLI invocation: served entirely from the persistent cache.
    rc = main(["batch", "--manifest", str(manifest), "--cache-dir", str(cache_dir)])
    assert rc == 0
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    summary = rows[-1]
    assert summary["cache_hits"] == 4 and summary["hit_rate"] >= 0.5
    assert {r["cardinality"] for r in rows if r["type"] == "result"} == set(cards.values())


def test_cli_batch_rejects_bad_manifest(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "bad.jsonl"
    manifest.write_text('{"algorithm": "g-pr"}\n')  # neither graph nor mtx
    assert main(["batch", "--manifest", str(manifest)]) == 2
    assert "error" in capsys.readouterr().err
