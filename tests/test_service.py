"""Tests for the batched matching service (repro.service)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import MAXIMUM_ALGORITHMS, max_bipartite_matching
from repro.generators import chung_lu_bipartite, uniform_random_bipartite
from repro.seq.verify import is_valid_matching
from repro.service import (
    BatchReport,
    DiskCache,
    MatchingJob,
    MatchingService,
    ResultCache,
)
import repro.engine.execution as execution_mod


@pytest.fixture(scope="module")
def small_graphs():
    return [
        uniform_random_bipartite(120, 130, avg_degree=4.0, seed=21),
        chung_lu_bipartite(110, 110, avg_degree=5.0, seed=22),
    ]


@pytest.fixture
def counting_execute(monkeypatch):
    """Count actual computations by wrapping the engine's execution path."""
    calls = []
    original = execution_mod.execute_job

    def counted(job, plan=None, initial_matching=None):
        calls.append(job)
        return original(job, plan, initial_matching)

    monkeypatch.setattr(execution_mod, "execute_job", counted)
    return calls


# --------------------------------------------------------------- batch == serial
def test_batch_identical_to_serial_for_every_maximum_algorithm(small_graphs):
    jobs = [
        MatchingJob(graph=g, algorithm=name)
        for g in small_graphs
        for name in MAXIMUM_ALGORITHMS
    ]
    report = MatchingService().submit_batch(jobs)
    assert report.n_jobs == len(jobs)
    for item in report.results:
        serial = max_bipartite_matching(item.job.graph, item.job.algorithm)
        assert item.result.cardinality == serial.cardinality
        assert is_valid_matching(item.job.graph, item.result.matching)
        # The pipeline is deterministic, so batch and serial dispatch return
        # the very same matching, not just the same cardinality.
        assert np.array_equal(item.result.matching.row_match, serial.matching.row_match)


def test_batch_preserves_submission_order(small_graphs):
    jobs = [
        MatchingJob(graph=small_graphs[0], algorithm="pr", job_id="a"),
        MatchingJob(graph=small_graphs[1], algorithm="hk", job_id="b"),
        MatchingJob(graph=small_graphs[0], algorithm="hk", job_id="c"),
    ]
    report = MatchingService().submit_batch(jobs)
    assert [r.job.job_id for r in report.results] == ["a", "b", "c"]


# --------------------------------------------------------------------- caching
def test_cache_hits_skip_recomputation(small_graphs, counting_execute):
    jobs = [MatchingJob(graph=g, algorithm="pr") for g in small_graphs]
    service = MatchingService(cache=True)
    first = service.submit_batch(jobs)
    assert len(counting_execute) == len(jobs)
    assert first.cache_hits == 0 and first.executed == len(jobs)

    second = service.submit_batch(jobs)
    assert len(counting_execute) == len(jobs)  # call-count probe: no recompute
    assert second.cache_hits == len(jobs) and second.executed == 0
    assert second.cardinalities() == first.cardinalities()
    assert all(r.cached and r.worker == "cache" for r in second.results)


def test_identical_jobs_in_one_batch_are_deduplicated(small_graphs, counting_execute):
    job = MatchingJob(graph=small_graphs[0], algorithm="hk")
    report = MatchingService().submit_batch([job] * 4)
    assert len(counting_execute) == 1
    assert report.executed == 1 and report.deduplicated == 3
    assert len(set(report.cardinalities())) == 1


def test_renamed_graph_shares_cache_entry(small_graphs, counting_execute):
    g = small_graphs[0]
    service = MatchingService()
    service.submit(MatchingJob(graph=g, algorithm="pr"))
    report = service.submit(MatchingJob(graph=g.with_name("alias"), algorithm="pr"))
    assert len(counting_execute) == 1
    assert report.cached


def test_no_cache_executes_every_job(small_graphs, counting_execute):
    jobs = [MatchingJob(graph=small_graphs[0], algorithm="hk")] * 3
    service = MatchingService(cache=False)
    report = service.submit_batch(jobs)
    report2 = service.submit_batch(jobs)
    assert len(counting_execute) == 6
    assert report.executed == report2.executed == 3
    assert report.cache_hits == report.deduplicated == 0


def test_distinct_kwargs_and_warm_starts_do_not_collide(small_graphs, counting_execute):
    g = small_graphs[0]
    jobs = [
        MatchingJob(graph=g, algorithm="pr"),
        MatchingJob(graph=g, algorithm="pr", kwargs={"global_relabel_k": 0.25}),
        MatchingJob(graph=g, algorithm="pr", initial="karp-sipser"),
    ]
    report = MatchingService().submit_batch(jobs)
    assert report.executed == 3 and len(counting_execute) == 3
    assert len(set(report.cardinalities())) == 1  # same maximum either way


def test_result_cache_lru_eviction():
    cache = ResultCache(max_entries=2)
    g = uniform_random_bipartite(30, 30, avg_degree=3.0, seed=5)
    result = max_bipartite_matching(g, "hk")
    for key in (("a",), ("b",), ("c",)):
        cache.put(key, result)
    assert len(cache) == 2
    assert cache.get(("a",)) is None  # evicted
    served = cache.get(("c",))
    assert served is not result  # defensive copy, not an alias
    assert served.cardinality == result.cardinality


def test_result_cache_len_and_contains_are_locked():
    """Regression: __len__/__contains__ read _entries without the lock.

    With the lock held, a reader can never observe the transient
    over-capacity state inside put() (entry inserted, eviction loop not yet
    run) — so len(cache) <= max_entries holds at every instant under
    concurrent eviction.
    """
    import threading

    cache = ResultCache(max_entries=4)
    g = uniform_random_bipartite(20, 20, avg_degree=2.0, seed=6)
    result = max_bipartite_matching(g, "hk")
    stop = threading.Event()
    errors: list[str] = []

    def writer(tag: str) -> None:
        i = 0
        while not stop.is_set():
            cache.put((tag, i % 16), result)
            i += 1

    threads = [threading.Thread(target=writer, args=(t,)) for t in ("a", "b")]
    for t in threads:
        t.start()
    try:
        for i in range(3000):
            n = len(cache)
            if n > cache.max_entries:
                errors.append(f"iteration {i}: observed {n} entries")
                break
            ("a", i % 16) in cache  # must never raise mid-eviction
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors, errors


def test_cache_hit_mutation_does_not_corrupt_cache(small_graphs):
    service = MatchingService()
    job = MatchingJob(graph=small_graphs[0], algorithm="pr")
    first = service.submit(job)
    first.result.matching.row_match[:] = -1  # caller misbehaves
    second = service.submit(job)
    assert second.cached
    assert second.result.cardinality == second.result.matching.cardinality
    assert is_valid_matching(job.graph, second.result.matching)


def test_deduplicated_results_do_not_alias(small_graphs):
    job = MatchingJob(graph=small_graphs[0], algorithm="hk")
    report = MatchingService().submit_batch([job, job])
    a, b = report.results
    assert a.result.matching.row_match is not b.result.matching.row_match
    a.result.matching.row_match[:] = -1
    assert b.result.matching.cardinality == b.result.cardinality


def test_disk_cache_persists_across_services(tmp_path, small_graphs):
    jobs = [MatchingJob(graph=g, algorithm="pfp") for g in small_graphs]
    first = MatchingService(cache=DiskCache(tmp_path)).submit_batch(jobs)
    second = MatchingService(cache=DiskCache(tmp_path)).submit_batch(jobs)
    assert second.executed == 0
    assert second.cache_hits == len(jobs)
    assert second.cardinalities() == first.cardinalities()


# ----------------------------------------------------------------- worker pool
def test_worker_pool_agrees_with_inline(small_graphs):
    jobs = [
        MatchingJob(graph=g, algorithm=name)
        for g in small_graphs
        for name in ("g-pr", "pr", "hk")
    ]
    inline = MatchingService(workers=0, cache=False).submit_batch(jobs)
    with MatchingService(workers=2, cache=False) as pooled_service:
        pooled = pooled_service.submit_batch(jobs)
    assert pooled.cardinalities() == inline.cardinalities()
    for a, b in zip(pooled.results, inline.results, strict=True):
        assert np.array_equal(a.result.matching.row_match, b.result.matching.row_match)
    assert {r.worker for r in pooled.results} == {"process"}
    # The persistent pool measures each job where it ran: per-job timings,
    # not the old pool-mean attribution, so they are individual and positive.
    assert all(r.seconds > 0 for r in pooled.results)
    assert len({r.seconds for r in pooled.results}) > 1


def test_unseeded_karp_sipser_is_never_cached_or_deduplicated(small_graphs, counting_execute):
    g = small_graphs[0]
    # Without a seed, Karp–Sipser draws from an entropy-seeded RNG: each run
    # is an independent sample, so memoizing or deduplicating it would
    # silently serve one sample N times.
    unseeded = MatchingJob(graph=g, algorithm="karp-sipser")
    service = MatchingService(cache=True)
    report = service.submit_batch([unseeded, unseeded])
    assert report.executed == 2 and report.deduplicated == 0
    second = service.submit_batch([unseeded])
    assert second.cache_hits == 0 and len(counting_execute) == 3
    # A *seeded* run is deterministic and caches normally.
    seeded = MatchingJob(graph=g, algorithm="karp-sipser", kwargs={"seed": 7})
    report = service.submit_batch([seeded, seeded])
    assert report.executed == 1 and report.deduplicated == 1
    assert service.submit(seeded).cached


# ----------------------------------------------------------- failure isolation
def test_failing_job_does_not_abort_batch(small_graphs):
    g = small_graphs[0]
    # The serialized reference engine only supports the "first" variant, so
    # this job resolves fine but raises ValueError at run time.
    boom = MatchingJob(graph=g, algorithm="g-pr", kwargs={"engine": "serialized"}, job_id="boom")
    jobs = [MatchingJob(graph=g, algorithm="pr", job_id="a"), boom,
            MatchingJob(graph=g, algorithm="hk", job_id="b")]
    report = MatchingService().submit_batch(jobs)
    by_id = {r.job.job_id: r for r in report.results}
    assert report.failed == 1 and not report.all_ok
    assert by_id["boom"].status == "failed" and by_id["boom"].result is None
    assert "serialized" in by_id["boom"].error.message
    assert by_id["a"].ok and by_id["b"].ok
    assert by_id["a"].result.cardinality == by_id["b"].result.cardinality
    assert report.failures() == [by_id["boom"]]
    with pytest.raises(ValueError, match="no result"):
        by_id["boom"].cardinality


def test_failed_jobs_are_not_cached(small_graphs, counting_execute):
    g = small_graphs[0]
    boom = MatchingJob(graph=g, algorithm="g-pr", kwargs={"engine": "serialized"})
    service = MatchingService()
    first = service.submit(boom)
    second = service.submit(boom)
    assert first.status == second.status == "failed"
    assert len(counting_execute) == 2  # the failure was retried, not served from cache
    assert service.jobs_failed == 2


def test_failed_duplicates_share_the_failure(small_graphs):
    g = small_graphs[0]
    boom = MatchingJob(graph=g, algorithm="g-pr", kwargs={"engine": "serialized"})
    report = MatchingService().submit_batch([boom, boom])
    assert report.failed == 2 and report.executed == 1 and report.deduplicated == 1
    assert all(r.status == "failed" and r.error is not None for r in report.results)
    assert report.cardinalities() == [None, None]


def test_intra_batch_duplicates_are_labeled_dedup(small_graphs):
    job = MatchingJob(graph=small_graphs[0], algorithm="hk")
    report = MatchingService().submit_batch([job, job, job])
    workers = [r.worker for r in report.results]
    assert workers[0] == "inline"
    assert workers[1:] == ["dedup", "dedup"]
    assert all(r.cached for r in report.results[1:])


# ------------------------------------------------------------------ validation
def test_invalid_jobs_fail_fast_before_executing(small_graphs, counting_execute):
    good = MatchingJob(graph=small_graphs[0], algorithm="hk")
    bad = MatchingJob(graph=small_graphs[0], algorithm="pr", kwargs={"bogus": 1})
    with pytest.raises(TypeError):
        MatchingService().submit_batch([good, bad])
    assert counting_execute == []  # nothing ran
    with pytest.raises(ValueError):
        MatchingService().submit(MatchingJob(graph=small_graphs[0], algorithm="quantum"))


def test_unknown_warm_start_rejected(small_graphs):
    with pytest.raises(ValueError):
        MatchingJob(graph=small_graphs[0], initial="magic")


def test_job_hash_and_equality_follow_cache_key(small_graphs):
    g = small_graphs[0]
    a = MatchingJob(graph=g, algorithm="pr")
    b = MatchingJob(graph=g.with_name("alias"), algorithm="pr")
    assert a == b and hash(a) == hash(b)  # docs promise hashability
    assert len({a, b}) == 1
    assert a != MatchingJob(graph=g, algorithm="hk")


def test_job_rejects_non_mapping_kwargs(small_graphs):
    with pytest.raises(TypeError, match="mapping"):
        MatchingJob(graph=small_graphs[0], algorithm="pr", kwargs=5)


def test_warm_start_for_heuristic_fails_fast(small_graphs, counting_execute):
    job = MatchingJob(graph=small_graphs[0], algorithm="cheap", initial="karp-sipser")
    with pytest.raises(TypeError, match="warm-start"):
        MatchingService().submit_batch([job])
    assert counting_execute == []


def test_batch_report_accounting(small_graphs):
    g = small_graphs[0]
    jobs = [MatchingJob(graph=g, algorithm="hk")] * 3 + [
        MatchingJob(graph=g, algorithm="pr")
    ]
    service = MatchingService()
    report = service.submit_batch(jobs)
    assert report.executed + report.cache_hits + report.deduplicated == report.n_jobs
    assert report.hit_rate == pytest.approx(2 / 4)
    assert service.jobs_submitted == 4
    assert service.jobs_executed == 2


# ------------------------------------------------------------------------- CLI
def test_cli_batch_roundtrip(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.jsonl"
    lines = [
        {"graph": "roadNet-PA", "algorithm": a, "profile": "tiny", "id": f"j{i}"}
        for i, a in enumerate(("g-pr", "pr", "hk", "pr"))
    ]
    manifest.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    cache_dir = tmp_path / "cache"

    rc = main(["batch", "--manifest", str(manifest), "--cache-dir", str(cache_dir)])
    assert rc == 0
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    results = [row for row in rows if row["type"] == "result"]
    summary = rows[-1]
    assert [r["id"] for r in results] == ["j0", "j1", "j2", "j3"]
    assert summary["executed"] == 3 and summary["deduplicated"] == 1
    cards = {r["id"]: r["cardinality"] for r in results}
    assert len(set(cards.values())) == 1  # all maximum algorithms agree

    # Second CLI invocation: served entirely from the persistent cache.
    rc = main(["batch", "--manifest", str(manifest), "--cache-dir", str(cache_dir)])
    assert rc == 0
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    summary = rows[-1]
    assert summary["cache_hits"] == 4 and summary["hit_rate"] >= 0.5
    assert {r["cardinality"] for r in rows if r["type"] == "result"} == set(cards.values())


def test_cli_batch_rejects_bad_manifest(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "bad.jsonl"
    manifest.write_text('{"algorithm": "g-pr"}\n')  # neither graph nor mtx
    assert main(["batch", "--manifest", str(manifest)]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_batch_rejects_unusable_cache_dir(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text('{"graph": "roadNet-PA", "algorithm": "pr", "profile": "tiny"}\n')
    shadow = tmp_path / "not-a-dir"
    shadow.write_text("occupied")  # a file where the cache directory should go
    assert main(["batch", "--manifest", str(manifest), "--cache-dir", str(shadow)]) == 2
    assert "cache dir" in capsys.readouterr().err


def test_cli_batch_validates_whole_manifest_before_building_graphs(tmp_path, capsys, monkeypatch):
    from repro import cli

    built = []
    original = cli.generate_instance

    def counting(*args, **kwargs):
        built.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(cli, "generate_instance", counting)
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        '{"graph": "roadNet-PA", "algorithm": "pr", "profile": "tiny"}\n'
        '{"algorithm": "hk"}\n'  # malformed: neither graph nor mtx
    )
    assert cli.main(["batch", "--manifest", str(manifest), "--no-cache"]) == 2
    assert built == []  # the bad line aborted before any graph was generated
    assert "error" in capsys.readouterr().err

    # A typo'd algorithm, knob, warm-start, graph, profile or mtx path is
    # likewise caught before graph generation.
    for bad_line in (
        '{"graph": "roadNet-PA", "algorithm": "gp-r", "profile": "tiny"}',
        '{"graph": "roadNet-PA", "algorithm": "pr", "profile": "tiny", "kwargs": {"bogus": 1}}',
        '{"graph": "roadNet-PA", "algorithm": "cheap", "profile": "tiny", "initial": "cheap"}',
        '{"graph": "no-such-graph", "algorithm": "pr", "profile": "tiny"}',
        '{"graph": "roadNet-PA", "algorithm": "pr", "profile": "enormous"}',
        '{"mtx": "/no/such/file.mtx", "algorithm": "pr", "profile": "tiny"}',
    ):
        manifest.write_text(
            '{"graph": "roadNet-PA", "algorithm": "pr", "profile": "tiny"}\n' + bad_line + "\n"
        )
        assert cli.main(["batch", "--manifest", str(manifest), "--no-cache"]) == 2
        assert built == []
        assert ":2:" in capsys.readouterr().err  # error names the offending line


def test_cli_batch_json_format_and_backend(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.jsonl"
    lines = [
        {"graph": "roadNet-PA", "algorithm": a, "profile": "tiny", "id": f"j{i}"}
        for i, a in enumerate(("pr", "hk"))
    ]
    manifest.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    rc = main(["batch", "--manifest", str(manifest), "--no-cache",
               "--backend", "thread", "--workers", "2", "--format", "json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert [r["id"] for r in payload["results"]] == ["j0", "j1"]
    assert all(r["status"] == "ok" for r in payload["results"])
    assert payload["summary"]["backend"] == "thread"
    assert payload["summary"]["failed"] == 0


def test_cli_batch_failed_job_sets_exit_code_but_siblings_complete(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.jsonl"
    lines = [
        {"graph": "roadNet-PA", "algorithm": "pr", "profile": "tiny", "id": "ok"},
        {"graph": "roadNet-PA", "algorithm": "g-pr", "profile": "tiny", "id": "boom",
         "kwargs": {"engine": "serialized"}},
    ]
    manifest.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    rc = main(["batch", "--manifest", str(manifest), "--no-cache"])
    assert rc == 1  # the run completed, but one job failed
    captured = capsys.readouterr()
    rows = [json.loads(line) for line in captured.out.splitlines()]
    by_id = {row["id"]: row for row in rows if row["type"] == "result"}
    assert by_id["ok"]["status"] == "ok" and by_id["ok"]["cardinality"] > 0
    assert by_id["boom"]["status"] == "failed" and by_id["boom"]["cardinality"] is None
    assert "serialized" in by_id["boom"]["error"]
    assert rows[-1]["failed"] == 1
    assert "boom" in captured.err
