"""Fault-injection regression suite: failure isolation across every backend.

The claims pinned here are the ones the server layer depends on:

* an injected **crash** lands as ``status="failed"`` with the
  ``InjectedCrashError`` captured as a :class:`JobFailure` — never an
  exception out of ``submit``/``wait``, never a poisoned sibling;
* an injected **stall** on a deadlined job lands as ``status="timeout"``
  within a bounded wait — never a hang, never a late ``ok``;
* **clean and slow-started jobs are unaffected**: they finish ``ok`` with
  matchings bit-identical to a fault-free run;
* the schedule is **deterministic**: the same seed injects the same faults
  into the same submission numbers on every backend.

Backends: inline (submit-blocking), thread and process (fork) — the three
execution substrates ``repro serve --backend`` exposes for real work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine, FaultSchedule, JobStatus
from repro.generators import uniform_random_bipartite

from faultinject import BACKEND_FACTORIES, faulty_engine, make_jobs, outcome_table, run_jobs

BACKENDS = tuple(BACKEND_FACTORIES)

#: ~1/4 crash, ~1/4 stall, ~1/8 slow over the 16-job campaign below.
SCHEDULE = FaultSchedule(
    seed=11, crash_rate=0.25, stall_rate=0.25, slow_rate=0.125,
    stall_seconds=0.05, stall_margin=0.05, slow_seconds=0.01,
)
JOB_COUNT = 16
DEADLINE = 0.35  # applied only to jobs the schedule will stall


@pytest.fixture(scope="module")
def graph():
    return uniform_random_bipartite(140, 150, avg_degree=4.0, seed=41)


@pytest.fixture(scope="module")
def reference(graph):
    """The fault-free matching every surviving job must reproduce exactly."""
    with Engine(backend="inline") as engine:
        return engine.submit(make_jobs(graph, 1)[0]).result()


def _campaign(backend_name, graph):
    """Run the shared 16-job campaign; deadlines go only to will-stall jobs.

    Keying the deadline off the (public, deterministic) schedule keeps the
    assertion sharp: a clean job can then never time out from queue delay
    behind a stalled worker, so `ok` vs `timeout` partitions exactly along
    the injection boundary.
    """
    jobs = make_jobs(graph, JOB_COUNT)
    with faulty_engine(backend_name, SCHEDULE) as (engine, backend):
        handles = [
            engine.submit(
                job,
                timeout=DEADLINE if SCHEDULE.draw(index) == "stall" else None,
            )
            for index, job in enumerate(jobs)
        ]
        for handle in handles:
            assert handle.wait(timeout=30.0), f"{handle.job.job_id} never finished"
    return handles, backend


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_campaign_outcomes_partition_along_injections(backend_name, graph, reference):
    handles, backend = _campaign(backend_name, graph)
    statuses = {}
    for handle in handles:
        fault = getattr(handle, "injected_fault", None)
        statuses[fault] = statuses.get(fault, 0) + 1
        if fault == "crash":
            assert handle.status is JobStatus.FAILED
            assert handle.failure is not None
            assert handle.failure.exc_type == "InjectedCrashError"
            assert "injected crash" in handle.failure.message
        elif fault == "stall":
            # Deadlined stall: the engine reports timeout, never a late ok.
            assert handle.status is JobStatus.TIMEOUT
        else:  # clean or slow-start: unaffected, bit-identical
            assert handle.status is JobStatus.OK, (handle.job.job_id, fault)
            result = handle.result()
            assert result.cardinality == reference.cardinality
            np.testing.assert_array_equal(
                result.matching.row_match, reference.matching.row_match
            )
    # The schedule actually exercised every path in this campaign.
    assert statuses.get("crash", 0) >= 1
    assert statuses.get("stall", 0) >= 1
    assert backend.counts["crash"] == statuses.get("crash", 0)
    assert backend.counts["stall"] == statuses.get("stall", 0)
    assert backend.submitted == JOB_COUNT


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_crash_isolation_leaves_siblings_clean(backend_name, graph):
    """A campaign of all-crash jobs next to a clean engine job: no bleed-over."""
    crash_all = FaultSchedule(seed=3, crash_rate=1.0)
    with faulty_engine(backend_name, crash_all) as (engine, _backend):
        handles = run_jobs(engine, make_jobs(graph, 4))
        assert all(h.status is JobStatus.FAILED for h in handles)
        # The engine stays healthy for later work on the same backend: a
        # fault-free submission must succeed (draw for sequence 4.. may
        # still crash, so bypass the schedule with a clean inner engine).
    with Engine(backend="inline") as clean:
        assert clean.submit(make_jobs(graph, 1)[0]).result().cardinality > 0


def test_stall_resolves_within_bounded_wait(graph):
    """A stalled deadlined job must resolve (timeout) in ~stall time, not hang."""
    schedule = FaultSchedule(seed=5, stall_rate=1.0, stall_seconds=0.05, stall_margin=0.05)
    with faulty_engine("thread", schedule) as (engine, _backend):
        handle = engine.submit(make_jobs(graph, 1)[0], timeout=0.2)
        # deadline 0.2s + margin 0.05s + slack; far below a hang.
        assert handle.wait(timeout=5.0)
        assert handle.status is JobStatus.TIMEOUT


def test_stall_without_deadline_still_succeeds(graph):
    schedule = FaultSchedule(seed=5, stall_rate=1.0, stall_seconds=0.02)
    with faulty_engine("inline", schedule) as (engine, _backend):
        handle = engine.submit(make_jobs(graph, 1)[0])
        assert handle.status is JobStatus.OK
        assert handle.injected_fault == "stall"


def test_schedule_is_deterministic_across_backends(graph):
    """Same seed, same submission numbers: identical (status, fault) tables."""
    tables = {}
    for backend_name in BACKENDS:
        handles, _backend = _campaign(backend_name, graph)
        tables[backend_name] = outcome_table(handles)
    baseline = tables["inline"]
    for backend_name, table in tables.items():
        assert table == baseline, f"{backend_name} diverged from inline"


def test_schedule_draw_is_pure():
    schedule = FaultSchedule(seed=99, crash_rate=0.3, stall_rate=0.3, slow_rate=0.3)
    first = [schedule.draw(i) for i in range(200)]
    second = [schedule.draw(i) for i in range(200)]
    assert first == second
    assert {"crash", "stall", "slow", None} == set(first) | {None}


def test_schedule_validation():
    with pytest.raises(ValueError):
        FaultSchedule(crash_rate=0.6, stall_rate=0.6)
    with pytest.raises(ValueError):
        FaultSchedule(crash_rate=-0.1)
    with pytest.raises(ValueError):
        FaultSchedule(stall_seconds=-1.0)
    assert not FaultSchedule().any_faults
    assert FaultSchedule(slow_rate=0.1).any_faults
