"""Tests for the sharded matching subsystem (repro.sharded).

The load-bearing property is *cardinality parity*: for every generator
family, partition method, shard count and engine backend, the sharded
pipeline (per-shard solves + frontier-exchange reconciliation) must return
a maximum matching of the whole graph — the same cardinality as the
single-graph solver.  Around it sit the partition invariants, the exact
content-hash reconstruction, the out-of-core ingest and the API wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import max_bipartite_matching, resolve_algorithm
from repro.engine import Engine
from repro.engine.execution import validate_job_args
from repro.generators import generate_instance
from repro.graph import from_edges
from repro.seq.verify import is_valid_matching, is_maximum_matching, maximum_matching_cardinality
from repro.sharded import (
    PARTITION_METHODS,
    ColumnPartition,
    ShardedMatcher,
    ingest_matrix_market_sharded,
    make_partition,
    partition_graph,
    sharded_matching,
    stream_random_bipartite_mtx,
)

FAMILIES = ("roadNet-PA", "amazon0505", "delaunay_n20", "kron_g500-logn20")
SHARD_COUNTS = (1, 2, 4, 7)
BACKENDS = ("inline", "thread", "process")


@pytest.fixture(scope="module")
def suite_graphs():
    return {
        name: generate_instance(name, profile="tiny", seed=20130421)
        for name in FAMILIES
    }


@pytest.fixture(scope="module")
def expected_cardinality(suite_graphs):
    return {
        name: maximum_matching_cardinality(graph)
        for name, graph in suite_graphs.items()
    }


@pytest.fixture(scope="module")
def engines():
    """One shared engine per backend, so 90+ parity cases don't re-spawn pools."""
    built: dict[str, Engine] = {}

    def get(backend: str) -> Engine:
        if backend not in built:
            built[backend] = Engine(backend=backend, max_workers=2)
        return built[backend]

    yield get
    for engine in built.values():
        engine.shutdown()


# ------------------------------------------------------------- partitions
def test_partition_contiguous_spans_all_columns():
    part = make_partition("contiguous", 103, 4)
    assert part.boundaries[0] == 0 and part.boundaries[-1] == 103
    assert part.n_shards == 4
    widths = [part.width(s) for s in range(4)]
    assert sum(widths) == 103
    assert max(widths) - min(widths) <= 1


def test_partition_degree_balances_skewed_columns():
    # Column 0 carries half of all edges; degree balancing must isolate it.
    degrees = np.array([500] + [1] * 99, dtype=np.int64)
    part = make_partition("degree", 100, 4, col_degrees=degrees)
    edge_loads = [degrees[slice(*part.column_range(s))].sum() for s in range(4)]
    contiguous = make_partition("contiguous", 100, 4)
    contiguous_loads = [
        degrees[slice(*contiguous.column_range(s))].sum() for s in range(4)
    ]
    assert max(edge_loads) < max(contiguous_loads)


def test_partition_more_shards_than_columns_allows_zero_width():
    part = make_partition("contiguous", 5, 7)
    widths = [part.width(s) for s in range(7)]
    assert sum(widths) == 5
    assert 0 in widths


def test_partition_shard_of_is_inverse_of_column_range():
    part = make_partition("contiguous", 64, 5)
    cols = np.arange(64, dtype=np.int64)
    shard_ids = part.shard_of(cols)
    for s in range(5):
        lo, hi = part.column_range(s)
        assert (shard_ids[lo:hi] == s).all()


def test_partition_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        ColumnPartition(
            n_cols=10,
            boundaries=np.array([0, 5, 4, 10], dtype=np.int64),
            method="contiguous",
        )
    with pytest.raises(ValueError):
        ColumnPartition(
            n_cols=10, boundaries=np.array([1, 10], dtype=np.int64), method="contiguous"
        )


def test_partition_graph_rejects_weighted(suite_graphs):
    graph = suite_graphs["roadNet-PA"]
    weighted = graph.with_weights(np.ones(graph.n_edges))
    with pytest.raises(ValueError, match="cardinality-only"):
        partition_graph(weighted, 2)


# ------------------------------------------------------ cardinality parity
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("method", PARTITION_METHODS)
@pytest.mark.parametrize("family", FAMILIES)
def test_cardinality_parity(
    family, method, n_shards, backend, suite_graphs, expected_cardinality, engines
):
    graph = suite_graphs[family]
    result = sharded_matching(
        graph, "hk", shards=n_shards, partition=method, engine=engines(backend)
    )
    assert result.cardinality == expected_cardinality[family]
    assert is_valid_matching(graph, result.matching)
    assert result.counters["shards"] == n_shards


@pytest.mark.parametrize("family", FAMILIES)
def test_backends_are_bit_identical(family, suite_graphs, engines):
    graph = suite_graphs[family]
    results = [
        sharded_matching(
            graph, "hk", shards=4, partition="degree", engine=engines(backend)
        )
        for backend in ("inline", "thread")
    ]
    assert np.array_equal(
        results[0].matching.row_match, results[1].matching.row_match
    )
    assert np.array_equal(
        results[0].matching.col_match, results[1].matching.col_match
    )


@pytest.mark.parametrize("algorithm", ["hk", "pr", "pfp", "p-dbfs"])
def test_parity_across_shard_kernels(algorithm, suite_graphs, expected_cardinality):
    graph = suite_graphs["amazon0505"]
    result = sharded_matching(graph, algorithm, shards=3)
    assert result.cardinality == expected_cardinality["amazon0505"]
    assert result.algorithm == f"sharded-{algorithm}"


def test_result_is_maximum_on_whole_graph(suite_graphs):
    graph = suite_graphs["kron_g500-logn20"]
    result = sharded_matching(graph, "hk", shards=4, partition="degree")
    assert is_maximum_matching(graph, result.matching)


# ----------------------------------------------------------- boundary cases
def test_all_edges_in_one_shard():
    # 40 columns but every edge lives in columns 0-9: shard 0 owns them all.
    edges = [(r, r % 10) for r in range(30)] + [(r, (r + 3) % 10) for r in range(30)]
    graph = from_edges(edges, n_rows=30, n_cols=40, name="lopsided")
    sharded = partition_graph(graph, 4)
    assert sharded.shard_edge_counts[0] == graph.n_edges
    assert (sharded.shard_edge_counts[1:] == 0).all()
    result = sharded_matching(graph, "hk", shards=4)
    assert result.cardinality == maximum_matching_cardinality(graph)
    # Empty shards never become jobs.
    assert result.counters["shard_jobs"] == 1


def test_more_shards_than_columns_end_to_end():
    edges = [(r, r % 5) for r in range(12)]
    graph = from_edges(edges, n_rows=12, n_cols=5, name="narrow")
    result = sharded_matching(graph, "hk", shards=7)
    assert result.cardinality == maximum_matching_cardinality(graph)


def test_every_row_crosses_every_shard():
    # Each row has one edge in each of the four column blocks.
    edges = [(r, 10 * s + (r % 10)) for r in range(30) for s in range(4)]
    graph = from_edges(edges, n_rows=30, n_cols=40, name="crossing")
    sharded = partition_graph(graph, 4)
    assert sharded.boundary_rows.size == 30
    assert all(sharded.boundary_shards(r).size == 4 for r in range(30))
    result = sharded_matching(graph, "hk", shards=4)
    assert result.cardinality == maximum_matching_cardinality(graph)


def test_empty_graph():
    graph = from_edges([], n_rows=6, n_cols=6, name="empty")
    result = sharded_matching(graph, "hk", shards=3)
    assert result.cardinality == 0
    sharded = partition_graph(graph, 3)
    assert sharded.content_hash() == graph.content_hash()


# --------------------------------------------------------------- hash parity
@pytest.mark.parametrize("method", PARTITION_METHODS)
@pytest.mark.parametrize("family", FAMILIES)
def test_content_hash_matches_unsharded(family, method, suite_graphs):
    graph = suite_graphs[family]
    for n_shards in (1, 3, 7):
        sharded = partition_graph(graph, n_shards, method)
        assert sharded.content_hash() == graph.content_hash()


def test_content_hash_row_block_independent(suite_graphs):
    graph = suite_graphs["roadNet-PA"]
    sharded = partition_graph(graph, 4, "degree")
    assert sharded.content_hash(row_block=17) == graph.content_hash()


def test_to_graph_round_trips(suite_graphs):
    graph = suite_graphs["amazon0505"]
    rebuilt = partition_graph(graph, 5).to_graph()
    assert rebuilt.content_hash() == graph.content_hash()


# ------------------------------------------------------------ out-of-core
@pytest.mark.parametrize("method", PARTITION_METHODS)
def test_ingest_matches_in_memory(tmp_path, method):
    path = stream_random_bipartite_mtx(
        tmp_path / "g.mtx.gz", 300, 280, 2500, seed=5
    )
    from repro.graph.io import read_matrix_market

    reference = read_matrix_market(path)
    sharded = ingest_matrix_market_sharded(path, 4, method)
    assert sharded.content_hash() == reference.content_hash()
    result = ShardedMatcher(sharded, "hk").run()
    assert result.cardinality == maximum_matching_cardinality(reference)
    sharded.close()


def test_ingest_window_defaults_to_max_resident(tmp_path):
    path = stream_random_bipartite_mtx(tmp_path / "g.mtx", 120, 120, 700, seed=9)
    sharded = ingest_matrix_market_sharded(path, 5, max_resident=2)
    matcher = ShardedMatcher(sharded, "hk")
    assert matcher._window == 2
    sharded.close()


def test_ingest_explicit_spool_dir_is_kept(tmp_path):
    path = stream_random_bipartite_mtx(tmp_path / "g.mtx", 60, 60, 300, seed=3)
    spool = tmp_path / "spool"
    sharded = ingest_matrix_market_sharded(path, 3, spool_dir=spool)
    sharded.close()
    arrays = ("col_ptr", "col_ind", "row_ptr", "row_ind")
    assert sorted(p.name for p in spool.iterdir()) == sorted(
        f"shard-{index:05d}.{field}.npy" for index in range(3) for field in arrays
    )


# ------------------------------------------------------------- API wiring
def test_resolve_algorithm_sharded_plan(suite_graphs, expected_cardinality):
    graph = suite_graphs["delaunay_n20"]
    plan = resolve_algorithm("hk", shards=4, partition="degree")
    assert plan.shards == 4 and plan.partition_method == "degree"
    result = plan.run(graph)
    assert result.algorithm == "sharded-hk"
    assert result.cardinality == expected_cardinality["delaunay_n20"]


def test_max_bipartite_matching_accepts_shards(suite_graphs, expected_cardinality):
    graph = suite_graphs["roadNet-PA"]
    result = max_bipartite_matching(graph, "pr", shards=2)
    assert result.cardinality == expected_cardinality["roadNet-PA"]


def test_resolve_algorithm_rejects_bad_sharding():
    with pytest.raises(TypeError, match="cannot run sharded"):
        resolve_algorithm("cheap", shards=2)
    with pytest.raises(TypeError, match="cannot run sharded"):
        resolve_algorithm("weighted-sap", shards=2)
    with pytest.raises(TypeError, match="partition= requires shards="):
        resolve_algorithm("hk", partition="degree")
    with pytest.raises(ValueError, match="shards must be >= 1"):
        resolve_algorithm("hk", shards=0)
    with pytest.raises(ValueError, match="unknown partition method"):
        resolve_algorithm("hk", shards=2, partition="zigzag")


def test_sharded_plan_rejects_warm_start(suite_graphs):
    graph = suite_graphs["roadNet-PA"]
    plan = resolve_algorithm("hk", shards=2)
    baseline = max_bipartite_matching(graph, "hk")
    with pytest.raises(TypeError, match="warm-start"):
        plan.run(graph, baseline.matching)
    with pytest.raises(TypeError, match="warm-start"):
        validate_job_args("hk", {"shards": 2}, "cheap")


def test_sharded_plan_rejects_weighted_graph(suite_graphs):
    graph = suite_graphs["roadNet-PA"]
    weighted = graph.with_weights(np.ones(graph.n_edges))
    plan = resolve_algorithm("hk", shards=2)
    with pytest.raises(ValueError, match="cardinality-only"):
        plan.run(weighted)


def test_sharded_matcher_rejects_nested_plan(suite_graphs):
    sharded = partition_graph(suite_graphs["roadNet-PA"], 2)
    plan = resolve_algorithm("hk", shards=2)
    with pytest.raises(ValueError, match="must not itself be sharded"):
        ShardedMatcher(sharded, plan=plan)


def test_sharded_matcher_rejects_non_maximum_kernel(suite_graphs):
    sharded = partition_graph(suite_graphs["roadNet-PA"], 2)
    with pytest.raises(ValueError, match="maximum-cardinality"):
        ShardedMatcher(sharded, "karp-sipser")


def test_sharded_matching_requires_shards_for_plain_graph(suite_graphs):
    with pytest.raises(ValueError, match="shards= is required"):
        sharded_matching(suite_graphs["roadNet-PA"], "hk")
