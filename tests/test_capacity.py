"""Differential test suite for the capacitated b-matching solvers.

The backbone is a seeded sweep — four generator families x seeds x capacity
patterns, well over a hundred instances — where every solver's cardinality
is checked against the independent Edmonds-Karp flow oracle in
``tests/oracle.py``.  The oracle shares no code with the solvers under
test, so agreement across the sweep is evidence, not tautology.

On top of the sweep: exact weighted optima on tiny brute-forceable
instances, bit-identical b=1 delegation to the uncapacitated solvers
across all three engine backends, and the registry/graph plumbing
(capacities in the content hash, shard rejection, spec flags).
"""

from __future__ import annotations

import numpy as np
import pytest

from oracle import best_b_matching_weight, max_b_matching_cardinality
from repro.capacity import (
    CapacitatedMatching,
    b_matching_weight,
    capacitated_auction_matching,
    is_valid_b_matching,
)
from repro.core.api import SPECS, max_bipartite_matching, resolve_algorithm
from repro.engine import Engine
from repro.engine.job import MatchingJob
from repro.generators import (
    apply_capacity_spec,
    chung_lu_bipartite,
    rmat_bipartite,
    road_network_graph,
    uniform_random_bipartite,
    uniform_weights,
)
from repro.graph.builders import from_edges

# ----------------------------------------------------------------- the sweep
#
# Kept small per instance (the oracle is pure-Python max-flow) but broad:
# 4 families x 9 seeds x 3 capacity patterns = 108 oracle-checked instances,
# each solved by both cardinality solvers.

_FAMILIES = {
    "random": lambda seed: uniform_random_bipartite(30, 26, avg_degree=3.0, seed=seed),
    "rmat": lambda seed: rmat_bipartite(5, edge_factor=4.0, seed=seed),
    "powerlaw": lambda seed: chung_lu_bipartite(28, 30, avg_degree=3.5, seed=seed),
    "mesh": lambda seed: road_network_graph(36, seed=seed),
}
_SEEDS = tuple(range(9))
_PATTERNS = ("fixed:2", "uniform:1:3", "rows:3")
_SWEEP = [
    (family, seed, pattern)
    for family in sorted(_FAMILIES)
    for seed in _SEEDS
    for pattern in _PATTERNS
]
_CARDINALITY_SOLVERS = ("b-expand", "b-aug")


def _capacitated_instance(family: str, seed: int, pattern: str):
    graph = _FAMILIES[family](seed)
    return apply_capacity_spec(graph, pattern, seed=seed + 1)


def test_sweep_covers_at_least_100_instances():
    # The acceptance bar for this suite: >= 100 oracle-agreeing instances.
    assert len(_SWEEP) >= 100


@pytest.mark.parametrize("family,seed,pattern", _SWEEP)
def test_solvers_match_the_flow_oracle(family, seed, pattern):
    graph = _capacitated_instance(family, seed, pattern)
    reference = max_b_matching_cardinality(graph)
    for name in _CARDINALITY_SOLVERS:
        result = max_bipartite_matching(graph, algorithm=name)
        assert isinstance(result.matching, CapacitatedMatching), name
        assert is_valid_b_matching(graph, result.matching), name
        assert result.matching.cardinality == result.cardinality, name
        assert result.cardinality == reference, (name, family, seed, pattern)


@pytest.mark.parametrize("seed", range(8))
def test_auction_matches_the_oracle_on_col_capacitated_instances(seed):
    # The auction's shape: unit rows bidding for columns with seats.  It
    # must reach the same maximum cardinality as the flow oracle.
    graph = uniform_weights(
        uniform_random_bipartite(24, 8, avg_degree=3.0, seed=seed), seed=seed + 1
    )
    graph = apply_capacity_spec(graph, "cols:3", seed=seed)
    result = max_bipartite_matching(graph, algorithm="b-auction")
    assert is_valid_b_matching(graph, result.matching)
    assert result.cardinality == max_b_matching_cardinality(graph)


def test_auction_rejects_row_capacities_above_one():
    graph = apply_capacity_spec(
        uniform_random_bipartite(10, 10, avg_degree=3.0, seed=3), "fixed:2", seed=0
    )
    with pytest.raises(ValueError, match="b_row"):
        capacitated_auction_matching(graph)


# --------------------------------------------------- exact weighted optima
#
# Tiny hand-sized instances (few enough edges to enumerate every subset)
# where the brute-force oracle pins down the exact lexicographic
# (cardinality, weight) optimum the auction must hit.

_TINY_WEIGHTED = [
    # (n_rows, n_cols, [(u, v, w)], b_col)
    (4, 2, [(0, 0, 9.0), (1, 0, 7.0), (2, 0, 5.0), (2, 1, 4.0), (3, 1, 8.0)], [2, 1]),
    (5, 2, [(0, 0, 3.0), (1, 0, 6.0), (2, 0, 2.0), (3, 1, 5.0), (4, 1, 1.0),
            (0, 1, 4.0)], [2, 2]),
    (3, 3, [(0, 0, 2.0), (0, 1, 8.0), (1, 1, 3.0), (1, 2, 7.0), (2, 0, 6.0),
            (2, 2, 1.0)], [1, 2, 2]),
    (6, 2, [(0, 0, 10.0), (1, 0, 9.0), (2, 0, 8.0), (3, 0, 7.0), (4, 1, 2.0),
            (5, 1, 3.0), (0, 1, 1.0)], [3, 2]),
]


@pytest.mark.parametrize("case", range(len(_TINY_WEIGHTED)))
def test_auction_hits_the_brute_force_optimum(case):
    n_rows, n_cols, weighted_edges, b_col = _TINY_WEIGHTED[case]
    edges = [(u, v) for u, v, _ in weighted_edges]
    weights = [w for _, _, w in weighted_edges]
    graph = from_edges(edges, n_rows, n_cols, name=f"tiny-{case}", weights=weights)
    graph = graph.with_capacities(
        np.ones(n_rows, dtype=np.int64), np.asarray(b_col, dtype=np.int64)
    )
    best_cardinality, best_weight = best_b_matching_weight(graph, objective="max")
    result = max_bipartite_matching(graph, algorithm="b-auction")
    assert is_valid_b_matching(graph, result.matching)
    assert result.cardinality == best_cardinality
    assert b_matching_weight(graph, result.matching) == pytest.approx(best_weight)


# ------------------------------------------------- b=1 delegation identity
#
# With unit capacities (explicit all-ones or no capacities at all) each
# capacitated spec must return the *bit-identical* result of its
# uncapacitated counterpart — same row_match array, plus the
# ``capacity_delegated`` marker — on every engine backend.

_DELEGATIONS = [
    ("b-aug", "hk", False),
    ("b-expand", "hk", False),
    ("b-auction", "weighted-auction", True),
]


def _delegation_graph(weighted: bool, unit_caps: bool):
    graph = uniform_random_bipartite(50, 48, avg_degree=4.0, seed=17)
    if weighted:
        graph = uniform_weights(graph, seed=5)
    if unit_caps:
        graph = graph.with_capacities(
            np.ones(graph.n_rows, dtype=np.int64),
            np.ones(graph.n_cols, dtype=np.int64),
        )
    return graph


@pytest.mark.parametrize("unit_caps", [False, True], ids=["no-caps", "all-ones"])
@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_b1_delegation_is_bit_identical_across_backends(backend, unit_caps):
    jobs = [
        MatchingJob(
            graph=_delegation_graph(weighted, unit_caps),
            algorithm=name,
            job_id=name,
        )
        for name, _, weighted in _DELEGATIONS
    ]
    reference = {
        name: max_bipartite_matching(_delegation_graph(weighted, False), delegate)
        for name, delegate, weighted in _DELEGATIONS
    }
    with Engine(backend=backend, max_workers=2) as engine:
        for handle in engine.as_completed(engine.map(jobs)):
            result = handle.result()
            name = handle.job.job_id
            assert result.counters["capacity_delegated"] == 1, (backend, name)
            expected = reference[name]
            assert np.array_equal(
                result.matching.row_match, expected.matching.row_match
            ), (backend, name)
            assert result.cardinality == expected.cardinality, (backend, name)


def test_delegated_and_direct_paths_agree():
    # Same structure solved twice: once with real capacities, once with the
    # b=1 delegated path on the capacity-free graph.  The capacitated
    # optimum can only be larger.
    graph = uniform_random_bipartite(40, 40, avg_degree=3.0, seed=9)
    capacitated = apply_capacity_spec(graph, "fixed:2", seed=2)
    unit = max_bipartite_matching(graph, algorithm="b-aug")
    wide = max_bipartite_matching(capacitated, algorithm="b-aug")
    assert "capacity_delegated" not in wide.counters
    assert wide.cardinality >= unit.cardinality
    assert wide.cardinality == max_b_matching_cardinality(capacitated)


# --------------------------------------------------------------- plumbing


def test_capacitated_specs_are_flagged_in_the_registry():
    flagged = {name for name, spec in SPECS.items() if spec.capacitated}
    assert flagged == {"b-expand", "b-aug", "b-auction"}
    for name in flagged:
        assert SPECS[name].maximum


@pytest.mark.parametrize("name", sorted({"b-expand", "b-aug", "b-auction"}))
def test_capacitated_algorithms_cannot_run_sharded(name):
    with pytest.raises(TypeError, match="sharded"):
        resolve_algorithm(name, shards=2)


def test_content_hash_folds_capacities():
    graph = uniform_random_bipartite(20, 20, avg_degree=3.0, seed=1)
    ones = np.ones(20, dtype=np.int64)
    assert graph.content_hash() != graph.with_capacities(ones, ones).content_hash()
    assert (
        graph.with_capacities(ones * 2, ones).content_hash()
        != graph.with_capacities(ones, ones).content_hash()
    )
    # Stripping the capacities restores the capacity-free hash, so cache
    # entries written before capacities existed stay reachable.
    stripped = graph.with_capacities(ones * 2, ones).with_capacities(None, None)
    assert stripped.content_hash() == graph.content_hash()


def test_transpose_swaps_capacities():
    graph = apply_capacity_spec(
        uniform_random_bipartite(12, 7, avg_degree=2.0, seed=4), "uniform:1:3", seed=8
    )
    flipped = graph.transpose()
    assert np.array_equal(flipped.b_row, graph.b_col)
    assert np.array_equal(flipped.b_col, graph.b_row)
