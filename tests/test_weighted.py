"""Tests for the weighted matching subsystem (:mod:`repro.weighted`).

Covers the acceptance criteria of the subsystem: both solvers are registered
in ``SPECS``, agree on the total weight across Inline/Thread/ProcessPool
backends on several generator families, and every returned matching passes
the complementary-slackness certificate in :mod:`repro.weighted.verify`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import SPECS, max_bipartite_matching, resolve_algorithm
from repro.engine import Engine, MatchingJob
from repro.generators import (
    chung_lu_bipartite,
    geometric_weights,
    rank_correlated_weights,
    road_network_graph,
    uniform_random_bipartite,
    uniform_weights,
)
from repro.generators.weights import apply_weight_spec
from repro.graph.builders import empty_graph, from_edges
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.matching import Matching
from repro.seq.verify import is_valid_matching, maximum_matching_cardinality
from repro.service import MatchingService
from repro.weighted import (
    AuctionConfig,
    SAPConfig,
    certify_optimal,
    matching_total_weight,
    weighted_auction_matching,
    weighted_sap_matching,
)

WEIGHTED = ("weighted-sap", "weighted-auction")

# ε-CS certificates prove a gap of N·ε < 0.45 < 1; with the integral weights
# used throughout, any gap below 1 certifies exact optimality.
GAP_TOL = 0.999


def _families():
    return {
        "uniform": uniform_weights(
            uniform_random_bipartite(120, 130, avg_degree=4.0, seed=11), seed=1
        ),
        "powerlaw-geometric": geometric_weights(
            chung_lu_bipartite(110, 100, avg_degree=5.0, seed=12), p=0.1, seed=2
        ),
        "road-rank": rank_correlated_weights(road_network_graph(120, seed=13), seed=3),
    }


# ----------------------------------------------------------------- registry
def test_weighted_specs_registered():
    for name in WEIGHTED:
        assert name in SPECS
        spec = SPECS[name]
        assert spec.maximum and spec.weighted and not spec.accepts_initial
    assert SPECS["weighted-auction"].accepts_device
    assert not SPECS["weighted-sap"].accepts_device


def test_weighted_rejects_warm_start(tiny_graph):
    for name in WEIGHTED:
        with pytest.raises(TypeError, match="does not accept a warm-start"):
            resolve_algorithm(name).run(tiny_graph, initial=Matching.empty(tiny_graph))


def test_objective_validated(tiny_graph):
    with pytest.raises(ValueError, match="objective"):
        max_bipartite_matching(tiny_graph, "weighted-sap", objective="median")


# ------------------------------------------------- optimality + certificates
def test_solvers_agree_and_certify_across_families():
    for family, graph in _families().items():
        reference = maximum_matching_cardinality(graph)
        for objective in ("max", "min"):
            sap = weighted_sap_matching(graph, SAPConfig(objective=objective))
            auc = weighted_auction_matching(graph, AuctionConfig(objective=objective))
            for result in (sap, auc):
                assert is_valid_matching(graph, result.matching), (family, objective)
                assert result.cardinality == reference, (family, objective)
                report = certify_optimal(graph, result.matching, result.duals)
                assert report.ok(GAP_TOL), (family, objective, report)
            assert sap.counters["total_weight"] == pytest.approx(
                auc.counters["total_weight"]
            ), (family, objective)


def test_exact_against_brute_force():
    rng = np.random.default_rng(7)
    for trial in range(25):
        n_rows, n_cols = int(rng.integers(2, 6)), int(rng.integers(2, 6))
        n_edges = int(rng.integers(1, n_rows * n_cols + 1))
        pairs = np.column_stack(
            [rng.integers(0, n_rows, n_edges), rng.integers(0, n_cols, n_edges)]
        )
        weights = rng.integers(1, 30, n_edges).astype(float)
        graph = from_edges(pairs, n_rows=n_rows, n_cols=n_cols, weights=weights)
        best_k, best_w = _brute_force(graph, "max")
        for solve in (weighted_sap_matching, weighted_auction_matching):
            result = solve(graph)
            assert result.cardinality == best_k, trial
            assert result.counters["total_weight"] == pytest.approx(best_w), trial


def _brute_force(graph, objective):
    """Exhaustive optimal (cardinality, weight) for tiny graphs."""
    edges = [(int(u), int(v)) for u, v in graph.edges()]
    best = (0, 0.0)

    def rec(idx, used_rows, used_cols, k, total):
        nonlocal best
        better = k > best[0] or (
            k == best[0]
            and (total > best[1] if objective == "max" else total < best[1])
        )
        if better:
            best = (k, total)
        for t in range(idx, len(edges)):
            u, v = edges[t]
            if u in used_rows or v in used_cols:
                continue
            rec(t + 1, used_rows | {u}, used_cols | {v}, k + 1,
                total + graph.edge_weight(u, v))

    rec(0, frozenset(), frozenset(), 0, 0.0)
    return best


def test_min_objective_mirrors_negated_max():
    graph = uniform_weights(
        uniform_random_bipartite(60, 60, avg_degree=3.0, seed=21), seed=4
    )
    negated = graph.with_weights(-graph.weights)
    lo = weighted_sap_matching(graph, SAPConfig(objective="min"))
    hi = weighted_sap_matching(negated, SAPConfig(objective="max"))
    assert lo.counters["total_weight"] == pytest.approx(-hi.counters["total_weight"])


def test_unit_weight_fallback_is_cardinality(family_graph):
    reference = maximum_matching_cardinality(family_graph)
    for name in WEIGHTED:
        result = max_bipartite_matching(family_graph, name)
        assert result.cardinality == reference
        assert result.counters["total_weight"] == float(reference)
        assert certify_optimal(family_graph, result.matching, result.duals).ok(GAP_TOL)


def test_certificate_rejects_suboptimal_duals():
    graph = uniform_weights(
        uniform_random_bipartite(30, 30, avg_degree=3.0, seed=22), seed=5
    )
    result = weighted_sap_matching(graph)
    report = certify_optimal(graph, result.matching, result.duals)
    assert report.ok()
    # Inflate the dual of a matched row: tightness breaks by the same amount
    # and the measured gap must blow past the tolerance.  (A uniform λ shift
    # would *not* fail — the measured violations cancel exactly, which is the
    # certificate arithmetic working as intended.)
    from repro.weighted import DualCertificate

    matched_row = int(np.flatnonzero(result.matching.row_match >= 0)[0])
    tampered = result.duals.row_duals.copy()
    tampered[matched_row] += 50.0
    bad = DualCertificate(
        objective="max",
        lam=result.duals.lam,
        row_duals=tampered,
        col_duals=result.duals.col_duals,
    )
    bad_report = certify_optimal(graph, result.matching, bad)
    assert not bad_report.ok(GAP_TOL)
    assert bad_report.gap_bound == pytest.approx(50.0)


# ------------------------------------------------------------ engine parity
@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_backend_parity_on_total_weight(backend):
    graphs = list(_families().values())
    jobs = [
        MatchingJob(graph=g, algorithm=name, job_id=f"{name}-{i}")
        for i, g in enumerate(graphs)
        for name in WEIGHTED
    ]
    expected = {
        job.job_id: max_bipartite_matching(job.graph, job.algorithm).counters["total_weight"]
        for job in jobs
    }
    with Engine(backend=backend, max_workers=2) as engine:
        for handle in engine.as_completed(engine.map(jobs)):
            result = handle.result()
            assert result.counters["total_weight"] == pytest.approx(
                expected[handle.job.job_id]
            ), (backend, handle.job.job_id)
            report = certify_optimal(handle.job.graph, result.matching, result.duals)
            assert report.ok(GAP_TOL), (backend, handle.job.job_id)


def test_device_backend_charges_auction_kernels():
    graph = uniform_weights(
        uniform_random_bipartite(80, 80, avg_degree=4.0, seed=23), seed=6
    )
    device = VirtualGPU(DeviceSpec().scaled())
    result = weighted_auction_matching(graph, device=device)
    assert result.modeled_time is not None and result.modeled_time > 0
    assert device.ledger.n_launches >= 2  # bid + assign kernels
    names = {launch.name for launch in device.ledger.launches}
    assert {"auction_bid", "auction_assign"} <= names


# ------------------------------------------------------- service interaction
def test_service_cache_distinguishes_weights():
    base = uniform_random_bipartite(50, 50, avg_degree=3.0, seed=24)
    light = uniform_weights(base, seed=1)
    heavy = uniform_weights(base, seed=2)
    service = MatchingService()
    report = service.submit_batch(
        [MatchingJob(graph=g, algorithm="weighted-sap") for g in (light, heavy, light)]
    )
    # Different weights ⇒ different cache keys; the repeated graph dedups.
    assert report.executed == 2
    assert report.cache_hits + report.deduplicated == 1
    totals = [r.result.counters["total_weight"] for r in report.results]
    assert totals[0] == totals[2]


def test_matching_total_weight_matches_counters():
    graph = uniform_weights(
        uniform_random_bipartite(40, 45, avg_degree=3.0, seed=25), seed=8
    )
    result = weighted_sap_matching(graph)
    assert matching_total_weight(graph, result.matching) == pytest.approx(
        result.counters["total_weight"]
    )


# ----------------------------------------------------------- weight specs
def test_weight_generators_are_seeded_and_integral():
    base = uniform_random_bipartite(40, 40, avg_degree=3.0, seed=26)
    for factory in (
        lambda: uniform_weights(base, seed=9),
        lambda: geometric_weights(base, seed=9),
        lambda: rank_correlated_weights(base, seed=9),
    ):
        one, two = factory(), factory()
        assert np.array_equal(one.weights, two.weights)
        assert np.all(one.weights == np.floor(one.weights))
        assert np.all(one.weights >= 1)


def test_apply_weight_spec_forms():
    base = uniform_random_bipartite(30, 30, avg_degree=3.0, seed=27)
    assert apply_weight_spec(base, "uniform:5:9", seed=0).weights.max() <= 9
    assert apply_weight_spec(base, "geometric:0.5", seed=0).has_weights
    assert apply_weight_spec(base, "rank:0.1", seed=0).has_weights
    weighted = uniform_weights(base, seed=0)
    assert apply_weight_spec(weighted, "values") is weighted
    with pytest.raises(ValueError, match="carries no weights"):
        apply_weight_spec(base, "values")
    with pytest.raises(ValueError, match="unknown weight spec"):
        apply_weight_spec(base, "gaussian")
    with pytest.raises(ValueError, match="malformed weight spec"):
        apply_weight_spec(base, "uniform:a:b")
    # Extra arguments are rejected, not silently dropped (a user setting a
    # knob with no string form must hear about it).
    with pytest.raises(ValueError, match="at most 1 argument"):
        apply_weight_spec(base, "rank:0.25:50")
    with pytest.raises(ValueError, match="at most 2 argument"):
        apply_weight_spec(base, "uniform:1:100:7")
    # Empty segments keep their defaults instead of shifting later arguments.
    from repro.generators.weights import parse_weight_spec

    assert parse_weight_spec("uniform::50") == ("uniform", {"low": 1, "high": 50})
    assert parse_weight_spec("uniform:50") == ("uniform", {"low": 50, "high": 100})


# ------------------------------------------------------------- interactions
def test_dynamic_overlay_carries_weights():
    # The overlay used to reject weighted graphs outright; it now accepts
    # them, and an insertion that omits its weight fails with an error that
    # names the exact call (full coverage in tests/test_dynamic.py).
    from repro.dynamic import DynamicBipartiteGraph

    weighted = uniform_weights(
        uniform_random_bipartite(10, 10, avg_degree=2.0, seed=28), seed=1
    )
    dyn = DynamicBipartiteGraph(weighted)
    with pytest.raises(ValueError, match=r"insert_edge\(0, 1\) on weighted graph"):
        dyn.insert_edge(0, 1)
    if dyn.has_edge(0, 1):
        dyn.delete_edge(0, 1)
    dyn.insert_edge(0, 1, 42.0)
    assert dyn.snapshot().edge_weight(0, 1) == 42.0


def test_degenerate_shapes():
    for graph in (empty_graph(0, 5), empty_graph(5, 0), empty_graph(4, 4)):
        for name in WEIGHTED:
            result = max_bipartite_matching(graph, name)
            assert result.cardinality == 0
            assert certify_optimal(graph, result.matching, result.duals).ok(GAP_TOL)
