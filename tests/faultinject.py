"""Fault-injection harness for the engine/server test layer.

A thin, test-facing wrapper over :mod:`repro.engine.faults` (the library
core the server's ``--fault-*`` flags also use).  The harness adds what the
regression suites need repeatedly:

* :func:`faulty_engine` — an :class:`~repro.engine.Engine` whose backend is
  wrapped in a :class:`~repro.engine.faults.FaultInjectingBackend`, built
  from a backend *name* so one test parametrises over inline/thread/process;
* :func:`run_jobs` — submit a job list, wait for every handle, and return
  ``(handles, backend)`` for outcome assertions;
* :func:`outcome_table` — ``{job_id: (status, injected_fault)}`` so tests
  compare complete campaigns against expectations in one assert.

Deliberately *not* a ``test_*`` module: pytest must not collect it.  The
regression suite lives in ``tests/test_faultinject.py``; property tests over
admission control reuse the same schedules in ``tests/test_server.py``.
"""

from __future__ import annotations

import contextlib

from repro.engine import (
    Engine,
    FaultInjectingBackend,
    FaultSchedule,
    InjectedCrashError,  # noqa: F401  (re-exported for the test modules)
    InlineBackend,
    MatchingJob,
    ProcessPoolBackend,
    ThreadBackend,
)

#: Backend factories by name; process uses fork so workers inherit the
#: imported library instead of re-importing it per test (much faster, and
#: identical semantics for these pure-compute jobs).
BACKEND_FACTORIES = {
    "inline": lambda: InlineBackend(),
    "thread": lambda: ThreadBackend(max_workers=2),
    "process": lambda: ProcessPoolBackend(max_workers=2, mp_context=_fork_context()),
}


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return None


@contextlib.contextmanager
def faulty_engine(backend_name: str, schedule: FaultSchedule, **engine_kwargs):
    """An engine over ``backend_name`` with ``schedule`` injected, plus the wrapper.

    Yields ``(engine, fault_backend)`` — the wrapper exposes the injection
    log (``injected``) and per-kind ``counts`` for attribution asserts.
    """
    backend = FaultInjectingBackend(BACKEND_FACTORIES[backend_name](), schedule)
    engine = Engine(backend=backend, own_backend=True, **engine_kwargs)
    try:
        yield engine, backend
    finally:
        engine.shutdown()


def make_jobs(graph, count: int, algorithm: str = "pr") -> list[MatchingJob]:
    """``count`` identical-shape jobs with stable ids ``job-0 .. job-{n-1}``."""
    return [
        MatchingJob(graph=graph, algorithm=algorithm, job_id=f"job-{index}")
        for index in range(count)
    ]


def run_jobs(engine: Engine, jobs, *, timeout=None):
    """Submit every job (optionally deadlined), wait for all, return handles."""
    handles = [engine.submit(job, timeout=timeout) for job in jobs]
    for handle in handles:
        handle.wait()
    return handles


def outcome_table(handles) -> dict:
    """``{job_id: (status, injected_fault)}`` across a finished campaign."""
    return {
        handle.job.job_id: (handle.status.value, getattr(handle, "injected_fault", None))
        for handle in handles
    }
