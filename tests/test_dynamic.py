"""Tests for the dynamic-graph subsystem (overlay, incremental repair, traces)."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from oracle import max_b_matching_cardinality
from repro.capacity import CapacitatedMatching, is_valid_b_matching
from repro.cli import main
from repro.core.api import max_bipartite_matching, resolve_algorithm
from repro.dynamic import (
    DynamicBipartiteGraph,
    GraphUpdate,
    IncrementalMatcher,
    parse_update,
    read_update_trace,
    write_update_trace,
)
from repro.generators import (
    apply_capacity_spec,
    random_update_trace,
    rmat_bipartite,
    road_network_graph,
    suite_update_workload,
    trace_graph,
    uniform_random_bipartite,
    uniform_weights,
)
from repro.graph.builders import from_edges
from repro.matching import Matching
from repro.seq.verify import is_valid_matching, is_maximum_matching


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


@pytest.fixture
def tiny():
    return from_edges([(0, 0), (0, 1), (1, 0), (2, 2)], n_rows=3, n_cols=3, name="tiny")


# ------------------------------------------------------------------- overlay
class TestDynamicBipartiteGraph:
    def test_starts_identical_to_base(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        assert dyn.shape == tiny.shape
        assert dyn.n_edges == tiny.n_edges
        assert dyn.snapshot() is tiny  # quiescent snapshot is the base itself

    def test_insert_and_delete_edge(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        assert dyn.insert_edge(1, 2)
        assert dyn.has_edge(1, 2)
        assert not dyn.insert_edge(1, 2)  # already present
        assert dyn.n_edges == tiny.n_edges + 1
        assert dyn.delete_edge(0, 1)
        assert not dyn.has_edge(0, 1)
        assert not dyn.delete_edge(0, 1)  # already gone
        assert dyn.n_edges == tiny.n_edges

    def test_delete_then_reinsert_base_edge(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        assert dyn.delete_edge(0, 0)
        assert dyn.insert_edge(0, 0)  # resurrect the tombstoned base edge
        assert dyn.has_edge(0, 0)
        assert dyn.overlay_size == 0
        assert dyn.n_edges == tiny.n_edges

    def test_neighbors_merge_overlay(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        dyn.insert_edge(0, 2)
        dyn.delete_edge(0, 0)
        assert dyn.row_neighbors(0).tolist() == [1, 2]
        assert dyn.column_neighbors(2).tolist() == [0, 2]
        assert dyn.column_neighbors(0).tolist() == [1]

    def test_vertex_growth(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        u = dyn.add_row()
        v = dyn.add_col()
        assert (u, v) == (3, 3)
        assert dyn.shape == (4, 4)
        assert dyn.row_neighbors(u).size == 0
        dyn.insert_edge(u, v)
        assert dyn.has_edge(u, v)
        snap = dyn.snapshot()
        assert snap.shape == (4, 4)
        assert snap.has_edge(3, 3)

    def test_out_of_range_indices_raise(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        with pytest.raises(IndexError):
            dyn.insert_edge(3, 0)
        with pytest.raises(IndexError):
            dyn.delete_edge(0, -1)
        with pytest.raises(IndexError):
            dyn.has_edge(0, 3)
        with pytest.raises(IndexError):
            dyn.row_neighbors(-1)

    def test_snapshot_matches_direct_construction(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        dyn.delete_edge(0, 0)
        dyn.insert_edge(2, 0)
        dyn.insert_edge(1, 1)
        expected = from_edges(
            [(0, 1), (1, 0), (2, 2), (2, 0), (1, 1)], n_rows=3, n_cols=3, name="tiny"
        )
        assert dyn.snapshot().content_hash() == expected.content_hash()

    def test_snapshot_cached_until_mutation(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        dyn.insert_edge(1, 1)
        first = dyn.snapshot()
        assert dyn.snapshot() is first
        dyn.delete_edge(1, 1)
        assert dyn.snapshot() is not first

    def test_compact_folds_overlay(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        dyn.insert_edge(1, 1)
        dyn.delete_edge(0, 0)
        dyn.add_row()
        assert dyn.overlay_size == 3
        base = dyn.compact()
        assert dyn.overlay_size == 0
        assert dyn.base is base
        assert base.shape == (4, 3)
        assert base.has_edge(1, 1) and not base.has_edge(0, 0)
        # The algorithms run on compacted snapshots unchanged.
        result = max_bipartite_matching(base, "hk")
        assert result.cardinality == 3

    def test_apply_update_dispatch(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        assert dyn.apply(GraphUpdate.insert(1, 2))
        assert dyn.apply(GraphUpdate.delete(1, 2))
        assert dyn.apply(GraphUpdate.add_row())
        assert dyn.apply(GraphUpdate.add_col())
        assert dyn.shape == (4, 4)


# ------------------------------------------------------------ update traces
class TestUpdateTraces:
    def test_graph_update_validation(self):
        with pytest.raises(ValueError, match="unknown update op"):
            GraphUpdate("swap", 0, 0)
        with pytest.raises(ValueError, match="needs both"):
            GraphUpdate("insert", 1, None)
        assert GraphUpdate.add_row().u is None

    def test_parse_update_errors_name_location(self):
        with pytest.raises(ValueError, match="trace.jsonl:3"):
            parse_update({"op": "nope"}, where="trace.jsonl:3")
        with pytest.raises(ValueError, match="integer 'v'"):
            parse_update({"op": "insert", "u": 1, "v": "x"})
        with pytest.raises(ValueError, match="expected an object"):
            parse_update([1, 2])

    def test_trace_round_trip(self, tmp_path):
        trace = [
            GraphUpdate.insert(0, 1),
            GraphUpdate.delete(2, 3),
            GraphUpdate.add_row(),
            GraphUpdate.add_col(),
        ]
        path = tmp_path / "trace.jsonl"
        assert write_update_trace(trace, path) == 4
        assert list(read_update_trace(path)) == trace

    def test_read_trace_skips_comments_and_reports_bad_lines(self):
        good = io.StringIO('# comment\n\n{"op": "add_row"}\n')
        assert list(read_update_trace(good)) == [GraphUpdate.add_row()]
        bad = io.StringIO('{"op": "add_row"}\nnot json\n')
        with pytest.raises(ValueError, match=":2: invalid JSON"):
            list(read_update_trace(bad))

    def test_random_update_trace_is_seeded_and_consistent(self):
        graph = uniform_random_bipartite(40, 40, avg_degree=3, seed=5)
        a = random_update_trace(graph, 80, insert_fraction=0.6, seed=9)
        b = random_update_trace(graph, 80, insert_fraction=0.6, seed=9)
        assert a == b
        assert len(a) == 80
        # Replaying against the live edge set: every update changes the graph.
        dyn = DynamicBipartiteGraph(graph)
        for update in a:
            assert dyn.apply(update)

    def test_random_update_trace_validation(self):
        graph = uniform_random_bipartite(10, 10, avg_degree=2, seed=0)
        with pytest.raises(ValueError):
            random_update_trace(graph, -1)
        with pytest.raises(ValueError):
            random_update_trace(graph, 1, insert_fraction=1.5)

    def test_suite_update_workload(self):
        graph, trace = suite_update_workload("roadNet-PA", 20, profile="tiny", seed=3)
        assert graph.name == "roadNet-PA"
        assert len(trace) == 20


# ------------------------------------------------------- incremental repair
_FAMILIES = {
    "uniform": lambda seed: uniform_random_bipartite(90, 100, avg_degree=3, seed=seed),
    "rmat": lambda seed: rmat_bipartite(7, edge_factor=4.0, seed=seed),
    "road": lambda seed: road_network_graph(120, removal_fraction=0.3, seed=seed),
    "trace": lambda seed: trace_graph(100, strip_height=3, defect_fraction=0.05, seed=seed),
}


@pytest.mark.parametrize("family", sorted(_FAMILIES))
@pytest.mark.parametrize("algorithm", ["hk", "pr"])
def test_incremental_equals_scratch_after_every_batch(family, algorithm):
    """Property: incremental cardinality == from-scratch recompute, per batch."""
    for seed in (0, 1):
        graph = _FAMILIES[family](seed + 11)
        updates = random_update_trace(
            graph, 60, insert_fraction=0.55, growth_fraction=0.05, seed=seed
        )
        matcher = IncrementalMatcher(graph, plan=algorithm, batch_threshold=10**9)
        for batch in _chunks(updates, 12):
            matcher.apply(batch)
            snapshot = matcher.graph.snapshot()
            scratch = max_bipartite_matching(snapshot, algorithm)
            assert is_valid_matching(snapshot, matcher.matching)
            assert matcher.cardinality == scratch.cardinality


def test_delegated_batches_agree_with_incremental():
    graph = uniform_random_bipartite(80, 80, avg_degree=3, seed=2)
    updates = random_update_trace(graph, 90, insert_fraction=0.5, seed=4)
    incremental = IncrementalMatcher(graph, plan="hk", batch_threshold=10**9)
    delegated = IncrementalMatcher(graph, plan="hk", batch_threshold=1)
    for batch in _chunks(updates, 30):
        a = incremental.apply(batch)
        b = delegated.apply(batch)
        assert a["mode"] == "incremental" and b["mode"] == "delegated"
        assert a["cardinality"] == b["cardinality"]
    assert delegated.counters["recomputes"] == 3
    assert incremental.counters["recomputes"] == 0
    snapshot = delegated.graph.snapshot()
    assert is_maximum_matching(snapshot, delegated.matching)


def test_insert_both_endpoints_matched_can_still_augment():
    # r -(free)- v', u -(matched)- v', u' -(matched)- v, u' - c_free: adding
    # (u, v) opens a length-5 augmenting path although u and v are matched.
    graph = from_edges(
        [(0, 0), (1, 1), (2, 0), (1, 2)], n_rows=3, n_cols=3, name="aug"
    )
    initial = Matching.from_pairs(graph, [(0, 0), (1, 1)])
    matcher = IncrementalMatcher(graph, initial=initial, plan="hk")
    assert matcher.cardinality == 2
    matcher.insert_edge(0, 1)
    assert matcher.cardinality == 3
    assert is_maximum_matching(matcher.graph.snapshot(), matcher.matching)


def test_delete_matched_edge_reaugments():
    graph = from_edges([(0, 0), (0, 1), (1, 0), (1, 1)], n_rows=2, n_cols=2, name="del")
    matcher = IncrementalMatcher(graph, plan="hk")
    assert matcher.cardinality == 2
    matcher.delete_edge(0, int(matcher.matching.row_match[0]))
    # One matched edge removed; the repair re-augments back to 2.
    assert matcher.cardinality == 2
    matcher.delete_edge(0, int(matcher.matching.row_match[0]))
    assert matcher.cardinality == 1
    assert is_maximum_matching(matcher.graph.snapshot(), matcher.matching)


def test_delete_unmatched_edge_is_free(tiny):
    matcher = IncrementalMatcher(tiny, plan="hk")
    searches = matcher.counters["searches"]
    unmatched = [
        (u, v)
        for u, v in tiny.edges().tolist()
        if matcher.matching.row_match[u] != v
    ]
    assert unmatched, "fixture needs an unmatched edge"
    u, v = unmatched[0]
    matcher.delete_edge(u, v)
    assert matcher.counters["searches"] == searches  # no search ran


def test_matcher_vertex_growth_and_matching_extension(tiny):
    matcher = IncrementalMatcher(tiny, plan="hk")
    before = matcher.cardinality
    u = matcher.add_row()
    v = matcher.add_col()
    assert matcher.cardinality == before
    matcher.insert_edge(u, v)
    assert matcher.cardinality == before + 1
    assert is_maximum_matching(matcher.graph.snapshot(), matcher.matching)


def test_initial_matching_shape_is_validated(tiny):
    other = uniform_random_bipartite(10, 10, avg_degree=2, seed=0)
    with pytest.raises(ValueError, match="initial matching"):
        IncrementalMatcher(tiny, initial=Matching.empty(other), plan="hk")


def test_heuristic_plans_are_rejected(tiny):
    with pytest.raises(ValueError, match="heuristic"):
        IncrementalMatcher(tiny, plan="cheap")
    with pytest.raises(ValueError, match="batch_threshold"):
        IncrementalMatcher(tiny, plan="hk", batch_threshold=0)


def test_custom_recompute_is_used_for_batches(tiny):
    calls = []
    plan = resolve_algorithm("hk")

    def recompute(snapshot, initial):
        calls.append((snapshot.n_edges, initial))
        return plan.run(snapshot, initial)

    matcher = IncrementalMatcher(tiny, plan=plan, batch_threshold=2, recompute=recompute)
    assert len(calls) == 1 and calls[0][1] is None  # the initial solve
    matcher.apply([GraphUpdate.insert(1, 2), GraphUpdate.insert(2, 0)])
    assert len(calls) == 2
    assert isinstance(calls[1][1], Matching)  # warm-started from the survivor
    assert matcher.counters["recomputes"] == 1


def test_snapshot_content_hash_keys_caches():
    # The service memoizes on content_hash; equal dynamic states must agree.
    graph = uniform_random_bipartite(30, 30, avg_degree=2, seed=1)
    a = DynamicBipartiteGraph(graph)
    b = DynamicBipartiteGraph(graph)
    for dyn in (a, b):
        dyn.insert_edge(0, 5)
        dyn.delete_edge(*map(int, graph.edges()[0]))
    assert a.snapshot().content_hash() == b.snapshot().content_hash()
    assert a.snapshot().content_hash() != graph.content_hash()


# ----------------------------------- weighted / capacitated dynamic layer
class TestWeightedCapacitatedOverlay:
    def test_weighted_base_round_trips_through_snapshot(self):
        graph = from_edges([(0, 0), (1, 1)], 2, 2, name="wtiny", weights=[2.0, 3.0])
        dyn = DynamicBipartiteGraph(graph)
        dyn.insert_edge(0, 1, 5.0)
        snap = dyn.snapshot()
        assert snap.has_weights
        assert snap.edge_weight(0, 1) == 5.0
        assert snap.edge_weight(1, 1) == 3.0

    def test_insert_without_weight_names_the_operation(self):
        # Regression: the old message ("weighted graphs are not supported")
        # named neither the op nor the fix; it now points at the exact call.
        graph = from_edges([(0, 0)], 2, 2, name="wtiny", weights=[2.0])
        dyn = DynamicBipartiteGraph(graph)
        with pytest.raises(ValueError, match=r"insert_edge\(1, 1\) on weighted graph"):
            dyn.insert_edge(1, 1)

    def test_weight_on_unweighted_graph_is_rejected(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        with pytest.raises(ValueError, match="weight"):
            dyn.insert_edge(1, 2, 4.0)

    def test_capacity_on_uncapacitated_graph_names_the_operation(self, tiny):
        dyn = DynamicBipartiteGraph(tiny)
        with pytest.raises(ValueError, match=r"add_row\(b=2\)"):
            dyn.add_row(b=2)
        with pytest.raises(ValueError, match=r"add_col\(b=3\)"):
            dyn.add_col(b=3)

    def test_capacitated_arrivals_and_retirement(self):
        graph = apply_capacity_spec(
            uniform_random_bipartite(6, 6, avg_degree=2.0, seed=1), "fixed:2", seed=0
        )
        dyn = DynamicBipartiteGraph(graph)
        v = dyn.add_col(b=3)
        dyn.insert_edge(0, v)
        snap = dyn.snapshot()
        assert snap.has_capacities
        assert int(snap.b_col[v]) == 3
        assert int(snap.b_row[0]) == 2
        # Retirement deletes every incident edge; the vertex index remains.
        degree = dyn.row_neighbors(0).size
        assert degree > 0
        assert dyn.apply(GraphUpdate.retire_row(0))
        assert dyn.row_neighbors(0).size == 0
        assert dyn.shape == snap.shape


class TestCapacitatedIncremental:
    def test_weighted_graph_needs_a_weighted_plan(self):
        graph = uniform_weights(
            uniform_random_bipartite(12, 12, avg_degree=2.0, seed=3), seed=4
        )
        with pytest.raises(ValueError, match=r"'hk' would silently ignore"):
            IncrementalMatcher(graph, plan="hk")

    def test_capacitated_graph_needs_a_capacitated_plan(self):
        graph = apply_capacity_spec(
            uniform_random_bipartite(12, 12, avg_degree=2.0, seed=3), "fixed:2", seed=0
        )
        with pytest.raises(ValueError, match=r"'hk' would silently ignore"):
            IncrementalMatcher(graph, plan="hk")

    def test_delegated_only_plan_rejects_explicit_initial(self):
        graph = apply_capacity_spec(
            uniform_random_bipartite(12, 12, avg_degree=2.0, seed=3), "fixed:2", seed=0
        )
        initial = max_bipartite_matching(graph, "b-aug").matching
        with pytest.raises(ValueError, match="drop the initial matching"):
            IncrementalMatcher(graph, plan="b-expand", initial=initial)

    def test_weighted_plan_tracks_scratch_weight(self):
        graph = uniform_weights(
            uniform_random_bipartite(30, 30, avg_degree=3.0, seed=7), seed=8
        )
        matcher = IncrementalMatcher(graph, plan="weighted-sap")
        rng = np.random.default_rng(5)
        updates = []
        for _ in range(20):
            u, v = int(rng.integers(30)), int(rng.integers(30))
            if matcher.graph.has_edge(u, v):
                updates.append(GraphUpdate.delete(u, v))
            else:
                updates.append(GraphUpdate.insert(u, v, weight=float(rng.integers(1, 50))))
        summary = matcher.apply(updates)
        assert summary["mode"] == "delegated"
        snapshot = matcher.graph.snapshot()
        scratch = max_bipartite_matching(snapshot, "weighted-sap")
        assert matcher.cardinality == scratch.cardinality
        assert is_valid_matching(snapshot, matcher.matching)

    def test_capacitated_churn_stays_maximum(self):
        # Vertex arrivals (with capacities), retirements and edge churn: the
        # repaired b-matching must equal the flow oracle after every batch.
        graph = apply_capacity_spec(
            uniform_random_bipartite(14, 10, avg_degree=2.5, seed=9), "cols:2", seed=1
        )
        matcher = IncrementalMatcher(graph, plan="b-aug", batch_threshold=1)
        rng = np.random.default_rng(11)
        n_rows, n_cols = graph.shape
        updates = []
        for _ in range(40):
            roll = rng.random()
            if roll < 0.3:
                updates.append(GraphUpdate.add_row())
                u, n_rows = n_rows, n_rows + 1
                updates.append(GraphUpdate.insert(u, int(rng.integers(n_cols))))
            elif roll < 0.4:
                updates.append(GraphUpdate.add_col(b=int(rng.integers(1, 4))))
                v, n_cols = n_cols, n_cols + 1
                updates.append(GraphUpdate.insert(int(rng.integers(n_rows)), v))
            elif roll < 0.6:
                updates.append(GraphUpdate.retire_row(int(rng.integers(n_rows))))
            else:
                updates.append(GraphUpdate.insert(
                    int(rng.integers(n_rows)), int(rng.integers(n_cols))
                ))
        for batch in _chunks(updates, 8):
            summary = matcher.apply(batch)
            assert summary["mode"] == "delegated"
            snapshot = matcher.graph.snapshot()
            assert isinstance(matcher.matching, CapacitatedMatching)
            assert is_valid_b_matching(snapshot, matcher.matching)
            assert matcher.cardinality == max_b_matching_cardinality(snapshot)

    def test_retire_row_in_normal_mode_repairs(self):
        graph = uniform_random_bipartite(20, 20, avg_degree=3.0, seed=13)
        matcher = IncrementalMatcher(graph, plan="hk", batch_threshold=10**9)
        matcher.retire_row(0)
        snapshot = matcher.graph.snapshot()
        assert snapshot.row_degrees[0] == 0
        assert is_maximum_matching(snapshot, matcher.matching)
        matcher.retire_col(3)
        snapshot = matcher.graph.snapshot()
        assert is_maximum_matching(snapshot, matcher.matching)


# --------------------------------------------- scenario replay determinism
class TestScenarioReplayDeterminism:
    def _replay(self, capsys, backend: str) -> str:
        argv = [
            "stream",
            "--scenario", "task-routing",
            "--seed", "5",
            "--batch-size", "40",
        ]
        if backend:
            argv += ["--backend", backend]
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_same_seed_replays_are_byte_identical(self, capsys):
        assert self._replay(capsys, "") == self._replay(capsys, "")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_serialise_byte_identically(self, capsys, backend):
        # The whole point of dropping wall-clock and worker identity from
        # the stream rows: replays are comparable across engine backends.
        assert self._replay(capsys, "inline") == self._replay(capsys, backend)

    def test_summary_reports_scenario_and_slo(self, capsys):
        out = self._replay(capsys, "inline")
        lines = [line for line in out.splitlines() if line]
        events = [json.loads(line) for line in lines]
        assert events[0]["type"] == "initial"
        assert events[0]["scenario"] == "task-routing"
        summary = events[-1]
        assert summary["type"] == "summary"
        assert "backend" not in summary
        assert 0.0 <= summary["assignment_rate"] <= 1.0
        assert summary["slo"] == pytest.approx(0.9)
        assert summary["slo_met"] is True
        batches = [e for e in events if e["type"] == "batch"]
        assert batches and all("slo_met" in b for b in batches)
