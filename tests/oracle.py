"""Exact small-instance b-matching oracles for the differential test suite.

Two independent references, both deliberately naive (pure stdlib + numpy,
no scipy) so they share no code — and therefore no bugs — with the solvers
under test:

``max_b_matching_cardinality``
    Exact maximum b-matching cardinality via BFS max-flow (Edmonds–Karp) on
    the flow network  ``source → columns (cap b_col) → per-edge unit arcs →
    rows (cap b_row) → sink``.  Unit augmentations keep the code tiny; the
    test instances are small by construction.

``best_b_matching_weight``
    Exact optimum of the lexicographic (cardinality, weight) objective the
    weighted solvers optimise, by brute-force enumeration of edge subsets.
    Only usable on tiny instances (the caller keeps ``n_edges`` ≤ ~16).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np


def _effective_capacities(graph):
    if graph.has_capacities:
        return graph.b_row.tolist(), graph.b_col.tolist()
    return [1] * graph.n_rows, [1] * graph.n_cols


def max_b_matching_cardinality(graph) -> int:
    """Exact maximum b-matching cardinality of ``graph`` (BFS max-flow)."""
    b_row, b_col = _effective_capacities(graph)
    n_rows, n_cols = graph.n_rows, graph.n_cols
    source = 0
    col_node = lambda v: 1 + v  # noqa: E731 - tiny local helpers
    row_node = lambda u: 1 + n_cols + u  # noqa: E731
    sink = 1 + n_cols + n_rows

    # capacity[a][b] = residual capacity of arc a→b.
    capacity: list[dict[int, int]] = [dict() for _ in range(sink + 1)]

    def add_arc(a: int, b: int, cap: int) -> None:
        capacity[a][b] = capacity[a].get(b, 0) + cap
        capacity[b].setdefault(a, 0)

    for v in range(n_cols):
        add_arc(source, col_node(v), b_col[v])
    for u in range(n_rows):
        add_arc(row_node(u), sink, b_row[u])
    for u, v in graph.edges().tolist():
        add_arc(col_node(v), row_node(u), 1)

    flow = 0
    while True:
        # BFS for a shortest residual source→sink path.
        parent = {source: source}
        queue = [source]
        while queue and sink not in parent:
            a = queue.pop(0)
            for b, cap in capacity[a].items():
                if cap > 0 and b not in parent:
                    parent[b] = a
                    queue.append(b)
        if sink not in parent:
            return flow
        # Augment by one unit (every arc capacity here is a small integer;
        # unit steps keep the bookkeeping obvious).
        b = sink
        while b != source:
            a = parent[b]
            capacity[a][b] -= 1
            capacity[b][a] += 1
            b = a
        flow += 1


def best_b_matching_weight(graph, objective: str = "max") -> tuple[int, float]:
    """Exact lexicographic optimum ``(cardinality, weight)`` by brute force.

    Among all valid b-matchings of ``graph``, finds the maximum cardinality,
    and among those the best total weight (``objective`` = ``"max"`` or
    ``"min"``; unit weights when the graph carries none).  Enumerates every
    edge subset of the maximum cardinality — callers keep instances tiny.
    """
    if objective not in ("max", "min"):
        raise ValueError(f"objective must be 'max' or 'min', not {objective!r}")
    b_row, b_col = _effective_capacities(graph)
    edges = [(int(u), int(v)) for u, v in graph.edges().tolist()]
    if graph.has_weights:
        weight_of = {
            (int(u), int(v)): float(w)
            for (u, v), w in zip(edges, _col_csr_weights(graph))
        }
    else:
        weight_of = {e: 1.0 for e in edges}

    best_cardinality = max_b_matching_cardinality(graph)
    best_weight = None
    for subset in combinations(edges, best_cardinality):
        row_load = [0] * graph.n_rows
        col_load = [0] * graph.n_cols
        ok = True
        for u, v in subset:
            row_load[u] += 1
            col_load[v] += 1
            if row_load[u] > b_row[u] or col_load[v] > b_col[v]:
                ok = False
                break
        if not ok:
            continue
        total = sum(weight_of[e] for e in subset)
        if (
            best_weight is None
            or (objective == "max" and total > best_weight)
            or (objective == "min" and total < best_weight)
        ):
            best_weight = total
    return best_cardinality, float(best_weight if best_weight is not None else 0.0)


def _col_csr_weights(graph) -> np.ndarray:
    """The graph's weights in the same order ``graph.edges()`` yields pairs."""
    return np.asarray(graph.weights, dtype=np.float64)
