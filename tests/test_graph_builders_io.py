"""Tests for graph builders, validation, statistics and Matrix-Market I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    from_dense,
    from_edges,
    from_scipy_sparse,
    read_matrix_market,
    structure_summary,
    validate_graph,
    write_matrix_market,
)
from repro.generators import uniform_random_bipartite
from repro.graph.stats import degree_statistics
from repro.graph.validate import GraphValidationError


def test_from_dense():
    mat = [[1, 0, 2], [0, 0, 0], [3, 4, 0]]
    g = from_dense(mat)
    assert g.shape == (3, 3)
    assert {(int(u), int(v)) for u, v in g.edges()} == {(0, 0), (0, 2), (2, 0), (2, 1)}


def test_from_dense_rejects_non_2d():
    with pytest.raises(ValueError):
        from_dense([1, 2, 3])


def test_from_scipy_sparse_drops_explicit_zeros():
    from scipy import sparse

    mat = sparse.coo_matrix(([1.0, 0.0, 2.0], ([0, 1, 2], [0, 1, 2])), shape=(3, 3))
    g = from_scipy_sparse(mat)
    assert g.n_edges == 2


def test_from_scipy_sparse_type_error():
    with pytest.raises(TypeError):
        from_scipy_sparse(np.eye(3))


def test_from_edges_empty():
    g = from_edges([], n_rows=5, n_cols=7)
    assert g.n_edges == 0
    assert g.shape == (5, 7)


def test_validate_accepts_built_graphs(family_graph):
    validate_graph(family_graph)


def test_validate_rejects_unsorted_adjacency():
    from repro.graph import BipartiteGraph

    bad = BipartiteGraph(
        n_rows=2,
        n_cols=1,
        col_ptr=np.array([0, 2]),
        col_ind=np.array([1, 0]),  # unsorted
        row_ptr=np.array([0, 1, 2]),
        row_ind=np.array([0, 0]),
    )
    with pytest.raises(GraphValidationError):
        validate_graph(bad)


def test_validate_rejects_mismatched_transposes():
    from repro.graph import BipartiteGraph

    bad = BipartiteGraph(
        n_rows=2,
        n_cols=2,
        col_ptr=np.array([0, 1, 2]),
        col_ind=np.array([0, 1]),
        row_ptr=np.array([0, 1, 2]),
        row_ind=np.array([1, 0]),  # describes the other diagonal
    )
    with pytest.raises(GraphValidationError):
        validate_graph(bad)


def test_structure_summary(tiny_graph):
    summary = structure_summary(tiny_graph)
    assert summary.n_rows == 4
    assert summary.n_cols == 4
    assert summary.n_edges == 6
    assert summary.isolated_cols == 1
    assert summary.isolated_rows == 0
    assert summary.max_col_degree == 2
    d = summary.as_dict()
    assert d["name"] == "tiny"


def test_degree_statistics_empty():
    from repro.graph.builders import empty_graph

    stats = degree_statistics(empty_graph(0, 0))
    assert stats["rows"]["mean"] == 0.0


def test_matrix_market_roundtrip(tmp_path, family_graph):
    path = tmp_path / "graph.mtx"
    write_matrix_market(family_graph, path)
    back = read_matrix_market(path)
    assert back.shape == family_graph.shape
    assert back.n_edges == family_graph.n_edges
    assert np.array_equal(back.col_ptr, family_graph.col_ptr)
    assert np.array_equal(back.col_ind, family_graph.col_ind)


def test_matrix_market_symmetric_expansion(tmp_path):
    content = "\n".join(
        [
            "%%MatrixMarket matrix coordinate real symmetric",
            "% a comment",
            "3 3 3",
            "1 1 1.5",
            "2 1 2.0",
            "3 2 -1.0",
            "",
        ]
    )
    path = tmp_path / "sym.mtx"
    path.write_text(content)
    g = read_matrix_market(path)
    edges = {(int(u), int(v)) for u, v in g.edges()}
    assert edges == {(0, 0), (1, 0), (0, 1), (2, 1), (1, 2)}


def test_matrix_market_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("not a matrix market file\n1 1 0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_matrix_market_rejects_array_format(tmp_path):
    path = tmp_path / "dense.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_matrix_market_entry_count_mismatch(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n2 2\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_matrix_market_gzip(tmp_path, tiny_graph):
    import gzip

    plain = tmp_path / "g.mtx"
    write_matrix_market(tiny_graph, plain)
    gz = tmp_path / "g.mtx.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    back = read_matrix_market(gz)
    assert back.n_edges == tiny_graph.n_edges


def test_matrix_market_gzip_write_roundtrip(tmp_path, tiny_graph):
    # Regression: write_matrix_market could not produce the .mtx.gz files
    # read_matrix_market accepts, so gz round-trips broke.
    import gzip

    gz = tmp_path / "g.mtx.gz"
    write_matrix_market(tiny_graph, gz)
    with gzip.open(gz, "rt") as fh:  # really compressed, not plain text
        assert fh.readline().startswith("%%MatrixMarket")
    back = read_matrix_market(gz)
    assert back.shape == tiny_graph.shape
    assert back.content_hash() == tiny_graph.content_hash()
    assert back.name == "g"


def test_matrix_market_malformed_entry_line(tmp_path):
    # Regression: a one-token entry line used to surface as a bare IndexError.
    path = tmp_path / "short-line.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2\n")
    with pytest.raises(ValueError, match=r"short-line\.mtx:4: malformed entry line '2'"):
        read_matrix_market(path)


def test_matrix_market_non_integer_entry(tmp_path):
    path = tmp_path / "nonint.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n")
    with pytest.raises(ValueError, match=r"nonint\.mtx:3: non-integer indices"):
        read_matrix_market(path)


def test_matrix_market_entry_outside_declared_size(tmp_path):
    # Regression: 1-based indices outside the declared size used to crash the
    # CSR builder instead of raising a ValueError naming the offending line.
    path = tmp_path / "oob.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n3 1\n")
    with pytest.raises(ValueError, match=r"oob\.mtx:4: row index 3 outside the declared size 2"):
        read_matrix_market(path)
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 0\n")
    with pytest.raises(
        ValueError, match=r"oob\.mtx:3: column index 0 outside the declared size 2"
    ):
        read_matrix_market(path)


# ------------------------------------------------------------ edge weights
def test_from_edges_weights_deduplicate_to_maximum():
    graph = from_edges(
        [(0, 0), (0, 1), (0, 0)], n_rows=2, n_cols=2, weights=[1.0, 2.0, 7.0]
    )
    assert graph.has_weights
    assert graph.edge_weight(0, 0) == 7.0  # parallel edges keep the best weight
    assert graph.edge_weight(0, 1) == 2.0
    with pytest.raises(ValueError, match="one entry per edge pair"):
        from_edges([(0, 0)], n_rows=1, n_cols=1, weights=[1.0, 2.0])


def test_content_hash_distinguishes_weights():
    edges = [(0, 0), (0, 1), (1, 1)]
    bare = from_edges(edges, n_rows=2, n_cols=2)
    light = from_edges(edges, n_rows=2, n_cols=2, weights=[1.0, 2.0, 3.0])
    heavy = from_edges(edges, n_rows=2, n_cols=2, weights=[9.0, 2.0, 3.0])
    # Same structure, different weights: three distinct cache identities ...
    assert len({bare.content_hash(), light.content_hash(), heavy.content_hash()}) == 3
    # ... and weightless graphs hash as before weights existed (the name
    # never participates), so stripping the weights restores the old key.
    assert light.with_weights(None).content_hash() == bare.content_hash()
    assert light.with_name("renamed").content_hash() == light.content_hash()
    same = from_edges(edges, n_rows=2, n_cols=2, weights=[1.0, 2.0, 3.0])
    assert same.content_hash() == light.content_hash()


@pytest.mark.parametrize("suffix", ["mtx", "mtx.gz"])
def test_matrix_market_weighted_roundtrip(tmp_path, suffix):
    rng = np.random.default_rng(5)
    base = uniform_random_bipartite(40, 35, avg_degree=3.0, seed=6)
    graph = base.with_weights(rng.uniform(-3.0, 9.0, base.n_edges))
    path = tmp_path / f"weighted.{suffix}"
    write_matrix_market(graph, path)
    back = read_matrix_market(path, with_weights=True)
    assert np.array_equal(back.weights, graph.weights)  # %.17g round-trips exactly
    assert back.content_hash() == graph.content_hash()
    # Write → read → write → read reaches a fixed point.
    again = tmp_path / f"again.{suffix}"
    write_matrix_market(back, again)
    assert read_matrix_market(again, with_weights=True).content_hash() == graph.content_hash()
    # Reading the same file without weights recovers the bare structure.
    assert read_matrix_market(path).content_hash() == base.content_hash()


def test_matrix_market_weighted_symmetric_expansion(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 4.5\n3 3 2.0\n"
    )
    graph = read_matrix_market(path, with_weights=True)
    assert graph.edge_weight(1, 0) == 4.5
    assert graph.edge_weight(0, 1) == 4.5  # mirrored entry carries the value
    assert graph.edge_weight(2, 2) == 2.0


def test_matrix_market_weighted_skew_symmetric_negates_mirror(tmp_path):
    # Regression: the mirrored entry of a skew-symmetric value file is -A[i,j]
    # per the Matrix-Market spec; it used to be copied with the wrong sign.
    path = tmp_path / "skew.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 1\n2 1 4.5\n"
    )
    graph = read_matrix_market(path, with_weights=True)
    assert graph.edge_weight(1, 0) == 4.5
    assert graph.edge_weight(0, 1) == -4.5


def test_matrix_market_weight_errors(tmp_path):
    path = tmp_path / "pat.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n")
    with pytest.raises(ValueError, match="with_weights=True needs a 'real' or 'integer'"):
        read_matrix_market(path, with_weights=True)
    path = tmp_path / "noval.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n")
    with pytest.raises(ValueError, match=r"noval\.mtx:3: .* has no value"):
        read_matrix_market(path, with_weights=True)
    path = tmp_path / "badval.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n")
    with pytest.raises(ValueError, match=r"badval\.mtx:3: non-numeric value"):
        read_matrix_market(path, with_weights=True)


# ---------------------------------------------------------------------------
# streaming reader / writer / chunked hashing
# ---------------------------------------------------------------------------
def _gzip_copy(path, dest):
    import gzip

    dest.write_bytes(gzip.compress(path.read_bytes()))
    return dest


@pytest.mark.parametrize(
    "body, message",
    [
        ("2 2 2\n1 1\n9 1\n", r"{name}:4: row index 9 outside the declared size 2"),
        ("2 2 2\n1 1\nx 1\n", r"{name}:4: non-integer indices in entry line 'x 1'"),
        ("2 2 2\n1 1\n2\n", r"{name}:4: malformed entry line '2'"),
        ("2 2 2\n1 1\n", r"{name}: expected 2 entries, found 1"),
        ("2 2 1\n1 1\n2 2\n", r"{name}: more entries than declared \(1\)"),
    ],
)
def test_matrix_market_gz_reports_logical_line_numbers(tmp_path, body, message):
    # Regression: .mtx.gz errors must cite the same *logical* line number as
    # the uncompressed file, not a byte offset or a compressed-stream count.
    header = "%%MatrixMarket matrix coordinate pattern general\n"
    plain = tmp_path / "bad.mtx"
    plain.write_text(header + body)
    gz = _gzip_copy(plain, tmp_path / "bad.mtx.gz")
    with pytest.raises(ValueError, match=message.format(name=r"bad\.mtx")) as plain_err:
        read_matrix_market(plain)
    with pytest.raises(ValueError, match=message.format(name=r"bad\.mtx\.gz")) as gz_err:
        read_matrix_market(gz)
    # Identical messages apart from the path itself.
    assert str(plain_err.value).replace("bad.mtx", "X") == str(
        gz_err.value
    ).replace("bad.mtx.gz", "X")


def test_matrix_market_stream_chunks_match_bulk_read(tmp_path):
    from repro.graph.io import MatrixMarketStream

    graph = uniform_random_bipartite(60, 50, avg_degree=5.0, seed=44)
    path = tmp_path / "g.mtx"
    write_matrix_market(graph, path)
    rows, cols = [], []
    with MatrixMarketStream(path, chunk_entries=7) as stream:
        assert stream.header.n_rows == 60 and stream.header.n_cols == 50
        for r, c, values in stream:
            assert values is None
            assert 0 < r.size <= 7
            rows.append(r)
            cols.append(c)
    streamed = from_edges(
        np.column_stack([np.concatenate(rows), np.concatenate(cols)]),
        n_rows=60,
        n_cols=50,
    )
    assert streamed.content_hash() == graph.content_hash()


def test_matrix_market_stream_writer_round_trips(tmp_path):
    from repro.graph.io import MatrixMarketStreamWriter

    graph = uniform_random_bipartite(40, 40, avg_degree=4.0, seed=45)
    edges = graph.edges()
    path = tmp_path / "w.mtx.gz"
    with MatrixMarketStreamWriter(
        path, n_rows=40, n_cols=40, n_entries=graph.n_edges
    ) as writer:
        for start in range(0, graph.n_edges, 11):
            chunk = edges[start : start + 11]
            writer.write_chunk(chunk[:, 0], chunk[:, 1])
    assert read_matrix_market(path).content_hash() == graph.content_hash()


def test_matrix_market_stream_writer_checks_declared_count(tmp_path):
    from repro.graph.io import MatrixMarketStreamWriter

    writer = MatrixMarketStreamWriter(tmp_path / "w.mtx", n_rows=3, n_cols=3, n_entries=2)
    writer.write_chunk(np.array([0]), np.array([1]))
    with pytest.raises(ValueError, match="declared 2 entries but wrote 1"):
        writer.close()


def test_chunked_content_hash_equals_in_memory(tmp_path):
    # The streamed digest must be byte-identical to BipartiteGraph.content_hash
    # regardless of how the arrays are split into chunks.
    from repro.graph.io import ChunkedContentHasher, chunked_content_hash

    graph = uniform_random_bipartite(80, 70, avg_degree=6.0, seed=46)

    def split(arr, size):
        return [arr[i : i + size] for i in range(0, len(arr), size)] or [arr]

    for chunk in (1, 7, 10_000):
        digest = chunked_content_hash(
            graph.n_rows,
            graph.n_cols,
            split(graph.col_ptr, chunk),
            split(graph.col_ind, chunk),
            split(graph.row_ptr, chunk),
            split(graph.row_ind, chunk),
        )
        assert digest == graph.content_hash()

    weighted = graph.with_weights(np.linspace(1.0, 2.0, graph.n_edges))
    digest = chunked_content_hash(
        graph.n_rows,
        graph.n_cols,
        graph.col_ptr,
        graph.col_ind,
        graph.row_ptr,
        graph.row_ind,
        weights=split(weighted.weights, 13),
    )
    assert digest == weighted.content_hash()

    hasher = ChunkedContentHasher(3, 3)
    hasher.update("row_ptr", np.zeros(4, dtype=np.int64))
    with pytest.raises(ValueError, match="sections must arrive in CSR order"):
        hasher.update("col_ind", np.zeros(0, dtype=np.int64))
    with pytest.raises(ValueError, match="unknown section"):
        hasher.update("values", np.zeros(1, dtype=np.int64))
