"""Property-based tests (hypothesis) on the core invariants of the library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GPRConfig, GPRVariant, ghkdw_matching, gpr_matching
from repro.core.kernels import push_kernel_all_columns
from repro.core.relabel import gpu_global_relabel
from repro.generators import uniform_random_bipartite
from repro.graph import from_edges
from repro.gpusim import VirtualGPU, device_exclusive_scan
from repro.matching import Matching
from repro.multicore import pdbfs_matching
from repro.seq import (
    cheap_matching,
    hkdw_matching,
    hopcroft_karp_matching,
    is_maximum_matching,
    is_valid_matching,
    karp_sipser_matching,
    maximum_matching_cardinality,
    pothen_fan_matching,
    push_relabel_matching,
)

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def bipartite_graphs(draw, max_rows=60, max_cols=60, max_edges=240):
    """Arbitrary small bipartite graphs (possibly empty, rectangular, with isolated vertices)."""
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    n_cols = draw(st.integers(min_value=1, max_value=max_cols))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_rows - 1),
                st.integers(min_value=0, max_value=n_cols - 1),
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    return from_edges(edges, n_rows=n_rows, n_cols=n_cols, name="hypothesis")


# --------------------------------------------------------------- CSR invariants
@_SETTINGS
@given(bipartite_graphs())
def test_property_csr_roundtrip_and_validity(graph):
    from repro.graph.validate import validate_graph

    validate_graph(graph)
    edges = {(int(u), int(v)) for u, v in graph.edges()}
    rebuilt = from_edges(list(edges), n_rows=graph.n_rows, n_cols=graph.n_cols)
    assert np.array_equal(rebuilt.col_ptr, graph.col_ptr)
    assert np.array_equal(rebuilt.col_ind, graph.col_ind)
    assert np.array_equal(rebuilt.row_ptr, graph.row_ptr)
    # transpose twice is identity on the edge set
    assert {(int(u), int(v)) for u, v in graph.transpose().transpose().edges()} == edges


# -------------------------------------------------- all algorithms are maximum
_ALL_MAXIMUM = {
    "PR": lambda g: push_relabel_matching(g),
    "HK": lambda g: hopcroft_karp_matching(g),
    "HKDW": lambda g: hkdw_matching(g),
    "PFP": lambda g: pothen_fan_matching(g),
    "G-PR-first": lambda g: gpr_matching(g, config=GPRConfig(variant=GPRVariant.FIRST)),
    "G-PR-shrink": lambda g: gpr_matching(
        g, config=GPRConfig(variant=GPRVariant.SHRINK, shrink_threshold=4)
    ),
    "G-HKDW": lambda g: ghkdw_matching(g),
    "P-DBFS": lambda g: pdbfs_matching(g),
}


@_SETTINGS
@given(bipartite_graphs())
@pytest.mark.parametrize("name", sorted(_ALL_MAXIMUM))
def test_property_every_algorithm_is_maximum(name, graph):
    expected = maximum_matching_cardinality(graph)
    result = _ALL_MAXIMUM[name](graph)
    assert result.cardinality == expected
    assert is_valid_matching(graph, result.matching)
    assert is_maximum_matching(graph, result.matching)


# ------------------------------------------------------- greedy heuristics
@_SETTINGS
@given(bipartite_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_property_greedy_heuristics_valid_and_maximal(graph, seed):
    from repro.seq import is_maximal_matching

    for result in (cheap_matching(graph, seed=seed), karp_sipser_matching(graph, seed=seed)):
        assert is_valid_matching(graph, result.matching)
        assert is_maximal_matching(graph, result.matching)
        # A maximal matching is at least half of a maximum one.
        assert 2 * result.cardinality >= maximum_matching_cardinality(graph)


# -------------------------------------------------- race tolerance (lockstep vs serialized)
@_SETTINGS
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_engine_interleavings_agree(seed):
    rng = np.random.default_rng(seed)
    graph = uniform_random_bipartite(
        int(rng.integers(5, 80)), int(rng.integers(5, 80)), avg_degree=float(rng.uniform(1, 6)),
        seed=int(rng.integers(0, 2**31)),
    )
    expected = maximum_matching_cardinality(graph)
    lockstep = gpr_matching(graph, config=GPRConfig(variant=GPRVariant.FIRST))
    serialized = gpr_matching(
        graph, config=GPRConfig(variant=GPRVariant.FIRST, engine="serialized", seed=seed)
    )
    assert lockstep.cardinality == expected
    assert serialized.cardinality == expected


# -------------------------------------------------- label invariants after GR
@_SETTINGS
@given(bipartite_graphs())
def test_property_global_relabel_labels_are_exact_distances(graph):
    initial = cheap_matching(graph).matching
    mu_row = initial.row_match.copy()
    mu_col = initial.col_match.copy()
    psi_row = np.zeros(graph.n_rows, dtype=np.int64)
    psi_col = np.ones(graph.n_cols, dtype=np.int64)
    gpu_global_relabel(graph, mu_row, mu_col, psi_row, psi_col, VirtualGPU())
    infinity = graph.infinity_label
    # Unmatched rows have label 0; every finite column label is 1 + min over
    # neighbours (the neighbourhood invariant holds with equality after GR).
    assert np.all(psi_row[mu_row < 0] == 0)
    for v in range(graph.n_cols):
        if psi_col[v] >= infinity:
            continue
        nbrs = graph.column_neighbors(v)
        assert psi_col[v] == psi_row[nbrs].min() + 1


# -------------------------------------------------- push kernel invariants
@_SETTINGS
@given(bipartite_graphs())
def test_property_push_kernel_preserves_row_matches(graph):
    """Once a row is matched it never becomes unmatched (only re-matched)."""
    initial = cheap_matching(graph).matching
    mu_row = initial.row_match.copy()
    mu_col = initial.col_match.copy()
    psi_row = np.zeros(graph.n_rows, dtype=np.int64)
    psi_col = np.ones(graph.n_cols, dtype=np.int64)
    gpu_global_relabel(graph, mu_row, mu_col, psi_row, psi_col, VirtualGPU())
    for _ in range(5):
        before = mu_row.copy()
        act, _ = push_kernel_all_columns(graph, mu_row, mu_col, psi_row, psi_col)
        matched_before = before >= 0
        assert np.all(mu_row[matched_before] >= 0)
        if not act:
            break


# -------------------------------------------------- FIXMATCHING / canonical
@_SETTINGS
@given(bipartite_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_property_canonical_is_idempotent_and_consistent(graph, seed):
    rng = np.random.default_rng(seed)
    matching = Matching.empty(graph)
    # Random (possibly inconsistent) µ arrays, as the lock-free kernels leave them.
    if graph.n_rows and graph.n_cols:
        rows = rng.integers(-1, graph.n_cols, size=graph.n_rows)
        cols = rng.integers(-2, graph.n_rows, size=graph.n_cols)
        matching.row_match[:] = rows
        matching.col_match[:] = cols
    fixed = matching.canonical()
    again = fixed.canonical()
    assert fixed == again
    matched_cols = np.flatnonzero(fixed.col_match >= 0)
    assert np.all(fixed.row_match[fixed.col_match[matched_cols]] == matched_cols)


# -------------------------------------------------- prefix sum
@_SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
def test_property_exclusive_scan(values):
    arr = np.asarray(values, dtype=np.int64)
    scan, work = device_exclusive_scan(arr)
    expected = np.concatenate([[0], np.cumsum(arr)[:-1]]) if len(arr) else np.array([])
    assert np.array_equal(scan, expected.astype(np.int64))
    assert len(work) == len(arr)
