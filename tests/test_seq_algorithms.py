"""Tests for the sequential baselines: greedy, PR, HK, HKDW, Pothen–Fan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import (
    chung_lu_bipartite,
    perfect_matching_plus_noise,
    uniform_random_bipartite,
)
from repro.graph import from_edges
from repro.graph.builders import empty_graph
from repro.matching import Matching
from repro.seq import (
    PushRelabelConfig,
    cheap_matching,
    hkdw_matching,
    hopcroft_karp_matching,
    is_maximal_matching,
    is_maximum_matching,
    is_valid_matching,
    karp_sipser_matching,
    maximum_matching_cardinality,
    pothen_fan_matching,
    push_relabel_matching,
)

ALGORITHMS = {
    "PR": push_relabel_matching,
    "HK": hopcroft_karp_matching,
    "HKDW": hkdw_matching,
    "PFP": pothen_fan_matching,
}


# ------------------------------------------------------------------ greedy
def test_cheap_matching_is_valid_and_maximal(family_graph):
    result = cheap_matching(family_graph)
    assert is_valid_matching(family_graph, result.matching)
    assert is_maximal_matching(family_graph, result.matching)
    assert result.counters["edges_scanned"] > 0


def test_cheap_matching_randomized_order(family_graph):
    a = cheap_matching(family_graph, seed=1)
    b = cheap_matching(family_graph, seed=1)
    assert a.cardinality == b.cardinality
    assert is_valid_matching(family_graph, a.matching)


def test_karp_sipser_valid_and_at_least_cheap(family_graph):
    ks = karp_sipser_matching(family_graph, seed=0)
    assert is_valid_matching(family_graph, ks.matching)
    assert is_maximal_matching(family_graph, ks.matching)
    mm = maximum_matching_cardinality(family_graph)
    # Karp–Sipser is near-optimal on sparse graphs.
    assert ks.cardinality >= 0.9 * mm


def test_greedy_on_empty_graph():
    g = empty_graph(5, 5)
    assert cheap_matching(g).cardinality == 0
    assert karp_sipser_matching(g).cardinality == 0


# ------------------------------------------------------------------ verify
def test_verify_detects_invalid(tiny_graph):
    m = Matching.empty(tiny_graph)
    m.row_match[3] = 3  # (3, 3) is not an edge
    m.col_match[3] = 3
    assert not is_valid_matching(tiny_graph, m)


def test_verify_detects_inconsistent(tiny_graph):
    m = Matching.empty(tiny_graph)
    m.row_match[0] = 0  # column 0 does not point back
    assert not is_valid_matching(tiny_graph, m)


def test_verify_wrong_sizes(tiny_graph):
    m = Matching(np.full(2, -1), np.full(4, -1))
    assert not is_valid_matching(tiny_graph, m)


def test_is_maximum_rejects_non_maximum(tiny_graph):
    assert not is_maximum_matching(tiny_graph, Matching.empty(tiny_graph))


def test_maximum_matching_cardinality_oracle(tiny_graph, perfect_graph):
    assert maximum_matching_cardinality(tiny_graph) == 3
    assert maximum_matching_cardinality(perfect_graph) == 5
    assert maximum_matching_cardinality(empty_graph(4, 4)) == 0


# -------------------------------------------------------------- optimality
@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_reach_maximum_on_tiny(name, algorithm, tiny_graph):
    result = algorithm(tiny_graph)
    assert result.cardinality == 3
    assert is_maximum_matching(tiny_graph, result.matching)


@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_reach_maximum_on_families(name, algorithm, family_graph):
    result = algorithm(family_graph)
    expected = maximum_matching_cardinality(family_graph)
    assert result.cardinality == expected
    assert is_valid_matching(family_graph, result.matching)


@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_accept_initial_matching(name, algorithm, family_graph):
    initial = karp_sipser_matching(family_graph).matching
    result = algorithm(family_graph, initial=initial)
    assert result.cardinality == maximum_matching_cardinality(family_graph)


@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_on_empty_graph(name, algorithm):
    result = algorithm(empty_graph(6, 3))
    assert result.cardinality == 0


@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_on_rectangular_graphs(name, algorithm):
    g = uniform_random_bipartite(120, 260, avg_degree=3.0, seed=33)
    result = algorithm(g)
    assert result.cardinality == maximum_matching_cardinality(g)


@pytest.mark.parametrize("name,algorithm", ALGORITHMS.items())
def test_algorithms_on_perfect_matching_graph(name, algorithm):
    g = perfect_matching_plus_noise(250, extra_degree=2.0, seed=8)
    result = algorithm(g)
    assert result.cardinality == 250


def test_star_graph_matching():
    # One row connected to every column: maximum matching has cardinality 1.
    g = from_edges([(0, v) for v in range(50)], n_rows=1, n_cols=50)
    for algorithm in ALGORITHMS.values():
        assert algorithm(g).cardinality == 1


def test_disconnected_components():
    edges = [(0, 0), (1, 1), (2, 2), (5, 5), (6, 6)]
    g = from_edges(edges, n_rows=8, n_cols=8)
    for algorithm in ALGORITHMS.values():
        assert algorithm(g).cardinality == 5


# ---------------------------------------------------------------- PR knobs
def test_pr_counters_populated(family_graph):
    result = push_relabel_matching(family_graph)
    assert result.counters["global_relabels"] >= 1
    assert result.counters["pushes"] >= 0
    assert result.counters["edges_scanned"] >= 0
    assert result.wall_time > 0


def test_pr_without_initial_global_relabel(family_graph):
    cfg = PushRelabelConfig(initial_global_relabel=False, global_relabel_k=0.5)
    result = push_relabel_matching(family_graph, config=cfg)
    assert result.cardinality == maximum_matching_cardinality(family_graph)


def test_pr_without_gap_relabeling(family_graph):
    cfg = PushRelabelConfig(gap_relabeling=False)
    result = push_relabel_matching(family_graph, config=cfg)
    assert result.cardinality == maximum_matching_cardinality(family_graph)


@pytest.mark.parametrize("k", [0.1, 0.5, 2.0, 100.0])
def test_pr_various_global_relabel_frequencies(k):
    g = chung_lu_bipartite(300, 300, avg_degree=5.0, seed=77)
    cfg = PushRelabelConfig(global_relabel_k=k)
    result = push_relabel_matching(g, config=cfg)
    assert result.cardinality == maximum_matching_cardinality(g)


def test_pr_from_empty_initial_matching(family_graph):
    result = push_relabel_matching(family_graph, initial=Matching.empty(family_graph))
    assert result.cardinality == maximum_matching_cardinality(family_graph)


def test_hk_counts_phases(family_graph):
    result = hopcroft_karp_matching(family_graph)
    assert result.counters["phases"] >= 1


def test_hkdw_extra_pass_counter(family_graph):
    result = hkdw_matching(family_graph)
    assert "extra_augmentations" in result.counters


def test_pfp_lookahead_counter():
    g = uniform_random_bipartite(200, 200, avg_degree=4.0, seed=3)
    result = pothen_fan_matching(g)
    assert result.counters["lookahead_hits"] + result.counters["augmentations"] >= 0
    assert result.cardinality == maximum_matching_cardinality(g)
