"""Unit tests for the CSR bipartite graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import BipartiteGraph, from_edges
from repro.graph.builders import empty_graph


def test_basic_construction(tiny_graph):
    assert tiny_graph.n_rows == 4
    assert tiny_graph.n_cols == 4
    assert tiny_graph.n_edges == 6
    assert tiny_graph.shape == (4, 4)
    assert tiny_graph.n_vertices == 8
    assert tiny_graph.infinity_label == 8


def test_column_neighbors_sorted(tiny_graph):
    assert list(tiny_graph.column_neighbors(0)) == [0, 1]
    assert list(tiny_graph.column_neighbors(1)) == [0, 2]
    assert list(tiny_graph.column_neighbors(2)) == [2, 3]
    assert list(tiny_graph.column_neighbors(3)) == []


def test_row_neighbors_sorted(tiny_graph):
    assert list(tiny_graph.row_neighbors(0)) == [0, 1]
    assert list(tiny_graph.row_neighbors(2)) == [1, 2]


def test_neighbor_index_out_of_range(tiny_graph):
    with pytest.raises(IndexError):
        tiny_graph.column_neighbors(4)
    with pytest.raises(IndexError):
        tiny_graph.row_neighbors(-1)


def test_degrees(tiny_graph):
    assert list(tiny_graph.col_degrees) == [2, 2, 2, 0]
    assert list(tiny_graph.row_degrees) == [2, 1, 2, 1]


def test_has_edge(tiny_graph):
    assert tiny_graph.has_edge(0, 0)
    assert tiny_graph.has_edge(3, 2)
    assert not tiny_graph.has_edge(3, 3)
    assert not tiny_graph.has_edge(1, 2)


def test_edges_roundtrip(tiny_graph):
    edges = {(int(u), int(v)) for u, v in tiny_graph.edges()}
    assert edges == {(0, 0), (0, 1), (1, 0), (2, 1), (2, 2), (3, 2)}


def test_transpose_swaps_sides(tiny_graph):
    t = tiny_graph.transpose()
    assert t.n_rows == tiny_graph.n_cols
    assert t.n_cols == tiny_graph.n_rows
    assert {(int(u), int(v)) for u, v in t.edges()} == {
        (v, u) for u, v in ((0, 0), (0, 1), (1, 0), (2, 1), (2, 2), (3, 2))
    }
    # Double transpose gives back the original edge set.
    tt = t.transpose()
    assert np.array_equal(tt.col_ptr, tiny_graph.col_ptr)
    assert np.array_equal(tt.col_ind, tiny_graph.col_ind)


def test_arrays_are_readonly(tiny_graph):
    with pytest.raises(ValueError):
        tiny_graph.col_ind[0] = 99


def test_duplicate_edges_are_merged():
    g = from_edges([(0, 0), (0, 0), (1, 1), (1, 1), (1, 1)], n_rows=2, n_cols=2)
    assert g.n_edges == 2


def test_rectangular_shape():
    g = from_edges([(0, 0), (1, 3)], n_rows=2, n_cols=5)
    assert g.shape == (2, 5)
    assert g.infinity_label == 7


def test_empty_graph():
    g = empty_graph(3, 4)
    assert g.n_edges == 0
    assert g.shape == (3, 4)
    assert list(g.column_neighbors(0)) == []


def test_invalid_csr_rejected():
    with pytest.raises(ValueError):
        BipartiteGraph(
            n_rows=2,
            n_cols=2,
            col_ptr=np.array([0, 1]),  # wrong length
            col_ind=np.array([0]),
            row_ptr=np.array([0, 1, 1]),
            row_ind=np.array([0]),
        )
    with pytest.raises(ValueError):
        BipartiteGraph(
            n_rows=2,
            n_cols=2,
            col_ptr=np.array([0, 1, 1]),
            col_ind=np.array([0, 1]),  # pointer/data mismatch
            row_ptr=np.array([0, 1, 1]),
            row_ind=np.array([0]),
        )


def test_edge_indices_out_of_declared_shape():
    with pytest.raises(ValueError):
        from_edges([(0, 5)], n_rows=1, n_cols=3)
    with pytest.raises(ValueError):
        from_edges([(-1, 0)])


def test_with_name(tiny_graph):
    renamed = tiny_graph.with_name("other")
    assert renamed.name == "other"
    assert renamed.n_edges == tiny_graph.n_edges


def test_to_scipy_sparse_roundtrip(tiny_graph):
    from repro.graph import from_scipy_sparse

    mat = tiny_graph.to_scipy_sparse()
    assert mat.shape == (4, 4)
    back = from_scipy_sparse(mat)
    assert np.array_equal(back.col_ptr, tiny_graph.col_ptr)
    assert np.array_equal(back.col_ind, tiny_graph.col_ind)


def test_to_networkx_roundtrip(tiny_graph):
    from repro.graph import from_networkx

    nxg = tiny_graph.to_networkx()
    assert nxg.number_of_nodes() == 8
    assert nxg.number_of_edges() == 6
    back = from_networkx(nxg, row_nodes=[("r", i) for i in range(4)])
    assert back.n_edges == tiny_graph.n_edges
