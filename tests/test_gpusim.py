"""Tests for the virtual GPU substrate: device, arrays, cost model, primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    DeviceArray,
    DeviceSpec,
    VirtualGPU,
    device_exclusive_scan,
    device_reduce_max,
    device_reduce_sum,
    launch_serialized,
)
from repro.gpusim.costmodel import CpuCostModel, GpuCostModel, MulticoreCostModel


# -------------------------------------------------------------------- device
def test_device_spec_defaults_match_tesla_c2050():
    spec = DeviceSpec()
    assert spec.total_cores == 448
    assert spec.num_sms == 14
    assert spec.warp_size == 32


def test_device_spec_scaled():
    spec = DeviceSpec().scaled(0.05)
    assert spec.total_cores < DeviceSpec().total_cores
    assert spec.kernel_launch_overhead_s < DeviceSpec().kernel_launch_overhead_s
    with pytest.raises(ValueError):
        DeviceSpec().scaled(0.0)
    with pytest.raises(ValueError):
        DeviceSpec().scaled(2.0)


def test_virtual_gpu_ledger_accumulates():
    gpu = VirtualGPU()
    gpu.charge_kernel("a", np.ones(100))
    gpu.charge_kernel("b", np.full(10, 5.0))
    assert gpu.ledger.n_launches == 2
    assert gpu.elapsed_seconds > 0
    per_kernel = gpu.ledger.by_kernel()
    assert set(per_kernel) == {"a", "b"}
    counters = gpu.ledger.counters()
    assert counters["kernel_launches"] == 2
    gpu.reset()
    assert gpu.ledger.n_launches == 0


def test_virtual_gpu_transfers_tracked_when_enabled():
    gpu = VirtualGPU(track_transfers=True)
    arr = gpu.to_device(np.zeros(1000, dtype=np.int64), name="x")
    gpu.to_host(arr)
    assert gpu.ledger.transfer_bytes == 2 * 1000 * 8
    assert gpu.ledger.transfer_seconds > 0

    silent = VirtualGPU(track_transfers=False)
    silent.to_device(np.zeros(1000))
    assert silent.ledger.transfer_bytes == 0


def test_virtual_gpu_alloc_helpers():
    gpu = VirtualGPU()
    z = gpu.zeros(5)
    f = gpu.full(3, 7)
    assert np.array_equal(np.asarray(z), np.zeros(5, dtype=np.int64))
    assert np.array_equal(np.asarray(f), np.full(3, 7, dtype=np.int64))


# --------------------------------------------------------------- cost model
def test_launch_overhead_charged_even_for_empty_launch():
    spec = DeviceSpec()
    model = GpuCostModel(spec)
    seconds, total, divergent, max_thread = model.launch_seconds(np.zeros(0))
    assert seconds == pytest.approx(spec.kernel_launch_overhead_s)
    assert total == 0.0


def test_uniform_work_scales_with_threads():
    model = GpuCostModel(DeviceSpec())
    few, *_ = model.launch_seconds(np.full(32, 10.0))
    many, *_ = model.launch_seconds(np.full(32 * 1000, 10.0))
    assert many > few


def test_divergence_penalty():
    model = GpuCostModel(DeviceSpec())
    # Same total work, but concentrated in one thread per warp (divergent).
    balanced = np.full(320, 10.0)
    skewed = np.zeros(320)
    skewed[::32] = 100.0
    t_balanced, *_ = model.launch_seconds(balanced)
    t_skewed, *_ = model.launch_seconds(skewed)
    assert t_skewed > t_balanced * 0.99  # divergent warps cannot be cheaper
    # A single enormous thread bounds the launch by the critical path.
    single = np.zeros(448 * 10)
    single[0] = 1e6
    t_single, *_ = model.launch_seconds(single)
    expected = DeviceSpec().kernel_launch_overhead_s + 1e6 * DeviceSpec().cycles_per_op / (
        DeviceSpec().clock_ghz * 1e9
    )
    assert t_single == pytest.approx(expected, rel=1e-6)


def test_cpu_cost_model_linear():
    cpu = CpuCostModel()
    assert cpu.seconds(2_000_000) == pytest.approx(2 * cpu.seconds(1_000_000))


def test_multicore_cost_model_bounds():
    mc = MulticoreCostModel(n_threads=8)
    balanced = mc.round_seconds(total_ops=8000, max_thread_ops=1000)
    skewed = mc.round_seconds(total_ops=8000, max_thread_ops=8000)
    assert skewed > balanced
    with_atomics = mc.round_seconds(total_ops=8000, max_thread_ops=1000, atomics=10000)
    assert with_atomics > balanced


# ---------------------------------------------------------------- primitives
def test_exclusive_scan_matches_numpy():
    values = np.array([3, 1, 4, 1, 5, 9, 2, 6])
    scan, work = device_exclusive_scan(values)
    assert np.array_equal(scan, np.array([0, 3, 4, 8, 9, 14, 23, 25]))
    assert len(work) == len(values)


def test_exclusive_scan_empty():
    scan, work = device_exclusive_scan(np.array([], dtype=np.int64))
    assert len(scan) == 0
    assert len(work) == 0


def test_reductions():
    values = np.array([2.0, 7.0, 1.0])
    total, work = device_reduce_sum(values)
    peak, _ = device_reduce_max(values)
    assert total == 10.0
    assert peak == 7.0
    assert len(work) == 3
    assert device_reduce_sum(np.array([]))[0] == 0.0
    assert device_reduce_max(np.array([]))[0] == 0.0


# ----------------------------------------------------------------- serialized
def test_launch_serialized_runs_every_thread():
    hits = []

    def body(tid: int) -> float:
        hits.append(tid)
        return float(tid)

    work = launch_serialized(body, 5)
    assert sorted(hits) == [0, 1, 2, 3, 4]
    assert np.array_equal(work, np.array([0.0, 1.0, 2.0, 3.0, 4.0]))


def test_launch_serialized_with_permutation():
    order_seen = []
    rng = np.random.default_rng(3)
    launch_serialized(lambda tid: order_seen.append(tid) or 1.0, 8, rng=rng)
    assert sorted(order_seen) == list(range(8))
    # With an explicit order the execution sequence is exactly that order.
    order_seen.clear()
    launch_serialized(lambda tid: order_seen.append(tid) or 1.0, 4, order=[3, 1, 0, 2])
    assert order_seen == [3, 1, 0, 2]


def test_launch_serialized_rejects_bad_order():
    with pytest.raises(ValueError):
        launch_serialized(lambda tid: 1.0, 3, order=[0, 0, 1])


# -------------------------------------------------------------- device array
def test_device_array_interface():
    arr = DeviceArray(np.arange(6), name="x")
    assert arr.shape == (6,)
    assert len(arr) == 6
    assert arr[2] == 2
    arr[2] = 99
    assert arr[2] == 99
    arr.fill(1)
    assert np.asarray(arr).sum() == 6
    copy = arr.copy()
    copy[0] = 42
    assert arr[0] == 1
    assert arr.nbytes == 6 * arr.dtype.itemsize
