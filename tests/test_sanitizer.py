"""Tests of the lockstep-kernel race sanitizer (shadow-access mode)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hazards import (
    HOST_SEGMENT,
    AccessLog,
    ConflictPolicy,
    evaluate,
    shadow_wrap,
)
from repro.analysis.registry import KERNEL_POLICIES, sanitized_run, sanitized_sweep
from repro.core.gpr import GPRConfig, gpr_matching
from repro.generators import uniform_random_bipartite
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.gpusim.kernel import wave_barrier


# --------------------------------------------------------------------------
# recording primitives
# --------------------------------------------------------------------------
def test_shadow_array_records_subscript_reads_and_writes():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "a", log)
    _ = arr[2]
    arr[3] = 7
    log.close_segment("k")
    (segment,) = log.segments
    assert segment.kernel == "k"
    assert segment.reads == 1 and segment.writes == 1
    assert segment.hazards == []


def test_shadow_array_shares_the_buffer():
    base = np.zeros(4, dtype=np.int64)
    arr = shadow_wrap(base, "a", AccessLog())
    arr[1] = 5
    arr.fill(2)
    assert base.tolist() == [2, 2, 2, 2]


def test_ufunc_results_are_plain_and_recorded_as_reads():
    log = AccessLog()
    arr = shadow_wrap(np.arange(4), "a", log)
    mask = arr >= 2
    assert type(mask) is np.ndarray
    total = arr + arr
    assert type(total) is np.ndarray
    log.close_segment("k")
    assert log.segments[0].reads >= 2


# --------------------------------------------------------------------------
# hazard detection
# --------------------------------------------------------------------------
def _ww_fixture_kernel(log):
    """Deliberate intra-wave WW: two writes hit slot 2 within one wave."""
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "mu", log)
    arr[np.array([1, 2])] = 10
    arr[np.array([2, 3])] = 20
    log.close_segment("fixture")
    return log


def test_ww_fixture_is_flagged():
    log = _ww_fixture_kernel(AccessLog())
    report = evaluate(log, {}, label="fixture")
    assert not report.ok()
    (hazard,) = report.undeclared
    assert hazard.kind == "ww" and hazard.array == "mu" and 2 in hazard.sample
    assert "WW" in hazard.render()


def test_ww_fixture_clean_under_declared_lww_policy():
    log = _ww_fixture_kernel(AccessLog())
    policies = {"fixture": ConflictPolicy(last_writer_wins=frozenset({"mu"}))}
    report = evaluate(log, policies, label="fixture")
    assert report.ok()
    assert [h.kind for h in report.declared] == ["ww"]


def test_duplicate_indices_in_one_assignment_are_ww():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "mu", log)
    arr[np.array([4, 4, 5])] = 1  # numpy resolves last-occurrence-wins
    log.close_segment("k")
    report = evaluate(log, {}, label="dup")
    (hazard,) = report.undeclared
    assert hazard.kind == "ww" and hazard.sample == (4,)


def test_raw_is_flagged_and_not_covered_by_lww():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "mu", log)
    arr[np.array([1, 2])] = 1
    _ = arr[np.array([2, 5])]  # reads a location written this wave
    log.close_segment("k")
    report = evaluate(log, {"k": ConflictPolicy(last_writer_wins=frozenset({"mu"}))}, "raw")
    (hazard,) = report.undeclared
    assert hazard.kind == "raw" and 2 in hazard.sample


def test_slot_local_policy_covers_raw_and_ww():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "ac", log)
    arr[np.array([1])] = 1
    _ = arr[np.array([1])]
    arr[np.array([1])] = 2
    log.close_segment("k")
    report = evaluate(log, {"k": ConflictPolicy(slot_local=frozenset({"ac"}))}, "slot")
    assert report.ok() and len(report.declared) == 2


def test_disjoint_reads_and_writes_are_clean():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "a", log)
    arr[np.array([0, 1])] = 1
    _ = arr[np.array([4, 5])]
    arr[np.array([2, 3])] = 2
    log.close_segment("k")
    assert evaluate(log, {}, "clean").ok()


def test_wave_barrier_clears_the_written_set():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "mu", log)
    arr[np.array([2])] = 1
    wave_barrier(arr)
    arr[np.array([2])] = 2  # a later wave may overwrite an earlier wave
    _ = arr[np.array([2])]  # ... but re-reading its own write is still RAW
    log.close_segment("k")
    report = evaluate(log, {}, "waves")
    assert [h.kind for h in report.undeclared] == ["raw"]


def test_fill_then_write_is_ww_without_a_barrier():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "a", log)
    arr.fill(0)
    arr[np.array([3])] = 1
    log.close_segment("k")
    assert [h.kind for h in evaluate(log, {}, "fill").undeclared] == ["ww"]


def test_trailing_accesses_fold_into_serial_host_segment():
    log = AccessLog()
    arr = shadow_wrap(np.zeros(8, dtype=np.int64), "a", log)
    arr[np.array([1])] = 1
    arr[np.array([1])] = 2  # would be WW inside a kernel; host code is serial
    report = evaluate(log, {}, "host")
    assert report.kernels_seen == (HOST_SEGMENT,)
    assert report.ok() and len(report.declared) == 1


def test_unknown_kernel_gets_the_empty_policy():
    log = _ww_fixture_kernel(AccessLog())
    report = evaluate(log, KERNEL_POLICIES, label="unknown")
    assert not report.ok()


# --------------------------------------------------------------------------
# device integration
# --------------------------------------------------------------------------
def test_device_arrays_record_under_shadow_mode():
    log = AccessLog()
    gpu = VirtualGPU(DeviceSpec().scaled(), shadow=log)
    arr = gpu.zeros(8, name="buf")
    arr[np.array([1, 2])] = 5
    _ = arr[3]
    gpu.charge_kernel("k", np.ones(1))
    (segment,) = log.segments
    assert segment.kernel == "k" and segment.writes == 1 and segment.reads == 1


def test_charge_kernel_is_a_segment_boundary_and_barrier():
    log = AccessLog()
    gpu = VirtualGPU(DeviceSpec().scaled(), shadow=log)
    arr = gpu.zeros(8, name="buf")
    arr[np.array([2])] = 1
    gpu.charge_kernel("first", np.ones(1))
    arr[np.array([2])] = 2  # same location, next launch: not a WW
    gpu.charge_kernel("second", np.ones(1))
    report = evaluate(log, {}, "launches")
    assert report.kernels_seen == ("first", "second")
    assert report.ok()


def test_shadow_wrap_is_identity_without_shadow_mode():
    gpu = VirtualGPU(DeviceSpec().scaled())
    base = np.zeros(4, dtype=np.int64)
    assert gpu.shadow_wrap(base, "x") is base
    gpu.shadow_sync()  # no-op


def test_shadow_mode_does_not_change_results_or_counters():
    graph = uniform_random_bipartite(120, 110, avg_degree=4, seed=11)
    plain = gpr_matching(graph, config=GPRConfig(), device=VirtualGPU(DeviceSpec().scaled()))
    shadow = gpr_matching(
        graph, config=GPRConfig(), device=VirtualGPU(DeviceSpec().scaled(), shadow=AccessLog())
    )
    assert np.array_equal(plain.matching.row_match, shadow.matching.row_match)
    assert np.array_equal(plain.matching.col_match, shadow.matching.col_match)
    assert plain.counters == shadow.counters
    assert plain.modeled_time == shadow.modeled_time
    assert type(shadow.matching.row_match) is np.ndarray  # unwrapped at the boundary


# --------------------------------------------------------------------------
# the shipped kernels
# --------------------------------------------------------------------------
def test_sanitized_run_reports_expected_gpr_kernels():
    graph = uniform_random_bipartite(120, 110, avg_degree=4, seed=3)
    report = sanitized_run(
        lambda g, gpu: gpr_matching(g, config=GPRConfig(), device=gpu), graph, label="g-pr"
    )
    assert report.ok(), report.render()
    assert "g-pr-pushkrnl" in report.kernels_seen
    assert "fixmatching" in report.kernels_seen
    # The paper's declared push race shows up and is classified as declared.
    assert any(h.array == "mu_row" and h.kind == "ww" for h in report.declared)


@pytest.mark.slow
def test_full_sanitized_sweep_two_families():
    reports = sanitized_sweep()
    assert len(reports) >= 10  # >= 5 algorithms x 2 generator families
    failures = [r.render() for r in reports if not r.ok()]
    assert not failures, "\n".join(failures)
    kernels = {k for r in reports for k in r.kernels_seen if k != HOST_SEGMENT}
    # Every shipped lockstep kernel family is exercised by the sweep.
    for name in (
        "g-pr-krnl",
        "g-pr-pushkrnl",
        "g-pr-initkrnl",
        "g-pr-shrkrnl",
        "fixmatching",
        "init-relabel",
        "g-gr-krnl",
        "ghkdw-bfs",
        "ghkdw-augment",
        "auction_bid",
        "auction_assign",
    ):
        assert name in kernels, name
    assert kernels <= set(KERNEL_POLICIES), kernels - set(KERNEL_POLICIES)
