"""Tests for the Matching / MatchingResult containers."""

from __future__ import annotations

import pytest

from repro.matching import UNMATCHABLE, UNMATCHED, Matching, MatchingResult


def test_empty_matching(tiny_graph):
    m = Matching.empty(tiny_graph)
    assert m.cardinality == 0
    assert len(m.unmatched_rows()) == 4
    assert len(m.unmatched_columns()) == 4


def test_from_pairs(tiny_graph):
    m = Matching.from_pairs(tiny_graph, [(0, 0), (2, 1)])
    assert m.cardinality == 2
    assert m.row_match[0] == 0
    assert m.col_match[1] == 2
    assert set(m.pairs()) == {(0, 0), (2, 1)}


def test_from_pairs_conflict(tiny_graph):
    with pytest.raises(ValueError):
        Matching.from_pairs(tiny_graph, [(0, 0), (0, 1)])
    with pytest.raises(ValueError):
        Matching.from_pairs(tiny_graph, [(0, 0), (1, 0)])


def test_from_pairs_rejects_out_of_range_indices(tiny_graph):
    # Regression: numpy indexing silently wraps negative indices, so (-1, 0)
    # used to corrupt the *last* row instead of raising.
    with pytest.raises(ValueError, match=r"row index -1 out of range"):
        Matching.from_pairs(tiny_graph, [(-1, 0)])
    with pytest.raises(ValueError, match=r"column index -2 out of range"):
        Matching.from_pairs(tiny_graph, [(0, -2)])
    with pytest.raises(ValueError, match=r"row index 4 out of range"):
        Matching.from_pairs(tiny_graph, [(4, 0)])
    with pytest.raises(ValueError, match=r"column index 7 out of range"):
        Matching.from_pairs(tiny_graph, [(0, 7)])


def test_from_pairs_enforce_edges(tiny_graph):
    # (1, 2) is not an edge of the tiny fixture; (1, 0) is.
    assert Matching.from_pairs(tiny_graph, [(1, 0)], enforce_edges=True).cardinality == 1
    with pytest.raises(ValueError, match=r"\(1, 2\) is not an edge"):
        Matching.from_pairs(tiny_graph, [(1, 2)], enforce_edges=True)


def test_check_compatible_accepts_own_graph(tiny_graph):
    Matching.empty(tiny_graph).check_compatible(tiny_graph)  # no raise


def test_check_compatible_rejects_wrong_lengths(tiny_graph, perfect_graph):
    with pytest.raises(ValueError, match="different graph"):
        Matching.empty(perfect_graph).check_compatible(tiny_graph)


def test_check_compatible_rejects_out_of_range_entries(tiny_graph):
    m = Matching.empty(tiny_graph)
    m.row_match[0] = 9
    with pytest.raises(ValueError, match="outside .* column range"):
        m.check_compatible(tiny_graph)
    m = Matching.empty(tiny_graph)
    m.col_match[1] = 12
    with pytest.raises(ValueError, match="outside .* row range"):
        m.check_compatible(tiny_graph)


def test_canonical_resolves_inconsistencies(tiny_graph):
    m = Matching.empty(tiny_graph)
    # Row 0 matched to column 1, but column 0 *thinks* it is matched to row 0
    # (the inconsistency the GPU kernels leave behind) and column 2 is marked
    # unmatchable.
    m.row_match[0] = 1
    m.col_match[1] = 0
    m.col_match[0] = 0
    m.col_match[2] = UNMATCHABLE
    fixed = m.canonical()
    assert fixed.cardinality == 1
    assert fixed.col_match[0] == UNMATCHED
    assert fixed.col_match[2] == UNMATCHED
    assert fixed.col_match[1] == 0


def test_matched_columns_ignores_stale_pointers(tiny_graph):
    m = Matching.empty(tiny_graph)
    m.row_match[1] = 0
    m.col_match[0] = 1
    m.col_match[3] = 2  # stale: row 2 does not point back
    assert list(m.matched_columns()) == [0]
    assert 3 in m.unmatched_columns()


def test_deficiency(tiny_graph):
    m = Matching.from_pairs(tiny_graph, [(0, 0)])
    assert m.deficiency(3) == 2


def test_copy_is_deep(tiny_graph):
    m = Matching.from_pairs(tiny_graph, [(0, 0)])
    c = m.copy()
    c.row_match[0] = UNMATCHED
    assert m.row_match[0] == 0


def test_equality(tiny_graph):
    a = Matching.from_pairs(tiny_graph, [(0, 0)])
    b = Matching.from_pairs(tiny_graph, [(0, 0)])
    c = Matching.from_pairs(tiny_graph, [(0, 1)])
    assert a == b
    assert a != c
    assert a != "not a matching"


def test_matching_result_create(tiny_graph):
    m = Matching.from_pairs(tiny_graph, [(0, 0), (2, 2)])
    result = MatchingResult.create("test", m, counters={"pushes": 3}, wall_time=0.5)
    assert result.algorithm == "test"
    assert result.cardinality == 2
    assert result.counters == {"pushes": 3}
    assert result.wall_time == 0.5
    assert result.modeled_time is None
