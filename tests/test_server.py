"""Server tests: HTTP surface, admission invariants, lifecycle bugfixes.

Three layers:

* **HTTP** — a real :class:`MatchingServer` on an ephemeral port, driven
  with ``http.client``: match/caching, batch streaming, validation errors,
  the metrics document, and 429 shedding under tiny quotas.
* **Admission invariants** — seeded property-style campaigns against
  :class:`AdmissionController` directly (no sockets): per-tenant in-flight
  never exceeds its quota, global depth never exceeds the bound, release is
  idempotent, rejection consumes nothing; plus the end-to-end variant that
  every admitted request terminates in exactly one terminal status.
* **Lifecycle bugfixes** — regressions for the error-surface fixes that
  rode along with this layer: ``Engine.submit`` after shutdown and
  ``MatchingService`` double-close raise clear ``RuntimeError``s (not pool
  internals), the backend-shutdown race is wrapped, and cancelling a
  finished job is a no-op that still releases its quota slot.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time

import pytest

from repro.engine import Engine, EngineSaturatedError, FaultSchedule, MatchingJob, ThreadBackend
from repro.generators import uniform_random_bipartite
from repro.server import AdmissionController, AdmissionError, MatchingServer, QuotaPolicy
from repro.server.metrics import TERMINAL_STATUSES, classify_leak
from repro.service import MatchingService

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

GRAPH = "amazon0505"


def _request(port, method, path, payload=None, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        return response.status, raw
    finally:
        conn.close()


def _json(port, method, path, payload=None):
    status, raw = _request(port, method, path, payload)
    return status, json.loads(raw)


# --------------------------------------------------------------------- HTTP
@pytest.fixture(scope="module")
def server():
    instance = MatchingServer(backend="thread", workers=2, default_deadline=10.0,
                              default_profile="tiny")
    instance.start_in_background()
    yield instance
    instance.shutdown()


def test_healthz(server):
    assert _json(server.port, "GET", "/healthz") == (200, {"status": "ok"})


def test_match_then_cache_hit(server):
    payload = {"graph": GRAPH, "algorithm": "pr", "seed": 7, "include_matching": True}
    status, first = _json(server.port, "POST", "/v1/match", payload)
    assert status == 200
    assert first["status"] == "ok"
    assert first["cached"] is False
    assert first["cardinality"] > 0
    assert isinstance(first["row_match"], list)

    status, second = _json(server.port, "POST", "/v1/match", payload)
    assert status == 200
    assert second["cached"] is True
    assert second["worker"] == "cache"
    assert second["row_match"] == first["row_match"]


def test_validation_errors_are_400(server):
    for payload in (
        {"graph": "no-such-instance"},
        {"graph": GRAPH, "algorithm": "no-such-algorithm"},
        {"graph": GRAPH, "mtx": "/tmp/x.mtx"},
        {"graph": GRAPH, "deadline": -1},
        {"graph": GRAPH, "bogus_field": 1},
        [1, 2, 3],
    ):
        status, body = _json(server.port, "POST", "/v1/match", payload)
        assert status == 400, payload
        assert "error" in body


def test_unknown_route_and_method(server):
    assert _json(server.port, "GET", "/nope")[0] == 404
    assert _json(server.port, "GET", "/v1/match")[0] == 405


def test_batch_streams_rows_and_summary(server):
    payload = {
        "tenant": "batch-tenant",
        "jobs": [
            {"graph": GRAPH, "algorithm": "pr"},
            {"graph": GRAPH, "algorithm": "hk"},
            {"graph": "roadNet-PA", "algorithm": "karp-sipser"},
        ],
    }
    status, raw = _request(server.port, "POST", "/v1/batch", payload)
    assert status == 200
    rows = [json.loads(line) for line in raw.decode().strip().splitlines()]
    results, summaries = [r for r in rows if r["type"] == "result"], rows[-1:]
    assert len(results) == 3
    assert all(row["status"] == "ok" for row in results)
    assert {row["id"] for row in results} == {"job-0", "job-1", "job-2"}
    summary = summaries[0]
    assert summary["type"] == "summary"
    assert summary["jobs"] == 3 and summary["ok"] == 3 and summary["rejected"] == 0


def test_batch_validation_failure_rejects_whole_batch(server):
    status, body = _json(server.port, "POST", "/v1/batch", {
        "jobs": [{"graph": GRAPH}, {"graph": "no-such-instance"}],
    })
    assert status == 400
    assert "error" in body


def test_metrics_document(server):
    status, doc = _json(server.port, "GET", "/metrics")
    assert status == 200
    assert doc["schema"] == "repro-server-metrics/v1"
    for section in ("requests", "latency_seconds", "faults", "admission", "queue",
                    "cache", "engine"):
        assert section in doc, section
    assert doc["requests"]["ok"] >= 1
    assert doc["latency_seconds"]["p99"] >= doc["latency_seconds"]["p50"] >= 0
    assert doc["cache"]["result"]["hits"] >= 1  # the cache-hit test above
    assert doc["faults"]["enabled"] is False
    assert doc["engine"]["backend"] == "thread"
    assert doc["admission"]["depth"] == 0  # quiesced between requests


def test_tenant_quota_sheds_with_429():
    schedule = FaultSchedule(seed=1, stall_rate=1.0, stall_seconds=0.6)
    with MatchingServer(
        backend="thread", workers=2, default_profile="tiny",
        policy=QuotaPolicy(max_inflight_per_tenant=1, max_queue_depth=16),
        fault_schedule=schedule,
    ) as server:
        server.start_in_background()
        payload = {"tenant": "greedy", "graph": GRAPH, "algorithm": "pr"}
        outcome = {}

        def occupy():
            outcome["first"] = _json(server.port, "POST", "/v1/match", payload)

        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.2)  # the stalled job now holds greedy's only slot
        status, body = _json(server.port, "POST", "/v1/match", payload)
        assert status == 429
        assert body["reason"] == "tenant-quota"
        # Another tenant is unaffected by greedy's quota.
        status, body = _json(server.port, "POST", "/v1/match",
                             {**payload, "tenant": "polite"})
        assert status == 200
        thread.join()
        assert outcome["first"][0] == 200
        doc = _json(server.port, "GET", "/metrics")[1]
        assert doc["admission"]["rejected_by_reason"] == {"tenant-quota": 1}
        assert doc["admission"]["tenants"]["greedy"]["rejected"] == 1


def test_queue_depth_sheds_with_429():
    schedule = FaultSchedule(seed=1, stall_rate=1.0, stall_seconds=0.6)
    with MatchingServer(
        backend="thread", workers=2, default_profile="tiny",
        policy=QuotaPolicy(max_inflight_per_tenant=8, max_queue_depth=1),
        fault_schedule=schedule,
    ) as server:
        server.start_in_background()
        payload = {"tenant": "t", "graph": GRAPH, "algorithm": "pr"}
        thread = threading.Thread(
            target=lambda: _json(server.port, "POST", "/v1/match", payload)
        )
        thread.start()
        time.sleep(0.2)
        status, body = _json(server.port, "POST", "/v1/match", payload)
        assert status == 429
        assert body["reason"] == "queue-depth"
        thread.join()


# ------------------------------------------------------- admission invariants
def test_admission_invariants_under_seeded_campaign():
    """Random admit/release storms never violate the quota invariants."""
    rng = random.Random(20130421)
    policy = QuotaPolicy(max_inflight_per_tenant=3, max_queue_depth=7)
    controller = AdmissionController(policy)
    tenants = [f"tenant-{i}" for i in range(4)]
    live = []
    admitted = rejected = 0
    for _step in range(2000):
        tenant = rng.choice(tenants)
        if live and rng.random() < 0.45:
            ticket = live.pop(rng.randrange(len(live)))
            assert ticket.release() is True
            assert ticket.release() is False  # idempotent
        else:
            before = controller.snapshot()
            try:
                live.append(controller.try_admit(tenant))
                admitted += 1
            except AdmissionError as exc:
                rejected += 1
                after = controller.snapshot()
                # Rejection consumed nothing.
                assert after["depth"] == before["depth"]
                assert controller.tenant_inflight(tenant) <= policy.max_inflight_per_tenant
                assert exc.reason in ("tenant-quota", "queue-depth")
        # The invariants, checked at every step:
        snapshot = controller.snapshot()
        assert snapshot["depth"] == len(live) <= policy.max_queue_depth
        for name in tenants:
            assert controller.tenant_inflight(name) <= policy.max_inflight_per_tenant
    for ticket in live:
        ticket.release()
    snapshot = controller.snapshot()
    assert snapshot["depth"] == 0
    assert snapshot["admitted"] == admitted
    assert snapshot["rejected"] == rejected
    assert admitted > 0 and rejected > 0  # the campaign exercised both paths


def test_admission_invariants_hold_from_threads():
    policy = QuotaPolicy(max_inflight_per_tenant=4, max_queue_depth=10)
    controller = AdmissionController(policy)
    violations = []

    def storm(worker_seed):
        rng = random.Random(worker_seed)
        for _ in range(300):
            try:
                ticket = controller.try_admit(f"tenant-{rng.randrange(3)}")
            except AdmissionError:
                continue
            depth = controller.snapshot()["depth"]
            if depth > policy.max_queue_depth:
                violations.append(("depth", depth))
            if rng.random() < 0.5:
                time.sleep(0)
            ticket.release()

    threads = [threading.Thread(target=storm, args=(seed,)) for seed in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not violations
    assert controller.snapshot()["depth"] == 0


def test_every_admitted_request_terminates_exactly_once():
    """End-to-end with faults: each 200 row lands in one terminal status and
    the server quiesces back to depth 0 (every quota slot released once)."""
    schedule = FaultSchedule(seed=9, crash_rate=0.2, stall_rate=0.2,
                             stall_seconds=0.05, stall_margin=0.05)
    with MatchingServer(backend="thread", workers=2, default_profile="tiny",
                        default_deadline=2.0, fault_schedule=schedule,
                        grace=0.3) as server:
        server.start_in_background()
        statuses = []
        for index in range(16):
            status, row = _json(server.port, "POST", "/v1/match",
                                {"graph": GRAPH, "algorithm": "pr", "seed": index})
            assert status == 200
            assert row["status"] in TERMINAL_STATUSES
            assert not classify_leak(row["status"], row.get("injected_fault"))
            statuses.append(row["status"])
        assert "failed" in statuses  # faults actually fired
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            doc = _json(server.port, "GET", "/metrics")[1]
            if doc["admission"]["depth"] == 0 and doc["engine"]["inflight"] == 0:
                break
            time.sleep(0.05)
        assert doc["admission"]["depth"] == 0
        assert doc["engine"]["inflight"] == 0
        assert doc["faults"]["leaked"] == 0


# ------------------------------------------------------------------ lifecycle
@pytest.fixture()
def small_graph():
    return uniform_random_bipartite(60, 60, avg_degree=3.0, seed=5)


def test_engine_submit_after_shutdown_is_clear(small_graph):
    engine = Engine(backend="thread", max_workers=1)
    engine.shutdown()
    engine.shutdown()  # idempotent
    with pytest.raises(RuntimeError, match="engine is shut down"):
        engine.submit(MatchingJob(graph=small_graph, algorithm="pr"))


def test_backend_shutdown_race_is_wrapped(small_graph):
    """A backend pool torn down underneath the engine must not leak
    concurrent.futures internals ('cannot schedule new futures...')."""
    backend = ThreadBackend(max_workers=1)
    engine = Engine(backend=backend, own_backend=True)
    engine.submit(MatchingJob(graph=small_graph, algorithm="pr")).wait()
    backend.shutdown()  # out from under the engine, as a shared backend might
    with pytest.raises(RuntimeError, match="backend is shut down"):
        engine.submit(MatchingJob(graph=small_graph, algorithm="pr"))
    assert engine.inflight == 0  # the failed submission released its slot


def test_service_double_close_and_submit_after_close(small_graph):
    service = MatchingService(backend="inline")
    assert service.submit(MatchingJob(graph=small_graph, algorithm="pr")).ok
    service.close()
    service.close()  # idempotent, no pool internals
    with pytest.raises(RuntimeError, match="service is closed"):
        service.submit(MatchingJob(graph=small_graph, algorithm="pr"))


def test_cancel_finished_job_is_noop_and_releases_quota(small_graph):
    controller = AdmissionController(QuotaPolicy(max_inflight_per_tenant=1))
    ticket = controller.try_admit("tenant")
    with Engine(backend="inline") as engine:
        handle = engine.submit(MatchingJob(graph=small_graph, algorithm="pr"))
        handle._add_done_callback(lambda _h: ticket.release())
        assert handle.done()
        assert handle.cancel() is False  # finished: cancel is a no-op
        assert handle.status.value == "ok"
    assert ticket.released
    assert controller.tenant_inflight("tenant") == 0
    controller.try_admit("tenant")  # the slot is genuinely free again


def test_engine_max_inflight_saturation(small_graph):
    class ParkedBackend:
        """Holds every handle un-run until told to finish it."""

        name = "parked"

        def __init__(self):
            self.handles = []

        def submit(self, handle):
            self.handles.append(handle)

        def shutdown(self, wait=True):
            pass

    backend = ParkedBackend()
    engine = Engine(backend=backend, own_backend=True, max_inflight=2)
    job = MatchingJob(graph=small_graph, algorithm="pr")
    first, second = engine.submit(job), engine.submit(job)
    assert engine.inflight == 2
    with pytest.raises(EngineSaturatedError):
        engine.submit(job)
    first.cancel()  # a terminal handle frees its slot...
    assert engine.inflight == 1
    third = engine.submit(job)  # ...and submission works again
    assert engine.inflight == 2
    for handle in (second, third):
        handle.cancel()
    engine.shutdown()
