"""Setuptools shim.

The offline build environment used for this reproduction has no ``wheel``
package, so PEP-517 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` allows ``pip install -e . --no-build-isolation --no-use-pep517``
and ``python setup.py develop`` to work without network access.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
