"""Optional compiled execution tier: numba twins of the hot kernels.

``pip install .[compiled]`` pulls in numba; without it this package still
imports (the twins run as plain Python if forced) and the dispatch layer
answers ``None`` so every caller keeps its vectorized NumPy path.  See
:mod:`repro.compiled.dispatch` for the routing rules and
:mod:`repro.compiled.calibrate` for the modeled-vs-measured calibration
loop behind ``repro perf --calibrate``.
"""

from repro.compiled._jit import NUMBA_AVAILABLE, NUMBA_VERSION
from repro.compiled.dispatch import (
    capability_report,
    enabled,
    implementation_for,
    override,
    recording,
    registered,
    warm_up,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_VERSION",
    "capability_report",
    "enabled",
    "implementation_for",
    "override",
    "recording",
    "registered",
    "warm_up",
]
