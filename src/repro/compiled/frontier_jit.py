"""Numba twins of the hot frontier primitives in :mod:`repro.graph.frontier`.

Every function here is a scalar-loop port of a vectorized NumPy path and
must be *bit-identical* to it: same output arrays, same dtypes, same
``edges_scanned`` counters.  The ports deliberately mirror the NumPy
semantics rather than "improving" them -- e.g. ``alternating_level_bfs``
marks a hit under the exact mate comparison the vectorized path uses,
and ``distance_label_bfs`` preserves the duplicate-mate multiset the
fancy-indexed NumPy write produces.

The module never imports :mod:`repro.graph` (the dependency points the
other way: the frontier shims look these twins up through
:mod:`repro.compiled.dispatch`), so the sentinel constants are mirrored
locally.
"""

from __future__ import annotations

import numpy as np

from repro.compiled._jit import jit

_UNMATCHED = -1  # mirrors repro.graph.matching.UNMATCHED
_INF = np.iinfo(np.int64).max


@jit
def expand_frontier(ptr, ind, frontier):
    """Scalar twin of :func:`repro.graph.frontier.expand_frontier`.

    Emits ``(targets, origins)`` in frontier-major, adjacency-minor
    order -- the exact order ``np.repeat`` + sliced gathers produce.
    """
    total = np.int64(0)
    for i in range(frontier.shape[0]):
        v = frontier[i]
        total += ptr[v + 1] - ptr[v]
    targets = np.empty(total, np.int64)
    origins = np.empty(total, np.int64)
    out = 0
    for i in range(frontier.shape[0]):
        v = frontier[i]
        for idx in range(ptr[v], ptr[v + 1]):
            targets[out] = ind[idx]
            origins[out] = v
            out += 1
    return targets, origins


@jit
def first_occurrence_mask(values):
    """Scalar twin of :func:`repro.graph.frontier.first_occurrence_mask`.

    ``True`` exactly at the first occurrence (in scan order) of each
    distinct value.  Uses a span-marking table when the value range is
    modest (it always is for vertex ids), falling back to a sort for
    pathological ranges.
    """
    n = values.shape[0]
    mask = np.zeros(n, np.bool_)
    if n == 0:
        return mask
    vmin = values[0]
    vmax = values[0]
    for i in range(n):
        v = values[i]
        if v < vmin:
            vmin = v
        if v > vmax:
            vmax = v
    span = vmax - vmin + 1
    if span <= max(1024, 4 * n):
        seen = np.zeros(span, np.bool_)
        for i in range(n):
            slot = values[i] - vmin
            if not seen[slot]:
                seen[slot] = True
                mask[i] = True
        return mask
    # Huge sparse range: sort (stability not required -- for each run of
    # equal values we keep the smallest original index).
    order = np.argsort(values)
    i = 0
    while i < n:
        j = i
        first = order[i]
        v = values[first]
        while j + 1 < n and values[order[j + 1]] == v:
            j += 1
            if order[j] < first:
                first = order[j]
        mask[first] = True
        i = j + 1
    return mask


@jit
def multi_source_bfs(ptr_a, ind_a, ptr_b, ind_b, sources, n_a, n_b):
    """Scalar twin of the level-synchronous core of ``multi_source_bfs``.

    Side ``a`` is the source side.  Returns
    ``(level_a, level_b, parent_a, parent_b, edges_scanned)`` with the
    same first-encounter parent choice as the vectorized path: within a
    level, the winning origin for a vertex is its first appearance in
    frontier-major, adjacency-minor order.
    """
    level_a = np.full(n_a, _INF, np.int64)
    level_b = np.full(n_b, _INF, np.int64)
    parent_a = np.full(n_a, -1, np.int64)
    parent_b = np.full(n_b, -1, np.int64)
    cap = n_a if n_a > n_b else n_b
    frontier = np.empty(cap, np.int64)
    nxt = np.empty(cap, np.int64)
    fsize = 0
    for i in range(sources.shape[0]):
        s = sources[i]
        if level_a[s] == _INF:
            level_a[s] = 0
            frontier[fsize] = s
            fsize += 1
    edges = np.int64(0)
    depth = np.int64(0)
    on_a = True
    while fsize > 0:
        nsize = 0
        if on_a:
            for i in range(fsize):
                v = frontier[i]
                for idx in range(ptr_a[v], ptr_a[v + 1]):
                    edges += 1
                    u = ind_a[idx]
                    if level_b[u] == _INF:
                        level_b[u] = depth + 1
                        parent_b[u] = v
                        nxt[nsize] = u
                        nsize += 1
        else:
            for i in range(fsize):
                v = frontier[i]
                for idx in range(ptr_b[v], ptr_b[v + 1]):
                    edges += 1
                    u = ind_b[idx]
                    if level_a[u] == _INF:
                        level_a[u] = depth + 1
                        parent_a[u] = v
                        nxt[nsize] = u
                        nsize += 1
        frontier, nxt = nxt, frontier
        fsize = nsize
        depth += 1
        on_a = not on_a
    return level_a, level_b, parent_a, parent_b, edges


@jit
def alternating_level_bfs(col_ptr, col_ind, row_match, col_match):
    """Scalar twin of :func:`repro.graph.frontier.alternating_level_bfs`.

    Same contract as the NumPy path: ``level`` over columns, shortest
    augmenting-path length (or ``_INF``), and total edges scanned.
    """
    n_cols = col_ptr.shape[0] - 1
    level = np.full(n_cols, _INF, np.int64)
    frontier = np.empty(n_cols, np.int64)
    nxt = np.empty(n_cols, np.int64)
    fsize = 0
    for v in range(n_cols):
        if col_match[v] == _UNMATCHED:
            level[v] = 0
            frontier[fsize] = v
            fsize += 1
    shortest = _INF
    edges = np.int64(0)
    depth = np.int64(0)
    while fsize > 0:
        nsize = 0
        hit = False
        for i in range(fsize):
            v = frontier[i]
            for idx in range(col_ptr[v], col_ptr[v + 1]):
                edges += 1
                u = col_ind[idx]
                w = row_match[u]
                if w == _UNMATCHED:
                    hit = True
                elif w >= 0 and level[w] == _INF:
                    level[w] = depth + 1
                    nxt[nsize] = w
                    nsize += 1
        if hit and shortest == _INF:
            shortest = depth + 1
        frontier, nxt = nxt, frontier
        fsize = nsize
        depth += 1
        if depth >= shortest:
            break
    return level, shortest, edges


@jit
def distance_label_bfs(row_ptr, row_ind, row_match, col_match, psi_row, psi_col, infinity):
    """Scalar twin of :func:`repro.graph.frontier.distance_label_bfs`.

    Fills ``psi_row`` / ``psi_col`` in place and returns
    ``(max_level, edges_scanned)``.  Per level: pass 1 labels the
    first-encounter set of fresh columns (identical to the NumPy
    ``unique`` of unlabeled targets), pass 2 first *collects* candidate
    mates against the pre-write ``psi_row`` state -- preserving the
    duplicate multiset the fancy-indexed NumPy write sees -- and only
    then writes their labels.
    """
    n_rows = row_ptr.shape[0] - 1
    n_cols = psi_col.shape[0]
    psi_row[:] = infinity
    psi_col[:] = infinity
    # A non-injective ``col_match`` can put up to ``n_cols`` (duplicated)
    # rows in one frontier, so the row buffers take the larger dimension.
    cap = n_rows if n_rows > n_cols else n_cols
    frontier = np.empty(cap, np.int64)
    nxt = np.empty(cap, np.int64)
    fresh = np.empty(n_cols, np.int64)
    fsize = 0
    for u in range(n_rows):
        if row_match[u] == _UNMATCHED:
            psi_row[u] = 0
            frontier[fsize] = u
            fsize += 1
    level = np.int64(0)
    max_level = np.int64(0)
    edges = np.int64(0)
    while fsize > 0:
        nfresh = 0
        for i in range(fsize):
            u = frontier[i]
            for idx in range(row_ptr[u], row_ptr[u + 1]):
                edges += 1
                c = row_ind[idx]
                if psi_col[c] == infinity:
                    psi_col[c] = level + 1
                    fresh[nfresh] = c
                    nfresh += 1
        if nfresh == 0:
            break
        nsize = 0
        for i in range(nfresh):
            w = col_match[fresh[i]]
            if w >= 0 and psi_row[w] == infinity:
                nxt[nsize] = w
                nsize += 1
        if nsize == 0:
            break
        for i in range(nsize):
            psi_row[nxt[i]] = level + 2
        max_level = level + 2
        frontier, nxt = nxt, frontier
        fsize = nsize
        level += 2
    return max_level, edges


__all__ = [
    "alternating_level_bfs",
    "distance_label_bfs",
    "expand_frontier",
    "first_occurrence_mask",
    "multi_source_bfs",
]
