"""Numba twins of the lockstep wave kernels in :mod:`repro.core`.

The vectorized kernels get the paper's lockstep semantics structurally:
each wave performs its entire read phase before its first write, and
conflicting writes resolve last-writer-wins (NumPy fancy assignment keeps
the last occurrence).  A naive fused per-thread loop would instead be the
*serialized* interleaving — a different legal schedule with different
results — so every twin here keeps the two phases explicit: local buffers
collect all launch-time reads for the whole wave, then ascending-index
write loops reproduce the last-occurrence-wins resolution exactly.

``ghkdw_augment`` is the exception: the augmentation kernel's claims are
serialized within the launch by design (see :mod:`repro.core.ghkdw`), so
its twin is a literal port of the sequential DFS.

Sentinel constants are mirrored locally (this module must not import the
core/graph layers; the dispatch arrow points the other way).
"""

from __future__ import annotations

import numpy as np

from repro.compiled._jit import jit

_UNMATCHED = -1  # mirrors repro.matching.UNMATCHED
_UNMATCHABLE = -2  # mirrors repro.matching.UNMATCHABLE
_INF = np.iinfo(np.int64).max


@jit
def _scan_columns(col_ptr, col_ind, psi_row, psi_col, cols, infinity, psi_min, u_min, scanned):
    """Read phase of Algorithms 6/9: the min-neighbour scan for one wave.

    Fills ``psi_min`` (full-segment minimum row label), ``u_min`` (first
    row attaining it) and ``scanned`` (early-exit work: entries up to and
    including the first neighbour whose label equals ``psi_col[v] - 1``,
    or the full degree).  All arrays are read, none written -- callers
    run this for the whole wave before their first write.
    """
    for i in range(cols.shape[0]):
        v = cols[i]
        begin = col_ptr[v]
        stop = col_ptr[v + 1]
        best = infinity
        best_row = np.int64(-1)
        target = psi_col[v] - 1
        hit = np.int64(-1)
        for idx in range(begin, stop):
            u = col_ind[idx]
            p = psi_row[u]
            if p < best:
                best = p
                best_row = u
            if hit < 0 and p == target:
                hit = idx - begin + 1
        psi_min[i] = best
        u_min[i] = best_row
        if stop == begin:
            scanned[i] = 0.0
        elif hit >= 0:
            scanned[i] = np.float64(hit)
        else:
            scanned[i] = np.float64(stop - begin)


@jit
def push_wave(col_ptr, col_ind, psi_row, psi_col, mu_row, mu_col, wave_cols, infinity):
    """Twin of :func:`repro.core.kernels._push_wave` (Algorithm 6, one wave).

    Mutates the matching and label arrays in place with lockstep
    semantics and returns the per-column scanned-edge counts.
    """
    n = wave_cols.shape[0]
    psi_min = np.empty(n, np.int64)
    u_min = np.empty(n, np.int64)
    scanned = np.zeros(n, np.float64)
    _scan_columns(col_ptr, col_ind, psi_row, psi_col, wave_cols, infinity, psi_min, u_min, scanned)
    # Write phase: column-indexed writes target distinct entries; the
    # row-indexed loop runs ascending so a contended row keeps the last
    # pushing column, matching NumPy fancy assignment.
    for i in range(n):
        v = wave_cols[i]
        if psi_min[i] < infinity:
            mu_col[v] = u_min[i]
            psi_col[v] = psi_min[i] + 1
        else:
            mu_col[v] = _UNMATCHABLE
    for i in range(n):
        if psi_min[i] < infinity:
            mu_row[u_min[i]] = wave_cols[i]
            psi_row[u_min[i]] = psi_min[i] + 2
    return scanned


@jit
def push_active_wave(
    col_ptr, col_ind, psi_row, psi_col, mu_row, mu_col, ac, ap, ia, slots, loop, infinity
):
    """Twin of the wave body of ``push_kernel_active_list`` (Algorithm 9).

    ``slots`` indexes the active-list entries of one wave.  Returns the
    per-slot scanned counts; the matching, label and list arrays are
    updated in place with the same read-before-write structure as the
    vectorized path (the old-match gather happens before any write).
    """
    n = slots.shape[0]
    cols = np.empty(n, np.int64)
    for i in range(n):
        cols[i] = ac[slots[i]]
    psi_min = np.empty(n, np.int64)
    u_min = np.empty(n, np.int64)
    scanned = np.zeros(n, np.float64)
    _scan_columns(col_ptr, col_ind, psi_row, psi_col, cols, infinity, psi_min, u_min, scanned)
    old_match = np.empty(n, np.int64)
    for i in range(n):
        if psi_min[i] < infinity:
            old_match[i] = mu_row[u_min[i]]
    # Write phase (ascending slot order = NumPy's last-occurrence-wins on
    # contended rows; column and slot targets are distinct).
    for i in range(n):
        s = slots[i]
        v = cols[i]
        if psi_min[i] >= infinity:
            # Lines 19-22: retire the column, clear the slot.
            mu_col[v] = _UNMATCHABLE
            ac[s] = -1
            ap[s] = -1
            continue
        old = old_match[i]
        if old >= 0 and ia[old] == loop:
            # Line 13: the row's match is active this round -- postpone.
            ap[s] = -1
            continue
        mu_col[v] = u_min[i]
        psi_col[v] = psi_min[i] + 1
        mu_row[u_min[i]] = v
        psi_row[u_min[i]] = psi_min[i] + 2
        if old >= 0:
            ap[s] = old
        else:
            ap[s] = -1
    return scanned


@jit
def global_relabel(row_ptr, row_ind, mu_row, mu_col, psi_row, psi_col, c_level, infinity):
    """Twin of :func:`repro.core.kernels.global_relabel_kernel` (Algorithm 5).

    The fused scalar loop is launch-time-equivalent to the vectorized
    kernel: written values (``c_level + 1`` / ``c_level + 2``) can never
    re-qualify a vertex for this launch's frontier or first-encounter
    tests, and a consistent matching makes the relabeled rows distinct.
    Returns ``(u_added, thread_work)``.
    """
    n_rows = row_ptr.shape[0] - 1
    thread_work = np.ones(n_rows, np.float64)
    u_added = False
    for u in range(n_rows):
        if psi_row[u] != c_level:
            continue
        begin = row_ptr[u]
        stop = row_ptr[u + 1]
        thread_work[u] += np.float64(stop - begin)
        for idx in range(begin, stop):
            c = row_ind[idx]
            if psi_col[c] != infinity:
                continue
            psi_col[c] = c_level + 1
            w = mu_col[c]
            if w >= 0 and mu_row[w] == c and psi_row[w] == infinity:
                psi_row[w] = c_level + 2
                u_added = True
    return u_added, thread_work


@jit
def ghkdw_augment(
    col_ptr,
    col_ind,
    mu_row,
    mu_col,
    level,
    start_cols,
    restrict_levels,
    use_level,
    shared_claims,
    n_rows,
):
    """Twin of the DFS loop of :func:`repro.core.ghkdw._augment_phase`.

    A literal port of the claim-based alternating DFS, one sequential
    logical thread per start column (the claims serialize the launch by
    design).  Mutates ``mu_row`` / ``mu_col`` in place and returns
    ``(thread_work, augmented)``.
    """
    n_starts = start_cols.shape[0]
    thread_work = np.ones(n_starts, np.float64)
    augmented = np.int64(0)
    row_claimed = np.zeros(n_rows, np.bool_)
    cap = n_rows + 2
    stack_col = np.empty(cap, np.int64)
    stack_idx = np.empty(cap, np.int64)
    path_rows = np.empty(cap, np.int64)
    for t in range(n_starts):
        start = start_cols[t]
        if not shared_claims:
            row_claimed[:] = False
        depth = 0
        stack_col[0] = start
        stack_idx[0] = col_ptr[start]
        work = 1.0
        success = False
        while depth >= 0 and not success:
            v = stack_col[depth]
            idx = stack_idx[depth]
            stop = col_ptr[v + 1]
            advanced = False
            while idx < stop:
                u = col_ind[idx]
                idx += 1
                work += 1.0
                if row_claimed[u]:
                    continue
                w = mu_row[u]
                if w == _UNMATCHED:
                    row_claimed[u] = True
                    mu_row[u] = v
                    mu_col[v] = u
                    for d in range(depth - 1, -1, -1):
                        prev_col = stack_col[d]
                        prev_row = path_rows[d]
                        mu_row[prev_row] = prev_col
                        mu_col[prev_col] = prev_row
                    augmented += 1
                    success = True
                    break
                if use_level:
                    if restrict_levels and level[w] != level[v] + 1:
                        continue
                    if not restrict_levels and level[w] == _INF:
                        continue
                row_claimed[u] = True
                stack_idx[depth] = idx
                path_rows[depth] = u
                depth += 1
                stack_col[depth] = w
                stack_idx[depth] = col_ptr[w]
                advanced = True
                break
            if success:
                break
            if advanced:
                continue
            stack_idx[depth] = idx
            if idx >= stop:
                depth -= 1
        thread_work[t] = work
    return thread_work, augmented


__all__ = [
    "ghkdw_augment",
    "global_relabel",
    "push_active_wave",
    "push_wave",
]
