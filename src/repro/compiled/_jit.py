"""Numba detection and the shared ``@jit`` decorator for the compiled tier.

The compiled tier is strictly optional: numba ships behind the
``[compiled]`` extra (``pip install .[compiled]``) and a numpy-only
install must import, run, and pass tests unchanged.  This module is the
single place that decides which world we are in:

* numba present -- ``jit`` is ``numba.njit(cache=True)`` and
  :data:`NUMBA_AVAILABLE` is ``True``.  ``cache=True`` persists the
  compiled machine code next to the source so repeated processes (the
  perf harness, CI jobs) pay the compile cost once.
* numba absent -- ``jit`` is an identity decorator and the twin kernels
  run as plain Python.  They are never *dispatched to* in that case (see
  :mod:`repro.compiled.dispatch`), but tests can still force-enable them
  with :func:`repro.compiled.dispatch.override` to prove the scalar
  ports bit-identical to the vectorized NumPy paths without numba in the
  environment.

Either way the decorated function exposes ``.py_func`` (numba sets it on
the dispatcher; the fallback sets it to the function itself), so parity
tests can always reach the pure-Python body.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable)

try:  # pragma: no cover - exercised only when numba is installed (CI compiled-smoke)
    import numba

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: str | None = numba.__version__

    def jit(fn: _F) -> _F:
        """Compile ``fn`` with ``numba.njit(cache=True)``."""

        return numba.njit(cache=True)(fn)

except ImportError:
    numba = None  # type: ignore[assignment]

    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

    def jit(fn: _F) -> _F:
        """Identity decorator: the twin kernel runs as plain Python."""

        fn.py_func = fn  # mirror numba's dispatcher attribute
        return fn


__all__ = ["NUMBA_AVAILABLE", "NUMBA_VERSION", "jit"]
