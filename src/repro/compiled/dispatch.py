"""Per-function dispatch between the NumPy paths and their compiled twins.

The hot frontier primitives (:mod:`repro.graph.frontier`) and the
lockstep wave kernels (:mod:`repro.core`) each carry a small shim: they
ask :func:`implementation_for` for a compiled twin and fall back to the
vectorized NumPy body when it returns ``None``.  The answer is ``None``
whenever

* numba is not installed (the ``[compiled]`` extra; a numpy-only install
  runs the NumPy paths unchanged), or
* dispatch is force-disabled via :func:`override` (parity tests diff the
  two tiers inside one process), or
* the function has no registered twin.

Shims additionally guard with :func:`recording`: when any participating
array is shadow-wrapped by the race sanitizer
(:mod:`repro.analysis.hazards`), the NumPy path runs so the access log
stays complete -- machine code cannot report its reads and writes.  The
sanitizer therefore always certifies the NumPy tier; the parity suites
prove the compiled tier bit-identical to it.

Cost-ledger charges are unchanged by construction: the shims return the
same per-thread work vectors and counters either way, and the callers
charge those to the :class:`~repro.gpusim.device.VirtualGPU` ledger
exactly as before -- only wall time drops.

:func:`warm_up` compiles every registered twin on micro inputs with the
production dtypes, so min-of-repeats measurements never include one-time
JIT compile cost (see :func:`repro.bench.perfbaseline.capture`).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.compiled import frontier_jit, kernels_jit
from repro.compiled._jit import NUMBA_AVAILABLE, NUMBA_VERSION

__all__ = [
    "CAPABILITY_SCHEMA",
    "NUMBA_AVAILABLE",
    "NUMBA_VERSION",
    "Entry",
    "capability_report",
    "enabled",
    "entries",
    "implementation_for",
    "override",
    "recording",
    "registered",
    "warm_up",
]

#: Schema tag of :func:`capability_report` payloads.
CAPABILITY_SCHEMA = "repro-backends/1"


@dataclass(frozen=True)
class Entry:
    """One dispatchable function: its compiled twin plus a warm-up call."""

    name: str
    impl: Callable
    warm: Callable[[], None]


def _micro_graph() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A 2x2 dual-CSR path graph with production dtypes (all int64)."""
    col_ptr = np.array([0, 2, 3], dtype=np.int64)
    col_ind = np.array([0, 1, 1], dtype=np.int64)
    row_ptr = np.array([0, 1, 3], dtype=np.int64)
    row_ind = np.array([0, 0, 1], dtype=np.int64)
    return col_ptr, col_ind, row_ptr, row_ind


def _warm_expand_frontier() -> None:
    col_ptr, col_ind, _, _ = _micro_graph()
    frontier_jit.expand_frontier(col_ptr, col_ind, np.array([0, 1], dtype=np.int64))


def _warm_first_occurrence_mask() -> None:
    frontier_jit.first_occurrence_mask(np.array([1, 0, 1], dtype=np.int64))


def _warm_multi_source_bfs() -> None:
    col_ptr, col_ind, row_ptr, row_ind = _micro_graph()
    sources = np.array([0], dtype=np.int64)
    frontier_jit.multi_source_bfs(col_ptr, col_ind, row_ptr, row_ind, sources, 2, 2)


def _warm_alternating_level_bfs() -> None:
    col_ptr, col_ind, _, _ = _micro_graph()
    row_match = np.array([0, -1], dtype=np.int64)
    col_match = np.array([0, -1], dtype=np.int64)
    frontier_jit.alternating_level_bfs(col_ptr, col_ind, row_match, col_match)


def _warm_distance_label_bfs() -> None:
    _, _, row_ptr, row_ind = _micro_graph()
    row_match = np.array([0, -1], dtype=np.int64)
    col_match = np.array([0, -1], dtype=np.int64)
    psi_row = np.empty(2, dtype=np.int64)
    psi_col = np.empty(2, dtype=np.int64)
    frontier_jit.distance_label_bfs(row_ptr, row_ind, row_match, col_match, psi_row, psi_col, 4)


def _warm_push_wave() -> None:
    col_ptr, col_ind, _, _ = _micro_graph()
    psi_row = np.array([0, 0], dtype=np.int64)
    psi_col = np.array([4, 4], dtype=np.int64)
    mu_row = np.array([-1, -1], dtype=np.int64)
    mu_col = np.array([-1, -1], dtype=np.int64)
    wave_cols = np.array([0, 1], dtype=np.int64)
    kernels_jit.push_wave(col_ptr, col_ind, psi_row, psi_col, mu_row, mu_col, wave_cols, 4)


def _warm_push_active_wave() -> None:
    col_ptr, col_ind, _, _ = _micro_graph()
    psi_row = np.array([0, 0], dtype=np.int64)
    psi_col = np.array([4, 4], dtype=np.int64)
    mu_row = np.array([-1, -1], dtype=np.int64)
    mu_col = np.array([-1, -1], dtype=np.int64)
    ac = np.array([0, 1], dtype=np.int64)
    ap = np.array([-1, -1], dtype=np.int64)
    ia = np.array([-1, -1], dtype=np.int64)
    slots = np.array([0, 1], dtype=np.int64)
    kernels_jit.push_active_wave(
        col_ptr, col_ind, psi_row, psi_col, mu_row, mu_col, ac, ap, ia, slots, 1, 4
    )


def _warm_global_relabel() -> None:
    _, _, row_ptr, row_ind = _micro_graph()
    mu_row = np.array([-1, 0], dtype=np.int64)
    mu_col = np.array([1, -1], dtype=np.int64)
    psi_row = np.array([0, 4], dtype=np.int64)
    psi_col = np.array([4, 4], dtype=np.int64)
    kernels_jit.global_relabel(row_ptr, row_ind, mu_row, mu_col, psi_row, psi_col, 0, 4)


def _warm_ghkdw_augment() -> None:
    col_ptr, col_ind, _, _ = _micro_graph()
    mu_row = np.array([-1, -1], dtype=np.int64)
    mu_col = np.array([-1, -1], dtype=np.int64)
    level = np.array([0, 0], dtype=np.int64)
    start_cols = np.array([0, 1], dtype=np.int64)
    kernels_jit.ghkdw_augment(
        col_ptr, col_ind, mu_row, mu_col, level, start_cols, False, False, True, 2
    )


_REGISTRY: dict[str, Entry] = {
    entry.name: entry
    for entry in (
        Entry("expand_frontier", frontier_jit.expand_frontier, _warm_expand_frontier),
        Entry(
            "first_occurrence_mask",
            frontier_jit.first_occurrence_mask,
            _warm_first_occurrence_mask,
        ),
        Entry("multi_source_bfs", frontier_jit.multi_source_bfs, _warm_multi_source_bfs),
        Entry(
            "alternating_level_bfs",
            frontier_jit.alternating_level_bfs,
            _warm_alternating_level_bfs,
        ),
        Entry("distance_label_bfs", frontier_jit.distance_label_bfs, _warm_distance_label_bfs),
        Entry("push_wave", kernels_jit.push_wave, _warm_push_wave),
        Entry("push_active_wave", kernels_jit.push_active_wave, _warm_push_active_wave),
        Entry("global_relabel", kernels_jit.global_relabel, _warm_global_relabel),
        Entry("ghkdw_augment", kernels_jit.ghkdw_augment, _warm_ghkdw_augment),
    )
}

#: Test hook: ``None`` follows numba availability, a bool forces the tier.
_FORCED: bool | None = None


def enabled() -> bool:
    """Whether dispatch currently routes to the compiled twins."""
    return NUMBA_AVAILABLE if _FORCED is None else _FORCED


@contextmanager
def override(flag: bool | None):
    """Force-enable or force-disable dispatch within a ``with`` block.

    ``override(False)`` runs the NumPy paths even with numba installed
    (the parity and speedup suites diff the tiers in one process);
    ``override(True)`` routes to the twins even without numba -- they
    then execute as plain Python, which is how the numpy-only test
    environment proves the scalar ports bit-identical.  ``None`` restores
    the default (follow numba availability).
    """
    global _FORCED
    previous = _FORCED
    _FORCED = flag
    try:
        yield
    finally:
        _FORCED = previous


def registered() -> tuple[str, ...]:
    """Names of every dispatchable function, sorted."""
    return tuple(sorted(_REGISTRY))


def entries() -> tuple[Entry, ...]:
    """The registered entries, in registration order."""
    return tuple(_REGISTRY.values())


def implementation_for(name: str) -> Callable | None:
    """The compiled twin for ``name``, or ``None`` to use the NumPy path.

    Shims call this once per function call, *outside* any loop (the
    RPR004 lint rule flags lookups inside ``# hot-path`` regions).
    Unknown names return ``None`` rather than raising so a shim can never
    take down the NumPy tier.
    """
    if not enabled():
        return None
    entry = _REGISTRY.get(name)
    return entry.impl if entry is not None else None


def recording(*arrays) -> bool:
    """``True`` when any array is shadow-wrapped by the race sanitizer.

    Compiled twins cannot record their accesses, so shims keep the NumPy
    path whenever an access log is attached (``shadow_log`` is the
    attribute :class:`repro.analysis.hazards.ShadowArray` carries).
    """
    for array in arrays:
        if getattr(array, "shadow_log", None) is not None:
            return True
    return False


def warm_up(registry: Mapping[str, Entry] | None = None) -> int:
    """Compile every registered twin on micro inputs; returns the count.

    A no-op (returning 0) when dispatch is disabled.  ``registry`` is a
    test hook; the default is the module registry.
    """
    if not enabled():
        return 0
    reg = _REGISTRY if registry is None else registry
    count = 0
    for entry in reg.values():
        entry.warm()
        count += 1
    return count


def capability_report() -> dict:
    """Which execution tiers this install can run (for ``repro perf``)."""
    return {
        "schema": CAPABILITY_SCHEMA,
        "numpy": {"available": True, "version": np.__version__},
        "numba": {"available": NUMBA_AVAILABLE, "version": NUMBA_VERSION},
        "compiled_dispatch_enabled": enabled(),
        "functions": list(registered()),
    }
