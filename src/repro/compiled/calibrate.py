"""Modeled-vs-measured calibration of the kernel cost models.

The repository's performance claims rest on two analytic cost models: the
:class:`~repro.gpusim.costmodel.GpuCostModel` converting per-thread work
vectors into modelled device seconds, and the
:class:`~repro.gpusim.costmodel.CpuCostModel` pricing the sequential
adjacency scans of the CPU baselines.  Both are *relative* models — the
paper's figures are ratios — but once the compiled tier exists the measured
wall time of each kernel becomes cheap enough to compare against the model
directly.  This module does that comparison:

* every device kernel of a G-PR / G-HKDW run is timed through a
  charge-interval proxy (:class:`_TimingGPU`): the wall time between two
  consecutive ``charge_kernel`` calls is attributed to the launch being
  charged, matching the repo's charge-after-access convention;
* every frontier primitive is timed directly on per-instance prepared
  state, against a :class:`~repro.gpusim.costmodel.CpuCostModel` prediction
  for the operations it reports;
* per kernel, a least-squares constant through the origin is fitted over
  the per-instance ``(modeled, measured)`` points —
  ``c_k = Σ(m·w) / Σ(m²)`` — with an ``r²`` and an RMS ``log10`` residual,
  and the kernels whose fitted constant is farthest from the geometric
  centre of all constants are ranked as *most divergent*.

The fitted constant is a tier property (interpreter vs JIT), so the report
records which tier produced it (``tier: "compiled" | "numpy"``); the module
runs unchanged on a numpy-only install — the numbers are then interpreter
measurements, honestly labelled.

The divergence ranking is relative on purpose: wall time measures a Python
process while the models price the paper's hardware, so the absolute scale
of ``c_k`` is meaningless — but a kernel whose constant sits far from the
others is one the model prices *differently* from how this machine runs it.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.compiled import dispatch

__all__ = ["CALIBRATION_SCHEMA", "CALIBRATION_PROFILES", "calibrate", "default_instances"]

CALIBRATION_SCHEMA = "repro-calibration/1"

#: Size knobs of the built-in instance packs (one graph per generator family).
CALIBRATION_PROFILES = {
    "tiny": {"n": 96, "scale": 6, "edge_factor": 6.0, "grid": 10},
    "small": {"n": 320, "scale": 8, "edge_factor": 8.0, "grid": 20},
    "medium": {"n": 900, "scale": 10, "edge_factor": 8.0, "grid": 36},
}


def default_instances(profile: str = "small", seed: int = 20130421) -> list:
    """The calibration instance pack: one graph per generator family.

    Four families with distinct degree structure (uniform, scale-free RMAT,
    power-law Chung–Lu, bounded-degree mesh) so a fitted constant is pinned
    by points with different work-vector shapes, not one family's regime.
    """
    from repro.generators import (
        chung_lu_bipartite,
        grid_graph,
        rmat_bipartite,
        uniform_random_bipartite,
    )

    try:
        knobs = CALIBRATION_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown calibration profile {profile!r}; "
            f"available: {', '.join(sorted(CALIBRATION_PROFILES))}"
        ) from None
    n = knobs["n"]
    return [
        uniform_random_bipartite(n, n, avg_degree=6.0, seed=seed, name="cal-uniform"),
        rmat_bipartite(knobs["scale"], edge_factor=knobs["edge_factor"], seed=seed, name="cal-rmat"),
        chung_lu_bipartite(n, n, avg_degree=6.0, seed=seed, name="cal-chung-lu"),
        grid_graph(knobs["grid"], knobs["grid"], name="cal-grid"),
    ]


class _TimingGPU:
    """A :class:`~repro.gpusim.device.VirtualGPU` that wall-times its launches.

    The repo convention is charge-after-access: everything a driver does
    since the previous charge belongs to the launch being charged.  The
    proxy applies the same attribution to wall time — the interval between
    two consecutive charges is the measured cost of producing that launch
    (kernel work plus its share of driver overhead), paired with the
    launch's modelled seconds straight off the ledger.
    """

    def __init__(self, spec) -> None:
        from repro.gpusim.device import VirtualGPU

        self._gpu = VirtualGPU(spec)
        #: kernel name -> [modeled_seconds, measured_seconds]
        self.samples: dict[str, list[float]] = {}
        self._mark = time.perf_counter()

    def __getattr__(self, name):
        return getattr(self._gpu, name)

    def charge_kernel(self, name: str, thread_work) -> None:
        now = time.perf_counter()
        interval = now - self._mark
        self._gpu.charge_kernel(name, thread_work)
        modeled = self._gpu.ledger.launches[-1].seconds
        rec = self.samples.setdefault(name, [0.0, 0.0])
        rec[0] += modeled
        rec[1] += interval
        self._mark = time.perf_counter()


def _measure_device_kernels(graph, repeats: int) -> dict[str, tuple[float, float]]:
    """Per-kernel (modeled, measured) seconds of G-PR and G-HKDW runs.

    Wall samples keep the minimum over ``repeats`` runs per kernel (modeled
    seconds are deterministic and identical across repeats).
    """
    from repro.core.ghkdw import ghkdw_matching
    from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
    from repro.gpusim.device import DeviceSpec

    spec = DeviceSpec().scaled()
    best: dict[str, tuple[float, float]] = {}
    for _ in range(repeats):
        run: dict[str, list[float]] = {}
        for config in (
            GPRConfig(variant=GPRVariant.FIRST),
            GPRConfig(variant=GPRVariant.SHRINK),
        ):
            gpu = _TimingGPU(spec)
            gpr_matching(graph, config=config, device=gpu)
            for name, (modeled, measured) in gpu.samples.items():
                rec = run.setdefault(name, [0.0, 0.0])
                rec[0] += modeled
                rec[1] += measured
        gpu = _TimingGPU(spec)
        ghkdw_matching(graph, device=gpu)
        for name, (modeled, measured) in gpu.samples.items():
            rec = run.setdefault(name, [0.0, 0.0])
            rec[0] += modeled
            rec[1] += measured
        for name, (modeled, measured) in run.items():
            prev = best.get(name)
            best[name] = (modeled, measured if prev is None else min(prev[1], measured))
    return best


def _measure_frontier_primitives(graph, repeats: int) -> dict[str, tuple[float, float]]:
    """Per-primitive (modeled, measured) seconds on prepared per-instance state.

    The modelled side prices each primitive's reported elementary operations
    (scanned adjacency entries plus one per touched output slot) with the
    sequential :class:`~repro.gpusim.costmodel.CpuCostModel` — the same
    pricing the CPU baselines charge for the equivalent loops.
    """
    from repro.graph.frontier import (
        alternating_level_bfs,
        distance_label_bfs,
        expand_frontier,
        first_occurrence_mask,
        multi_source_bfs,
    )
    from repro.gpusim.costmodel import CpuCostModel
    from repro.seq.greedy import cheap_matching

    model = CpuCostModel()
    matching = cheap_matching(graph).matching
    row_match = matching.row_match
    col_match = matching.col_match
    sources = np.flatnonzero(col_match == -1)
    if len(sources) == 0:
        sources = np.arange(min(4, graph.n_cols), dtype=np.int64)
    frontier = np.flatnonzero(col_match >= -1).astype(np.int64)  # every column
    infinity = graph.infinity_label

    out: dict[str, tuple[float, float]] = {}

    def timed(name: str, ops_of, call, setup=lambda: ()) -> None:
        wall = math.inf
        ops = 0.0
        for _ in range(repeats):
            state = setup()
            t0 = time.perf_counter()
            result = call(*state)
            wall = min(wall, time.perf_counter() - t0)
            ops = ops_of(result)
        out[name] = (model.seconds(ops), wall)

    timed(
        "expand_frontier",
        lambda res: float(len(res[0]) + len(frontier)),
        lambda: expand_frontier(graph.col_ptr, graph.col_ind, frontier),
    )
    targets, _ = expand_frontier(graph.col_ptr, graph.col_ind, frontier)
    timed(
        "first_occurrence_mask",
        lambda res: float(len(targets)),
        lambda: first_occurrence_mask(targets),
    )
    timed(
        "multi_source_bfs",
        lambda res: float(res.edges_scanned + graph.n_rows + graph.n_cols),
        lambda: multi_source_bfs(graph, sources, side="col"),
    )
    timed(
        "alternating_level_bfs",
        lambda res: float(res[2] + graph.n_cols),
        lambda: alternating_level_bfs(graph.col_ptr, graph.col_ind, row_match, col_match),
    )
    timed(
        "distance_label_bfs",
        lambda res: float(res[1] + graph.n_rows + graph.n_cols),
        lambda psi_row, psi_col: distance_label_bfs(
            graph.row_ptr, graph.row_ind, row_match, col_match, psi_row, psi_col, infinity
        ),
        setup=lambda: (
            np.full(graph.n_rows, infinity, dtype=np.int64),
            np.full(graph.n_cols, infinity, dtype=np.int64),
        ),
    )
    return out


def _fit(points: list[tuple[float, float]]) -> dict:
    """Through-origin least squares of measured against modelled seconds."""
    usable = [(m, w) for m, w in points if m > 0.0 and w > 0.0]
    if not usable:
        return {"constant": None, "r2": None, "rms_log10_residual": None}
    num = sum(m * w for m, w in usable)
    den = sum(m * m for m, w in usable)
    constant = num / den
    mean_w = sum(w for _, w in usable) / len(usable)
    ss_res = sum((w - constant * m) ** 2 for m, w in usable)
    ss_tot = sum((w - mean_w) ** 2 for _, w in usable)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    rms = math.sqrt(
        sum(math.log10(w / (constant * m)) ** 2 for m, w in usable) / len(usable)
    )
    return {"constant": constant, "r2": r2, "rms_log10_residual": rms}


def calibrate(
    instances: list | None = None,
    profile: str = "small",
    seed: int = 20130421,
    repeats: int = 3,
    top: int = 5,
) -> dict:
    """Fit measured per-kernel wall time against the cost-model predictions.

    Parameters
    ----------
    instances:
        Graphs to calibrate over; the :func:`default_instances` pack of
        ``profile`` when omitted.
    profile / seed:
        Size profile and generation seed of the default pack.
    repeats:
        Wall measurements keep the minimum over this many timed runs.
    top:
        How many kernels the ``most_divergent`` ranking lists.

    Returns
    -------
    dict
        A ``repro-calibration/1`` document (see ``docs/benchmarks.md``).

    Raises
    ------
    ValueError
        On a non-positive ``repeats`` or an unknown ``profile``.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    used_profile = profile if instances is None else None
    if instances is None:
        instances = default_instances(profile=profile, seed=seed)

    # Pay every one-time cost (JIT compilation with numba, interpreter
    # caches without) before the first timed interval.
    dispatch.warm_up()
    if instances:
        _measure_device_kernels(instances[0], repeats=1)
        _measure_frontier_primitives(instances[0], repeats=1)

    points: dict[str, list[tuple[float, float]]] = {}
    families: dict[str, str] = {}
    per_instance: dict[str, dict[str, dict[str, float]]] = {}
    for graph in instances:
        inst: dict[str, dict[str, float]] = {}
        for family, samples in (
            ("device", _measure_device_kernels(graph, repeats)),
            ("frontier", _measure_frontier_primitives(graph, repeats)),
        ):
            for name, (modeled, measured) in samples.items():
                families[name] = family
                points.setdefault(name, []).append((modeled, measured))
                inst[name] = {"modeled_seconds": modeled, "measured_seconds": measured}
        per_instance[graph.name] = inst

    kernels: dict[str, dict] = {}
    for name in sorted(points):
        pts = points[name]
        fit = _fit(pts)
        kernels[name] = {
            "family": families[name],
            "points": len(pts),
            "modeled_seconds": sum(m for m, _ in pts),
            "measured_seconds": sum(w for _, w in pts),
            **fit,
        }

    # Rank divergence against the geometric centre of the fitted constants:
    # the absolute scale is machine- and tier-dependent, an outlying kernel
    # is the signal.
    fitted = {n: k["constant"] for n, k in kernels.items() if k["constant"]}
    if fitted:
        centre = sum(math.log10(c) for c in fitted.values()) / len(fitted)
        divergence = {n: abs(math.log10(c) - centre) for n, c in fitted.items()}
        ranked = sorted(divergence, key=lambda n: (-divergence[n], n))[:top]
        for name in fitted:
            kernels[name]["divergence_log10"] = divergence[name]
    else:
        ranked = []

    return {
        "schema": CALIBRATION_SCHEMA,
        "tier": "compiled" if dispatch.enabled() else "numpy",
        "numba": {
            "available": dispatch.NUMBA_AVAILABLE,
            "version": dispatch.NUMBA_VERSION,
        },
        "profile": used_profile,
        "seed": seed,
        "repeats": repeats,
        "instances": sorted(per_instance),
        "kernels": kernels,
        "per_instance": per_instance,
        "most_divergent": ranked,
    }
