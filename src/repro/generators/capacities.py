"""Vertex-capacity generators for the b-matching workloads.

Each generator takes an existing graph and returns a copy carrying
per-vertex capacities, via :meth:`BipartiteGraph.with_capacities` —
structure, weights and capacities compose freely, so every family of the
synthetic suite doubles as a capacitated instance.  All generators are
deterministic given a seed and produce integer capacities ``>= 1``.

The four patterns cover the b-matching shapes that matter in practice:

* :func:`fixed_capacities` — the same capacity on every vertex, the
  uniform-degree-constraint baseline;
* :func:`uniform_capacities` — i.i.d. integer capacities on both sides;
* :func:`row_capacities` / :func:`col_capacities` — many-to-one shapes
  where only one side aggregates (workers taking several tasks, slots
  hosting several ads); ``col_capacities`` is the shape the ε-scaling
  auction variant (``b-auction``) accepts.

A compact string form (``"fixed:2"``, ``"uniform:1:4"``, ``"rows:3"``,
``"cols:3"``) is parsed by :func:`apply_capacity_spec` for the CLI and the
batch manifests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "apply_capacity_spec",
    "col_capacities",
    "fixed_capacities",
    "parse_capacity_spec",
    "row_capacities",
    "uniform_capacities",
]


def fixed_capacities(graph: BipartiteGraph, b: int = 2) -> BipartiteGraph:
    """Every vertex on both sides gets capacity ``b``.

    Raises
    ------
    ValueError
        If ``b < 1``.
    """
    if b < 1:
        raise ValueError(f"capacity must be at least 1, got {b}")
    return graph.with_capacities(
        np.full(graph.n_rows, int(b), dtype=np.int64),
        np.full(graph.n_cols, int(b), dtype=np.int64),
    )


def uniform_capacities(
    graph: BipartiteGraph,
    low: int = 1,
    high: int = 4,
    seed: int | None = None,
) -> BipartiteGraph:
    """Independent uniform integer capacities in ``[low, high]`` on both sides.

    Parameters
    ----------
    graph:
        The structural graph to capacitate.
    low, high:
        Inclusive integer capacity range; ``low`` must be at least 1.
    seed:
        Seed for :class:`numpy.random.Generator`.

    Raises
    ------
    ValueError
        If ``low < 1`` or ``low > high``.
    """
    if low < 1:
        raise ValueError(f"capacities must be at least 1, got low={low}")
    if low > high:
        raise ValueError(f"empty capacity range [{low}, {high}]")
    rng = np.random.default_rng(seed)
    return graph.with_capacities(
        rng.integers(int(low), int(high) + 1, size=graph.n_rows).astype(np.int64),
        rng.integers(int(low), int(high) + 1, size=graph.n_cols).astype(np.int64),
    )


def row_capacities(graph: BipartiteGraph, b: int = 3) -> BipartiteGraph:
    """Many-to-one toward rows: every row gets capacity ``b``, columns 1."""
    if b < 1:
        raise ValueError(f"capacity must be at least 1, got {b}")
    return graph.with_capacities(
        np.full(graph.n_rows, int(b), dtype=np.int64),
        np.ones(graph.n_cols, dtype=np.int64),
    )


def col_capacities(graph: BipartiteGraph, b: int = 3) -> BipartiteGraph:
    """Many-to-one toward columns: every column gets capacity ``b``, rows 1.

    This is the shape the auction variant (``b-auction``) solves — unit row
    capacities with aggregating columns.
    """
    if b < 1:
        raise ValueError(f"capacity must be at least 1, got {b}")
    return graph.with_capacities(
        np.ones(graph.n_rows, dtype=np.int64),
        np.full(graph.n_cols, int(b), dtype=np.int64),
    )


def parse_capacity_spec(spec: str) -> tuple[str, dict]:
    """Parse a capacity-spec string into ``(kind, keyword arguments)``.

    Accepted forms (used by the CLI ``--capacities`` flag and the batch
    manifest ``"capacities"`` field):

    * ``"fixed:B"`` (or ``"fixed"``) — :func:`fixed_capacities`;
    * ``"uniform:LOW:HIGH"`` (or ``"uniform"``) — :func:`uniform_capacities`;
    * ``"rows:B"`` (or ``"rows"``) — :func:`row_capacities`;
    * ``"cols:B"`` (or ``"cols"``) — :func:`col_capacities`.

    Graph-free, so manifest loaders can reject a bad spec on any line
    *before* building graphs.

    Raises
    ------
    ValueError
        For an unknown spec kind or malformed numbers.
    """
    kind, _, rest = str(spec).partition(":")
    kind = kind.strip().lower()
    # Keep empty segments so "uniform::6" means "default low, high 6".
    args = rest.split(":") if rest else []

    def number(index: int, default: int) -> int:
        if index >= len(args) or args[index] == "":
            return default
        try:
            return int(args[index])
        except ValueError:
            raise ValueError(f"malformed capacity spec {spec!r}") from None

    arity = {"fixed": 1, "uniform": 2, "rows": 1, "cols": 1}
    if kind not in arity:
        raise ValueError(
            f"unknown capacity spec {spec!r}; expected fixed[:B], "
            f"uniform[:LOW:HIGH], rows[:B] or cols[:B]"
        )
    if len(args) > arity[kind]:
        # Silently dropping a trailing argument would run with different
        # capacities than the user asked for.
        raise ValueError(
            f"capacity spec {spec!r} takes at most {arity[kind]} argument(s)"
        )
    if kind == "uniform":
        return kind, {"low": number(0, 1), "high": number(1, 4)}
    return kind, {"b": number(0, {"fixed": 2, "rows": 3, "cols": 3}[kind])}


def apply_capacity_spec(
    graph: BipartiteGraph, spec: str, seed: int | None = None
) -> BipartiteGraph:
    """Apply a compact capacity-spec string (see :func:`parse_capacity_spec`).

    Raises
    ------
    ValueError
        For an unknown spec or malformed numbers.
    """
    kind, kwargs = parse_capacity_spec(spec)
    if kind == "fixed":
        return fixed_capacities(graph, **kwargs)
    if kind == "uniform":
        return uniform_capacities(graph, seed=seed, **kwargs)
    if kind == "rows":
        return row_capacities(graph, **kwargs)
    return col_capacities(graph, **kwargs)
