"""Mesh-like bipartite graphs: grids, road networks and Delaunay triangulations.

These are analogs of the ``roadNet-*``, ``italy_osm`` and ``delaunay_n*``
instances.  Structurally they are (near-)planar graphs with small bounded
degree, turned into bipartite graphs through the rows-vs-columns view of
their symmetric adjacency matrix — exactly how the paper builds bipartite
graphs from square UFL matrices.

Their matching behaviour is what matters for the reproduction: low degree
and large diameter mean the last few augmenting paths are very long, so the
GPU push-relabel algorithm needs many kernel launches with only a handful of
active columns and can lose to the sequential code (the paper's worst cases,
``hugetrace-00000`` and ``italy_osm``, are in this family).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["grid_graph", "road_network_graph", "delaunay_like_graph"]


def _symmetric_edges(pairs: np.ndarray) -> np.ndarray:
    """Return the union of (i, j) and (j, i) pairs — the symmetric adjacency pattern."""
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0)


def grid_graph(
    width: int,
    height: int,
    diagonal: bool = False,
    name: str = "grid",
) -> BipartiteGraph:
    """A ``width x height`` 2-D grid as a square bipartite graph.

    Vertex ``(x, y)`` has index ``y * width + x``; edges connect 4-neighbours
    (and the down-right diagonal when ``diagonal`` is set, which produces a
    triangulated grid — the cheapest Delaunay-like structure).
    """
    if width <= 0 or height <= 0:
        raise ValueError("grid dimensions must be positive")
    n = width * height
    idx = np.arange(n, dtype=np.int64)
    x = idx % width
    y = idx // width
    pairs = []
    right = idx[x < width - 1]
    pairs.append(np.column_stack([right, right + 1]))
    down = idx[y < height - 1]
    pairs.append(np.column_stack([down, down + width]))
    if diagonal:
        diag = idx[(x < width - 1) & (y < height - 1)]
        pairs.append(np.column_stack([diag, diag + width + 1]))
    edges = _symmetric_edges(np.concatenate(pairs, axis=0))
    # Include the diagonal of the adjacency matrix? Road/mesh matrices in the
    # UFL collection typically have an empty diagonal; we follow that.
    return from_edges(edges, n_rows=n, n_cols=n, name=name)


def road_network_graph(
    n_target: int,
    removal_fraction: float = 0.12,
    seed: int | None = None,
    name: str = "road",
) -> BipartiteGraph:
    """Road-network analog: a sparse subgraph of a 2-D grid with dead ends.

    Starting from a near-square grid of about ``n_target`` intersections, a
    fraction of the edges is removed at random.  The removals create
    degree-1 dead ends and slightly imbalanced local structure, which leaves
    the maximum matching a few percent below perfect — mirroring
    ``roadNet-PA/TX/CA`` in Table I (MM ≈ 0.97 n).
    """
    if n_target <= 0:
        raise ValueError("n_target must be positive")
    if not 0 <= removal_fraction < 1:
        raise ValueError("removal_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    width = max(2, int(round(np.sqrt(n_target))))
    height = max(2, (n_target + width - 1) // width)
    grid = grid_graph(width, height, diagonal=False, name=name)
    edges = grid.edges()  # (row, col) pairs, symmetric
    # Work on the undirected pairs (row < col) so removals stay symmetric.
    undirected = edges[edges[:, 0] < edges[:, 1]]
    keep_mask = rng.random(len(undirected)) >= removal_fraction
    kept = undirected[keep_mask]
    sym = _symmetric_edges(kept)
    return from_edges(sym, n_rows=grid.n_rows, n_cols=grid.n_cols, name=name)


def delaunay_like_graph(
    n_points: int,
    seed: int | None = None,
    name: str = "delaunay",
) -> BipartiteGraph:
    """Delaunay triangulation of random points in the unit square.

    Analog of the ``delaunay_n20..n24`` instances: planar, average degree
    about 6, and (empirically, as in the paper's Table I) admits a perfect
    matching.  Uses :class:`scipy.spatial.Delaunay`.
    """
    if n_points < 3:
        raise ValueError("a Delaunay triangulation needs at least 3 points")
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((n_points, 2))
    tri = Delaunay(points)
    simplices = tri.simplices.astype(np.int64)
    pairs = np.concatenate(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]], axis=0
    )
    edges = _symmetric_edges(pairs)
    return from_edges(edges, n_rows=n_points, n_cols=n_points, name=name)
