"""Synthetic bipartite-graph workload generators.

The paper evaluates on 28 matrices from the UFL (SuiteSparse) collection,
covering several structural families: road networks, Delaunay meshes,
Kronecker (R-MAT) graphs, power-law web / social graphs, co-purchase /
citation graphs and very large thin "trace / bubbles" meshes.  Those
instances are far too large to ship or to solve in pure Python, so this
package generates *scaled-down synthetic analogs* of each family and a
28-instance suite (:mod:`repro.generators.suite`) that mirrors the paper's
Table I line-up one to one.

Every generator is deterministic given a seed and returns a
:class:`~repro.graph.bipartite.BipartiteGraph`.
"""

from repro.generators.mesh import (
    delaunay_like_graph,
    grid_graph,
    road_network_graph,
)
from repro.generators.powerlaw import chung_lu_bipartite, power_law_web_graph
from repro.generators.random_bipartite import (
    perfect_matching_plus_noise,
    uniform_random_bipartite,
)
from repro.generators.rmat import kronecker_graph, rmat_bipartite
from repro.generators.suite import (
    SUITE_SPECS,
    SuiteInstance,
    generate_instance,
    generate_suite,
    instance_names,
    materialize_instance,
)
from repro.generators.capacities import (
    apply_capacity_spec,
    col_capacities,
    fixed_capacities,
    row_capacities,
    uniform_capacities,
)
from repro.generators.scenarios import (
    SCENARIOS,
    Scenario,
    generate_scenario,
    scenario_names,
)
from repro.generators.trace import bubbles_graph, trace_graph
from repro.generators.updates import random_update_trace, suite_update_workload
from repro.generators.weights import (
    apply_weight_spec,
    geometric_weights,
    rank_correlated_weights,
    uniform_weights,
)

__all__ = [
    "uniform_random_bipartite",
    "perfect_matching_plus_noise",
    "rmat_bipartite",
    "kronecker_graph",
    "chung_lu_bipartite",
    "power_law_web_graph",
    "grid_graph",
    "road_network_graph",
    "delaunay_like_graph",
    "trace_graph",
    "bubbles_graph",
    "random_update_trace",
    "suite_update_workload",
    "apply_weight_spec",
    "uniform_weights",
    "geometric_weights",
    "rank_correlated_weights",
    "apply_capacity_spec",
    "fixed_capacities",
    "uniform_capacities",
    "row_capacities",
    "col_capacities",
    "SCENARIOS",
    "Scenario",
    "generate_scenario",
    "scenario_names",
    "SUITE_SPECS",
    "SuiteInstance",
    "generate_suite",
    "generate_instance",
    "instance_names",
    "materialize_instance",
]
