"""Edge-weight generators for the weighted matching workloads.

Each generator takes an existing (structural) graph and returns a copy
carrying edge weights, via :meth:`BipartiteGraph.with_weights` — structure
and weights compose freely, so every family of the synthetic suite doubles
as a weighted-assignment instance.  All generators are deterministic given a
seed, and by default produce *integral* weights (stored as ``float64``):
with integral weights the ε-scaling auction solver is exactly optimal and
certificates with ``gap_bound < 1`` are proofs.

The three families cover the classic assignment-problem difficulty axes:

* :func:`uniform_weights` — i.i.d. integers, the easy baseline;
* :func:`geometric_weights` — heavy-tailed magnitudes, stressing the
  ε-scaling schedule;
* :func:`rank_correlated_weights` — Machol–Wien-style weights correlated
  with the endpoint degree ranks, which force long augmenting chains in
  shortest-path solvers and bidding wars in auctions.

A compact string form (``"uniform:1:100"``, ``"geometric:0.05"``,
``"rank:0.25"``) is parsed by :func:`apply_weight_spec` for the CLI and the
batch manifests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "apply_weight_spec",
    "geometric_weights",
    "parse_weight_spec",
    "rank_correlated_weights",
    "uniform_weights",
]


def uniform_weights(
    graph: BipartiteGraph,
    low: int = 1,
    high: int = 100,
    seed: int | None = None,
) -> BipartiteGraph:
    """Independent uniform integer weights in ``[low, high]``.

    Parameters
    ----------
    graph:
        The structural graph to weight.
    low, high:
        Inclusive integer weight range.
    seed:
        Seed for :class:`numpy.random.Generator`.

    Returns
    -------
    BipartiteGraph
        A copy of ``graph`` carrying the sampled weights.

    Raises
    ------
    ValueError
        If ``low > high``.
    """
    if low > high:
        raise ValueError(f"empty weight range [{low}, {high}]")
    rng = np.random.default_rng(seed)
    return graph.with_weights(
        rng.integers(int(low), int(high) + 1, size=graph.n_edges).astype(np.float64)
    )


def geometric_weights(
    graph: BipartiteGraph,
    p: float = 0.05,
    seed: int | None = None,
) -> BipartiteGraph:
    """Heavy-tailed integer weights from a geometric distribution.

    ``p`` is the geometric success probability: the mean weight is ``1/p``
    and the tail decays geometrically, producing the orders-of-magnitude
    weight spreads that stress an ε-scaling schedule.
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    rng = np.random.default_rng(seed)
    return graph.with_weights(rng.geometric(p, size=graph.n_edges).astype(np.float64))


def rank_correlated_weights(
    graph: BipartiteGraph,
    noise: float = 0.25,
    scale: int = 100,
    seed: int | None = None,
) -> BipartiteGraph:
    """Weights correlated with the endpoint degree ranks (Machol–Wien style).

    The weight of edge ``(u, v)`` is ``(1 - noise)`` parts the normalised
    sum of the degree ranks of ``u`` and ``v`` plus ``noise`` parts uniform
    noise, scaled to integers in ``[1, scale]``.  High-degree vertices hold
    the heavy edges, so greedy choices collide and solvers must trade weight
    against cardinality along long augmenting chains — the hard regime of
    the assignment literature.

    Raises
    ------
    ValueError
        If ``noise`` is outside ``[0, 1]`` or ``scale < 1``.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be in [0, 1]")
    if scale < 1:
        raise ValueError("scale must be at least 1")
    rng = np.random.default_rng(seed)
    if graph.n_edges == 0:
        return graph.with_weights(np.empty(0, dtype=np.float64))
    row_rank = np.argsort(np.argsort(graph.row_degrees, kind="stable"), kind="stable")
    col_rank = np.argsort(np.argsort(graph.col_degrees, kind="stable"), kind="stable")
    denom = max(graph.n_rows - 1, 1) + max(graph.n_cols - 1, 1)
    structured = (row_rank[graph.col_ind] + col_rank[graph.edge_columns()]) / denom
    mixed = (1.0 - noise) * structured + noise * rng.random(graph.n_edges)
    return graph.with_weights(np.floor(mixed * (scale - 1)) + 1.0)


def parse_weight_spec(spec: str) -> tuple[str, dict]:
    """Parse a weight-spec string into ``(kind, keyword arguments)``.

    Accepted forms (used by the CLI ``--weights`` flag and the batch
    manifest ``"weights"`` field):

    * ``"uniform:LOW:HIGH"`` (or ``"uniform"``) — :func:`uniform_weights`;
    * ``"geometric:P"`` (or ``"geometric"``) — :func:`geometric_weights`;
    * ``"rank:NOISE"`` (or ``"rank"``) — :func:`rank_correlated_weights`;
    * ``"values"`` — keep the weights the graph already carries (e.g. read
      from a Matrix-Market file's value entries).

    Graph-free, so manifest loaders can reject a bad spec on any line
    *before* building graphs.

    Raises
    ------
    ValueError
        For an unknown spec kind or malformed numbers.
    """
    kind, _, rest = str(spec).partition(":")
    kind = kind.strip().lower()
    # Keep empty segments so "uniform::50" means "default low, high 50"
    # instead of silently shifting 50 into the low position.
    args = rest.split(":") if rest else []

    def number(index: int, default: float, converter=float) -> float:
        if index >= len(args) or args[index] == "":
            return default
        try:
            return converter(args[index])
        except ValueError:
            raise ValueError(f"malformed weight spec {spec!r}") from None

    arity = {"uniform": 2, "geometric": 1, "rank": 1, "values": 0}
    if kind not in arity:
        raise ValueError(
            f"unknown weight spec {spec!r}; expected uniform[:LOW:HIGH], "
            f"geometric[:P], rank[:NOISE] or values"
        )
    if len(args) > arity[kind]:
        # Silently dropping a trailing argument would run with different
        # weights than the user asked for.
        raise ValueError(
            f"weight spec {spec!r} takes at most {arity[kind]} argument(s)"
        )
    if kind == "uniform":
        return kind, {"low": number(0, 1, int), "high": number(1, 100, int)}
    if kind == "geometric":
        return kind, {"p": number(0, 0.05)}
    if kind == "rank":
        return kind, {"noise": number(0, 0.25)}
    return kind, {}


def apply_weight_spec(
    graph: BipartiteGraph, spec: str, seed: int | None = None
) -> BipartiteGraph:
    """Apply a compact weight-spec string (see :func:`parse_weight_spec`).

    Raises
    ------
    ValueError
        For an unknown spec, malformed numbers, or ``"values"`` on a graph
        that carries no weights.
    """
    kind, kwargs = parse_weight_spec(spec)
    if kind == "uniform":
        return uniform_weights(graph, seed=seed, **kwargs)
    if kind == "geometric":
        return geometric_weights(graph, seed=seed, **kwargs)
    if kind == "rank":
        return rank_correlated_weights(graph, seed=seed, **kwargs)
    if not graph.has_weights:  # kind == "values"
        raise ValueError(
            f"weight spec 'values' needs a graph with value entries, but "
            f"{graph.name!r} carries no weights (read the .mtx with weights?)"
        )
    return graph
