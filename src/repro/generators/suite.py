"""The 28-instance evaluation suite.

One synthetic analog per instance of the paper's Table I, in the same order
(increasing number of rows).  Each entry records the metadata of the original
UFL matrix — size, edge count, cardinality of the cheap initial matching (IM)
and of the maximum matching (MM), and the runtimes the paper reports for
G-PR, G-HKDW, P-DBFS and the sequential PR — so the benchmark harness can
compare the *shape* of its results (who wins, by roughly how much) against
the published numbers.

Scaling.  The analogs shrink every instance to a size a pure-Python
simulation can handle while keeping (a) the structural family, (b) the
relative ordering of the instances by size and (c) the qualitative IM/MM
behaviour.  ``SCALE_PROFILES`` defines the base size; instance ``i`` gets
``base * (paper_rows_i / paper_rows_min) ** 0.4`` vertices per side.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterator

import numpy as np

from repro.generators.mesh import delaunay_like_graph, road_network_graph
from repro.generators.powerlaw import chung_lu_bipartite, power_law_web_graph
from repro.generators.random_bipartite import (
    perfect_matching_plus_noise,
    uniform_random_bipartite,
)
from repro.generators.rmat import rmat_bipartite
from repro.generators.trace import bubbles_graph, trace_graph
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = [
    "PaperRecord",
    "SuiteInstance",
    "SUITE_SPECS",
    "SCALE_PROFILES",
    "generate_instance",
    "generate_suite",
    "instance_names",
    "materialize_instance",
]


@dataclass(frozen=True)
class PaperRecord:
    """Numbers the paper reports for one Table-I instance."""

    rows: int
    cols: int
    edges: int
    initial_matching: int
    maximum_matching: int
    time_gpr: float
    time_ghkdw: float
    time_pdbfs: float
    time_pr: float

    @property
    def speedup_gpr_vs_pr(self) -> float:
        """The paper's G-PR speedup over sequential PR (Figure 4)."""
        return self.time_pr / self.time_gpr


@dataclass(frozen=True)
class SuiteInstance:
    """One instance of the evaluation suite: a named generator plus paper metadata."""

    instance_id: int
    name: str
    family: str
    paper: PaperRecord
    _factory: Callable[[int, int], BipartiteGraph]

    def generate(self, n_target: int, seed: int) -> BipartiteGraph:
        """Generate the scaled analog with roughly ``n_target`` rows."""
        graph = self._factory(n_target, seed)
        return graph.with_name(self.name)


#: Base number of rows for the *smallest* suite instance under each profile.
SCALE_PROFILES: dict[str, int] = {
    "tiny": 220,
    "small": 900,
    "medium": 2600,
    "large": 8000,
}

_SIZE_EXPONENT = 0.4


def _rectangular_tall(n_target: int, seed: int, col_excess: float, avg_degree: float) -> BipartiteGraph:
    """GL7d19-like rectangular graph: slightly more columns than rows, row-perfect matching."""
    rng = np.random.default_rng(seed)
    n_rows = n_target
    n_cols = int(round(n_target * col_excess))
    diag_rows = np.arange(n_rows, dtype=np.int64)
    diag_cols = rng.permutation(n_cols)[:n_rows].astype(np.int64)
    n_extra = int(round(n_rows * avg_degree))
    extra = np.column_stack(
        [
            rng.integers(0, n_rows, size=n_extra, dtype=np.int64),
            rng.integers(0, n_cols, size=n_extra, dtype=np.int64),
        ]
    )
    edges = np.concatenate([np.column_stack([diag_rows, diag_cols]), extra], axis=0)
    return from_edges(edges, n_rows=n_rows, n_cols=n_cols, name="rectangular")


def _spec(
    instance_id: int,
    name: str,
    family: str,
    paper: PaperRecord,
    factory: Callable[[int, int], BipartiteGraph],
) -> SuiteInstance:
    return SuiteInstance(instance_id=instance_id, name=name, family=family, paper=paper, _factory=factory)


# ----------------------------------------------------------------------------
# Table I of the paper, verbatim (sizes, IM, MM, runtimes in seconds).
# ----------------------------------------------------------------------------
_T = PaperRecord
SUITE_SPECS: tuple[SuiteInstance, ...] = (
    _spec(1, "amazon0505", "co-purchase",
          _T(410_236, 410_236, 3_356_824, 332_972, 395_397, 0.09, 0.18, 22.70, 0.52),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=8.0, exponent=2.4, seed=s)),
    _spec(2, "coPapersDBLP", "co-author",
          _T(540_486, 540_486, 15_245_729, 510_992, 540_226, 0.62, 0.42, 6.27, 0.59),
          lambda n, s: power_law_web_graph(n, avg_degree=14.0, exponent=2.3,
                                           community_fraction=0.5, seed=s)),
    _spec(3, "amazon-2008", "co-purchase",
          _T(735_323, 735_323, 5_158_388, 587_877, 641_379, 0.12, 0.11, 0.18, 0.93),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=7.0, exponent=2.4, seed=s)),
    _spec(4, "flickr", "social",
          _T(820_878, 820_878, 9_837_214, 285_241, 367_147, 0.13, 0.22, 0.35, 0.99),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=12.0, exponent=1.9, seed=s)),
    _spec(5, "eu-2005", "web",
          _T(862_664, 862_664, 19_235_140, 642_027, 652_328, 0.40, 1.54, 0.94, 0.80),
          lambda n, s: power_law_web_graph(n, avg_degree=16.0, exponent=2.1,
                                           community_fraction=0.4, seed=s)),
    _spec(6, "delaunay_n20", "delaunay",
          _T(1_048_576, 1_048_576, 3_145_686, 993_174, 1_048_576, 0.06, 0.04, 0.09, 0.32),
          lambda n, s: delaunay_like_graph(n, seed=s)),
    _spec(7, "kron_g500-logn20", "kronecker",
          _T(1_048_576, 1_048_576, 44_620_272, 431_854, 513_334, 0.38, 0.60, 8.19, 1.24),
          lambda n, s: rmat_bipartite(max(6, int(np.ceil(np.log2(max(n, 2))))),
                                      edge_factor=16.0, seed=s)),
    _spec(8, "roadNet-PA", "road",
          _T(1_090_920, 1_090_920, 1_541_898, 916_444, 1_059_398, 0.33, 0.14, 0.29, 0.59),
          lambda n, s: road_network_graph(n, removal_fraction=0.30, seed=s)),
    _spec(9, "in-2004", "web",
          _T(1_382_908, 1_382_908, 16_917_053, 781_063, 804_245, 0.58, 1.44, 2.16, 0.56),
          lambda n, s: power_law_web_graph(n, avg_degree=12.0, exponent=2.0,
                                           community_fraction=0.35, seed=s)),
    _spec(10, "roadNet-TX", "road",
          _T(1_393_383, 1_393_383, 1_921_660, 1_158_420, 1_342_440, 0.45, 0.14, 0.33, 0.69),
          lambda n, s: road_network_graph(n, removal_fraction=0.28, seed=s)),
    _spec(11, "Hamrle3", "circuit",
          _T(1_447_360, 1_447_360, 5_514_242, 1_211_049, 1_447_360, 0.94, 1.36, 2.70, 0.56),
          lambda n, s: perfect_matching_plus_noise(n, extra_degree=3.0, seed=s)),
    _spec(12, "as-Skitter", "internet",
          _T(1_696_415, 1_696_415, 11_095_298, 891_280, 1_035_521, 0.34, 0.49, 1.89, 1.13),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=7.0, exponent=1.9, seed=s)),
    _spec(13, "GL7d19", "combinatorial",
          _T(1_911_130, 1_955_309, 37_322_725, 1_904_144, 1_911_130, 0.24, 0.58, 0.38, 1.38),
          lambda n, s: _rectangular_tall(n, s, col_excess=1.023, avg_degree=19.0)),
    _spec(14, "roadNet-CA", "road",
          _T(1_971_281, 1_971_281, 2_766_607, 1_668_268, 1_913_589, 0.68, 0.34, 0.53, 1.55),
          lambda n, s: road_network_graph(n, removal_fraction=0.30, seed=s)),
    _spec(15, "delaunay_n21", "delaunay",
          _T(2_097_152, 2_097_152, 6_291_408, 1_987_326, 2_097_152, 0.18, 0.13, 0.21, 1.06),
          lambda n, s: delaunay_like_graph(n, seed=s)),
    _spec(16, "kron_g500-logn21", "kronecker",
          _T(2_097_152, 2_097_152, 91_042_010, 812_883, 964_679, 0.68, 0.99, 1.50, 2.77),
          lambda n, s: rmat_bipartite(max(6, int(np.ceil(np.log2(max(n, 2))))),
                                      edge_factor=22.0, seed=s)),
    _spec(17, "wikipedia-20070206", "web",
          _T(3_566_907, 3_566_907, 45_030_389, 1_623_931, 1_992_408, 0.62, 1.09, 5.24, 3.11),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=12.0, exponent=2.0, seed=s)),
    _spec(18, "patents", "citation",
          _T(3_774_768, 3_774_768, 14_970_767, 1_892_820, 2_011_083, 0.54, 0.88, 0.84, 3.65),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=4.0, exponent=2.6, seed=s)),
    _spec(19, "com-livejournal", "social",
          _T(3_997_962, 3_997_962, 34_681_189, 2_577_642, 3_608_272, 2.08, 4.58, 22.46, 9.67),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=9.0, exponent=2.2, seed=s)),
    _spec(20, "hugetrace-00000", "trace",
          _T(4_588_484, 4_588_484, 6_879_133, 4_581_148, 4_588_484, 2.71, 1.96, 0.83, 0.84),
          lambda n, s: trace_graph(n, strip_height=3, defect_fraction=0.02, seed=s)),
    _spec(21, "soc-LiveJournal1", "social",
          _T(4_847_571, 4_847_571, 68_993_773, 2_831_783, 3_835_002, 1.35, 3.32, 14.35, 12.66),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=14.0, exponent=2.1, seed=s)),
    _spec(22, "ljournal-2008", "social",
          _T(5_363_260, 5_363_260, 79_023_142, 3_941_073, 4_355_699, 1.54, 2.37, 10.30, 10.01),
          lambda n, s: chung_lu_bipartite(n, n, avg_degree=15.0, exponent=2.2, seed=s)),
    _spec(23, "italy_osm", "road",
          _T(6_686_493, 6_686_493, 7_013_978, 6_438_492, 6_644_390, 5.46, 5.86, 1.20, 6.84),
          lambda n, s: road_network_graph(n, removal_fraction=0.45, seed=s)),
    _spec(24, "delaunay_n23", "delaunay",
          _T(8_388_608, 8_388_608, 25_165_784, 7_950_070, 8_388_608, 0.81, 0.96, 1.26, 8.86),
          lambda n, s: delaunay_like_graph(n, seed=s)),
    _spec(25, "wb-edu", "web",
          _T(9_845_725, 9_845_725, 57_156_537, 4_810_825, 5_000_334, 2.00, 33.82, 8.61, 3.94),
          lambda n, s: power_law_web_graph(n, avg_degree=6.0, exponent=1.9,
                                           community_fraction=0.25, seed=s)),
    _spec(26, "hugetrace-00020", "trace",
          _T(16_002_413, 16_002_413, 23_998_813, 15_535_760, 16_002_413, 14.19, 7.90, 393.13, 28.69),
          lambda n, s: trace_graph(n, strip_height=3, defect_fraction=0.015, seed=s)),
    _spec(27, "delaunay_n24", "delaunay",
          _T(16_777_216, 16_777_216, 50_331_601, 15_892_194, 16_777_216, 1.83, 1.98, 2.41, 23.01),
          lambda n, s: delaunay_like_graph(n, seed=s)),
    _spec(28, "hugebubbles-00000", "bubbles",
          _T(18_318_143, 18_318_143, 27_470_081, 18_303_614, 18_318_143, 13.65, 13.16, 3.55, 13.51),
          lambda n, s: bubbles_graph(n, n_bubbles=6, defect_fraction=0.01, seed=s)),
)

_MIN_PAPER_ROWS = min(spec.paper.rows for spec in SUITE_SPECS)


def instance_names() -> list[str]:
    """Names of the 28 suite instances in Table-I order."""
    return [spec.name for spec in SUITE_SPECS]


def _target_rows(spec: SuiteInstance, base: int) -> int:
    factor = (spec.paper.rows / _MIN_PAPER_ROWS) ** _SIZE_EXPONENT
    return max(16, int(round(base * factor)))


def generate_instance(
    name_or_id: str | int,
    profile: str = "small",
    seed: int = 20130421,
    scale: float = 1.0,
) -> BipartiteGraph:
    """Generate one suite instance by name or Table-I id.

    Parameters
    ----------
    name_or_id:
        Either the instance name (e.g. ``"roadNet-PA"``) or its 1-based
        Table-I id.
    profile:
        One of :data:`SCALE_PROFILES` (``tiny``, ``small``, ``medium``,
        ``large``).
    seed:
        Base seed; the instance id is mixed in so every instance differs.
    scale:
        Extra multiplier on the profile's base size.
    """
    spec = _lookup(name_or_id)
    if profile not in SCALE_PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(SCALE_PROFILES)}")
    base = int(round(SCALE_PROFILES[profile] * scale))
    n_target = _target_rows(spec, base)
    return spec.generate(n_target, seed=seed + 1000 * spec.instance_id)


def materialize_instance(
    name_or_id: str | int,
    profile: str = "large",
    seed: int = 20130421,
    *,
    directory: str | Path = ".",
    scale: float = 1.0,
    gz: bool = True,
    overwrite: bool = False,
) -> Path:
    """Generate a suite instance and write it to disk as Matrix-Market.

    The ``large`` profile (and beyond, via ``scale``) produces graphs meant
    to be solved *out of core* through :mod:`repro.sharded` — materializing
    them once and streaming them back beats regenerating them in RAM for
    every run.  The file is written in bounded column-block chunks through
    :class:`~repro.graph.io.MatrixMarketStreamWriter`, and an existing file
    is reused unless ``overwrite`` is set (the generators are deterministic,
    so name + profile + seed identifies the content).

    Returns the path ``<directory>/<name>_<profile>_<seed>.mtx[.gz]``.
    """
    from repro.graph.io import MatrixMarketStreamWriter

    spec = _lookup(name_or_id)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".mtx.gz" if gz else ".mtx"
    path = directory / f"{spec.name}_{profile}_{seed}{suffix}"
    if path.exists() and not overwrite:
        return path
    graph = generate_instance(name_or_id, profile=profile, seed=seed, scale=scale)
    col_ptr = graph.col_ptr
    col_ind = graph.col_ind
    block = 1 << 16
    with MatrixMarketStreamWriter(
        path,
        n_rows=graph.n_rows,
        n_cols=graph.n_cols,
        n_entries=graph.n_edges,
        comment=f"suite instance {spec.name} profile={profile} seed={seed}",
    ) as writer:
        for lo in range(0, graph.n_cols, block):
            hi = min(lo + block, graph.n_cols)
            start, stop = int(col_ptr[lo]), int(col_ptr[hi])
            rows = col_ind[start:stop]
            cols = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(col_ptr[lo : hi + 1])
            )
            writer.write_chunk(rows, cols)
    return path


def generate_suite(
    profile: str = "small",
    seed: int = 20130421,
    scale: float = 1.0,
    families: tuple[str, ...] | None = None,
) -> Iterator[tuple[SuiteInstance, BipartiteGraph]]:
    """Yield ``(spec, graph)`` pairs for the whole suite (optionally filtered by family)."""
    for spec in SUITE_SPECS:
        if families is not None and spec.family not in families:
            continue
        yield spec, generate_instance(spec.instance_id, profile=profile, seed=seed, scale=scale)


def _lookup(name_or_id: str | int) -> SuiteInstance:
    if isinstance(name_or_id, (int, np.integer)):
        for spec in SUITE_SPECS:
            if spec.instance_id == int(name_or_id):
                return spec
        raise KeyError(f"no suite instance with id {name_or_id}")
    for spec in SUITE_SPECS:
        if spec.name == name_or_id:
            return spec
    raise KeyError(f"no suite instance named {name_or_id!r}")
