"""R-MAT / Kronecker bipartite graph generator.

The ``kron_g500-logn20`` and ``kron_g500-logn21`` instances of the paper are
Graph500 Kronecker graphs.  Their defining feature for bipartite matching is
a heavily skewed degree distribution with a large fraction of isolated or
low-degree vertices, which makes the maximum matching much smaller than the
vertex count (Table I: MM ≈ 0.49 n for logn20).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["rmat_bipartite", "kronecker_graph"]


def rmat_bipartite(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = None,
    name: str = "rmat",
) -> BipartiteGraph:
    """Generate a ``2**scale x 2**scale`` R-MAT graph.

    Each edge is placed by recursively descending ``scale`` levels of a 2x2
    partition of the adjacency matrix with probabilities ``(a, b, c, d)``
    where ``d = 1 - a - b - c``.  The Graph500 parameters (0.57, 0.19, 0.19,
    0.05) are the defaults, matching the ``kron_g500`` family.

    Parameters
    ----------
    scale:
        log2 of the number of vertices per side.
    edge_factor:
        Average number of edges per vertex (before deduplication).
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be between 1 and 24")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum to at most 1")
    n = 1 << scale
    n_edges = int(round(n * edge_factor))
    rng = np.random.default_rng(seed)

    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    # Vectorised recursive descent: one random draw per (edge, level).
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        draws = rng.random(n_edges)
        quadrant = np.searchsorted(thresholds, draws)
        bit = 1 << (scale - level - 1)
        rows += np.where(quadrant >= 2, bit, 0)
        cols += np.where((quadrant == 1) | (quadrant == 3), bit, 0)
    return from_edges(np.column_stack([rows, cols]), n_rows=n, n_cols=n, name=name)


def kronecker_graph(
    scale: int,
    edge_factor: float = 16.0,
    seed: int | None = None,
    name: str = "kronecker",
) -> BipartiteGraph:
    """Graph500-flavoured Kronecker graph (R-MAT with the Graph500 parameters)."""
    return rmat_bipartite(scale, edge_factor=edge_factor, seed=seed, name=name)
