"""Capacitated dispatch scenarios: graph + churn trace + service target.

Each recipe models a real many-to-one assignment workload as a capacitated
(and, where bidding matters, weighted) bipartite graph plus a replayable
:class:`~repro.dynamic.updates.GraphUpdate` trace of arrivals, departures
and repricing — the end-to-end inputs of the CLI ``stream`` subcommand and
the scenario-smoke CI job.  Everything is deterministic given the seed.

Three recipes ship:

* ``ride-hailing`` — riders (rows, capacity 1) match to drivers (columns,
  1–4 seats) by integer proximity score; riders churn fast, drivers rarely
  go offline.  Weighted + column-capacitated, the ``b-auction`` shape.
* ``ad-slots`` — ads (rows, capacity 1) bid for slots (columns, hosting
  2–6 ads); ads launch and wind down, bids get pulled.  Also weighted +
  column-capacitated.
* ``task-routing`` — workers (rows, 2–5 concurrent tasks) take tasks
  (columns, capacity 1); tasks stream in and complete.  Unweighted, the
  cardinality ``b-aug`` / ``b-expand`` shape.

Each :class:`Scenario` carries a suggested ``algorithm`` and an ``slo`` —
the assignment rate (matched pairs over demand) the replay's final window
is expected to meet, which the ``stream`` summary reports as ``slo_met``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamic.updates import GraphUpdate
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = [
    "SCENARIOS",
    "Scenario",
    "generate_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class Scenario:
    """A replayable dispatch workload: starting graph, churn trace, target.

    Attributes
    ----------
    name:
        Registry key (also stored as the graph's name, with the seed).
    description:
        One line of intent, surfaced by ``repro stream --scenario help``.
    graph:
        The starting :class:`BipartiteGraph` — capacitated, and weighted
        when the recipe prices its edges.
    updates:
        The churn trace, in replay order.
    algorithm:
        Suggested solver (a capacitated registry spec).
    slo:
        Minimum acceptable assignment rate (cardinality over demand) after
        the full trace has been replayed.
    """

    name: str
    description: str
    graph: BipartiteGraph
    updates: tuple[GraphUpdate, ...]
    algorithm: str
    slo: float


def _scored_edges(rng, n_rows, n_cols, per_row, scale=100):
    """``per_row`` distinct partners per row with integer scores in [1, scale]."""
    edges, weights = [], []
    for u in range(n_rows):
        k = min(n_cols, int(per_row))
        partners = rng.choice(n_cols, size=k, replace=False)
        for v in sorted(int(v) for v in partners):
            edges.append((u, v))
            weights.append(float(rng.integers(1, scale + 1)))
    return edges, weights


def ride_hailing_scenario(seed: int = 0) -> Scenario:
    """Riders (capacity 1) to drivers (1–4 seats), scored by proximity."""
    rng = np.random.default_rng(seed)
    n_riders, n_drivers = 48, 16
    edges, weights = _scored_edges(rng, n_riders, n_drivers, per_row=3)
    graph = from_edges(
        edges, n_riders, n_drivers, name=f"ride-hailing-s{seed}", weights=weights
    )
    seats = rng.integers(1, 5, size=n_drivers).astype(np.int64)
    graph = graph.with_capacities(np.ones(n_riders, dtype=np.int64), seats)

    updates: list[GraphUpdate] = []
    n_rows, active_rows = n_riders, list(range(n_riders))
    retired_cols: set[int] = set()
    for _ in range(120):
        roll = rng.random()
        if roll < 0.45:  # a new rider opens the app
            updates.append(GraphUpdate.add_row())
            u, n_rows = n_rows, n_rows + 1
            active_rows.append(u)
            for v in _pick_cols(rng, n_drivers, 3, retired_cols):
                updates.append(
                    GraphUpdate.insert(u, v, weight=float(rng.integers(1, 101)))
                )
        elif roll < 0.85 and active_rows:  # a rider cancels or is served
            u = active_rows.pop(int(rng.integers(len(active_rows))))
            updates.append(GraphUpdate.retire_row(u))
        elif len(retired_cols) < n_drivers - 4:  # a driver goes offline
            v = int(rng.integers(n_drivers))
            if v not in retired_cols:
                retired_cols.add(v)
                updates.append(GraphUpdate.retire_col(v))
    return Scenario(
        name="ride-hailing",
        description="riders (cap 1) to drivers (1-4 seats), proximity-scored",
        graph=graph,
        updates=tuple(updates),
        algorithm="b-auction",
        slo=0.9,
    )


def ad_slot_scenario(seed: int = 0) -> Scenario:
    """Ads (capacity 1) bidding for slots hosting 2–6 ads each."""
    rng = np.random.default_rng(seed)
    n_ads, n_slots = 60, 12
    edges, weights = _scored_edges(rng, n_ads, n_slots, per_row=4, scale=50)
    graph = from_edges(
        edges, n_ads, n_slots, name=f"ad-slots-s{seed}", weights=weights
    )
    hosting = rng.integers(2, 7, size=n_slots).astype(np.int64)
    graph = graph.with_capacities(np.ones(n_ads, dtype=np.int64), hosting)

    updates: list[GraphUpdate] = []
    n_rows, active_rows = n_ads, list(range(n_ads))
    bids = {(u, v) for u, v in edges}
    for _ in range(150):
        roll = rng.random()
        if roll < 0.4:  # a campaign launches
            updates.append(GraphUpdate.add_row())
            u, n_rows = n_rows, n_rows + 1
            active_rows.append(u)
            for v in _pick_cols(rng, n_slots, 4, set()):
                updates.append(
                    GraphUpdate.insert(u, v, weight=float(rng.integers(1, 51)))
                )
                bids.add((u, v))
        elif roll < 0.7 and active_rows:  # a campaign winds down
            u = active_rows.pop(int(rng.integers(len(active_rows))))
            updates.append(GraphUpdate.retire_row(u))
            bids = {pair for pair in bids if pair[0] != u}
        elif bids:  # a bid is pulled
            pair = sorted(bids)[int(rng.integers(len(bids)))]
            bids.discard(pair)
            updates.append(GraphUpdate.delete(*pair))
    return Scenario(
        name="ad-slots",
        description="ads (cap 1) bidding for slots hosting 2-6 ads",
        graph=graph,
        updates=tuple(updates),
        algorithm="b-auction",
        slo=0.9,
    )


def task_routing_scenario(seed: int = 0) -> Scenario:
    """Workers running 2–5 concurrent tasks; tasks stream in and complete."""
    rng = np.random.default_rng(seed)
    n_workers, n_tasks = 12, 64
    edges = []
    for v in range(n_tasks):
        k = min(n_workers, 3)
        for u in sorted(int(u) for u in rng.choice(n_workers, size=k, replace=False)):
            edges.append((u, v))
    graph = from_edges(edges, n_workers, n_tasks, name=f"task-routing-s{seed}")
    concurrency = rng.integers(2, 6, size=n_workers).astype(np.int64)
    graph = graph.with_capacities(concurrency, np.ones(n_tasks, dtype=np.int64))

    updates: list[GraphUpdate] = []
    n_cols, active_cols = n_tasks, list(range(n_tasks))
    for _ in range(160):
        roll = rng.random()
        if roll < 0.45:  # a task is submitted
            updates.append(GraphUpdate.add_col())
            v, n_cols = n_cols, n_cols + 1
            active_cols.append(v)
            for u in sorted(
                int(u)
                for u in rng.choice(n_workers, size=min(n_workers, 3), replace=False)
            ):
                updates.append(GraphUpdate.insert(u, v))
        elif active_cols:  # a task completes
            v = active_cols.pop(int(rng.integers(len(active_cols))))
            updates.append(GraphUpdate.retire_col(v))
    return Scenario(
        name="task-routing",
        description="workers (2-5 concurrent tasks) taking unit tasks",
        graph=graph,
        updates=tuple(updates),
        algorithm="b-aug",
        slo=0.9,
    )


def _pick_cols(rng, n_cols: int, k: int, excluded: set[int]) -> list[int]:
    """Up to ``k`` distinct non-excluded column indices, ascending."""
    available = [v for v in range(n_cols) if v not in excluded]
    if not available:
        return []
    k = min(k, len(available))
    picked = rng.choice(len(available), size=k, replace=False)
    return sorted(available[int(i)] for i in picked)


#: Registry of scenario recipes, keyed by CLI name.
SCENARIOS = {
    "ride-hailing": ride_hailing_scenario,
    "ad-slots": ad_slot_scenario,
    "task-routing": task_routing_scenario,
}


def scenario_names() -> list[str]:
    """The registered scenario names, in registry order."""
    return list(SCENARIOS)


def generate_scenario(name: str, seed: int = 0) -> Scenario:
    """Build the named scenario with the given seed.

    Raises
    ------
    ValueError
        For an unknown scenario name.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](seed=seed)
