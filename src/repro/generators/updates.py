"""Seeded streaming-update traces over the generator families.

The suite generators produce static graphs; this module turns any of them
into a *streaming* workload: a deterministic, seeded sequence of
:class:`~repro.dynamic.updates.GraphUpdate` objects (edge insertions of
fresh non-edges, deletions of live edges, optional vertex growth) that the
:class:`~repro.dynamic.incremental.IncrementalMatcher` and the CLI
``stream`` subcommand replay.

The trace simulator tracks the live edge set as it goes, so deletions always
hit an existing edge and insertions always add a new one — every update
changes the graph, which keeps edges-scanned comparisons between incremental
repair and from-scratch recompute honest.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.updates import GraphUpdate
from repro.generators.suite import generate_instance
from repro.graph.bipartite import BipartiteGraph

__all__ = ["random_update_trace", "suite_update_workload"]


def random_update_trace(
    graph: BipartiteGraph,
    n_updates: int,
    *,
    insert_fraction: float = 0.5,
    growth_fraction: float = 0.0,
    seed: int = 0,
) -> list[GraphUpdate]:
    """A seeded insert/delete trace over ``graph``.

    Parameters
    ----------
    graph:
        The base graph the trace starts from (it is not modified).
    n_updates:
        Number of updates to produce.
    insert_fraction:
        Probability that a non-growth update inserts a fresh non-edge; the
        rest delete a live edge.  A trace that runs out of edges to delete
        falls back to insertion (and vice versa on full graphs).
    growth_fraction:
        Probability that an update grows the vertex set instead
        (``add_row`` / ``add_col`` with equal odds).
    seed:
        RNG seed; the same arguments always produce the same trace.
    """
    if n_updates < 0:
        raise ValueError("n_updates must be non-negative")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be in [0, 1]")
    if not 0.0 <= growth_fraction <= 1.0:
        raise ValueError("growth_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_rows, n_cols = graph.n_rows, graph.n_cols
    # Live edge set: list for O(1) uniform sampling (swap-remove), set for
    # O(1) membership when rejection-sampling fresh non-edges.
    edges: list[tuple[int, int]] = [(int(u), int(v)) for u, v in graph.edges()]
    edge_set = set(edges)

    trace: list[GraphUpdate] = []
    for _ in range(n_updates):
        if growth_fraction and rng.random() < growth_fraction:
            if rng.random() < 0.5:
                trace.append(GraphUpdate.add_row())
                n_rows += 1
            else:
                trace.append(GraphUpdate.add_col())
                n_cols += 1
            continue
        full = len(edge_set) >= n_rows * n_cols
        want_insert = rng.random() < insert_fraction
        if (want_insert or not edges) and not full:
            while True:
                u = int(rng.integers(n_rows))
                v = int(rng.integers(n_cols))
                if (u, v) not in edge_set:
                    break
            trace.append(GraphUpdate.insert(u, v))
            edges.append((u, v))
            edge_set.add((u, v))
        elif edges:
            index = int(rng.integers(len(edges)))
            u, v = edges[index]
            edges[index] = edges[-1]
            edges.pop()
            edge_set.discard((u, v))
            trace.append(GraphUpdate.delete(u, v))
        # An empty graph with zero insert room produces no update this step —
        # only possible for degenerate 0-vertex graphs.
    return trace


def suite_update_workload(
    name_or_id: str | int,
    n_updates: int,
    *,
    profile: str = "tiny",
    seed: int = 20130421,
    insert_fraction: float = 0.5,
    growth_fraction: float = 0.0,
) -> tuple[BipartiteGraph, list[GraphUpdate]]:
    """Generate a suite instance plus a seeded update trace over it.

    Convenience wrapper tying :func:`~repro.generators.suite.generate_instance`
    to :func:`random_update_trace`; the trace seed is derived from ``seed`` so
    one number pins the whole workload.
    """
    graph = generate_instance(name_or_id, profile=profile, seed=seed)
    trace = random_update_trace(
        graph,
        n_updates,
        insert_fraction=insert_fraction,
        growth_fraction=growth_fraction,
        seed=seed + 1,
    )
    return graph, trace
