"""Trace / bubbles analogs: very sparse, near-perfectly-matchable thin meshes.

``hugetrace-*`` and ``hugebubbles-*`` in the paper's suite are adaptive
2-D meshes of frames of a moving interface: extremely sparse (average degree
about 3), huge diameter, and a cheap matching that already covers more than
99.8% of the vertices.  The remaining deficiency is closed only through very
long augmenting paths.  This is exactly the regime where the paper's GPU
algorithm performs *worst* (speedup 0.31 on ``hugetrace-00000``), so keeping
the family in the reproduction suite is essential for the shape of
Figures 2–4.

The analog used here is a long, narrow triangulated strip ("trace") and a
collection of narrow rings ("bubbles") with a few random defects.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["trace_graph", "bubbles_graph"]


def _symmetric(pairs: np.ndarray) -> np.ndarray:
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0)


def trace_graph(
    n_target: int,
    strip_height: int = 3,
    defect_fraction: float = 0.02,
    seed: int | None = None,
    name: str = "trace",
) -> BipartiteGraph:
    """A long triangulated strip of about ``n_target`` vertices.

    ``strip_height`` controls the width of the strip (3 reproduces the
    average degree ~3 of the originals); ``defect_fraction`` removes a small
    fraction of the edges, creating the handful of deficient vertices whose
    augmenting paths must travel along the strip.
    """
    if n_target <= 0:
        raise ValueError("n_target must be positive")
    if strip_height < 2:
        raise ValueError("strip_height must be at least 2")
    rng = np.random.default_rng(seed)
    length = max(2, n_target // strip_height)
    n = length * strip_height
    idx = np.arange(n, dtype=np.int64)
    x = idx // strip_height
    y = idx % strip_height
    pairs = []
    ahead = idx[x < length - 1]
    pairs.append(np.column_stack([ahead, ahead + strip_height]))          # along the strip
    up = idx[y < strip_height - 1]
    pairs.append(np.column_stack([up, up + 1]))                            # across the strip
    diag = idx[(x < length - 1) & (y < strip_height - 1)]
    pairs.append(np.column_stack([diag, diag + strip_height + 1]))         # triangulation
    undirected = np.concatenate(pairs, axis=0)
    keep = rng.random(len(undirected)) >= defect_fraction
    return from_edges(_symmetric(undirected[keep]), n_rows=n, n_cols=n, name=name)


def bubbles_graph(
    n_target: int,
    n_bubbles: int = 8,
    defect_fraction: float = 0.01,
    seed: int | None = None,
    name: str = "bubbles",
) -> BipartiteGraph:
    """A set of narrow triangulated rings ("bubbles") of about ``n_target`` vertices total."""
    if n_target <= 0:
        raise ValueError("n_target must be positive")
    if n_bubbles < 1:
        raise ValueError("n_bubbles must be at least 1")
    rng = np.random.default_rng(seed)
    per_bubble = max(6, n_target // n_bubbles)
    pairs = []
    offset = 0
    for _ in range(n_bubbles):
        ring = per_bubble // 2 * 2  # even so the two concentric rings pair up
        inner = np.arange(ring // 2, dtype=np.int64) + offset
        outer = inner + ring // 2
        nxt_inner = np.roll(inner, -1)
        nxt_outer = np.roll(outer, -1)
        pairs.append(np.column_stack([inner, nxt_inner]))   # inner ring
        pairs.append(np.column_stack([outer, nxt_outer]))   # outer ring
        pairs.append(np.column_stack([inner, outer]))        # spokes
        pairs.append(np.column_stack([inner, nxt_outer]))    # triangulation
        offset += ring
    undirected = np.concatenate(pairs, axis=0)
    keep = rng.random(len(undirected)) >= defect_fraction
    n = int(offset)
    return from_edges(_symmetric(undirected[keep]), n_rows=n, n_cols=n, name=name)
