"""Uniform random bipartite graphs (Erdős–Rényi style)."""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["uniform_random_bipartite", "perfect_matching_plus_noise"]


def uniform_random_bipartite(
    n_rows: int,
    n_cols: int,
    avg_degree: float = 4.0,
    seed: int | None = None,
    name: str = "uniform",
) -> BipartiteGraph:
    """Sample edges uniformly at random.

    ``avg_degree`` is the expected column degree; approximately
    ``n_cols * avg_degree`` distinct edges are produced (duplicates from the
    sampling are merged, so the realised count is slightly lower on dense
    settings).

    Parameters
    ----------
    n_rows, n_cols:
        Vertex counts of the two sides.
    avg_degree:
        Expected neighbours per column vertex.
    seed:
        Seed for :class:`numpy.random.Generator`; identical seeds give
        identical graphs.
    """
    if n_rows <= 0 or n_cols <= 0:
        raise ValueError("uniform_random_bipartite needs at least one vertex on each side")
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    rng = np.random.default_rng(seed)
    n_edges = int(round(n_cols * avg_degree))
    n_edges = min(n_edges, n_rows * n_cols)
    rows = rng.integers(0, n_rows, size=n_edges, dtype=np.int64)
    cols = rng.integers(0, n_cols, size=n_edges, dtype=np.int64)
    return from_edges(np.column_stack([rows, cols]), n_rows=n_rows, n_cols=n_cols, name=name)


def perfect_matching_plus_noise(
    n: int,
    extra_degree: float = 3.0,
    seed: int | None = None,
    name: str = "pm-noise",
) -> BipartiteGraph:
    """A square graph that is guaranteed to admit a perfect matching.

    The graph contains the diagonal edges ``(i, i)`` (a hidden perfect
    matching) plus ``n * extra_degree`` uniformly random edges.  Useful for
    tests that need a known maximum-matching cardinality and for the
    Delaunay/trace analogs whose originals have ``MM = n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    diag = np.column_stack([np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64)])
    n_extra = int(round(n * extra_degree))
    extra = np.column_stack(
        [
            rng.integers(0, n, size=n_extra, dtype=np.int64),
            rng.integers(0, n, size=n_extra, dtype=np.int64),
        ]
    )
    # Shuffle the hidden matching so it is not simply the identity permutation.
    perm = rng.permutation(n)
    diag[:, 1] = perm[diag[:, 1]]
    edges = np.concatenate([diag, extra], axis=0)
    return from_edges(edges, n_rows=n, n_cols=n, name=name)
