"""Power-law (Chung–Lu) bipartite graphs.

Analogs of the web / social / co-purchase instances in the paper's suite
(``flickr``, ``eu-2005``, ``in-2004``, ``wikipedia``, ``soc-LiveJournal1``,
``amazon0505``, ...).  Their defining feature is a heavy-tailed degree
distribution: a few hub vertices adjacent to a large fraction of the other
side, and a long tail of degree-1 vertices.  After the cheap initial
matching such graphs leave a moderate deficiency with mostly short
augmenting paths — the regime where the GPU algorithm shines.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["chung_lu_bipartite", "power_law_web_graph"]


def _powerlaw_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Expected-degree weights following a discrete power law with the given exponent."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)
    return weights


def chung_lu_bipartite(
    n_rows: int,
    n_cols: int,
    avg_degree: float = 6.0,
    exponent: float = 2.3,
    seed: int | None = None,
    name: str = "chung-lu",
) -> BipartiteGraph:
    """Chung–Lu bipartite graph with power-law expected degrees on both sides.

    Edges are sampled by drawing endpoints proportionally to per-vertex
    weights ``w_i ∝ rank^(−1/(γ−1))`` where ``γ`` is ``exponent``; this gives
    a degree distribution with tail exponent ``γ`` while keeping the expected
    edge count at ``n_cols * avg_degree``.
    """
    if n_rows <= 0 or n_cols <= 0:
        raise ValueError("chung_lu_bipartite needs at least one vertex on each side")
    if exponent <= 1.0:
        raise ValueError("power-law exponent must be > 1")
    rng = np.random.default_rng(seed)
    row_w = _powerlaw_weights(n_rows, exponent, rng)
    col_w = _powerlaw_weights(n_cols, exponent, rng)
    row_p = row_w / row_w.sum()
    col_p = col_w / col_w.sum()
    n_edges = int(round(n_cols * avg_degree))
    n_edges = min(n_edges, n_rows * n_cols)
    rows = rng.choice(n_rows, size=n_edges, p=row_p).astype(np.int64)
    cols = rng.choice(n_cols, size=n_edges, p=col_p).astype(np.int64)
    return from_edges(np.column_stack([rows, cols]), n_rows=n_rows, n_cols=n_cols, name=name)


def power_law_web_graph(
    n: int,
    avg_degree: float = 10.0,
    exponent: float = 2.1,
    community_fraction: float = 0.3,
    seed: int | None = None,
    name: str = "web",
) -> BipartiteGraph:
    """Web-crawl-like square graph: power-law degrees plus local "host" blocks.

    Web graphs (``eu-2005``, ``in-2004``) combine power-law global structure
    with dense local blocks (pages of the same host linking to each other).
    The block edges raise the cardinality of the cheap matching — reproducing
    the high IM/MM ratio of those instances in Table I.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    base = chung_lu_bipartite(
        n, n, avg_degree=avg_degree * (1 - community_fraction), exponent=exponent,
        seed=int(rng.integers(0, 2**31)), name=name,
    )
    # Local blocks: pair vertex i with a small window around i on the other side.
    n_local = int(round(n * avg_degree * community_fraction))
    centers = rng.integers(0, n, size=n_local, dtype=np.int64)
    offsets = rng.integers(-4, 5, size=n_local, dtype=np.int64)
    partners = np.clip(centers + offsets, 0, n - 1)
    local = np.column_stack([centers, partners])
    edges = np.concatenate([base.edges(), local], axis=0)
    return from_edges(edges, n_rows=n, n_cols=n, name=name)
