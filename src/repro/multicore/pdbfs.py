"""P-DBFS: the multicore disjoint-BFS matching baseline.

The paper compares against the best multicore algorithm of Azad et al.,
``P-DBFS``, which assigns unmatched columns to OpenMP threads; each thread
grows a BFS that claims vertices atomically so the concurrent searches stay
vertex-disjoint, and augments as soon as its BFS reaches an unmatched row.
Rounds repeat until no augmenting path remains.

We execute the same decomposition on a simulated ``n_threads``-core machine:
within a round the threads are interleaved deterministically (claims made by
one simulated thread block the others — a legal schedule of the atomic
claiming), per-thread work is recorded, and the
:class:`~repro.gpusim.costmodel.MulticoreCostModel` converts each round's
work profile (critical path, total work, number of atomics) into modelled
seconds.  A round that finds no augmentation falls back to a sequential
sweep, mirroring the serial cleanup phase of the original code, which also
guarantees the final matching is maximum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.frontier import claiming_bfs
from repro.gpusim.costmodel import MulticoreCostModel
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["PDBFSConfig", "pdbfs_matching"]


@dataclass(frozen=True)
class PDBFSConfig:
    """Configuration of the P-DBFS run (defaults follow the paper: 8 threads)."""

    n_threads: int = 8
    cost_model: MulticoreCostModel | None = None

    def resolved_cost_model(self) -> MulticoreCostModel:
        return self.cost_model or MulticoreCostModel(n_threads=self.n_threads)


def _augment(path: list[int], mu_row: list[int], mu_col: list[int]) -> None:
    """Apply an augmenting path given as ``[col, row, col, row, ..., row]``."""
    for i in range(0, len(path) - 1, 2):
        v, u = path[i], path[i + 1]
        mu_col[v] = u
        mu_row[u] = v


def pdbfs_matching(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    config: PDBFSConfig | None = None,
) -> MatchingResult:
    """Maximum cardinality matching with the multicore P-DBFS baseline.

    The returned ``modeled_time`` is the multicore cost-model time of all
    rounds (including the sequential cleanup sweeps).
    """
    config = config or PDBFSConfig()
    model = config.resolved_cost_model()
    t0 = time.perf_counter()
    if initial is None:
        initial = cheap_matching(graph).matching
    else:
        initial = initial.copy().canonical()
    # All searches are scalar claim walks (frontier-layer split, see
    # repro.graph.frontier.claiming_bfs), so the matching and ownership
    # state lives in plain Python lists for the duration of the run.
    mu_row = initial.row_match.tolist()
    mu_col = initial.col_match.tolist()
    col_ptr, col_ind = graph.csr_lists("col")
    n_cols = graph.n_cols

    counters = {
        "rounds": 0,
        "sequential_sweeps": 0,
        "augmentations": 0,
        "edges_scanned": 0.0,
        "atomics": 0,
        "initial_matching": sum(1 for u in mu_row if u >= 0),
    }
    modeled = 0.0

    while True:
        unmatched = [v for v in range(n_cols) if mu_col[v] == UNMATCHED]
        if len(unmatched) == 0:
            break
        counters["rounds"] += 1
        owner = [-1] * graph.n_rows
        thread_work = np.zeros(config.n_threads, dtype=np.float64)
        round_atomics = 0
        augmented = 0
        # Unmatched columns are dealt to the threads round-robin; the simulated
        # threads run interleaved by taking one column each in turn.
        for batch_start in range(0, len(unmatched), config.n_threads):
            batch = unmatched[batch_start : batch_start + config.n_threads]
            for thread_id, v in enumerate(batch):
                if mu_col[v] != UNMATCHED:
                    continue
                path, work, atomics = claiming_bfs(
                    col_ptr, col_ind, v, mu_row, owner, thread_id
                )
                thread_work[thread_id] += work
                round_atomics += atomics
                if path is not None:
                    _augment(path, mu_row, mu_col)
                    augmented += 1
        counters["edges_scanned"] += float(thread_work.sum())
        counters["atomics"] += round_atomics
        counters["augmentations"] += augmented
        modeled += model.round_seconds(
            total_ops=float(thread_work.sum()),
            max_thread_ops=float(thread_work.max()) if len(thread_work) else 0.0,
            atomics=float(round_atomics),
        )
        if augmented == 0:
            # Claims may have blocked every search; a sequential sweep (one
            # thread, no competing claims) either finds the remaining
            # augmenting paths or proves maximality.
            counters["sequential_sweeps"] += 1
            sweep_work = 0.0
            sweep_augmented = 0
            for v in range(n_cols):
                if mu_col[v] != UNMATCHED:
                    continue
                owner = [-1] * graph.n_rows
                path, work, atomics = claiming_bfs(col_ptr, col_ind, v, mu_row, owner, 0)
                sweep_work += work
                if path is not None:
                    _augment(path, mu_row, mu_col)
                    sweep_augmented += 1
            counters["edges_scanned"] += sweep_work
            counters["augmentations"] += sweep_augmented
            modeled += model.round_seconds(
                total_ops=sweep_work, max_thread_ops=sweep_work, atomics=0.0
            )
            if sweep_augmented == 0:
                break

    wall = time.perf_counter() - t0
    matching = Matching(np.array(mu_row, dtype=np.int64), np.array(mu_col, dtype=np.int64))
    return MatchingResult.create(
        "P-DBFS",
        matching,
        counters=counters,
        modeled_time=modeled,
        wall_time=wall,
    )
