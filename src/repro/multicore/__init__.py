"""Multicore substrate: the simulated 8-thread machine and the P-DBFS baseline."""

from repro.multicore.pdbfs import PDBFSConfig, pdbfs_matching

__all__ = ["pdbfs_matching", "PDBFSConfig"]
