"""Builders for the paper's Figure 1, Figure 4 and Table I (plus text rendering).

Each ``build_*`` function consumes :class:`~repro.bench.harness.InstanceResult`
lists (or runs the sweep itself, for Figure 1) and returns a plain data
structure that mirrors the corresponding artefact of the paper, so the
benchmarks, the CLI and EXPERIMENTS.md all derive from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.bench.harness import (
    InstanceResult,
    SuiteRunner,
    geometric_mean,
    modeled_seconds_for,
    reference_device,
)
from repro.bench.profiles import performance_profile, speedup_profile
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.generators.suite import generate_instance
from repro.seq.greedy import cheap_matching

__all__ = [
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_table1",
    "render_table",
    "FIGURE1_STRATEGIES",
    "FIGURE1_VARIANTS",
]

#: The seven global-relabel strategies of Figure 1.
FIGURE1_STRATEGIES: tuple[str, ...] = (
    "adaptive:0.3",
    "adaptive:0.7",
    "adaptive:1",
    "adaptive:1.5",
    "adaptive:2",
    "fix:10",
    "fix:50",
)

#: The three G-PR implementations of Figure 1 (paper name → variant).
FIGURE1_VARIANTS: dict[str, GPRVariant] = {
    "G-PR-First": GPRVariant.FIRST,
    "G-PR-NoShr": GPRVariant.NO_SHRINK,
    "G-PR-Shr": GPRVariant.SHRINK,
}


@dataclass(frozen=True)
class Figure1Cell:
    """One (variant, strategy) cell of Figure 1: the geometric-mean runtime."""

    variant: str
    strategy: str
    geomean_seconds: float


def build_figure1(
    profile: str = "small",
    seed: int = 20130421,
    instances: Sequence[str] | None = None,
    strategies: Sequence[str] = FIGURE1_STRATEGIES,
    variants: dict[str, GPRVariant] | None = None,
    shrink_threshold: int = 64,
) -> list[Figure1Cell]:
    """Figure 1: geometric-mean G-PR runtime per (variant, strategy).

    ``shrink_threshold`` defaults to 64 rather than the paper's 512 because
    the scaled-down instances have proportionally smaller active lists; the
    paper's value would disable shrinking entirely at this scale.
    """
    variants = variants or dict(FIGURE1_VARIANTS)
    runner = SuiteRunner(profile=profile, seed=seed, instances=instances, algorithms={})
    cells: list[Figure1Cell] = []
    prepared = []
    for spec in runner.specs():
        graph = generate_instance(spec.instance_id, profile=profile, seed=seed)
        prepared.append((graph, cheap_matching(graph).matching))
    for variant_name, variant in variants.items():
        for strategy in strategies:
            times = []
            for graph, initial in prepared:
                config = GPRConfig(
                    variant=variant, strategy=strategy, shrink_threshold=shrink_threshold
                )
                result = gpr_matching(graph, initial=initial.copy(), config=config,
                                      device=reference_device())
                times.append(modeled_seconds_for(result))
            cells.append(
                Figure1Cell(
                    variant=variant_name,
                    strategy=strategy.replace(":", ","),
                    geomean_seconds=geometric_mean(times),
                )
            )
    return cells


def build_figure2(results: list[InstanceResult], baseline: str = "PR"):
    """Figure 2: speedup profiles of the parallel algorithms w.r.t. sequential PR."""
    parallel = [name for name in results[0].runs if name != baseline]
    speedups = {
        name: [res.speedup(name, baseline) for res in results] for name in parallel
    }
    return speedup_profile(speedups)


def build_figure3(results: list[InstanceResult], baseline: str = "PR"):
    """Figure 3: performance profiles of the parallel algorithms."""
    parallel = [name for name in results[0].runs if name != baseline]
    times = {
        name: [res.runs[name].modeled_seconds for res in results] for name in parallel
    }
    return performance_profile(times)


def build_figure4(results: list[InstanceResult], baseline: str = "PR", algorithm: str = "G-PR"):
    """Figure 4: the individual speedup of G-PR on every instance, in Table-I order.

    Returns a list of ``(instance_id, name, speedup)`` and the overall
    arithmetic-average speedup (the paper reports 3.05).
    """
    rows = [
        (res.spec.instance_id, res.spec.name, res.speedup(algorithm, baseline))
        for res in results
    ]
    average = sum(r[2] for r in rows) / len(rows)
    return rows, average


def build_table1(results: list[InstanceResult]) -> dict:
    """Table I: per-instance sizes, IM, MM and runtimes, plus geometric means."""
    algorithms = list(results[0].runs)
    rows = []
    for res in results:
        row = {
            "id": res.spec.instance_id,
            "graph": res.spec.name,
            "rows": res.n_rows,
            "cols": res.n_cols,
            "edges": res.n_edges,
            "IM": res.initial_matching,
            "MM": res.maximum_matching,
        }
        for name in algorithms:
            row[name] = res.runs[name].modeled_seconds
        rows.append(row)
    geomeans = {
        name: geometric_mean([res.runs[name].modeled_seconds for res in results])
        for name in algorithms
    }
    return {"rows": rows, "geomeans": geomeans, "algorithms": algorithms}


def render_table(table: dict, time_unit: str = "ms") -> str:
    """Render a :func:`build_table1` result as fixed-width text (Table I layout)."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    algorithms = table["algorithms"]
    header = (
        f"{'ID':>3} {'Graph':<22} {'#Rows':>8} {'#Cols':>8} {'#Edges':>9} "
        f"{'IM':>8} {'MM':>8} " + " ".join(f"{name:>10}" for name in algorithms)
    )
    lines = [header, "-" * len(header)]
    for row in table["rows"]:
        lines.append(
            f"{row['id']:>3} {row['graph']:<22} {row['rows']:>8} {row['cols']:>8} "
            f"{row['edges']:>9} {row['IM']:>8} {row['MM']:>8} "
            + " ".join(f"{row[name] * scale:>10.3f}" for name in algorithms)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'':>3} {'GEOMEAN (' + time_unit + ')':<22} {'':>8} {'':>8} {'':>9} {'':>8} {'':>8} "
        + " ".join(f"{table['geomeans'][name] * scale:>10.3f}" for name in algorithms)
    )
    return "\n".join(lines)
