"""Perf-regression harness: capture, persist and compare CPU-baseline timings.

The paper's argument is *relative* runtimes, so a silent slowdown of a CPU
baseline quietly skews every figure this repository reproduces.  This module
gives the repo a measured perf trajectory:

* :func:`capture` runs the five rewritten CPU baselines (``hk``, ``hkdw``,
  ``pfp``, ``pr``, ``p-dbfs``) over the evaluation suite through
  :class:`~repro.bench.harness.SuiteRunner` and records, per (instance,
  algorithm): wall-clock seconds (best of ``repeats``), modeled seconds
  (deterministic, derived from work counters) and cardinality.
* ``BENCH_<profile>.json`` files (schema below) persist a capture;
  ``BENCH_small.json`` at the repo root is the committed baseline — the
  first point of the perf trajectory, refreshed via
  ``repro perf --update BENCH_small.json``.
* :func:`compare` diffs a fresh capture against a baseline and flags
  regressions beyond a noise tolerance.  Wall-clock is noisy (machines,
  load), so its default tolerance is generous; modeled seconds are exact
  counter arithmetic, so their tolerance is tight — an algorithmic work
  blow-up is caught even on a slow machine, while a pure interpreter-tax
  regression is caught by the wall check.

Cross-profile comparisons (e.g. CI's quick ``--profile tiny`` run against
the committed ``BENCH_small.json``) normalise every time by the instance's
edge count and widen both tolerances by :data:`CROSS_PROFILE_SLACK` —
seconds-per-edge transfers across instance sizes only approximately
(phase counts grow with size).  Cardinalities are only checked when
profile *and* seed match (different profiles solve different graphs).

Schema (``schema: 1``)::

    {
      "schema": 1,
      "profile": "small",
      "seed": 20130421,
      "repeats": 3,
      "algorithms": ["HK", "HKDW", "PFP", "PR", "P-DBFS"],
      "aggregate": {"HK": {"geomean_wall_seconds": ..,
                            "geomean_modeled_seconds": ..,
                            "total_wall_seconds": ..}, ...},
      "instances": {
        "amazon0505": {
          "n_rows": .., "n_cols": .., "n_edges": ..,
          "algorithms": {"HK": {"wall_seconds": ..,
                                 "modeled_seconds": ..,
                                 "cardinality": ..}, ...}
        }, ...
      }
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import SuiteRunner, geometric_mean
from repro.core.api import resolve_algorithm

__all__ = [
    "CROSS_PROFILE_SLACK",
    "DEFAULT_MODELED_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
    "PERF_ALGORITHMS",
    "PerfComparison",
    "PerfDelta",
    "SCHEMA_VERSION",
    "capture",
    "compare",
    "load_baseline",
    "save_baseline",
]

SCHEMA_VERSION = 1

#: Display name → registry name of the tracked CPU baselines.
PERF_ALGORITHMS: dict[str, str] = {
    "HK": "hk",
    "HKDW": "hkdw",
    "PFP": "pfp",
    "PR": "pr",
    "P-DBFS": "p-dbfs",
}

#: Wall-clock noise tolerance (ratio current/baseline) for same-profile runs.
DEFAULT_WALL_TOLERANCE = 2.5
#: Modeled-seconds tolerance; modeled times are deterministic counter
#: arithmetic, so anything beyond float formatting is a real work change.
DEFAULT_MODELED_TOLERANCE = 1.05
#: Extra multiplier applied to both tolerances when the compared runs used
#: different profiles (per-edge normalisation transfers only approximately).
CROSS_PROFILE_SLACK = 3.0


def _perf_plans(shards: int | None = None, partition: str | None = None):
    return {
        name: resolve_algorithm(registry, shards=shards, partition=partition)
        for name, registry in PERF_ALGORITHMS.items()
    }


def _warmup() -> None:
    """Run every tracked plan once on a throwaway graph before timing.

    The first solve of a process pays one-time costs (lazy imports, NumPy
    dispatch caches, code-object warm-up) that would otherwise land on the
    first (instance, algorithm) pair and read as a 2-3x wall regression.
    With the compiled tier installed the dominant one-time cost is numba
    JIT compilation, so every registered twin is compiled first
    (:func:`repro.compiled.dispatch.warm_up`) — the throwaway solves then
    only exercise the remaining interpreter-level caches.
    """
    from repro.compiled import dispatch
    from repro.generators.random_bipartite import uniform_random_bipartite

    dispatch.warm_up()
    graph = uniform_random_bipartite(64, 64, avg_degree=4.0, seed=0)
    for plan in _perf_plans().values():
        plan.run(graph)


def capture(
    profile: str = "small",
    seed: int = 20130421,
    instances: list[str] | None = None,
    repeats: int = 1,
    shards: int | None = None,
    partition: str | None = None,
) -> dict:
    """Measure the tracked CPU baselines over the suite; returns a schema doc.

    Parameters
    ----------
    profile:
        Suite size profile (``tiny`` / ``small`` / ``medium`` / ``large``).
    seed:
        Suite generation seed.
    instances:
        Restrict to these instance names (default: all 28).
    repeats:
        Wall-clock seconds keep the *minimum* over this many suite runs
        (modeled seconds and cardinalities are deterministic and asserted
        stable across repeats).
    shards / partition:
        When ``shards`` is set, every baseline runs through the sharded
        subsystem (per-shard solves + reconciliation) instead of a
        single-graph solve; the capture records the setting so a sharded
        capture is never silently compared against an unsharded one by eye.

    Raises
    ------
    ValueError
        On a non-positive ``repeats``.
    KeyError
        On unknown instance names (from the runner).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    _warmup()
    best: dict[str, dict] = {}
    for _ in range(repeats):
        runner = SuiteRunner(
            profile=profile,
            seed=seed,
            algorithms=_perf_plans(shards, partition),
            instances=instances,
        )
        try:
            results = runner.run()
        finally:
            runner.close()
        for res in results:
            entry = best.setdefault(
                res.spec.name,
                {
                    "n_rows": res.n_rows,
                    "n_cols": res.n_cols,
                    "n_edges": res.n_edges,
                    "algorithms": {},
                },
            )
            for name, run in res.runs.items():
                rec = entry["algorithms"].get(name)
                if rec is None:
                    entry["algorithms"][name] = {
                        "wall_seconds": run.wall_seconds,
                        "modeled_seconds": run.modeled_seconds,
                        "cardinality": run.cardinality,
                    }
                else:
                    if rec["cardinality"] != run.cardinality or rec[
                        "modeled_seconds"
                    ] != run.modeled_seconds:
                        raise AssertionError(
                            f"non-deterministic result for {name} on {res.spec.name}"
                        )
                    rec["wall_seconds"] = min(rec["wall_seconds"], run.wall_seconds)
    aggregate = {}
    for name in PERF_ALGORITHMS:
        walls = [e["algorithms"][name]["wall_seconds"] for e in best.values()]
        modeled = [e["algorithms"][name]["modeled_seconds"] for e in best.values()]
        aggregate[name] = {
            "geomean_wall_seconds": geometric_mean(walls),
            "geomean_modeled_seconds": geometric_mean(modeled),
            "total_wall_seconds": float(sum(walls)),
        }
    doc = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "seed": seed,
        "repeats": repeats,
        "algorithms": list(PERF_ALGORITHMS),
        "aggregate": aggregate,
        "instances": best,
    }
    if shards is not None:
        doc["shards"] = int(shards)
        doc["partition"] = partition or "contiguous"
    return doc


def save_baseline(path: str | Path, doc: dict) -> None:
    """Write a capture document as a committed-friendly JSON file."""
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict:
    """Read and validate a baseline file.

    Raises
    ------
    ValueError
        On unreadable JSON or an unsupported schema version.
    OSError
        On a missing / unreadable file.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported perf-baseline schema "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if "instances" not in doc or "profile" not in doc:
        raise ValueError(f"{path}: malformed perf baseline (missing instances/profile)")
    return doc


@dataclass(frozen=True)
class PerfDelta:
    """One flagged (instance, algorithm, metric) deviation."""

    instance: str
    algorithm: str
    metric: str  # "wall" | "modeled" | "cardinality"
    baseline: float
    current: float
    ratio: float
    limit: float

    def describe(self) -> str:
        if self.metric == "cardinality":
            return (
                f"{self.instance}/{self.algorithm}: cardinality changed "
                f"{int(self.baseline)} -> {int(self.current)}"
            )
        return (
            f"{self.instance}/{self.algorithm}: {self.metric} "
            f"{self.current:.3e} vs baseline {self.baseline:.3e} "
            f"({self.ratio:.2f}x > {self.limit:.2f}x allowed)"
        )


@dataclass(frozen=True)
class PerfComparison:
    """Outcome of :func:`compare`."""

    regressions: list[PerfDelta] = field(default_factory=list)
    improvements: list[PerfDelta] = field(default_factory=list)
    checked: int = 0
    cross_profile: bool = False
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE
    modeled_tolerance: float = DEFAULT_MODELED_TOLERANCE

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(
    current: dict,
    baseline: dict,
    wall_tolerance: float | None = None,
    modeled_tolerance: float | None = None,
) -> PerfComparison:
    """Diff a fresh capture against a baseline document.

    Same profile: every (instance, algorithm) pair present in both documents
    is checked — ``wall_seconds`` and ``modeled_seconds`` must not exceed
    the baseline by more than the respective tolerance ratio, and with an
    identical seed cardinalities must match exactly (the algorithms are
    deterministic).

    Different profiles (e.g. CI's quick ``tiny`` run against the committed
    ``small`` baseline): per-instance timings of different sizes are too
    noisy to diff pairwise, so times are normalised per edge and the
    *geometric mean* of the per-pair ratios is checked per (algorithm,
    metric), with both tolerances widened by :data:`CROSS_PROFILE_SLACK`
    (measured tiny-vs-small aggregates sit between 0.5x and 1.2x, so the
    widened bounds still catch an interpreter-tax reintroduction at a
    comfortable margin — see docs/benchmarks.md).

    Improvements (more than ``1/tolerance`` below baseline) are reported
    informationally — a much-faster run is a hint the committed baseline is
    stale and worth ``--update``-ing.

    Raises
    ------
    ValueError
        When the two documents share no (instance, algorithm) pair — a
        comparison that checks nothing must not read as a pass (it would
        turn the CI gate into a silent no-op).
    """
    cross = current.get("profile") != baseline.get("profile")
    same_graphs = not cross and current.get("seed") == baseline.get("seed")
    slack = CROSS_PROFILE_SLACK if cross else 1.0
    wall_tol = (wall_tolerance if wall_tolerance is not None else DEFAULT_WALL_TOLERANCE) * slack
    modeled_tol = (
        modeled_tolerance if modeled_tolerance is not None else DEFAULT_MODELED_TOLERANCE
    ) * slack

    regressions: list[PerfDelta] = []
    improvements: list[PerfDelta] = []
    ratios: dict[tuple[str, str], list[float]] = {}
    checked = 0
    for name, cur_inst in current.get("instances", {}).items():
        base_inst = baseline["instances"].get(name)
        if base_inst is None:
            continue
        cur_scale = cur_inst["n_edges"] if cross else 1
        base_scale = base_inst["n_edges"] if cross else 1
        for algo, cur_rec in cur_inst["algorithms"].items():
            base_rec = base_inst["algorithms"].get(algo)
            if base_rec is None:
                continue
            checked += 1
            if same_graphs and cur_rec["cardinality"] != base_rec["cardinality"]:
                regressions.append(
                    PerfDelta(name, algo, "cardinality",
                              float(base_rec["cardinality"]),
                              float(cur_rec["cardinality"]), float("inf"), 1.0)
                )
            for metric, tol in (("wall", wall_tol), ("modeled", modeled_tol)):
                cur_val = cur_rec[f"{metric}_seconds"] / cur_scale
                base_val = base_rec[f"{metric}_seconds"] / base_scale
                if base_val <= 0.0 or cur_val <= 0.0:
                    continue  # degenerate timing; nothing to compare against
                ratio = cur_val / base_val
                if cross:
                    ratios.setdefault((algo, metric), []).append(ratio)
                    continue
                delta = PerfDelta(name, algo, metric, base_val, cur_val, ratio, tol)
                if ratio > tol:
                    regressions.append(delta)
                elif ratio < 1.0 / tol:
                    improvements.append(delta)
    if cross:
        for (algo, metric), values in sorted(ratios.items()):
            tol = wall_tol if metric == "wall" else modeled_tol
            agg = geometric_mean(values)
            delta = PerfDelta("<aggregate>", algo, metric, 1.0, agg, agg, tol)
            if agg > tol:
                regressions.append(delta)
            elif agg < 1.0 / tol:
                improvements.append(delta)
    if checked == 0:
        raise ValueError(
            "perf comparison checked 0 (instance, algorithm) pairs — the "
            "capture and the baseline share none (renamed instances or a "
            "foreign baseline file?)"
        )
    return PerfComparison(
        regressions=regressions,
        improvements=improvements,
        checked=checked,
        cross_profile=cross,
        wall_tolerance=wall_tol,
        modeled_tolerance=modeled_tol,
    )
