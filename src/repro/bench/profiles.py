"""Speedup and performance profiles (Figures 2 and 3 of the paper)."""

from __future__ import annotations

import numpy as np

__all__ = ["speedup_profile", "performance_profile"]


def speedup_profile(
    speedups: dict[str, list[float]],
    xs: np.ndarray | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 2: for each algorithm, the curve ``y = P(speedup ≥ x)``.

    Parameters
    ----------
    speedups:
        Mapping algorithm → per-instance speedups w.r.t. the sequential
        baseline.
    xs:
        Speedup thresholds; defaults to the paper's x axis (0 to 10).

    Returns
    -------
    dict
        Algorithm → list of ``(x, y)`` points.
    """
    if xs is None:
        xs = np.linspace(0.0, 10.0, 41)
    curves: dict[str, list[tuple[float, float]]] = {}
    for name, values in speedups.items():
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError(f"no speedups for algorithm {name!r}")
        curves[name] = [(float(x), float(np.mean(arr >= x))) for x in xs]
    return curves


def performance_profile(
    times: dict[str, list[float]],
    xs: np.ndarray | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 3: for each algorithm, ``y = P(time ≤ x × best time on that instance)``.

    Parameters
    ----------
    times:
        Mapping algorithm → per-instance times; every algorithm must cover
        the same instances in the same order.
    xs:
        Ratio thresholds; defaults to the paper's x axis (1 to 5).
    """
    if xs is None:
        xs = np.linspace(1.0, 5.0, 17)
    names = list(times)
    if not names:
        raise ValueError("no algorithms given")
    matrix = np.asarray([times[name] for name in names], dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ValueError("each algorithm needs at least one time and equal instance counts")
    if np.any(matrix <= 0):
        raise ValueError("times must be positive")
    best = matrix.min(axis=0)
    ratios = matrix / best
    return {
        name: [(float(x), float(np.mean(ratios[i] <= x))) for x in xs]
        for i, name in enumerate(names)
    }
