"""Benchmark harness: regenerates every table and figure of the paper's evaluation.

* :mod:`repro.bench.harness` — runs the algorithms over the 28-instance
  suite and collects modelled / wall-clock times and matching cardinalities.
* :mod:`repro.bench.profiles` — speedup profiles (Figure 2) and performance
  profiles (Figure 3).
* :mod:`repro.bench.reports` — builders for Figure 1 (strategy comparison),
  Figure 4 (per-instance speedups) and Table I, each returning plain data
  structures plus a formatted text rendering.
* :mod:`repro.bench.perfbaseline` — the perf-regression harness: capture
  CPU-baseline timings into ``BENCH_*.json`` files and compare fresh runs
  against the committed baseline (the ``repro perf`` subcommand and the CI
  ``perf-smoke`` job are thin wrappers over it).
"""

from repro.bench.perfbaseline import (
    PERF_ALGORITHMS,
    PerfComparison,
    PerfDelta,
    capture,
    compare,
    load_baseline,
    save_baseline,
)
from repro.bench.harness import (
    AlgorithmRun,
    InstanceResult,
    SuiteRunner,
    geometric_mean,
    modeled_seconds_for,
)
from repro.bench.profiles import performance_profile, speedup_profile
from repro.bench.reports import (
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
    build_table1,
    render_table,
)

__all__ = [
    "PERF_ALGORITHMS",
    "PerfComparison",
    "PerfDelta",
    "capture",
    "compare",
    "load_baseline",
    "save_baseline",
    "SuiteRunner",
    "AlgorithmRun",
    "InstanceResult",
    "geometric_mean",
    "modeled_seconds_for",
    "speedup_profile",
    "performance_profile",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_table1",
    "render_table",
]
