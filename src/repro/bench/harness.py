"""Suite runner: executes matching algorithms over the evaluation suite.

The paper's methodology (§IV): every algorithm starts from the common cheap
matching, only the time after that initialisation is measured, and aggregate
numbers are geometric means over the 28 instances.  The runner reproduces
that protocol with modelled seconds: the GPU algorithms report their virtual
device's cost-model time, P-DBFS its multicore cost-model time, and the
sequential baselines are converted from their work counters with
:class:`~repro.gpusim.costmodel.CpuCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.core.api import ExecutionPlan, resolve_algorithm
from repro.engine import Engine, ExecutionBackend, MatchingJob, create_backend
from repro.generators.suite import SUITE_SPECS, SuiteInstance, generate_instance
from repro.gpusim.costmodel import CpuCostModel
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.matching import MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = [
    "AlgorithmRun",
    "InstanceResult",
    "SuiteRunner",
    "geometric_mean",
    "modeled_seconds_for",
    "reference_device",
]

_CPU_MODEL = CpuCostModel()

#: Counter keys that constitute "work" for the sequential cost model.
_SEQ_WORK_KEYS = ("edges_scanned", "gr_edges_scanned", "relabels")


def reference_device() -> VirtualGPU:
    """The virtual device used throughout the benchmark harness.

    This is the scaled Tesla C2050 described in
    :meth:`repro.gpusim.device.DeviceSpec.scaled`, matched to the scaled-down
    synthetic instance suite.
    """
    return VirtualGPU(DeviceSpec().scaled())


def modeled_seconds_for(result: MatchingResult) -> float:
    """Modelled seconds of a result, deriving them for CPU algorithms.

    GPU and multicore algorithms carry their own cost-model time; sequential
    algorithms report work counters that are converted with the CPU model.
    """
    if result.modeled_time is not None:
        return float(result.modeled_time)
    work = sum(float(result.counters.get(key, 0.0)) for key in _SEQ_WORK_KEYS)
    if work == 0.0:
        work = float(result.counters.get("kernel_total_work", 0.0))
    return _CPU_MODEL.seconds(work)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregation used throughout the paper's §IV)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


@dataclass(frozen=True)
class AlgorithmRun:
    """Outcome of one algorithm on one instance."""

    algorithm: str
    cardinality: int
    modeled_seconds: float
    wall_seconds: float
    counters: dict


@dataclass(frozen=True)
class InstanceResult:
    """All algorithm runs on one suite instance, plus instance metadata."""

    spec: SuiteInstance
    n_rows: int
    n_cols: int
    n_edges: int
    initial_matching: int
    maximum_matching: int
    runs: dict[str, AlgorithmRun]

    def speedup(self, algorithm: str, baseline: str = "PR") -> float:
        """Modelled-time speedup of ``algorithm`` over ``baseline`` on this instance."""
        return self.runs[baseline].modeled_seconds / self.runs[algorithm].modeled_seconds


def _default_algorithms(device_factory: Callable[[], VirtualGPU]) -> dict[str, ExecutionPlan]:
    """The four algorithms of Table I as plans on the shared dispatch pipeline."""
    return {
        "G-PR": resolve_algorithm("g-pr", strategy="adaptive:0.7", device_factory=device_factory),
        "G-HKDW": resolve_algorithm("g-hkdw", device_factory=device_factory),
        "P-DBFS": resolve_algorithm("p-dbfs", n_threads=8),
        "PR": resolve_algorithm("pr", global_relabel_k=0.5),
    }


#: Extra sequential baselines available to ablation benchmarks.
EXTRA_SEQUENTIAL = {
    "HK": resolve_algorithm("hk"),
    "HKDW": resolve_algorithm("hkdw"),
    "PFP": resolve_algorithm("pfp"),
}


@dataclass
class SuiteRunner:
    """Runs a set of algorithms over the evaluation suite.

    Parameters
    ----------
    profile:
        Instance-size profile (``tiny`` / ``small`` / ``medium`` / ``large``).
    seed:
        Suite generation seed.
    algorithms:
        Mapping name → :class:`~repro.core.api.ExecutionPlan` (or a legacy
        ``f(graph, initial_matching) -> MatchingResult`` callable); defaults
        to the four algorithms of Table I.
    instances:
        Restrict to these instance names (default: all 28).
    device_factory:
        Factory for the virtual GPU handed to each GPU-algorithm run.
    backend:
        Execution backend the runner's :class:`~repro.engine.Engine` uses
        for :class:`~repro.core.api.ExecutionPlan` algorithms: a name
        (``"inline"`` default, ``"thread"``, ``"process"``, ``"device"``) or
        a ready :class:`~repro.engine.backends.ExecutionBackend`.  A
        ``"device"`` backend pools devices from ``device_factory``, so runs
        stay on the reference device.
    """

    profile: str = "small"
    seed: int = 20130421
    algorithms: dict[str, Callable] | None = None
    instances: Sequence[str] | None = None
    device_factory: Callable[[], VirtualGPU] = field(default=reference_device)
    backend: "str | ExecutionBackend" = "inline"

    def __post_init__(self) -> None:
        if self.algorithms is None:
            self.algorithms = _default_algorithms(self.device_factory)
        # The runner owns (and close() tears down) a backend built from a
        # name; a caller-supplied ExecutionBackend instance is left running.
        self._engine = Engine(
            backend=create_backend(self.backend, device_factory=self.device_factory),
            own_backend=isinstance(self.backend, str),
        )

    def close(self) -> None:
        """Shut down the runner's engine (pooled backends hold workers)."""
        self._engine.shutdown()

    def specs(self) -> list[SuiteInstance]:
        """The suite instances this runner covers, in Table-I order."""
        if self.instances is None:
            return list(SUITE_SPECS)
        wanted = set(self.instances)
        unknown = wanted - {spec.name for spec in SUITE_SPECS}
        if unknown:
            raise KeyError(f"unknown suite instances: {sorted(unknown)}")
        return [spec for spec in SUITE_SPECS if spec.name in wanted]

    def run_instance(self, spec: SuiteInstance) -> InstanceResult:
        """Run every configured algorithm on one instance.

        :class:`~repro.core.api.ExecutionPlan` algorithms are submitted to
        the runner's engine (every plan starts from one common cheap
        matching, per the paper's protocol) and awaited together; a failing
        run raises :class:`~repro.engine.handles.JobFailedError` carrying
        the captured failure (original type, message and traceback on
        ``.failure``) — the harness wants hard failures loud, not isolated.
        Legacy ``f(graph, initial)`` callables run inline as before.
        """
        graph = generate_instance(spec.instance_id, profile=self.profile, seed=self.seed)
        initial = cheap_matching(graph).matching
        handles = {}
        for name, algo in self.algorithms.items():
            if isinstance(algo, ExecutionPlan):
                # Sharded plans refuse warm starts (every shard begins from
                # its own local solve), so they run cold instead.
                warm = initial.copy() if algo.shards is None else None
                handles[name] = self._engine.submit(
                    MatchingJob(graph=graph, algorithm=algo.algorithm, job_id=name),
                    plan=algo,
                    initial_matching=warm,
                )
        runs: dict[str, AlgorithmRun] = {}
        maximum = 0
        for name, algo in self.algorithms.items():
            result = handles[name].result() if name in handles else algo(graph, initial.copy())
            runs[name] = AlgorithmRun(
                algorithm=name,
                cardinality=result.cardinality,
                modeled_seconds=modeled_seconds_for(result),
                wall_seconds=result.wall_time,
                counters=result.counters,
            )
            maximum = max(maximum, result.cardinality)
        return InstanceResult(
            spec=spec,
            n_rows=graph.n_rows,
            n_cols=graph.n_cols,
            n_edges=graph.n_edges,
            initial_matching=initial.cardinality,
            maximum_matching=maximum,
            runs=runs,
        )

    def run(self) -> list[InstanceResult]:
        """Run the whole suite; results come back in Table-I order."""
        return [self.run_instance(spec) for spec in self.specs()]
