"""Framework of the repo-native invariant linter.

The linter encodes the invariants the repo's subsystems rely on but which
generic tools cannot know about — deterministic solver modules, lock-guarded
engine/server state, the PR 5 hot-path accessor convention, the failure
capture contract of the engine, and the deprecated ``ALGORITHMS`` mapping.
Each invariant is one rule with a stable ``RPR0xx`` code (the catalog lives
in :mod:`repro.analysis.rules` and is documented in
``docs/static-analysis.md``).

This module is dependency-free (stdlib only) on purpose: the CI ``lint-deep``
job runs it on a numpy-only minimal install.

Suppressions
------------
A violation is silenced by a comment on the *same line*::

    self._closed = True  # repro-lint: disable=RPR003 -- benign: monotonic flag

or for a whole file, anywhere in it::

    # repro-lint: disable-file=RPR001

``disable=all`` silences every rule for the line (or file).

Hot-path regions
----------------
The PR 5 accessor convention is enforced only inside explicitly annotated
regions, delimited by marker comments::

    # hot-path
    for idx in range(start, stop):
        ...
    # end hot-path

An unclosed region (or a stray ``# end hot-path``) is itself a violation.

An opening marker may name the compiled twin that replaces the region when
dispatch is enabled (the PR 10 compiled tier)::

    # hot-path compiled=alternating_level_bfs

The annotation is carried to the rules as ``LintContext.hot_shims``;
RPR004 validates the named entry against the dispatch registry and flags
dispatch lookups (``implementation_for``) *inside* regions — the lookup
belongs above the loop, next to the region, not in it.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Violation",
    "LintContext",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)
_HOT_OPEN = re.compile(r"#\s*hot-path(?:\s+compiled=(?P<entry>[A-Za-z0-9_.]+))?\s*$")
_HOT_CLOSE = re.compile(r"#\s*end\s+hot-path\s*$")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    path: str
    tree: ast.AST
    source: str
    #: Inclusive (open_line, close_line) pairs of ``# hot-path`` regions.
    hot_regions: list[tuple[int, int]] = field(default_factory=list)
    #: Regions whose opening marker carried ``compiled=<entry>``: the region
    #: pair mapped to the named dispatch entry.
    hot_shims: dict[tuple[int, int], str] = field(default_factory=dict)
    #: Path components after the ``repro`` package root (e.g. ``("seq", "greedy.py")``).
    module_parts: tuple[str, ...] = ()

    def in_hot_region(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.hot_regions)


@dataclass
class _Suppressions:
    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def allows(self, violation: Violation) -> bool:
        for scope in (self.file_wide, self.by_line.get(violation.line, ())):
            if "all" in scope or violation.code in scope:
                return True
        return False


def _module_parts(path: str) -> tuple[str, ...]:
    parts = os.path.normpath(path).split(os.sep)
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx + 1 :]
            if anchor == "src" and tail and tail[0] == "repro":
                tail = tail[1:]
            if tail:
                return tuple(tail)
    return tuple(parts[-2:])


def _scan_comments(
    source: str, path: str
) -> tuple[_Suppressions, list[tuple[int, int]], dict[tuple[int, int], str], list[Violation]]:
    """Extract suppressions, hot-path regions and shim annotations from the comments."""
    suppressions = _Suppressions()
    regions: list[tuple[int, int]] = []
    shims: dict[tuple[int, int], str] = {}
    open_stack: list[tuple[int, str | None]] = []
    violations: list[Violation] = []
    last_line = source.count("\n") + 1
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            text = tok.string
            match = _DIRECTIVE.search(text)
            if match:
                codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
                if match.group("kind") == "disable-file":
                    suppressions.file_wide |= codes
                else:
                    suppressions.by_line.setdefault(line, set()).update(codes)
            open_match = _HOT_OPEN.search(text)
            if open_match:
                open_stack.append((line, open_match.group("entry")))
            elif _HOT_CLOSE.search(text):
                if not open_stack:
                    violations.append(
                        Violation(path, line, "RPR004", "stray `# end hot-path` with no open region")
                    )
                else:
                    opened, entry = open_stack.pop()
                    regions.append((opened, line))
                    if entry is not None:
                        shims[(opened, line)] = entry
    except tokenize.TokenError:
        pass  # the ast.parse error path reports the syntax problem
    for line, entry in open_stack:
        violations.append(
            Violation(path, line, "RPR004", "unclosed `# hot-path` region (missing `# end hot-path`)")
        )
        regions.append((line, last_line))
        if entry is not None:
            shims[(line, last_line)] = entry
    return suppressions, regions, shims, violations


def lint_source(source: str, path: str = "<string>", rules=None) -> list[Violation]:
    """Lint one source string; returns the violations sorted by line then code."""
    if rules is None:
        from repro.analysis.rules import RULES

        rules = RULES
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 1, "RPR000", f"syntax error: {exc.msg}")]
    suppressions, regions, shims, violations = _scan_comments(source, path)
    ctx = LintContext(
        path=path,
        tree=tree,
        source=source,
        hot_regions=regions,
        hot_shims=shims,
        module_parts=_module_parts(path),
    )
    for rule in rules.values():
        violations.extend(rule.check(ctx))
    return sorted(v for v in violations if not suppressions.allows(v))


def lint_file(path: str, rules=None) -> list[Violation]:
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), path, rules=rules)


def lint_paths(paths, rules=None) -> list[Violation]:
    """Lint files and directories (recursing into ``*.py``), in sorted order."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
                files.extend(os.path.join(root, n) for n in sorted(names) if n.endswith(".py"))
        else:
            files.append(path)
    violations: list[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, rules=rules))
    return violations


def format_violations(violations) -> str:
    return "\n".join(v.render() for v in violations)
