"""Dynamic race sanitizer for the gpusim lockstep kernels.

The paper's kernels are lock- and atomic-free: their correctness argument
(§III-B) rests on every intra-wave conflict being one of a small set of
*declared* benign races (last-writer-wins pushes, slot-local list repair,
serialised claim walks).  The sanitizer turns that argument into a checked
property:

* :class:`ShadowArray` is an ``ndarray`` view that records every read and
  write (with exact indices for subscript access) into an
  :class:`AccessLog`.  ``VirtualGPU(shadow=AccessLog())`` hands these views
  out via ``shadow_wrap`` so the unmodified kernel code records itself.
* The access stream is cut into **segments** by ``charge_kernel`` (the repo
  convention is charge-after-access, so the accesses between two charges
  belong to the closing charge's kernel) and into **waves** by
  :func:`repro.gpusim.kernel.wave_barrier` (the lockstep engines' resident-
  wave boundary) and ``VirtualGPU.shadow_sync`` (host-side sync points).
* Within one wave, a read of a location some thread already wrote is a
  **read-after-write (RAW)** hazard and a second write to a written location
  is a **write-write (WW)** hazard.  Wave and segment boundaries clear the
  written set — later waves legitimately observe earlier waves' writes.
* A per-kernel :class:`ConflictPolicy` declares which hazards are part of
  the algorithm; :func:`evaluate` splits the observed hazards into declared
  and undeclared ones and returns a structured :class:`HazardReport`.

Only numpy is required; the module never imports the solver layers, so the
minimal-install CI job can load it.
"""

from __future__ import annotations

import numpy as np
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "AccessLog",
    "ConflictPolicy",
    "Hazard",
    "HazardReport",
    "SegmentRecord",
    "ShadowArray",
    "evaluate",
    "shadow_wrap",
]

#: Segment name assigned to accesses that are never closed by a kernel
#: charge.  Host code is sequential, so host segments cannot race.
HOST_SEGMENT = "<host>"

_SAMPLE = 8  # indices kept per hazard for the report


def _normalize_indices(key, length: int) -> np.ndarray | None:
    """Flat int64 indices touched by ``array[key]``; ``None`` means *all*.

    Device arrays in this codebase are one-dimensional; for any exotic key
    (tuples, ellipsis) the conservative answer is "the whole array".
    """
    if isinstance(key, (int, np.integer)):
        idx = int(key)
        return np.array([idx if idx >= 0 else length + idx], dtype=np.int64)
    if isinstance(key, slice):
        return np.arange(*key.indices(length), dtype=np.int64)
    if isinstance(key, np.ndarray):
        if key.dtype == bool:
            return np.flatnonzero(key).astype(np.int64)
        idx = key.astype(np.int64, copy=True).ravel()
        idx[idx < 0] += length
        return idx
    if isinstance(key, (list, tuple)) and all(isinstance(k, (int, np.integer)) for k in key):
        idx = np.asarray(key, dtype=np.int64)
        idx[idx < 0] += length
        return idx
    return None


@dataclass(frozen=True)
class Hazard:
    """One intra-wave conflict observed on one array within one kernel."""

    kernel: str
    array: str
    kind: str  # "raw" or "ww"
    count: int
    sample: tuple[int, ...]

    def render(self) -> str:
        where = ", ".join(str(i) for i in self.sample)
        suffix = ", …" if self.count > len(self.sample) else ""
        return (
            f"{self.kernel}: {self.kind.upper()} on `{self.array}` "
            f"({self.count} locations: {where}{suffix})"
        )


@dataclass
class SegmentRecord:
    """The per-kernel-launch slice of the access stream."""

    kernel: str
    hazards: list[Hazard]
    reads: int
    writes: int


class _ArrayWave:
    """Per-array state of the current wave."""

    __slots__ = ("written", "whole_written")

    def __init__(self) -> None:
        self.written: set[int] = set()
        self.whole_written = False


class AccessLog:
    """Charge-delimited, wave-aware read/write recorder."""

    def __init__(self) -> None:
        self._wave: dict[str, _ArrayWave] = {}
        self._pending: dict[tuple[str, str], list] = {}  # (array, kind) -> [count, sample]
        self._reads = 0
        self._writes = 0
        self.segments: list[SegmentRecord] = []

    # ------------------------------------------------------------- recording
    def _state(self, name: str) -> _ArrayWave:
        state = self._wave.get(name)
        if state is None:
            state = self._wave[name] = _ArrayWave()
        return state

    def _hazard(self, name: str, kind: str, indices) -> None:
        entry = self._pending.setdefault((name, kind), [0, []])
        hits = list(indices)
        entry[0] += max(1, len(hits))
        for idx in hits[: _SAMPLE - len(entry[1])]:
            entry[1].append(int(idx))

    def record_read(self, name: str, indices: np.ndarray | None) -> None:
        self._reads += 1
        state = self._wave.get(name)
        if state is None:
            return
        if state.whole_written:
            if indices is None or len(indices):
                self._hazard(name, "raw", [] if indices is None else indices[:_SAMPLE])
        elif state.written:
            if indices is None:
                self._hazard(name, "raw", sorted(state.written)[:_SAMPLE])
            else:
                hits = state.written.intersection(int(i) for i in indices)
                if hits:
                    self._hazard(name, "raw", sorted(hits))

    def record_write(self, name: str, indices: np.ndarray | None) -> None:
        self._writes += 1
        state = self._state(name)
        if indices is None:
            if state.whole_written or state.written:
                self._hazard(name, "ww", sorted(state.written)[:_SAMPLE])
            state.whole_written = True
            state.written.clear()
            return
        if state.whole_written:
            if len(indices):
                self._hazard(name, "ww", indices[:_SAMPLE])
            return
        unique, counts = (
            np.unique(indices, return_counts=True) if len(indices) else (indices, indices)
        )
        dup = unique[counts > 1] if len(indices) else indices
        if len(dup):
            # Duplicate targets inside one fancy assignment: numpy resolves
            # them last-occurrence-wins — the canonical lockstep WW.
            self._hazard(name, "ww", dup)
        hits = state.written.intersection(int(i) for i in unique)
        if hits:
            self._hazard(name, "ww", sorted(hits))
        state.written.update(int(i) for i in unique)

    # ------------------------------------------------------------ boundaries
    def wave_barrier(self) -> None:
        """End of a resident wave: earlier writes become visible, not racy."""
        self._wave.clear()

    def close_segment(self, kernel: str) -> None:
        """Attribute everything since the previous charge to ``kernel``."""
        hazards = [
            Hazard(kernel, array, kind, count, tuple(sample))
            for (array, kind), (count, sample) in sorted(self._pending.items())
        ]
        self.segments.append(SegmentRecord(kernel, hazards, self._reads, self._writes))
        self._pending.clear()
        self._reads = self._writes = 0
        self.wave_barrier()

    def finalize(self) -> None:
        """Fold trailing (never-charged) accesses into the host segment."""
        if self._pending or self._reads or self._writes:
            self.close_segment(HOST_SEGMENT)


class ShadowArray(np.ndarray):
    """An ``ndarray`` view recording its accesses into an :class:`AccessLog`.

    Results of reads (subscripts, ufuncs, array functions) come back as
    *plain* arrays so recording does not propagate to derived temporaries —
    only the named device-resident arrays are tracked.
    """

    shadow_log: AccessLog | None
    shadow_name: str

    def __array_finalize__(self, obj) -> None:
        self.shadow_log = getattr(obj, "shadow_log", None)
        self.shadow_name = getattr(obj, "shadow_name", "?")

    # ------------------------------------------------------------ subscripts
    def __getitem__(self, key):
        log = self.shadow_log
        if log is not None:
            log.record_read(self.shadow_name, _normalize_indices(key, len(self)))
        return self.view(np.ndarray)[key]

    def __setitem__(self, key, value) -> None:
        log = self.shadow_log
        if log is not None:
            log.record_write(self.shadow_name, _normalize_indices(key, len(self)))
        self.view(np.ndarray)[key] = value

    def fill(self, value) -> None:
        log = self.shadow_log
        if log is not None:
            log.record_write(self.shadow_name, None)
        self.view(np.ndarray).fill(value)

    # ----------------------------------------------------------- array proto
    def _unwrap_and_record(self, obj, write: bool = False):
        if isinstance(obj, ShadowArray):
            log = obj.shadow_log
            if log is not None:
                record = log.record_write if write else log.record_read
                record(obj.shadow_name, None)
            return obj.view(np.ndarray)
        return obj

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        plain_inputs = tuple(self._unwrap_and_record(x) for x in inputs)
        if out is not None:
            kwargs["out"] = tuple(self._unwrap_and_record(x, write=True) for x in out)
        return getattr(ufunc, method)(*plain_inputs, **kwargs)

    def __array_function__(self, func, types, args, kwargs):
        def deep(obj):
            if isinstance(obj, (list, tuple)):
                return type(obj)(deep(x) for x in obj)
            return self._unwrap_and_record(obj)

        return func(*deep(args), **{k: deep(v) for k, v in kwargs.items()})


def shadow_wrap(array: np.ndarray, name: str, log: AccessLog) -> ShadowArray:
    """A recording view of ``array`` (shared buffer) registered under ``name``."""
    view = np.asarray(array).view(ShadowArray)
    view.shadow_log = log
    view.shadow_name = name
    return view


# --------------------------------------------------------------------------
# policies and reports
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ConflictPolicy:
    """The races a kernel *declares* as part of its algorithm.

    Attributes
    ----------
    last_writer_wins:
        Arrays whose intra-wave WW conflicts are resolved by the lockstep
        last-occurrence-wins rule (§III-B of the paper); RAW on these arrays
        is still undeclared.
    slot_local:
        Arrays where each logical thread owns a private slot, so the
        vectorised multi-statement implementation may re-read and re-write
        its own slots (covers RAW and WW).
    serialized:
        The kernel models a serialised interleaving (claim-based DFS walks);
        every hazard is declared.
    note:
        Human-readable justification, echoed into reports and docs.
    """

    last_writer_wins: frozenset = frozenset()
    slot_local: frozenset = frozenset()
    serialized: bool = False
    note: str = ""

    def covers(self, hazard: Hazard) -> bool:
        if self.serialized:
            return True
        if hazard.array in self.slot_local:
            return True
        return hazard.kind == "ww" and hazard.array in self.last_writer_wins


@dataclass
class HazardReport:
    """Structured outcome of one sanitized run."""

    label: str
    kernels_seen: tuple[str, ...]
    declared: list[Hazard] = field(default_factory=list)
    undeclared: list[Hazard] = field(default_factory=list)
    reads: int = 0
    writes: int = 0

    def ok(self) -> bool:
        return not self.undeclared

    def render(self) -> str:
        lines = [
            f"[{self.label}] kernels: {', '.join(self.kernels_seen) or '(none)'} — "
            f"{self.reads} reads / {self.writes} writes recorded"
        ]
        for hazard in self.declared:
            lines.append(f"  declared   {hazard.render()}")
        for hazard in self.undeclared:
            lines.append(f"  UNDECLARED {hazard.render()}")
        if self.ok():
            lines.append("  no undeclared hazards")
        return "\n".join(lines)


def evaluate(
    log: AccessLog,
    policies: Mapping[str, ConflictPolicy],
    label: str = "run",
) -> HazardReport:
    """Split the log's hazards into declared / undeclared under ``policies``.

    Unknown kernel names get the empty policy (every hazard undeclared);
    the trailing host segment is sequential and therefore always declared.
    """
    log.finalize()
    empty = ConflictPolicy()
    host = ConflictPolicy(serialized=True, note="host code is sequential")
    report = HazardReport(label=label, kernels_seen=())
    seen: list[str] = []
    for segment in log.segments:
        if segment.kernel not in seen:
            seen.append(segment.kernel)
        report.reads += segment.reads
        report.writes += segment.writes
        policy = host if segment.kernel == HOST_SEGMENT else policies.get(segment.kernel, empty)
        for hazard in segment.hazards:
            (report.declared if policy.covers(hazard) else report.undeclared).append(hazard)
    report.kernels_seen = tuple(seen)
    return report
