"""Sanitized sweep entry point: ``python -m repro.analysis``.

Shadow-runs every shipped gpusim algorithm on the registered generator
families and prints one hazard report per (algorithm, family) pair.  Exits 1
if any report contains a hazard not covered by the kernel's declared
conflict policy.  CI runs this in the ``lint-deep`` job.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the sanitized sweep of all shipped lockstep kernels.",
    )
    parser.add_argument(
        "--seed", type=int, default=20130421, help="generator seed for the sweep instances"
    )
    args = parser.parse_args(argv)

    from repro.analysis.registry import sanitized_sweep

    reports = sanitized_sweep(seed=args.seed)
    failures = 0
    for report in reports:
        print(report.render())
        if not report.ok():
            failures += 1
    kernels = sorted({k for r in reports for k in r.kernels_seen if not k.startswith("<")})
    print(f"\n{len(reports)} sanitized runs, {len(kernels)} distinct kernels: {', '.join(kernels)}")
    if failures:
        print(f"FAILED: {failures} run(s) with undeclared hazards", file=sys.stderr)
        return 1
    print("all kernels hazard-clean under their declared conflict policies")
    return 0


if __name__ == "__main__":
    sys.exit(main())
