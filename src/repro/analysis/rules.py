"""The rule catalog of the repo-native invariant linter.

Every rule encodes one invariant this repository's subsystems rely on (the
rationale, examples and suppression syntax are documented in
``docs/static-analysis.md``):

========  ==================================================================
RPR001    No wall-clock reads in determinism-scoped modules (solvers,
          kernels, fault schedules).  ``time.perf_counter``/``monotonic``
          are fine — they measure durations, not dates.
RPR002    No unseeded random generators in determinism-scoped modules.
RPR003    In lock-owning classes of ``engine``/``server``/``service``,
          every ``self.*`` attribute write outside ``__init__`` must sit
          inside a ``with self.<lock>:`` block.
RPR004    No property-accessor calls (``col_degrees``, ``csr_lists()``,
          ``column_neighbors()`` …) and no compiled-dispatch lookups
          (``implementation_for()``) inside annotated ``# hot-path``
          regions (the PR 5 convention: hoist before the loop).  A
          ``# hot-path compiled=<entry>`` annotation must name a
          registered :mod:`repro.compiled.dispatch` entry.
RPR005    No bare ``except:``; no silently swallowed broad/engine failures
          (``except Exception: pass`` and friends).
RPR006    No use of the deprecated ``repro.core.api.ALGORITHMS`` mapping —
          enumerate ``SPECS`` / call ``resolve_algorithm`` instead.
========  ==================================================================
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.linting import LintContext, Violation

__all__ = ["Rule", "RULES"]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    check: Callable[[LintContext], list[Violation]]


# --------------------------------------------------------------------------
# scope helpers
# --------------------------------------------------------------------------
#: Packages whose algorithmic behaviour must be a pure function of the inputs
#: and explicit seeds (the repo's determinism contract: bit-identical results
#: across backends, reproducible fault schedules, stable golden counters).
_DETERMINISM_PACKAGES = {
    "core",
    "seq",
    "weighted",
    "multicore",
    "gpusim",
    "sharded",
    "dynamic",
    "capacity",
    "compiled",
}
_DETERMINISM_FILES = {("graph", "frontier.py"), ("engine", "faults.py")}

#: Packages whose classes guard shared state with ``self.*lock*`` members.
_LOCKED_PACKAGES = {"engine", "server", "service"}


def _in_determinism_scope(ctx: LintContext) -> bool:
    parts = ctx.module_parts
    return bool(parts) and (parts[0] in _DETERMINISM_PACKAGES or parts in _DETERMINISM_FILES)


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------------
# RPR001 — wall-clock reads
# --------------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


def _check_wall_clock(ctx: LintContext) -> list[Violation]:
    if not _in_determinism_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                out.append(
                    Violation(
                        ctx.path,
                        node.lineno,
                        "RPR001",
                        f"wall-clock read `{dotted}()` in a determinism-scoped module "
                        "(use time.perf_counter/monotonic for durations)",
                    )
                )
    return out


# --------------------------------------------------------------------------
# RPR002 — unseeded randomness
# --------------------------------------------------------------------------
_STDLIB_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "seed",
    "getrandbits",
}
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}


def _check_unseeded_rng(ctx: LintContext) -> list[Violation]:
    if not _in_determinism_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        message = None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in ("default_rng", "Random") and not node.args and not node.keywords:
            message = f"`{dotted}()` without a seed"
        elif dotted.startswith(("np.random.", "numpy.random.")) and tail not in _NP_RANDOM_OK:
            message = f"legacy global-state RNG call `{dotted}()`"
        elif dotted.startswith("random.") and tail in _STDLIB_RANDOM_FNS:
            message = f"module-level stdlib RNG call `{dotted}()`"
        if message:
            out.append(
                Violation(
                    ctx.path,
                    node.lineno,
                    "RPR002",
                    f"{message} in a determinism-scoped module "
                    "(thread an explicit seeded Generator through instead)",
                )
            )
    return out


# --------------------------------------------------------------------------
# RPR003 — lock discipline
# --------------------------------------------------------------------------
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_LOCK_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}


def _lock_attrs_of(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr> = threading.Lock()``-style members (attr must mention "lock")."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = _dotted(node.value.func) or ""
        if factory.rsplit(".", 1)[-1] not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and "lock" in target.attr.lower()
            ):
                attrs.add(target.attr)
    return attrs


def _self_attr_writes(stmt: ast.stmt) -> list[ast.Attribute]:
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    writes = []
    for target in targets:
        for node in ast.walk(target):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                writes.append(node)
    return writes


def _check_lock_discipline(ctx: LintContext) -> list[Violation]:
    if not ctx.module_parts or ctx.module_parts[0] not in _LOCKED_PACKAGES:
        return []
    out: list[Violation] = []

    def visit_body(body, cls_name, lock_attrs, guarded):
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                continue  # a nested class owns its own state
            if isinstance(stmt, ast.With):
                items_guard = guarded or any(
                    isinstance(item.context_expr, ast.Attribute)
                    and isinstance(item.context_expr.value, ast.Name)
                    and item.context_expr.value.id == "self"
                    and item.context_expr.attr in lock_attrs
                    for item in stmt.items
                )
                visit_body(stmt.body, cls_name, lock_attrs, items_guard)
                continue
            if not guarded:
                for write in _self_attr_writes(stmt):
                    if write.attr in lock_attrs:
                        continue
                    lock = sorted(lock_attrs)[0]
                    out.append(
                        Violation(
                            ctx.path,
                            write.lineno,
                            "RPR003",
                            f"write to `self.{write.attr}` outside `with self.{lock}:` "
                            f"in lock-owning class {cls_name}",
                        )
                    )
            for child_body in (
                getattr(stmt, "body", []),
                getattr(stmt, "orelse", []),
                getattr(stmt, "finalbody", []),
            ):
                if child_body and not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_body(child_body, cls_name, lock_attrs, guarded)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    visit_body(handler.body, cls_name, lock_attrs, guarded)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested closures inherit the enclosing guard state.
                visit_body(stmt.body, cls_name, lock_attrs, guarded)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs_of(node)
        if not lock_attrs:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _LOCK_EXEMPT_METHODS:
                continue
            visit_body(method.body, node.name, lock_attrs, guarded=False)
    return out


# --------------------------------------------------------------------------
# RPR004 — hot-path accessor calls
# --------------------------------------------------------------------------
_HOT_BANNED_PROPERTIES = {"col_degrees", "row_degrees"}
_HOT_BANNED_CALLS = {"csr_lists", "column_neighbors", "row_neighbors"}
#: Compiled-dispatch lookups belong *above* the region (one lookup per call,
#: hoisted out of the wave/level loop), never inside it.
_HOT_DISPATCH_CALLS = {"implementation_for"}


def _known_compiled_entries() -> frozenset[str] | None:
    """Registered dispatch names, or ``None`` when the registry can't load.

    The linter stays importable on a minimal (even numpy-less) install, so
    a failing import skips annotation validation instead of crashing.
    """
    try:
        from repro.compiled import dispatch
    except ImportError:
        return None
    return frozenset(dispatch.registered())


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _check_hot_path(ctx: LintContext) -> list[Violation]:
    if not ctx.hot_regions and not ctx.hot_shims:
        return []
    out = []
    known = _known_compiled_entries() if ctx.hot_shims else None
    for (open_line, _), entry in sorted(ctx.hot_shims.items()):
        if known is not None and entry not in known:
            out.append(
                Violation(
                    ctx.path,
                    open_line,
                    "RPR004",
                    f"`compiled={entry}` names no registered dispatch entry "
                    f"(known: {', '.join(sorted(known))})",
                )
            )
    for node in ast.walk(ctx.tree):
        line = getattr(node, "lineno", None)
        if line is None or not ctx.in_hot_region(line):
            continue
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if isinstance(node.func, ast.Attribute) and name in _HOT_BANNED_CALLS:
                out.append(
                    Violation(
                        ctx.path,
                        line,
                        "RPR004",
                        f"accessor call `.{name}()` inside a `# hot-path` region — "
                        "hoist it above the loop (PR 5 convention)",
                    )
                )
            elif name in _HOT_DISPATCH_CALLS:
                out.append(
                    Violation(
                        ctx.path,
                        line,
                        "RPR004",
                        f"compiled-dispatch lookup `{name}()` inside a `# hot-path` region — "
                        "resolve the twin once, above the loop",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr in _HOT_BANNED_PROPERTIES:
            out.append(
                Violation(
                    ctx.path,
                    line,
                    "RPR004",
                    f"property access `.{node.attr}` inside a `# hot-path` region — "
                    "hoist it above the loop (PR 5 convention)",
                )
            )
    return out


# --------------------------------------------------------------------------
# RPR005 — bare / swallowed exceptions
# --------------------------------------------------------------------------
_SWALLOW_BANNED = {"Exception", "BaseException", "JobError", "JobFailure", "JobFailedError"}


def _handler_type_names(node: ast.ExceptHandler) -> list[str]:
    if node.type is None:
        return []
    types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    names = []
    for t in types:
        dotted = _dotted(t)
        if dotted:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def _body_is_swallow(body: list[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        or isinstance(stmt, ast.Continue)
        for stmt in body
    )


def _check_exceptions(ctx: LintContext) -> list[Violation]:
    out = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            out.append(
                Violation(
                    ctx.path,
                    node.lineno,
                    "RPR005",
                    "bare `except:` — catch a concrete exception type "
                    "(a bare clause hides KeyboardInterrupt and engine failures)",
                )
            )
            continue
        banned = [n for n in _handler_type_names(node) if n in _SWALLOW_BANNED]
        if banned and _body_is_swallow(node.body):
            out.append(
                Violation(
                    ctx.path,
                    node.lineno,
                    "RPR005",
                    f"`except {banned[0]}:` silently swallows the failure — re-raise, "
                    "capture it on the JobHandle, or narrow the type",
                )
            )
    return out


# --------------------------------------------------------------------------
# RPR006 — deprecated ALGORITHMS mapping
# --------------------------------------------------------------------------
def _check_deprecated_api(ctx: LintContext) -> list[Violation]:
    if ctx.module_parts in (("core", "api.py"),):
        return []  # the definition site (and its deprecation shim)
    out = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            if (node.module or "").endswith("api") and any(
                alias.name == "ALGORITHMS" for alias in node.names
            ):
                out.append(
                    Violation(
                        ctx.path,
                        node.lineno,
                        "RPR006",
                        "import of deprecated `ALGORITHMS` — enumerate `SPECS` or call "
                        "`resolve_algorithm` instead",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr == "ALGORITHMS":
            out.append(
                Violation(
                    ctx.path,
                    node.lineno,
                    "RPR006",
                    "use of deprecated `ALGORITHMS` mapping — enumerate `SPECS` or call "
                    "`resolve_algorithm` instead",
                )
            )
    return out


RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule("RPR001", "wall-clock", "no wall-clock reads in determinism-scoped modules", _check_wall_clock),
        Rule("RPR002", "unseeded-rng", "no unseeded randomness in determinism-scoped modules", _check_unseeded_rng),
        Rule("RPR003", "lock-discipline", "self-attribute writes in lock-owning classes must hold the lock", _check_lock_discipline),
        Rule("RPR004", "hot-path-accessors", "no accessor calls or dispatch lookups inside `# hot-path` regions", _check_hot_path),
        Rule("RPR005", "swallowed-failures", "no bare `except:` or silently swallowed broad failures", _check_exceptions),
        Rule("RPR006", "deprecated-api", "no use of the deprecated ALGORITHMS mapping", _check_deprecated_api),
    )
}
