"""Repo-native static analysis and the lockstep-kernel race sanitizer.

Two independent halves:

* the invariant linter (:mod:`repro.analysis.linting` /
  :mod:`repro.analysis.rules`) — the ``repro lint`` subcommand;
* the dynamic race sanitizer (:mod:`repro.analysis.hazards`) — shadow-access
  recording for the gpusim layer, with the shipped-kernel conflict policies
  and the sanitized sweep in :mod:`repro.analysis.registry`.

This package deliberately imports only stdlib + numpy at the top level so
the minimal-install CI job (no scipy/networkx) can use both halves; the
sweep registry, which pulls in the solver layers, is loaded lazily via
``repro.analysis.registry`` or ``python -m repro.analysis``.
"""

from repro.analysis.hazards import (
    AccessLog,
    ConflictPolicy,
    Hazard,
    HazardReport,
    SegmentRecord,
    ShadowArray,
    evaluate,
    shadow_wrap,
)
from repro.analysis.linting import (
    LintContext,
    Violation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import RULES, Rule

__all__ = [
    "AccessLog",
    "ConflictPolicy",
    "Hazard",
    "HazardReport",
    "LintContext",
    "RULES",
    "Rule",
    "SegmentRecord",
    "ShadowArray",
    "Violation",
    "evaluate",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "shadow_wrap",
]
