"""Conflict-policy registry and the sanitized sweep of the shipped kernels.

Every lockstep kernel the repo ships is listed in :data:`KERNEL_POLICIES`
with the races its correctness argument declares (the per-kernel rationale
is spelled out in ``docs/static-analysis.md``).  :func:`sanitized_sweep`
re-runs all gpusim algorithms — the three G-PR variants, G-HKDW and the
auction solver — under shadow-access mode on two generator families and
asserts via :class:`~repro.analysis.hazards.HazardReport` that no kernel
exhibits a hazard its policy does not cover.  The CI ``lint-deep`` job runs
this as ``python -m repro.analysis``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.analysis.hazards import AccessLog, ConflictPolicy, HazardReport, evaluate

__all__ = ["KERNEL_POLICIES", "sanitized_run", "sanitized_sweep"]


_LWW_PUSH = ConflictPolicy(
    last_writer_wins=frozenset({"mu_row", "psi_row"}),
    note="concurrent pushes may select the same row; the last writer wins and "
    "the losing columns re-activate next launch (§III-B)",
)

KERNEL_POLICIES: dict[str, ConflictPolicy] = {
    # G-PR push kernels: the paper's speculative pushes.
    "g-pr-krnl": _LWW_PUSH,
    "g-pr-pushkrnl": _LWW_PUSH,
    # Active-list repair: every thread owns its own list slot, so the
    # vectorised rollback / drop / dedup passes re-read and re-write slots.
    "g-pr-initkrnl": ConflictPolicy(
        slot_local=frozenset({"ac", "ap"}),
        note="each thread repairs its private active-list slot (Algorithm 8)",
    ),
    "g-pr-shrkrnl": ConflictPolicy(
        slot_local=frozenset({"ac", "ap"}),
        note="repair plus compaction into per-thread output regions (§III-C2)",
    ),
    # FIXMATCHING: one thread per column clears its own stale entry.
    "fixmatching": ConflictPolicy(
        slot_local=frozenset({"mu_col"}),
        note="each thread confirms/clears only its own column entry",
    ),
    # Global relabeling: INITRELABEL writes each vertex's own label (the
    # vectorised fill-then-overwrite is slot-local per thread); the BFS
    # levels write deduplicated frontiers only.
    "init-relabel": ConflictPolicy(
        slot_local=frozenset({"psi_row", "psi_col"}),
        note="one thread per vertex writes its own label (Algorithm 4)",
    ),
    "g-gr-krnl": ConflictPolicy(
        note="same-value label races are benign and deduplicated before writing"
    ),
    # G-HKDW: level-synchronous BFS writes disjoint frontiers; the
    # augmentation kernels model a serialised claim-based interleaving.
    "ghkdw-bfs": ConflictPolicy(note="frontier writes are deduplicated and disjoint per level"),
    "ghkdw-augment": ConflictPolicy(
        serialized=True, note="claim-based DFS; claims serialise the walks within the launch"
    ),
    "ghkdw-dw-augment": ConflictPolicy(
        serialized=True, note="Duff–Wassel round, same claim serialisation"
    ),
    "ghkdw-correction": ConflictPolicy(
        serialized=True, note="correction sweep with fresh claims, still serial per thread"
    ),
    # Auction: bids are pure reads; the assign kernel writes one winner per
    # object (deduplicated by the lexsort-lead pass).
    "auction_bid": ConflictPolicy(note="bid scan is read-only over prices"),
    "auction_assign": ConflictPolicy(
        note="one write per object after highest-bid dedup; unseated persons are disjoint "
        "from winners"
    ),
}

def _families() -> tuple[tuple[str, Callable], ...]:
    """Two generator families: uniform random, plus the skewed-degree R-MAT
    family, which drives the active-list/shrink machinery much harder."""
    from repro.generators import rmat_bipartite, uniform_random_bipartite

    return (
        ("uniform", lambda seed: uniform_random_bipartite(220, 200, avg_degree=4, seed=seed)),
        ("rmat", lambda seed: rmat_bipartite(8, edge_factor=6.0, seed=seed)),
    )


def _targets() -> list[tuple[str, Callable]]:
    """(label, runner(graph, gpu)) for every shipped gpusim algorithm."""
    from repro.core.ghkdw import ghkdw_matching
    from repro.core.gpr import GPRConfig, gpr_matching
    from repro.weighted.auction import AuctionConfig, weighted_auction_matching

    def gpr(variant, **kwargs):
        def run(graph, gpu):
            return gpr_matching(graph, config=GPRConfig(variant=variant, **kwargs), device=gpu)

        return run

    return [
        ("g-pr-first", gpr("first")),
        ("g-pr-noshrink", gpr("noshrink")),
        ("g-pr", gpr("shrink")),
        # Low threshold so the shrink kernel actually fires on the scaled
        # sweep instances (the paper's 512 exceeds their active lists).
        ("g-pr-shrink-eager", gpr("shrink", shrink_threshold=1)),
        ("g-hkdw", lambda graph, gpu: ghkdw_matching(graph, device=gpu)),
        (
            "weighted-auction",
            lambda graph, gpu: weighted_auction_matching(
                graph, config=AuctionConfig(), device=gpu
            ),
        ),
    ]


def sanitized_run(runner: Callable, graph, label: str = "run") -> HazardReport:
    """Run one gpusim algorithm under shadow-access mode and evaluate it."""
    from repro.gpusim.device import DeviceSpec, VirtualGPU

    log = AccessLog()
    # The scaled device keeps wave_size small relative to the instances, so
    # the push kernels genuinely split their launches into several waves.
    gpu = VirtualGPU(DeviceSpec().scaled(), shadow=log)
    runner(graph, gpu)
    return evaluate(log, KERNEL_POLICIES, label=label)


def sanitized_sweep(
    seed: int = 20130421, families: Iterable[tuple[str, Callable]] | None = None
) -> list[HazardReport]:
    """Shadow-run every gpusim algorithm on every family; one report each."""
    reports = []
    for family_name, make_graph in families if families is not None else _families():
        graph = make_graph(seed)
        for algo_name, runner in _targets():
            reports.append(sanitized_run(runner, graph, label=f"{algo_name}/{family_name}"))
    return reports
