"""Kernel execution engines.

Two engines model the behaviour of a lock- and atomic-free CUDA launch:

``lockstep``
    The vectorised production engine.  It is not a function in this module —
    every kernel in :mod:`repro.core.kernels` *is* its lockstep
    implementation: reads observe the launch-time snapshot of device memory
    and conflicting writes to the same location are resolved by NumPy's
    fancy-assignment rule (the last occurrence wins).  This corresponds to
    the interleaving where every thread performs all reads before any thread
    performs a write — a legal schedule of a lock-free launch, and exactly
    the situation Section III-B of the paper analyses ("If both v and v'
    select u at the same time ...").

``serialized``
    A reference interpreter (:func:`launch_serialized`) that runs one Python
    callable per logical thread, one thread at a time, over *live* device
    memory — i.e. the fully serialised interleaving, optionally in a permuted
    thread order.  It is orders of magnitude slower and exists for the
    test-suite: the paper's correctness argument says *any* interleaving must
    yield a maximum matching, so the tests execute the same algorithm under
    both engines (and several permutations) and compare cardinalities.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["launch_serialized", "wave_barrier"]


def wave_barrier(*arrays) -> None:
    """Mark a resident-wave boundary for the race sanitizer.

    The lockstep engines process launches wider than the device in *waves*
    of resident threads; writes of an earlier wave are legitimately visible
    to later waves and must not be reported as intra-wave hazards.  Kernels
    call this at the end of each wave iteration with the arrays they touch.
    A no-op (zero cost, no effect on results) unless the arrays are
    shadow-recording views handed out by ``VirtualGPU(shadow=...)``.
    """
    seen: list = []
    for arr in arrays:
        # ndarray.data is the buffer memoryview — only unwrap DeviceArray-like
        # containers, never arrays themselves.
        data = arr if isinstance(arr, np.ndarray) else getattr(arr, "data", arr)
        log = getattr(data, "shadow_log", None)
        if log is not None and not any(log is s for s in seen):
            seen.append(log)
            log.wave_barrier()


def launch_serialized(
    kernel_body: Callable[[int], float],
    n_threads: int,
    order: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Execute ``kernel_body(tid)`` once per logical thread, serially.

    Parameters
    ----------
    kernel_body:
        Per-thread function.  It receives the thread id and must return the
        number of elementary operations the thread performed (its work).  It
        mutates device arrays captured by closure — exactly like a CUDA
        kernel body mutates global memory.
    n_threads:
        Number of logical threads in the launch.
    order:
        Optional explicit execution order (a permutation of ``range(n_threads)``).
    rng:
        When given (and ``order`` is not), threads execute in a random
        permutation drawn from this generator — used by the race-tolerance
        property tests.

    Returns
    -------
    numpy.ndarray
        Per-thread work vector (indexed by thread id, not execution order),
        suitable for :meth:`repro.gpusim.device.VirtualGPU.charge_kernel`.
    """
    if order is not None:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n_threads)):
            raise ValueError("order must be a permutation of range(n_threads)")
    elif rng is not None:
        order = rng.permutation(n_threads)
    else:
        order = np.arange(n_threads)
    work = np.zeros(n_threads, dtype=np.float64)
    for tid in order:
        work[tid] = float(kernel_body(int(tid)))
    return work
