"""Device array wrapper.

A :class:`DeviceArray` is a thin, named wrapper around a NumPy array.  It
exists to make the host/device boundary explicit in the algorithm code (what
the CUDA implementation would keep in GPU global memory) and to let
:class:`~repro.gpusim.device.VirtualGPU` account transfer costs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DeviceArray"]


class DeviceArray:
    """A named array resident on the virtual device."""

    __slots__ = ("data", "name")

    def __init__(self, data: np.ndarray, name: str = "array") -> None:
        # Keep ndarray *instances* as-is (np.asarray would strip subclasses,
        # which shadow-access mode relies on to record kernel accesses).
        self.data = data if isinstance(data, np.ndarray) else np.asarray(data)
        self.name = name

    # Convenience pass-throughs so kernels can treat it mostly like ndarray.
    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, item):
        return self.data[item]

    def __setitem__(self, item, value) -> None:
        self.data[item] = value

    def fill(self, value) -> None:
        self.data.fill(value)

    def copy(self) -> "DeviceArray":
        return DeviceArray(self.data.copy(), name=self.name)

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self.data.astype(dtype)
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceArray(name={self.name!r}, shape={self.data.shape}, dtype={self.data.dtype})"
