"""Device description and the :class:`VirtualGPU` handle."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.gpusim.arrays import DeviceArray
from repro.gpusim.costmodel import CostLedger, GpuCostModel

__all__ = ["DeviceSpec", "VirtualGPU"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of the simulated device.

    The defaults describe the paper's NVIDIA Tesla C2050 (14 SMs × 32 CUDA
    cores at 1.15 GHz).  ``cycles_per_op`` is the modelled cost of one
    elementary kernel operation — an adjacency entry scanned by one thread,
    dominated by an uncoalesced global-memory access on this workload.

    Use :meth:`scaled` to derive a device matched to the scaled-down
    reproduction suite: the synthetic instances are two to four orders of
    magnitude smaller than the UFL originals, so the launch overhead and core
    count are reduced proportionally to keep the device-vs-instance balance
    of the original experiments.
    """

    name: str = "virtual-tesla-c2050"
    num_sms: int = 14
    cores_per_sm: int = 32
    warp_size: int = 32
    clock_ghz: float = 1.15
    kernel_launch_overhead_s: float = 6.0e-6
    cycles_per_op: float = 24.0
    pcie_bandwidth_bytes_per_s: float = 6.0e9

    @property
    def total_cores(self) -> int:
        """Total scalar cores (448 on the C2050)."""
        return self.num_sms * self.cores_per_sm

    def scaled(self, factor: float = 0.025) -> "DeviceSpec":
        """A device shrunk to match the scaled-down reproduction suite.

        The synthetic suite instances are two to four orders of magnitude
        smaller than the UFL matrices of the paper, while a real GPU's core
        count and launch overhead are fixed.  Running the full-size device
        against the tiny instances would make every graph launch-overhead
        bound and hide the effects the paper measures, so the reproduction
        device shrinks three quantities together:

        * **core count** (``448 → 448·factor``, floor 16) so the ratio of
          available threads to active columns — what decides whether the push
          kernels are throughput- or latency-bound — stays close to the
          original experiments;
        * **launch overhead** by the same factor, keeping the overhead-to-
          useful-work ratio of a launch roughly constant;
        * **cycles per operation** (reduced to 9) so the *aggregate*
          GPU-to-CPU throughput ratio lands near 25×, the regime in which the
          paper's observed speedups (0.3× – 12.6×) are produced by the
          work-ratio differences between graph families rather than by raw
          device speed.

        The warp width shrinks with the SM width so the divergence penalty
        keeps its relative weight.
        """
        if not 0 < factor <= 1:
            raise ValueError("scale factor must be in (0, 1]")
        total = max(16, int(round(self.total_cores * factor * 6)))
        cores_per_sm = 8
        num_sms = max(1, total // cores_per_sm)
        return replace(
            self,
            name=f"{self.name}-scaled",
            num_sms=num_sms,
            cores_per_sm=cores_per_sm,
            warp_size=8,
            cycles_per_op=9.0,
            kernel_launch_overhead_s=self.kernel_launch_overhead_s * factor,
        )


class VirtualGPU:
    """A handle owning device arrays and the cost ledger of one algorithm run.

    Parameters
    ----------
    spec:
        Device description; default is the full Tesla C2050.
    track_transfers:
        When true, :meth:`to_device` / :meth:`to_host` copies are charged to
        the ledger (off by default: the paper's timings start with the graph
        resident on the device).
    shadow:
        Optional :class:`~repro.analysis.hazards.AccessLog`.  When set, the
        device hands out shadow-recording views (see :meth:`shadow_wrap`)
        and every :meth:`charge_kernel` closes a sanitizer segment, so the
        unmodified kernel code records its per-wave read/write sets for the
        race sanitizer.
    """

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        track_transfers: bool = False,
        shadow=None,
    ) -> None:
        self.spec = spec or DeviceSpec()
        self.model = GpuCostModel(self.spec)
        self.ledger = CostLedger()
        self.track_transfers = track_transfers
        self.shadow = shadow

    # ------------------------------------------------------------ memory ops
    def to_device(self, host_array: np.ndarray, name: str = "array") -> DeviceArray:
        """Copy a host array to the device."""
        arr = DeviceArray(self.shadow_wrap(np.array(host_array, copy=True), name), name=name)
        if self.track_transfers:
            self.model.record_transfer(self.ledger, arr.nbytes)
        return arr

    def zeros(self, shape, dtype=np.int64, name: str = "zeros") -> DeviceArray:
        """Allocate a zero-filled device array (no transfer cost)."""
        return DeviceArray(self.shadow_wrap(np.zeros(shape, dtype=dtype), name), name=name)

    def full(self, shape, value, dtype=np.int64, name: str = "full") -> DeviceArray:
        """Allocate a constant-filled device array (no transfer cost)."""
        return DeviceArray(self.shadow_wrap(np.full(shape, value, dtype=dtype), name), name=name)

    def to_host(self, device_array: DeviceArray) -> np.ndarray:
        """Copy a device array back to the host."""
        if self.track_transfers:
            self.model.record_transfer(self.ledger, device_array.nbytes)
        return np.array(device_array.data, copy=True)

    # --------------------------------------------------------------- launches
    def charge_kernel(self, name: str, thread_work) -> None:
        """Account one kernel launch given its per-thread work vector.

        ``thread_work`` may be a scalar (same work for every thread — pass
        ``np.full(n_threads, w)``), or a vector with one entry per logical
        thread.  The vectorised kernels in :mod:`repro.core.kernels` compute
        these vectors exactly (scanned adjacency entries per thread).

        Under shadow mode the charge also closes the sanitizer segment: the
        repo convention is charge-after-access, so everything recorded since
        the previous charge is attributed to this kernel, and the launch
        boundary acts as a device-wide barrier.
        """
        if self.shadow is not None:
            self.shadow.close_segment(name)
        self.model.record(self.ledger, name, np.asarray(thread_work, dtype=np.float64))

    # ------------------------------------------------------------ shadow mode
    def shadow_wrap(self, array, name: str = "array"):
        """Register ``array`` with the sanitizer, if shadow mode is on.

        Returns a recording :class:`~repro.analysis.hazards.ShadowArray` view
        sharing the buffer; without shadow mode this is a no-op returning the
        plain ndarray.  Accepts plain arrays and :class:`DeviceArray`.
        """
        # ndarray.data is the buffer memoryview — only unwrap DeviceArray-like
        # containers, never arrays themselves.
        data = array if isinstance(array, np.ndarray) else getattr(array, "data", array)
        base = np.asarray(data)
        if self.shadow is None:
            return base
        from repro.analysis.hazards import shadow_wrap

        return shadow_wrap(base, name, self.shadow)

    def shadow_sync(self) -> None:
        """Declare a host-side synchronisation point to the sanitizer.

        Call this where sequential host code between two charges rewrites
        device arrays (e.g. the auction ε-reset): the host is not a wave, so
        its writes must not be confused with intra-wave conflicts.
        """
        if self.shadow is not None:
            self.shadow.wave_barrier()

    # ------------------------------------------------------------------ misc
    @property
    def elapsed_seconds(self) -> float:
        """Modelled seconds accumulated so far."""
        return self.ledger.total_seconds

    def reset(self) -> None:
        """Clear the ledger (arrays are unaffected)."""
        self.ledger = CostLedger()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualGPU(spec={self.spec.name}, launches={self.ledger.n_launches})"
