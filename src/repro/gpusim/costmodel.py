"""Cost model of the virtual SIMT device.

Every kernel launch reports a *work vector*: one entry per logical thread
giving the number of elementary operations (adjacency entries scanned plus a
small constant) that thread performs.  The model converts the vector into
modelled seconds with three ingredients:

``launch overhead``
    Fixed host-side cost per kernel launch.  This is what makes graphs with
    long augmenting paths GPU-hostile: the paper's worst instances
    (``hugetrace-00000``, ``italy_osm``) need thousands of launches with only
    a handful of active columns each.

``throughput term``
    Threads are grouped into warps (``warp_size`` consecutive thread ids).
    SIMT lock-step execution means every thread of a warp pays for the
    slowest thread of that warp (divergence).  The resulting warp work is
    spread over all scalar cores of the device.

``critical-path term``
    A kernel can never finish before its longest-running thread; with few
    resident threads the device is latency-bound, not throughput-bound.

``kernel_seconds = overhead + cycles_per_op × max(divergent_work / cores,
max_thread_work) / clock``.

The same ledger also accounts host↔device transfers (bytes / bandwidth),
which the benchmark harness excludes by default — the paper measures
matching time after the common greedy initialisation, with the graph already
resident on the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KernelStats", "CostLedger", "GpuCostModel", "CpuCostModel", "MulticoreCostModel"]


@dataclass(frozen=True)
class KernelStats:
    """Accounting record of a single kernel launch."""

    name: str
    n_threads: int
    total_work: float
    divergent_work: float
    max_thread_work: float
    seconds: float


@dataclass
class CostLedger:
    """Accumulated modelled cost of a sequence of kernel launches."""

    launches: list[KernelStats] = field(default_factory=list)
    transfer_bytes: int = 0
    transfer_seconds: float = 0.0

    @property
    def kernel_seconds(self) -> float:
        """Total modelled kernel time."""
        return float(sum(k.seconds for k in self.launches))

    @property
    def total_seconds(self) -> float:
        """Kernel time plus (optional) transfer time."""
        return self.kernel_seconds + self.transfer_seconds

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    def by_kernel(self) -> dict[str, float]:
        """Modelled seconds aggregated per kernel name."""
        out: dict[str, float] = {}
        for k in self.launches:
            out[k.name] = out.get(k.name, 0.0) + k.seconds
        return out

    def stats_by_kernel(self) -> dict[str, dict[str, float]]:
        """Launch count, total work and modelled seconds aggregated per kernel.

        The calibration layer (:mod:`repro.compiled.calibrate`) fits measured
        wall time against these aggregates, so they carry everything the fit
        needs: ``launches``, ``total_work``, ``divergent_work``,
        ``max_thread_work`` (summed — the per-launch critical paths add up
        over a run) and ``seconds``.
        """
        out: dict[str, dict[str, float]] = {}
        for k in self.launches:
            rec = out.setdefault(
                k.name,
                {
                    "launches": 0,
                    "total_work": 0.0,
                    "divergent_work": 0.0,
                    "max_thread_work": 0.0,
                    "seconds": 0.0,
                },
            )
            rec["launches"] += 1
            rec["total_work"] += k.total_work
            rec["divergent_work"] += k.divergent_work
            rec["max_thread_work"] += k.max_thread_work
            rec["seconds"] += k.seconds
        return out

    def counters(self) -> dict:
        """Flat counter dictionary for :class:`repro.matching.MatchingResult`."""
        return {
            "kernel_launches": self.n_launches,
            "kernel_total_work": float(sum(k.total_work for k in self.launches)),
            "kernel_seconds": self.kernel_seconds,
            "transfer_bytes": self.transfer_bytes,
            "per_kernel_seconds": self.by_kernel(),
        }


class GpuCostModel:
    """Converts per-launch work vectors into modelled GPU seconds."""

    def __init__(self, spec) -> None:
        self.spec = spec

    def launch_seconds(self, thread_work: np.ndarray) -> tuple[float, float, float, float]:
        """Model one launch.

        Parameters
        ----------
        thread_work:
            One entry per logical thread: elementary operations performed.

        Returns
        -------
        (seconds, total_work, divergent_work, max_thread_work)
        """
        spec = self.spec
        work = np.asarray(thread_work, dtype=np.float64)
        if work.size == 0:
            return spec.kernel_launch_overhead_s, 0.0, 0.0, 0.0
        total = float(work.sum())
        max_thread = float(work.max())
        # Warp divergence: every thread of a warp pays for the slowest one.
        n_threads = work.size
        pad = (-n_threads) % spec.warp_size
        if pad:
            work = np.concatenate([work, np.zeros(pad)])
        warp_max = work.reshape(-1, spec.warp_size).max(axis=1)
        divergent = float(warp_max.sum() * spec.warp_size)
        cycles = spec.cycles_per_op * max(divergent / spec.total_cores, max_thread)
        seconds = spec.kernel_launch_overhead_s + cycles / (spec.clock_ghz * 1e9)
        return seconds, total, divergent, max_thread

    def record(self, ledger: CostLedger, name: str, thread_work: np.ndarray) -> KernelStats:
        """Model a launch and append it to ``ledger``."""
        seconds, total, divergent, max_thread = self.launch_seconds(thread_work)
        stats = KernelStats(
            name=name,
            n_threads=int(np.asarray(thread_work).size),
            total_work=total,
            divergent_work=divergent,
            max_thread_work=max_thread,
            seconds=seconds,
        )
        ledger.launches.append(stats)
        return stats

    def record_transfer(self, ledger: CostLedger, n_bytes: int) -> None:
        """Account a host↔device copy of ``n_bytes``."""
        ledger.transfer_bytes += int(n_bytes)
        ledger.transfer_seconds += n_bytes / self.spec.pcie_bandwidth_bytes_per_s


@dataclass(frozen=True)
class CpuCostModel:
    """Single-core CPU model used for the sequential baselines (PR, HK, ...).

    Matches the paper's CPU: a 2.27 GHz Xeon core.  ``cycles_per_op`` bundles
    the average cost of one adjacency-scan step of a pointer-chasing graph
    algorithm (load, compare, branch, plus its share of cache misses).
    """

    clock_ghz: float = 2.27
    cycles_per_op: float = 7.0

    def seconds(self, total_ops: float) -> float:
        """Modelled seconds for ``total_ops`` elementary operations."""
        return float(total_ops) * self.cycles_per_op / (self.clock_ghz * 1e9)


@dataclass(frozen=True)
class MulticoreCostModel:
    """Model of the paper's 8-thread OpenMP machine for P-DBFS.

    Each BFS round costs the maximum of (i) the per-thread critical path and
    (ii) the round's total work divided over the threads, plus a
    synchronisation barrier.
    """

    n_threads: int = 8
    clock_ghz: float = 2.27
    cycles_per_op: float = 7.0
    barrier_overhead_s: float = 2e-6
    atomic_penalty_cycles: float = 20.0

    def round_seconds(self, total_ops: float, max_thread_ops: float, atomics: float = 0.0) -> float:
        """Modelled seconds for one parallel round."""
        cycles = self.cycles_per_op * max(total_ops / self.n_threads, max_thread_ops)
        cycles += self.atomic_penalty_cycles * atomics / self.n_threads
        return self.barrier_overhead_s + cycles / (self.clock_ghz * 1e9)
