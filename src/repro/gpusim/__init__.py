"""Virtual SIMT device — the substitute for the paper's NVIDIA Tesla C2050.

The original system runs CUDA kernels on a physical GPU.  Nothing in the
paper's algorithmic contribution depends on real hardware: what matters is

1. the *data-parallel execution semantics* — many logical threads execute the
   same kernel body, reads may observe stale values written by other threads
   of the same launch, conflicting writes are resolved arbitrarily (lock- and
   atomic-free), and the algorithm must tolerate any such interleaving; and
2. the *cost structure* — a fixed kernel-launch overhead, massive throughput
   when many threads are resident, and serialisation when a kernel has only a
   handful of threads or a single very long-running thread (divergence).

This package provides both:

* :class:`~repro.gpusim.device.DeviceSpec` /
  :class:`~repro.gpusim.device.VirtualGPU` — the device description (SM
  count, cores, clock, launch overhead) and a handle that owns device arrays
  and the cost ledger;
* :class:`~repro.gpusim.arrays.DeviceArray` — host/device transfer tracking;
* :mod:`~repro.gpusim.kernel` — the two execution engines: ``lockstep``
  (vectorised: all reads see the launch-time snapshot, conflicting writes are
  resolved last-writer-wins) and ``serialized`` (a per-thread reference
  interpreter that executes threads one at a time on live data, optionally in
  a permuted order).  Both are legal interleavings of a lock-free CUDA
  launch; the test-suite checks the algorithms produce maximum matchings
  under either engine.
* :mod:`~repro.gpusim.costmodel` — converts per-launch work vectors into
  modelled seconds;
* :mod:`~repro.gpusim.primitives` — device-style prefix-sum / reduction used
  by the shrink kernel, with their own cost accounting.
"""

from repro.gpusim.arrays import DeviceArray
from repro.gpusim.costmodel import CostLedger, GpuCostModel, KernelStats
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.gpusim.kernel import launch_serialized
from repro.gpusim.primitives import device_exclusive_scan, device_reduce_max, device_reduce_sum

__all__ = [
    "DeviceSpec",
    "VirtualGPU",
    "DeviceArray",
    "GpuCostModel",
    "CostLedger",
    "KernelStats",
    "launch_serialized",
    "device_exclusive_scan",
    "device_reduce_sum",
    "device_reduce_max",
]
