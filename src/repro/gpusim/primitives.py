"""Device-style parallel primitives with cost accounting.

The shrink kernel of the paper (G-PR-SHRKRNL, §III-C2) compacts the active
column list with a count pass, a parallel prefix sum over the per-thread
counts, and a scatter pass into each thread's private output region.  These
helpers provide the prefix sum / reductions together with the work vector a
work-efficient GPU implementation (Blelloch scan) would incur, so the cost
model charges the compaction realistically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["device_exclusive_scan", "device_reduce_sum", "device_reduce_max"]


def _scan_work(n: int) -> np.ndarray:
    """Per-thread work of a work-efficient exclusive scan over ``n`` items.

    A Blelloch scan performs an up-sweep and a down-sweep; the total work is
    O(n) (about two operations per element amortised over the log2(n)
    passes), so each logical thread is charged a constant.
    """
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    return np.full(n, 2.0, dtype=np.float64)


def device_exclusive_scan(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exclusive prefix sum.

    Returns
    -------
    (scan, thread_work)
        ``scan[i] = sum(values[:i])`` and a per-thread work vector for the
        cost ledger.
    """
    values = np.asarray(values)
    scan = np.zeros(len(values), dtype=values.dtype if values.dtype.kind in "iu" else np.int64)
    if len(values):
        np.cumsum(values[:-1], out=scan[1:])
    return scan, _scan_work(len(values))


def device_reduce_sum(values: np.ndarray) -> tuple[float, np.ndarray]:
    """Parallel sum reduction; returns the value and the per-thread work vector."""
    values = np.asarray(values)
    total = float(values.sum()) if len(values) else 0.0
    return total, _scan_work(len(values)) / 2.0 if len(values) else np.zeros(0)


def device_reduce_max(values: np.ndarray) -> tuple[float, np.ndarray]:
    """Parallel max reduction; returns the value and the per-thread work vector."""
    values = np.asarray(values)
    peak = float(values.max()) if len(values) else 0.0
    return peak, _scan_work(len(values)) / 2.0 if len(values) else np.zeros(0)
