"""Command-line interface.

Examples
--------
Run one algorithm on one suite instance::

    python -m repro.cli run --graph roadNet-PA --algorithm g-pr --profile small

Regenerate Table I (modelled milliseconds) over the whole suite::

    python -m repro.cli table1 --profile small

Regenerate the figures (printed as data series)::

    python -m repro.cli figures --figure 2

Match an external Matrix-Market file::

    python -m repro.cli run --mtx /path/to/matrix.mtx --algorithm g-pr

Execute a batch of jobs from a JSONL manifest (one job per line, e.g.
``{"graph": "roadNet-PA", "algorithm": "g-pr", "profile": "tiny"}``)::

    python -m repro.cli batch --manifest jobs.jsonl --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import SuiteRunner, modeled_seconds_for
from repro.bench.reports import build_figure1, build_figure2, build_figure3, build_figure4, build_table1, render_table
from repro.core.api import ALGORITHMS, max_bipartite_matching
from repro.generators.suite import generate_instance, instance_names
from repro.graph.io import read_matrix_market
from repro.service import DiskCache, MatchingJob, MatchingService

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    if args.mtx:
        graph = read_matrix_market(args.mtx)
    else:
        graph = generate_instance(args.graph, profile=args.profile, seed=args.seed)
    result = max_bipartite_matching(graph, algorithm=args.algorithm)
    payload = {
        "graph": graph.name,
        "n_rows": graph.n_rows,
        "n_cols": graph.n_cols,
        "n_edges": graph.n_edges,
        "algorithm": result.algorithm,
        "cardinality": result.cardinality,
        "modeled_seconds": modeled_seconds_for(result),
        "wall_seconds": result.wall_time,
    }
    print(json.dumps(payload, indent=2))
    return 0


def _load_manifest(path: str, default_profile: str, default_seed: int) -> list[MatchingJob]:
    """Parse a JSONL job manifest into :class:`MatchingJob` objects.

    Each line is an object with a ``graph`` (suite instance name or id) or
    ``mtx`` (Matrix-Market path), plus optional ``algorithm``, ``kwargs``,
    ``initial``, ``profile``, ``seed`` and ``id`` fields.  Graph construction
    is memoized per (source, profile, seed) so a manifest that repeats a
    graph only generates it once.
    """
    graphs: dict[tuple, object] = {}
    jobs: list[MatchingJob] = []
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(entry, dict):
            raise ValueError(f"{path}:{lineno}: expected an object, got {type(entry).__name__}")
        if ("graph" in entry) == ("mtx" in entry):
            raise ValueError(f"{path}:{lineno}: each job needs exactly one of 'graph' or 'mtx'")
        profile = entry.get("profile", default_profile)
        if not isinstance(profile, str):
            raise ValueError(f"{path}:{lineno}: 'profile' must be a string")
        if not isinstance(entry.get("seed", 0), int):
            raise ValueError(f"{path}:{lineno}: 'seed' must be an integer")
        seed = int(entry.get("seed", default_seed))
        if "mtx" in entry:
            source = ("mtx", entry["mtx"])
            if source not in graphs:
                graphs[source] = read_matrix_market(entry["mtx"])
        else:
            source = ("suite", entry["graph"], profile, seed)
            if source not in graphs:
                graphs[source] = generate_instance(entry["graph"], profile=profile, seed=seed)
        try:
            jobs.append(
                MatchingJob(
                    graph=graphs[source],
                    algorithm=entry.get("algorithm", "g-pr"),
                    kwargs=entry.get("kwargs", {}),
                    initial=entry.get("initial"),
                    job_id=str(entry["id"]) if "id" in entry else f"job-{lineno}",
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return jobs


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        jobs = _load_manifest(args.manifest, args.profile, args.seed)
    except (TypeError, ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("error: empty manifest", file=sys.stderr)
        return 2
    cache = None if args.no_cache else DiskCache(args.cache_dir)
    service = MatchingService(workers=args.workers, cache=cache)
    try:
        report = service.submit_batch(jobs)
    except (TypeError, ValueError) as exc:
        # The service fails fast on unknown algorithms / keyword arguments
        # before executing anything; surface that as a manifest error.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for item in report.results:
        print(
            json.dumps(
                {
                    "type": "result",
                    "id": item.job.job_id,
                    "graph": item.job.graph.name,
                    "algorithm": item.job.algorithm,
                    "cardinality": item.result.cardinality,
                    "cached": item.cached,
                    "worker": item.worker,
                    "seconds": round(item.seconds, 6),
                }
            )
        )
    print(
        json.dumps(
            {
                "type": "summary",
                "jobs": report.n_jobs,
                "executed": report.executed,
                "cache_hits": report.cache_hits,
                "deduplicated": report.deduplicated,
                "hit_rate": round(report.hit_rate, 4),
                "workers": args.workers,
                "wall_seconds": round(report.wall_seconds, 6),
            }
        )
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("suite instances:")
    for name in instance_names():
        print(f"  {name}")
    print("algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    runner = SuiteRunner(profile=args.profile, seed=args.seed,
                         instances=args.instances or None)
    table = build_table1(runner.run())
    print(render_table(table))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure == 1:
        cells = build_figure1(profile=args.profile, seed=args.seed,
                              instances=args.instances or None)
        for cell in cells:
            print(f"{cell.variant:<12} {cell.strategy:<14} {cell.geomean_seconds * 1e3:8.3f} ms")
        return 0
    runner = SuiteRunner(profile=args.profile, seed=args.seed, instances=args.instances or None)
    results = runner.run()
    if args.figure == 2:
        curves = build_figure2(results)
        for name, points in curves.items():
            series = " ".join(f"({x:.2f},{y:.2f})" for x, y in points)
            print(f"{name}: {series}")
    elif args.figure == 3:
        curves = build_figure3(results)
        for name, points in curves.items():
            series = " ".join(f"({x:.2f},{y:.2f})" for x, y in points)
            print(f"{name}: {series}")
    elif args.figure == 4:
        rows, average = build_figure4(results)
        for instance_id, name, speedup in rows:
            print(f"{instance_id:>3} {name:<22} {speedup:6.2f}")
        print(f"average speedup: {average:.2f}")
    else:
        print(f"unknown figure {args.figure}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(prog="repro-matching", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one graph")
    run.add_argument("--graph", default="amazon0505", help="suite instance name or id")
    run.add_argument("--mtx", default=None, help="path to a Matrix-Market file (overrides --graph)")
    run.add_argument("--algorithm", default="g-pr", choices=sorted(ALGORITHMS))
    run.add_argument("--profile", default="small")
    run.add_argument("--seed", type=int, default=20130421)
    run.set_defaults(func=_cmd_run)

    batch = sub.add_parser("batch", help="execute a JSONL manifest of matching jobs")
    batch.add_argument("--manifest", required=True,
                       help="path to a JSONL job manifest ('-' for stdin)")
    batch.add_argument("--workers", type=int, default=0,
                       help="worker-pool size for cache misses (0 = in-process)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable result caching and intra-batch deduplication")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       help="directory of the persistent result cache")
    batch.add_argument("--profile", default="small",
                       help="default size profile for suite-instance jobs")
    batch.add_argument("--seed", type=int, default=20130421)
    batch.set_defaults(func=_cmd_batch)

    lst = sub.add_parser("list", help="list suite instances and algorithms")
    lst.set_defaults(func=_cmd_list)

    table = sub.add_parser("table1", help="regenerate Table I")
    table.add_argument("--profile", default="small")
    table.add_argument("--seed", type=int, default=20130421)
    table.add_argument("--instances", nargs="*", default=None)
    table.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="regenerate Figures 1-4")
    figures.add_argument("--figure", type=int, required=True, choices=(1, 2, 3, 4))
    figures.add_argument("--profile", default="small")
    figures.add_argument("--seed", type=int, default=20130421)
    figures.add_argument("--instances", nargs="*", default=None)
    figures.set_defaults(func=_cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; redirect the
        # remaining output to devnull so interpreter shutdown stays quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
