"""Command-line interface.

Examples
--------
Run one algorithm on one suite instance::

    python -m repro.cli run --graph roadNet-PA --algorithm g-pr --profile small

Regenerate Table I (modelled milliseconds) over the whole suite::

    python -m repro.cli table1 --profile small

Regenerate the figures (printed as data series)::

    python -m repro.cli figures --figure 2

Match an external Matrix-Market file::

    python -m repro.cli run --mtx /path/to/matrix.mtx --algorithm g-pr

Execute a batch of jobs from a JSONL manifest (one job per line, e.g.
``{"graph": "roadNet-PA", "algorithm": "g-pr", "profile": "tiny"}``) on a
chosen execution backend::

    python -m repro.cli batch --manifest jobs.jsonl --backend process --workers 4

Replay a streaming update trace (one ``{"op": "insert", "u": 3, "v": 7}``
per line), repairing the matching incrementally and delegating large
batches to an algorithm through the engine::

    python -m repro.cli stream --graph roadNet-PA --trace updates.jsonl \
        --batch-size 32 --algorithm hk --backend thread

Solve a weighted assignment (maximum weight over maximum-cardinality
matchings; ``--objective min`` minimises instead)::

    python -m repro.cli run --graph roadNet-PA --algorithm weighted-sap \
        --weights uniform:1:100 --objective max

Solve a capacitated b-matching (per-vertex capacities via a capacity
spec), or replay a packaged dispatch scenario end to end with its SLO::

    python -m repro.cli run --graph roadNet-PA --algorithm b-aug \
        --capacities rows:3
    python -m repro.cli stream --scenario ride-hailing --seed 7

See ``docs/cli.md`` for the full flag reference and ``docs/formats.md``
for the manifest / trace / Matrix-Market formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import perfbaseline
from repro.bench.harness import SuiteRunner, modeled_seconds_for
from repro.bench.reports import build_figure1, build_figure2, build_figure3, build_figure4, build_table1, render_table
from repro.capacity import assignment_demand
from repro.core.api import SPECS, resolve_algorithm
from repro.dynamic import IncrementalMatcher, read_update_trace
from repro.engine import BACKEND_NAMES, Engine, FaultSchedule, JobError
from repro.engine.execution import validate_job_args
from repro.generators.capacities import apply_capacity_spec, parse_capacity_spec
from repro.generators.scenarios import generate_scenario, scenario_names
from repro.generators.suite import SCALE_PROFILES, SUITE_SPECS, generate_instance, instance_names
from repro.generators.updates import random_update_trace
from repro.generators.weights import apply_weight_spec, parse_weight_spec
from repro.graph.io import read_matrix_market
from repro.service import DiskCache, MatchingJob, MatchingService
from repro.service.jobs import INITIAL_CHOICES

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    # Only input handling lives in the guard: a solver bug must surface as a
    # traceback, not masquerade as the exit-2 bad-input contract.
    try:
        weights_kind = parse_weight_spec(args.weights)[0] if args.weights else None
        if args.shards is not None and args.weights is not None:
            raise ValueError(
                "sharded matching is cardinality-only; drop --weights or --shards"
            )
        if args.capacities is not None:
            parse_capacity_spec(args.capacities)
            if args.shards is not None:
                raise ValueError(
                    "sharded matching is uncapacitated; drop --capacities or --shards"
                )
            spec_entry = SPECS.get(args.algorithm)
            if spec_entry is not None and not spec_entry.capacitated:
                raise ValueError(
                    f"algorithm {args.algorithm!r} ignores vertex capacities; "
                    "pick a capacitated algorithm (b-aug, b-expand, b-auction) "
                    "or drop --capacities"
                )
        kwargs = {"objective": args.objective} if args.objective else {}
        plan = resolve_algorithm(
            args.algorithm, shards=args.shards, partition=args.partition, **kwargs
        )
        if args.mtx and args.shards is not None:
            # Out-of-core path: the file streams straight into disk-backed
            # shards, so peak memory follows the largest shard, not the file.
            from repro.sharded import ingest_matrix_market_sharded

            graph = ingest_matrix_market_sharded(
                args.mtx, args.shards, plan.partition_method
            )
        elif args.mtx:
            graph = read_matrix_market(args.mtx, with_weights=weights_kind == "values")
        else:
            graph = generate_instance(args.graph, profile=args.profile, seed=args.seed)
        if args.weights is not None:
            graph = apply_weight_spec(graph, args.weights, seed=args.seed)
        if args.capacities is not None:
            graph = apply_capacity_spec(graph, args.capacities, seed=args.seed)
    except (KeyError, TypeError, ValueError, OSError) as exc:
        # KeyError covers an unknown suite instance from generate_instance.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    result = plan.run(graph)
    payload = {
        "graph": graph.name,
        "n_rows": graph.n_rows,
        "n_cols": graph.n_cols,
        "n_edges": graph.n_edges,
        "algorithm": result.algorithm,
        "cardinality": result.cardinality,
        "modeled_seconds": modeled_seconds_for(result),
        "wall_seconds": result.wall_time,
    }
    if "total_weight" in result.counters:
        payload["total_weight"] = result.counters["total_weight"]
        payload["objective"] = result.counters["objective"]
    if graph.has_capacities:
        demand = assignment_demand(graph)
        payload["demand"] = demand
        payload["assignment_rate"] = round(
            result.cardinality / demand if demand else 1.0, 4
        )
    if args.shards is not None:
        payload["shards"] = result.counters["shards"]
        payload["partition"] = plan.partition_method
        payload["shard_counters"] = {
            key: result.counters[key]
            for key in (
                "shard_jobs",
                "shard_edges_max",
                "boundary_rows",
                "merge_conflicts",
                "reconcile_phases",
                "reconcile_augmentations",
                "frontier_handoffs",
            )
        }
    print(json.dumps(payload, indent=2))
    return 0


def _load_manifest(
    path: str,
    default_profile: str,
    default_seed: int,
    default_weights: str | None = None,
    default_objective: str | None = None,
    default_shards: int | None = None,
    default_partition: str | None = None,
    default_capacities: str | None = None,
) -> list[MatchingJob]:
    """Parse a JSONL job manifest into :class:`MatchingJob` objects.

    Each line is an object with a ``graph`` (suite instance name or id) or
    ``mtx`` (Matrix-Market path), plus optional ``algorithm``, ``kwargs``,
    ``initial``, ``profile``, ``seed``, ``weights``, ``objective``,
    ``shards``, ``partition``, ``capacities`` and ``id`` fields.  ``shards``
    / ``partition`` fold into the job's kwargs exactly like ``objective``
    does (the CLI-level defaults only apply to algorithms that can run
    sharded, so a mixed manifest stays valid).  ``capacities`` is a
    capacity-spec string (see :func:`repro.generators.capacities.
    apply_capacity_spec`) layered onto the graph; it requires a capacitated
    algorithm, and the CLI-level default only reaches those, so a manifest
    mixing capacitated and plain jobs stays valid.  ``weights`` is a
    weight-spec string (see
    :func:`repro.generators.weights.apply_weight_spec`; ``"values"`` reads a
    Matrix-Market file's value entries) and ``objective`` is folded into the
    job's kwargs for the weighted algorithms.  Every line is parsed and
    fully validated — including algorithm name, keyword arguments,
    warm-start applicability and weight spec — *before* any graph is built,
    so a malformed last line costs milliseconds, not the minutes of
    generation work done for the lines above it.  Structural graph
    construction is memoized per (source, profile, seed) with weight specs
    layered on top, so a manifest sweeping one graph over several weight
    specs generates it once.
    """
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    # Phase 1: parse and validate every line (cheap, no graph construction).
    entries: list[tuple[int, dict, tuple]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(entry, dict):
            raise ValueError(f"{path}:{lineno}: expected an object, got {type(entry).__name__}")
        if ("graph" in entry) == ("mtx" in entry):
            raise ValueError(f"{path}:{lineno}: each job needs exactly one of 'graph' or 'mtx'")
        profile = entry.get("profile", default_profile)
        if not isinstance(profile, str):
            raise ValueError(f"{path}:{lineno}: 'profile' must be a string")
        if profile not in SCALE_PROFILES:
            raise ValueError(
                f"{path}:{lineno}: unknown profile {profile!r}; "
                f"choose from {sorted(SCALE_PROFILES)}"
            )
        if not isinstance(entry.get("seed", 0), int):
            raise ValueError(f"{path}:{lineno}: 'seed' must be an integer")
        seed = int(entry.get("seed", default_seed))
        if not isinstance(entry.get("kwargs", {}), dict):
            raise ValueError(f"{path}:{lineno}: 'kwargs' must be an object")
        if entry.get("initial") not in INITIAL_CHOICES:
            raise ValueError(
                f"{path}:{lineno}: unknown warm-start {entry.get('initial')!r}; "
                f"choose from {INITIAL_CHOICES}"
            )
        algorithm = str(entry.get("algorithm", "g-pr")).strip().lower()
        spec_entry = SPECS.get(algorithm)
        # The CLI-level --weights/--objective defaults only apply where they
        # are meaningful — to the weighted algorithms — so a manifest mixing
        # weighted and cardinality jobs stays valid and the cardinality
        # jobs keep their (weightless) cache keys.  Explicit per-line fields
        # are still honoured (and validated) for every algorithm.
        weighted_default_applies = spec_entry is not None and spec_entry.weighted
        weights = entry.get(
            "weights", default_weights if weighted_default_applies else None
        )
        weights_kind = None
        if weights is not None:
            if not isinstance(weights, str):
                raise ValueError(f"{path}:{lineno}: 'weights' must be a weight-spec string")
            try:
                weights_kind, _weight_kwargs = parse_weight_spec(weights)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            if weights_kind == "values" and "graph" in entry:
                raise ValueError(
                    f"{path}:{lineno}: weight spec 'values' needs an 'mtx' source "
                    "(suite instances carry no value entries)"
                )
        # Capacities layer onto the graph (not the kwargs), so they gate on
        # the capacitated algorithms: a cardinality solver silently ignoring
        # a requested capacity pattern would be a wrong answer, not a run.
        capacitated_default_applies = spec_entry is not None and spec_entry.capacitated
        capacities = entry.get(
            "capacities", default_capacities if capacitated_default_applies else None
        )
        if capacities is not None:
            if not isinstance(capacities, str):
                raise ValueError(
                    f"{path}:{lineno}: 'capacities' must be a capacity-spec string"
                )
            try:
                parse_capacity_spec(capacities)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            if spec_entry is not None and not spec_entry.capacitated:
                raise ValueError(
                    f"{path}:{lineno}: algorithm {algorithm!r} ignores vertex "
                    "capacities; pick b-aug, b-expand or b-auction, or drop "
                    "'capacities'"
                )
        kwargs = dict(entry.get("kwargs", {}))
        objective = entry.get("objective")
        if objective is None and default_objective is not None and weighted_default_applies:
            objective = default_objective
        if objective is not None:
            if "objective" in kwargs and kwargs["objective"] != objective:
                raise ValueError(
                    f"{path}:{lineno}: 'objective' conflicts with kwargs['objective']"
                )
            kwargs["objective"] = objective
        # The --shards/--partition defaults only reach algorithms that can
        # run sharded (maximum-cardinality, non-weighted); explicit per-line
        # fields are honoured — and validated — for every algorithm.
        sharded_default_applies = (
            spec_entry is not None and spec_entry.maximum and not spec_entry.weighted
        )
        for field_name, default in (
            ("shards", default_shards),
            ("partition", default_partition),
        ):
            value = entry.get(
                field_name, default if sharded_default_applies else None
            )
            if value is not None:
                if field_name in kwargs and kwargs[field_name] != value:
                    raise ValueError(
                        f"{path}:{lineno}: {field_name!r} conflicts with "
                        f"kwargs[{field_name!r}]"
                    )
                kwargs[field_name] = value
        # Resolve the algorithm now (cheap) so a typo'd name, knob or
        # warm-start on any line is caught before phase 2 generates a graph.
        try:
            validate_job_args(algorithm, kwargs, entry.get("initial"))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        if "mtx" in entry:
            # The seed only matters when a weight spec draws random weights.
            weight_seed = seed if weights is not None and weights_kind != "values" else None
            source = ("mtx", entry["mtx"], weights, weight_seed, capacities, seed)
            if not isinstance(entry["mtx"], str) or not Path(entry["mtx"]).is_file():
                raise ValueError(f"{path}:{lineno}: no such Matrix-Market file {entry['mtx']!r}")
        else:
            ref = entry["graph"]
            known = any(spec.name == ref or spec.instance_id == ref for spec in SUITE_SPECS)
            if not known:
                raise ValueError(
                    f"{path}:{lineno}: unknown suite instance {ref!r} "
                    f"(see `repro.cli list` for the available names)"
                )
            source = ("suite", ref, profile, seed, weights, capacities)
        entries.append(
            (lineno, entry, source, kwargs, weights, weights_kind, capacities, seed)
        )
    # Phase 2: build graphs and jobs.  Memoization is two-level: the
    # structural graph is generated once per (source, profile, seed) — a
    # manifest sweeping one instance over several weight specs pays for
    # generation once — and each weight spec layers on top of it.
    structural: dict[tuple, object] = {}
    graphs: dict[tuple, object] = {}
    jobs: list[MatchingJob] = []
    for lineno, entry, source, kwargs, weights, weights_kind, capacities, seed in entries:
        try:
            if source not in graphs:
                if source[0] == "mtx":
                    base_key = ("mtx", entry["mtx"], weights_kind == "values")
                    if base_key not in structural:
                        structural[base_key] = read_matrix_market(
                            entry["mtx"], with_weights=weights_kind == "values"
                        )
                else:
                    base_key = ("suite", source[1], source[2], source[3])
                    if base_key not in structural:
                        structural[base_key] = generate_instance(
                            entry["graph"], profile=source[2], seed=source[3]
                        )
                graph = structural[base_key]
                if weights is not None:
                    graph = apply_weight_spec(graph, weights, seed=seed)
                if capacities is not None:
                    graph = apply_capacity_spec(graph, capacities, seed=seed)
                graphs[source] = graph
            jobs.append(
                MatchingJob(
                    graph=graphs[source],
                    algorithm=entry.get("algorithm", "g-pr"),
                    kwargs=kwargs,
                    initial=entry.get("initial"),
                    job_id=str(entry["id"]) if "id" in entry else f"job-{lineno}",
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return jobs


def _result_row(item) -> dict:
    row = {
        "type": "result",
        "id": item.job.job_id,
        "graph": item.job.graph.name,
        "algorithm": item.job.algorithm,
        "status": item.status,
        "cardinality": item.result.cardinality if item.result is not None else None,
        "cached": item.cached,
        "worker": item.worker,
        "seconds": round(item.seconds, 6),
    }
    if item.error is not None:
        row["error"] = str(item.error)
    return row


def _summary_row(report, args: argparse.Namespace, backend: str) -> dict:
    return {
        "type": "summary",
        "jobs": report.n_jobs,
        "executed": report.executed,
        "cache_hits": report.cache_hits,
        "deduplicated": report.deduplicated,
        "failed": report.failed,
        "hit_rate": round(report.hit_rate, 4),
        "backend": backend,
        "workers": args.workers,
        "wall_seconds": round(report.wall_seconds, 6),
    }


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        jobs = _load_manifest(
            args.manifest, args.profile, args.seed, args.weights, args.objective,
            args.shards, args.partition, args.capacities,
        )
    except (TypeError, ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("error: empty manifest", file=sys.stderr)
        return 2
    try:
        cache = None if args.no_cache else DiskCache(args.cache_dir)
    except OSError as exc:
        print(f"error: cannot use cache dir {args.cache_dir!r}: {exc}", file=sys.stderr)
        return 2
    try:
        with MatchingService(workers=args.workers, cache=cache, backend=args.backend) as service:
            try:
                report = service.submit_batch(jobs)
            except (TypeError, ValueError) as exc:
                # The service fails fast on unknown algorithms / keyword
                # arguments before executing anything; surface that as a
                # manifest error.  Runtime failures never raise — they come
                # back per job with status="failed".
                print(f"error: {exc}", file=sys.stderr)
                return 2
            backend = service.engine.backend.name
    except ValueError as exc:  # unknown backend name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [_result_row(item) for item in report.results]
    summary = _summary_row(report, args, backend)
    try:
        if args.format == "json":
            print(json.dumps({"results": rows, "summary": summary}, indent=2))
        else:
            for row in rows:
                print(json.dumps(row))
            print(json.dumps(summary))
    except BrokenPipeError:
        # A truncated consumer (`| head`) must not mask the failure exit code.
        _silence_stdout()
    for item in report.failures():
        print(
            f"job {item.job.job_id or item.job.algorithm!r} {item.status}: {item.error}",
            file=sys.stderr,
        )
    return 1 if report.failed else 0


def _chunked(items: list, size: int):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _cmd_stream(args: argparse.Namespace) -> int:
    scenario = None
    if args.scenario is not None:
        conflicts = [
            flag
            for flag, value in (
                ("--trace", args.trace),
                ("--synthesize", args.synthesize),
                ("--mtx", args.mtx),
                ("--capacities", args.capacities),
            )
            if value is not None
        ]
        if conflicts:
            print(
                "error: --scenario provides the graph, capacities and trace; "
                f"drop {', '.join(conflicts)}",
                file=sys.stderr,
            )
            return 2
        try:
            scenario = generate_scenario(args.scenario, seed=args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        graph = scenario.graph
        updates = list(scenario.updates)
    else:
        if (args.trace is None) == (args.synthesize is None):
            print("error: pass exactly one of --trace or --synthesize", file=sys.stderr)
            return 2
        try:
            if args.mtx:
                graph = read_matrix_market(args.mtx)
            else:
                graph = generate_instance(args.graph, profile=args.profile, seed=args.seed)
            if args.capacities is not None:
                graph = apply_capacity_spec(graph, args.capacities, seed=args.seed)
        except (KeyError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            if args.trace is not None:
                source = sys.stdin if args.trace == "-" else args.trace
                updates = list(read_update_trace(source))
            else:
                updates = random_update_trace(
                    graph,
                    args.synthesize,
                    insert_fraction=args.insert_fraction,
                    seed=args.seed,
                )
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # Pick the repair backend to fit the graph: capacitated and/or weighted
    # graphs need a plan that maintains the matching invariant they define
    # (scenarios name their own solver).
    algorithm = args.algorithm
    if algorithm is None:
        if scenario is not None:
            algorithm = scenario.algorithm
        elif graph.has_capacities and graph.has_weights:
            algorithm = "b-auction"
        elif graph.has_capacities:
            algorithm = "b-aug"
        elif graph.has_weights:
            algorithm = "weighted-sap"
        else:
            algorithm = "hk"
    slo = args.slo if args.slo is not None else (scenario.slo if scenario else None)

    rows: list[dict] = []

    def emit(row: dict) -> None:
        if args.format == "json":
            rows.append(row)
        else:
            print(json.dumps(row))

    try:
        plan = resolve_algorithm(algorithm)
        with Engine(backend=args.backend or "inline", max_workers=args.workers or None) as engine:
            # Delegated batch repairs run as engine jobs, so --backend moves
            # the recompute onto a thread / process / device pool.
            def recompute(snapshot, initial):
                job = MatchingJob(graph=snapshot, algorithm=algorithm)
                return engine.run(job, plan=plan, initial_matching=initial)

            matcher = IncrementalMatcher(
                graph,
                plan=plan,
                batch_threshold=args.threshold,
                recompute=recompute,
            )
            initial_row = {
                "type": "initial",
                "graph": graph.name,
                "n_rows": graph.n_rows,
                "n_cols": graph.n_cols,
                "n_edges": graph.n_edges,
                "algorithm": plan.algorithm,
                "cardinality": matcher.cardinality,
            }
            if scenario is not None:
                initial_row["scenario"] = scenario.name
            if slo is not None:
                initial_row["slo"] = slo
            emit(initial_row)
            for index, batch in enumerate(_chunked(updates, max(1, args.batch_size))):
                before_scanned = matcher.counters["edges_scanned"]
                before_delegate = matcher.counters["delegate_edges_scanned"]
                summary = matcher.apply(batch)
                batch_row = {
                    "type": "batch",
                    "index": index,
                    "applied": summary["applied"],
                    "mode": summary["mode"],
                    "cardinality": summary["cardinality"],
                    "edges_scanned": matcher.counters["edges_scanned"] - before_scanned,
                    "delegate_edges_scanned": matcher.counters["delegate_edges_scanned"]
                    - before_delegate,
                }
                if slo is not None:
                    # Per-window service check: the assignment rate over the
                    # demand still in the (un-compacted) overlay.
                    demand = assignment_demand(matcher.graph.snapshot())
                    rate = round(
                        summary["cardinality"] / demand if demand else 1.0, 4
                    )
                    batch_row["assignment_rate"] = rate
                    batch_row["slo_met"] = rate >= slo
                emit(batch_row)
            final = matcher.graph.snapshot()
            demand = assignment_demand(final)
            rate = round(matcher.cardinality / demand if demand else 1.0, 4)
            # No backend field here: the same replay must serialise
            # byte-identically whichever engine backend ran the recomputes.
            summary_row = {
                "type": "summary",
                "updates": len(updates),
                "cardinality": matcher.cardinality,
                "n_rows": final.n_rows,
                "n_cols": final.n_cols,
                "n_edges": final.n_edges,
                "demand": demand,
                "assignment_rate": rate,
                "searches": matcher.counters["searches"],
                "augmentations": matcher.counters["augmentations"],
                "edges_scanned": matcher.counters["edges_scanned"],
                "recomputes": matcher.counters["recomputes"],
                "delegate_edges_scanned": matcher.counters["delegate_edges_scanned"],
            }
            if slo is not None:
                summary_row["slo"] = slo
                summary_row["slo_met"] = rate >= slo
            emit(summary_row)
    except (TypeError, ValueError, IndexError, TimeoutError, JobError) as exc:
        # JobError covers delegated recomputes failing at runtime on the
        # engine backend (failed / cancelled / timed-out jobs).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.format == "json":
            print(json.dumps({"events": rows}, indent=2))
    except BrokenPipeError:
        _silence_stdout()
    return 0


def _cmd_perf_calibrate(args: argparse.Namespace) -> int:
    from repro.compiled.calibrate import calibrate

    if args.compare or args.update:
        print(
            "error: --calibrate captures cost-model fits, not a perf baseline; "
            "it cannot be combined with --compare or --update",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None:
        print("error: --calibrate does not support --shards", file=sys.stderr)
        return 2
    try:
        doc = calibrate(profile=args.profile, seed=args.seed, repeats=args.repeats)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    if args.format == "json":
        try:
            print(json.dumps(doc, indent=2))
        except BrokenPipeError:
            _silence_stdout()
        return 0
    numba = doc["numba"]
    print(
        f"calibration: tier={doc['tier']} profile={doc['profile']} seed={doc['seed']} "
        f"repeats={doc['repeats']} instances={len(doc['instances'])}"
    )
    print(
        "  numba: "
        + (f"available ({numba['version']})" if numba["available"] else "not installed")
    )
    for name, kernel in doc["kernels"].items():
        if kernel["constant"] is None:
            print(f"  {name:<22} {kernel['family']:<9} no usable points")
            continue
        print(
            f"  {name:<22} {kernel['family']:<9} points={kernel['points']} "
            f"constant={kernel['constant']:10.3e}  r2={kernel['r2']:7.3f}  "
            f"rms log10 residual={kernel['rms_log10_residual']:.3f}"
        )
    if doc["most_divergent"]:
        print("most divergent from the fitted centre: " + ", ".join(doc["most_divergent"]))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.compiled.dispatch import capability_report

    if args.calibrate:
        return _cmd_perf_calibrate(args)
    try:
        baseline = (
            perfbaseline.load_baseline(args.compare) if args.compare else None
        )
        current = perfbaseline.capture(
            profile=args.profile,
            seed=args.seed,
            instances=args.instances or None,
            repeats=args.repeats,
            shards=args.shards,
            partition=args.partition,
        )
    except (KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.output:
        perfbaseline.save_baseline(args.output, current)

    comparison = None
    if baseline is not None:
        try:
            comparison = perfbaseline.compare(
                current,
                baseline,
                wall_tolerance=args.wall_tolerance,
                modeled_tolerance=args.modeled_tolerance,
            )
        except ValueError as exc:  # disjoint documents: nothing was checked
            print(f"error: {exc}", file=sys.stderr)
            return 2
    # A regressed capture must not replace the baseline it just failed
    # against — that would mask the regression for every subsequent run.
    if args.update:
        if comparison is not None and not comparison.ok:
            print(
                f"not updating {args.update}: the capture regresses against "
                f"{args.compare}", file=sys.stderr,
            )
        else:
            perfbaseline.save_baseline(args.update, current)

    if args.format == "json":
        payload = {"capture": current, "backends": capability_report()}
        if comparison is not None:
            payload["comparison"] = {
                "baseline": args.compare,
                "baseline_profile": baseline["profile"],
                "cross_profile": comparison.cross_profile,
                "checked": comparison.checked,
                "wall_tolerance": comparison.wall_tolerance,
                "modeled_tolerance": comparison.modeled_tolerance,
                "ok": comparison.ok,
                "regressions": [vars(d) for d in comparison.regressions],
                "improvements": [vars(d) for d in comparison.improvements],
            }
        try:
            print(json.dumps(payload, indent=2))
        except BrokenPipeError:
            _silence_stdout()
    else:
        print(f"perf capture: profile={current['profile']} seed={current['seed']} "
              f"repeats={current['repeats']}")
        caps = capability_report()
        numba = caps["numba"]
        print(
            "backends: numpy "
            + caps["numpy"]["version"]
            + (
                f", numba {numba['version']} (compiled tier "
                + ("enabled)" if caps["compiled_dispatch_enabled"] else "disabled)")
                if numba["available"]
                else ", numba not installed (numpy tier)"
            )
        )
        for name, agg in current["aggregate"].items():
            print(
                f"  {name:<8} geomean wall {agg['geomean_wall_seconds'] * 1e3:8.3f} ms   "
                f"geomean modeled {agg['geomean_modeled_seconds'] * 1e3:8.3f} ms   "
                f"total wall {agg['total_wall_seconds'] * 1e3:9.3f} ms"
            )
        if comparison is not None:
            kind = "cross-profile (per-edge)" if comparison.cross_profile else "same-profile"
            print(
                f"compared {comparison.checked} (instance, algorithm) pairs against "
                f"{args.compare} [{kind}; wall tol {comparison.wall_tolerance:.2f}x, "
                f"modeled tol {comparison.modeled_tolerance:.2f}x]"
            )
            for delta in comparison.regressions:
                print(f"  REGRESSION {delta.describe()}")
            if comparison.improvements:
                print(
                    f"  note: {len(comparison.improvements)} pair(s) ran far faster than "
                    "the baseline; consider refreshing it with --update"
                )
            if comparison.ok:
                print("  no perf regressions")
    if comparison is not None and not comparison.ok:
        return 1
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("suite instances:")
    for name in instance_names():
        print(f"  {name}")
    print("algorithms:")
    for name in sorted(SPECS):
        print(f"  {name}")
    print("backends:")
    for name in BACKEND_NAMES:
        print(f"  {name}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is stdlib-only and must load (and run) on the
    # minimal install, independently of the solver stack.
    from repro.analysis.linting import lint_paths
    from repro.analysis.rules import RULES

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name}: {rule.summary}")
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    violations = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps([v.__dict__ for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"{len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


def _cmd_table1(args: argparse.Namespace) -> int:
    runner = SuiteRunner(profile=args.profile, seed=args.seed,
                         instances=args.instances or None)
    table = build_table1(runner.run())
    print(render_table(table))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure == 1:
        cells = build_figure1(profile=args.profile, seed=args.seed,
                              instances=args.instances or None)
        for cell in cells:
            print(f"{cell.variant:<12} {cell.strategy:<14} {cell.geomean_seconds * 1e3:8.3f} ms")
        return 0
    runner = SuiteRunner(profile=args.profile, seed=args.seed, instances=args.instances or None)
    results = runner.run()
    if args.figure == 2:
        curves = build_figure2(results)
        for name, points in curves.items():
            series = " ".join(f"({x:.2f},{y:.2f})" for x, y in points)
            print(f"{name}: {series}")
    elif args.figure == 3:
        curves = build_figure3(results)
        for name, points in curves.items():
            series = " ".join(f"({x:.2f},{y:.2f})" for x, y in points)
            print(f"{name}: {series}")
    elif args.figure == 4:
        rows, average = build_figure4(results)
        for instance_id, name, speedup in rows:
            print(f"{instance_id:>3} {name:<22} {speedup:6.2f}")
        print(f"average speedup: {average:.2f}")
    else:
        print(f"unknown figure {args.figure}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import MatchingServer, QuotaPolicy

    schedule = None
    if args.fault_crash_rate or args.fault_stall_rate or args.fault_slow_rate:
        schedule = FaultSchedule(
            seed=args.fault_seed,
            crash_rate=args.fault_crash_rate,
            stall_rate=args.fault_stall_rate,
            slow_rate=args.fault_slow_rate,
        )
    server = MatchingServer(
        backend=args.backend,
        workers=args.workers,
        policy=QuotaPolicy(
            max_inflight_per_tenant=args.max_inflight_per_tenant,
            max_queue_depth=args.max_queue_depth,
        ),
        default_deadline=args.default_deadline,
        default_profile=args.profile,
        default_seed=args.seed,
        max_cache_entries=args.cache_entries,
        fault_schedule=schedule,
    )

    async def serve() -> None:
        await server.start(args.host, args.port)
        # Machine-readable readiness line: the smoke job and scripts parse the
        # bound port from here (required with --port 0).
        print(json.dumps({"type": "ready", "host": server.host, "port": server.port,
                          "backend": server.engine.backend.name,
                          "fault_injection": server.fault_injection}), flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.stop)
        await server.serve_until_stopped(args.ttl)

    try:
        asyncio.run(serve())
    finally:
        server.engine.shutdown()
    print(json.dumps({"type": "stopped",
                      "requests": server.metrics.requests_total}), flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(prog="repro-matching", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one graph")
    run.add_argument("--graph", default="amazon0505", help="suite instance name or id")
    run.add_argument("--mtx", default=None, help="path to a Matrix-Market file (overrides --graph)")
    run.add_argument("--algorithm", default="g-pr", choices=sorted(SPECS))
    run.add_argument("--weights", default=None, metavar="SPEC",
                     help="edge-weight spec: uniform[:LOW:HIGH], geometric[:P], "
                          "rank[:NOISE], or values (use the .mtx value entries)")
    run.add_argument("--objective", default=None, choices=("max", "min"),
                     help="weighted objective (weighted-sap / weighted-auction only)")
    run.add_argument("--capacities", default=None, metavar="SPEC",
                     help="vertex-capacity spec for the capacitated algorithms: "
                          "fixed[:B], uniform[:LOW:HIGH], rows[:B], cols[:B]")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="solve through the sharded subsystem with N column-block "
                          "shards; with --mtx the file streams out-of-core into "
                          "disk-backed shards")
    run.add_argument("--partition", default=None, choices=("contiguous", "degree"),
                     help="shard splitter placement (default: contiguous)")
    run.add_argument("--profile", default="small")
    run.add_argument("--seed", type=int, default=20130421)
    run.set_defaults(func=_cmd_run)

    batch = sub.add_parser("batch", help="execute a JSONL manifest of matching jobs")
    batch.add_argument("--manifest", required=True,
                       help="path to a JSONL job manifest ('-' for stdin)")
    batch.add_argument("--workers", type=int, default=0,
                       help="worker/device-pool size for cache misses (0 = in-process)")
    batch.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                       help="execution backend (default: inline, or process when --workers > 0)")
    batch.add_argument("--format", default="jsonl", choices=("jsonl", "json"),
                       help="jsonl: one JSON object per line; json: one structured document")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable result caching and intra-batch deduplication")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       help="directory of the persistent result cache")
    batch.add_argument("--profile", default="small",
                       help="default size profile for suite-instance jobs")
    batch.add_argument("--weights", default=None, metavar="SPEC",
                       help="default edge-weight spec for jobs without a 'weights' field")
    batch.add_argument("--objective", default=None, choices=("max", "min"),
                       help="default weighted objective for jobs without an 'objective' field")
    batch.add_argument("--capacities", default=None, metavar="SPEC",
                       help="default vertex-capacity spec for jobs without a "
                            "'capacities' field (applies to capacitated algorithms only)")
    batch.add_argument("--shards", type=int, default=None, metavar="N",
                       help="default shard count for jobs without a 'shards' field "
                            "(applies to maximum-cardinality algorithms only)")
    batch.add_argument("--partition", default=None, choices=("contiguous", "degree"),
                       help="default shard splitter for jobs without a 'partition' field")
    batch.add_argument("--seed", type=int, default=20130421)
    batch.set_defaults(func=_cmd_batch)

    stream = sub.add_parser(
        "stream",
        help="replay a JSONL update trace, repairing the matching incrementally",
    )
    stream.add_argument("--graph", default="roadNet-PA", help="suite instance name or id")
    stream.add_argument("--mtx", default=None,
                        help="path to a Matrix-Market file (overrides --graph)")
    stream.add_argument("--trace", default=None,
                        help="path to a JSONL update trace ('-' for stdin)")
    stream.add_argument("--synthesize", type=int, default=None, metavar="N",
                        help="generate a seeded random trace of N updates instead of --trace")
    stream.add_argument("--scenario", default=None, choices=scenario_names(),
                        help="replay a packaged capacitated dispatch scenario "
                             "(graph, churn trace and SLO) instead of --trace/--synthesize")
    stream.add_argument("--capacities", default=None, metavar="SPEC",
                        help="vertex-capacity spec layered onto --graph/--mtx: "
                             "fixed[:B], uniform[:LOW:HIGH], rows[:B], cols[:B]")
    stream.add_argument("--slo", type=float, default=None, metavar="RATE",
                        help="assignment-rate target; batch and summary rows gain "
                             "assignment_rate / slo_met (default: the scenario's SLO)")
    stream.add_argument("--insert-fraction", type=float, default=0.5,
                        help="insert share of a synthesized trace (rest are deletions)")
    stream.add_argument("--algorithm", default=None, choices=sorted(SPECS),
                        help="batch-repair backend for delegated recomputes (default: "
                             "picked to fit the graph - hk, b-aug, b-auction or "
                             "weighted-sap; scenarios name their own)")
    stream.add_argument("--batch-size", type=int, default=32,
                        help="updates applied (and reported) per batch")
    stream.add_argument("--threshold", type=int, default=64,
                        help="batch size at which repair compacts and delegates to --algorithm")
    stream.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                        help="engine backend executing delegated recomputes (default: inline)")
    stream.add_argument("--workers", type=int, default=0,
                        help="worker/device-pool size for the engine backend")
    stream.add_argument("--format", default="jsonl", choices=("jsonl", "json"),
                        help="jsonl: one JSON object per event; json: one structured document")
    stream.add_argument("--profile", default="small")
    stream.add_argument("--seed", type=int, default=20130421)
    stream.set_defaults(func=_cmd_stream)

    perf = sub.add_parser(
        "perf",
        help="measure the CPU baselines and compare against a BENCH_*.json baseline",
    )
    perf.add_argument("--profile", default="small",
                      help="suite size profile to measure")
    perf.add_argument("--seed", type=int, default=20130421)
    perf.add_argument("--instances", nargs="*", default=None,
                      help="restrict to these suite instances")
    perf.add_argument("--repeats", type=int, default=1,
                      help="suite passes; wall times keep the per-entry minimum")
    perf.add_argument("--shards", type=int, default=None, metavar="N",
                      help="measure the baselines through the sharded subsystem "
                           "with N shards instead of single-graph solves")
    perf.add_argument("--partition", default=None, choices=("contiguous", "degree"),
                      help="shard splitter for --shards (default: contiguous)")
    perf.add_argument("--compare", default=None, metavar="PATH",
                      help="compare against this baseline; exit 1 on regressions")
    perf.add_argument("--update", default=None, metavar="PATH",
                      help="write the fresh capture as the new baseline file")
    perf.add_argument("--output", default=None, metavar="PATH",
                      help="also write the fresh capture to this report file")
    perf.add_argument("--wall-tolerance", type=float, default=None,
                      help=f"wall-clock regression ratio (default "
                           f"{perfbaseline.DEFAULT_WALL_TOLERANCE}, scaled "
                           f"{perfbaseline.CROSS_PROFILE_SLACK}x across profiles)")
    perf.add_argument("--modeled-tolerance", type=float, default=None,
                      help=f"modeled-seconds regression ratio (default "
                           f"{perfbaseline.DEFAULT_MODELED_TOLERANCE}, scaled "
                           f"{perfbaseline.CROSS_PROFILE_SLACK}x across profiles)")
    perf.add_argument("--calibrate", action="store_true",
                      help="fit measured per-kernel wall time against the cost-model "
                           "predictions and report the most divergent kernels "
                           "(incompatible with --compare / --update / --shards); "
                           "--output writes the repro-calibration/1 document")
    perf.add_argument("--format", default="table", choices=("table", "json"))
    perf.set_defaults(func=_cmd_perf)

    serve = sub.add_parser(
        "serve",
        help="run the async matching server (HTTP/JSON, admission control, /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 = ephemeral; the bound port is printed "
                            "in the JSON 'ready' line)")
    serve.add_argument("--backend", default="thread", choices=BACKEND_NAMES,
                       help="execution backend for matching jobs")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker pool size (0 = backend default)")
    serve.add_argument("--max-inflight-per-tenant", type=int, default=8,
                       help="per-tenant admission quota")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="server-wide in-flight bound (also the engine's "
                            "max_inflight backpressure limit)")
    serve.add_argument("--default-deadline", type=float, default=None,
                       help="deadline in seconds for requests without one")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       help="warm result-cache capacity")
    serve.add_argument("--profile", default="small",
                       help="default scale profile for suite-instance requests")
    serve.add_argument("--seed", type=int, default=20130421,
                       help="default generator seed for suite-instance requests")
    serve.add_argument("--fault-crash-rate", type=float, default=0.0,
                       help="fault injection: fraction of jobs crashed (testing)")
    serve.add_argument("--fault-stall-rate", type=float, default=0.0,
                       help="fault injection: fraction of jobs stalled past deadline")
    serve.add_argument("--fault-slow-rate", type=float, default=0.0,
                       help="fault injection: fraction of jobs delayed at start")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the deterministic fault schedule")
    serve.add_argument("--ttl", type=float, default=None,
                       help="auto-stop after this many seconds (smoke tests)")
    serve.set_defaults(func=_cmd_serve)

    lst = sub.add_parser("list", help="list suite instances and algorithms")
    lst.set_defaults(func=_cmd_list)

    lint = sub.add_parser("lint", help="run the repo-native invariant linter")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", default="text", choices=("text", "json"),
                      help="report format")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(func=_cmd_lint)

    table = sub.add_parser("table1", help="regenerate Table I")
    table.add_argument("--profile", default="small")
    table.add_argument("--seed", type=int, default=20130421)
    table.add_argument("--instances", nargs="*", default=None)
    table.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="regenerate Figures 1-4")
    figures.add_argument("--figure", type=int, required=True, choices=(1, 2, 3, 4))
    figures.add_argument("--profile", default="small")
    figures.add_argument("--seed", type=int, default=20130421)
    figures.add_argument("--instances", nargs="*", default=None)
    figures.set_defaults(func=_cmd_figures)
    return parser


def _silence_stdout() -> None:
    """Redirect stdout to devnull so interpreter shutdown stays quiet after EPIPE."""
    import os

    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe mid-report.
        _silence_stdout()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
