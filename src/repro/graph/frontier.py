"""Shared frontier operations for the CPU baselines: vectorized where
frontiers are wide, scalar-on-lists where they are not.

The sequential and multicore baselines (HK/HKDW, PR, PFP, P-DBFS, the cheap
greedy initialisation and the dynamic incremental matcher) all walk the same
dual-CSR structure.  Before this module existed every one of them popped one
vertex at a time from a ``deque`` and crossed the NumPy scalar-boxing
boundary once per *edge* (``int(col_ind[idx])``, ``row_match[u]``, a dict
counter increment) — a ~170 ns/edge interpreter tax on the exact loops the
paper times.

Two granularities replace that, chosen by how wide the frontier actually is
(whole-array NumPy only wins past ~64 elements; see ``docs/benchmarks.md``
for the measurement):

* **Whole-frontier array ops** for the level-synchronous traversals, whose
  frontiers hold hundreds of vertices: :func:`expand_frontier` gathers every
  out-edge of a frontier in one shot (``np.repeat`` on the CSR pointer
  diffs), :func:`first_occurrence_mask` deduplicates while preserving scan
  order, and on top of them :func:`multi_source_bfs` (plain BFS),
  :func:`alternating_level_bfs` (the Hopcroft–Karp level structure) and
  :func:`distance_label_bfs` (push-relabel global relabeling, Algorithm 2)
  assign levels and count scanned edges in bulk.
* **Scalar walks over plain Python lists** for the traversals whose working
  set is one adjacency slice at a time (DFS descents, the per-push minimum
  scan, P-DBFS claim searches): :func:`claiming_bfs` and the algorithm-side
  loops index :meth:`~repro.graph.bipartite.BipartiteGraph.csr_lists`
  instead of ndarrays, which removes the per-element boxing (~4× on the
  same loop body).

:func:`reference_bfs` is the deque twin of :func:`multi_source_bfs`, kept
(not deprecated) as the executable specification the property tests compare
against.  :func:`first_true` / :func:`first_free_offset` are the vectorized
"first unmatched / first admissible neighbour" selectors for the callers
that do hold an ndarray burst.

Every function is bit-compatible with the historical per-edge loops: same
levels, same parents, same matchings, same counter end-values
(``tests/test_frontier.py`` pins all of it, golden values included).

Counter convention
------------------
Work (``edges_scanned`` and friends) is accumulated in bulk — per frontier
(``+= len(frontier_edges)``) or per finished search — never by bumping a
Python dict entry inside a per-edge loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.compiled import dispatch as _compiled

__all__ = [
    "BFSResult",
    "alternating_level_bfs",
    "claiming_bfs",
    "distance_label_bfs",
    "expand_frontier",
    "first_free_offset",
    "first_occurrence_mask",
    "first_true",
    "multi_source_bfs",
    "reference_bfs",
]

#: Mirrors :data:`repro.matching.UNMATCHED` (kept local: ``repro.matching``
#: imports the graph layer, not the other way around).
_UNMATCHED = -1

_INF = np.iinfo(np.int64).max

_EMPTY = np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------- primitives
def expand_frontier(ptr: np.ndarray, ind: np.ndarray, frontier: np.ndarray):
    """All out-edges of ``frontier``, flattened in scan order.

    Parameters
    ----------
    ptr, ind:
        A CSR structure (``col_ptr``/``col_ind`` or ``row_ptr``/``row_ind``).
    frontier:
        Vertex indices to expand, in processing order.

    Returns
    -------
    (targets, origins):
        Parallel ``int64`` arrays with one entry per scanned edge:
        ``targets[k]`` is the ``k``-th neighbour a deque BFS would scan and
        ``origins[k]`` the frontier vertex it was scanned from.  The order is
        frontier-major, adjacency-minor — exactly the order a FIFO traversal
        visits edges, which the dedup helpers below rely on.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if len(frontier) == 0:
        return _EMPTY, _EMPTY
    fn = _compiled.implementation_for("expand_frontier")
    if fn is not None and not _compiled.recording(ptr, ind, frontier):
        return fn(ptr, ind, frontier)
    starts = ptr[frontier]
    degrees = ptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1] - starts, degrees)
    return ind[flat], np.repeat(frontier, degrees)


def first_occurrence_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the *first* occurrence of each value, in order.

    ``values[first_occurrence_mask(values)]`` deduplicates while preserving
    scan order — the vectorized equivalent of a ``seen``-set guard inside a
    per-edge loop.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=bool)
    fn = _compiled.implementation_for("first_occurrence_mask")
    if (
        fn is not None
        and isinstance(values, np.ndarray)
        and values.dtype == np.int64
        and not _compiled.recording(values)
    ):
        return fn(values)
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    lead = np.empty(n, dtype=bool)
    lead[0] = True
    np.not_equal(ranked[1:], ranked[:-1], out=lead[1:])
    mask = np.zeros(n, dtype=bool)
    mask[order[lead]] = True
    return mask


def first_true(mask: np.ndarray) -> int:
    """Offset of the first ``True`` in a boolean array, or ``-1``."""
    if not mask.size:
        return -1
    k = int(np.argmax(mask))
    return k if mask[k] else -1


def first_free_offset(targets: np.ndarray, partner_match: np.ndarray) -> int:
    """Offset of the first unmatched vertex in ``targets``, or ``-1``.

    The vectorized "first unmatched neighbour" selection over an adjacency
    burst — one ``argmax`` instead of a per-edge loop.
    """
    if not targets.size:
        return -1
    return first_true(partner_match[targets] == _UNMATCHED)


# ----------------------------------------------------------- plain multi-BFS
@dataclass(frozen=True)
class BFSResult:
    """Levels and parents of a (multi-source) bipartite BFS.

    ``row_parent[u]`` is the column that first discovered row ``u`` (``-1``
    when undiscovered or a source); ``col_parent`` mirrors it.  Levels count
    hops from the nearest source (``row_level``/``col_level``; unreached
    vertices keep ``numpy.iinfo(int64).max``).  ``edges_scanned`` is the
    total adjacency entries a deque BFS would have touched.
    """

    row_level: np.ndarray
    col_level: np.ndarray
    row_parent: np.ndarray
    col_parent: np.ndarray
    edges_scanned: int


def _bfs_state(graph):
    row_level = np.full(graph.n_rows, _INF, dtype=np.int64)
    col_level = np.full(graph.n_cols, _INF, dtype=np.int64)
    row_parent = np.full(graph.n_rows, -1, dtype=np.int64)
    col_parent = np.full(graph.n_cols, -1, dtype=np.int64)
    return row_level, col_level, row_parent, col_parent


def _check_sources(sources: np.ndarray, bound: int, side: str) -> np.ndarray:
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= bound):
        raise IndexError(f"BFS {side} sources out of range [0, {bound})")
    return sources


def multi_source_bfs(graph, sources, side: str = "col") -> BFSResult:
    """Level-synchronous multi-source BFS over the bipartite graph.

    Starts from ``sources`` on ``side`` (``"col"`` or ``"row"``) and explores
    structural adjacency in both directions, one whole frontier per step: the
    frontier's out-edges are gathered with :func:`expand_frontier`, already
    visited targets are masked out, and :func:`first_occurrence_mask` picks
    each new vertex's parent — the same parent a FIFO/deque BFS assigns,
    which :func:`reference_bfs` (the kept executable specification) asserts.

    An empty ``sources`` array is valid and returns an all-unreached result.
    """
    if side not in ("col", "row"):
        raise ValueError(f"side must be 'col' or 'row', not {side!r}")
    bound = graph.n_cols if side == "col" else graph.n_rows
    frontier = _check_sources(sources, bound, side)
    fn = _compiled.implementation_for("multi_source_bfs")
    if fn is not None and not _compiled.recording(
        graph.col_ptr, graph.col_ind, graph.row_ptr, graph.row_ind, frontier
    ):
        # The twin dedups the sources internally (level-0 check) and uses
        # the same first-encounter parent rule as the vectorized path.
        if side == "col":
            col_level, row_level, col_parent, row_parent, edges = fn(
                graph.col_ptr, graph.col_ind, graph.row_ptr, graph.row_ind,
                frontier, graph.n_cols, graph.n_rows,
            )
        else:
            row_level, col_level, row_parent, col_parent, edges = fn(
                graph.row_ptr, graph.row_ind, graph.col_ptr, graph.col_ind,
                frontier, graph.n_rows, graph.n_cols,
            )
        return BFSResult(row_level, col_level, row_parent, col_parent, int(edges))
    row_level, col_level, row_parent, col_parent = _bfs_state(graph)
    structures = {
        "col": (graph.col_ptr, graph.col_ind, col_level, row_level, row_parent),
        "row": (graph.row_ptr, graph.row_ind, row_level, col_level, col_parent),
    }
    # Dedupe the sources in scan order — the deque reference enqueues only
    # the first occurrence (its level check guards re-enqueueing), so a
    # duplicated source must not be expanded twice here either.
    frontier = frontier[first_occurrence_mask(frontier)]
    structures[side][2][frontier] = 0
    edges = 0
    depth = 0
    while len(frontier):
        ptr, ind, _, target_level, target_parent = structures[side]
        targets, origins = expand_frontier(ptr, ind, frontier)
        edges += len(targets)
        new = target_level[targets] == _INF
        keep = new & first_occurrence_mask(targets)
        fresh = targets[keep]
        target_level[fresh] = depth + 1
        target_parent[fresh] = origins[keep]
        frontier = fresh
        side = "row" if side == "col" else "col"
        depth += 1
    return BFSResult(row_level, col_level, row_parent, col_parent, int(edges))


def reference_bfs(graph, sources, side: str = "col") -> BFSResult:
    """Deque reference for :func:`multi_source_bfs` (kept as the executable
    specification; the property suite compares the two bit-for-bit)."""
    if side not in ("col", "row"):
        raise ValueError(f"side must be 'col' or 'row', not {side!r}")
    row_level, col_level, row_parent, col_parent = _bfs_state(graph)
    level = {"col": col_level, "row": row_level}
    parent = {"col": col_parent, "row": row_parent}
    bound = graph.n_cols if side == "col" else graph.n_rows
    sources = _check_sources(sources, bound, side)
    queue: deque[tuple[str, int]] = deque()
    for v in sources:
        if level[side][v] == _INF:
            level[side][v] = 0
            queue.append((side, int(v)))
    edges = 0
    while queue:
        at, v = queue.popleft()
        neighbors = graph.column_neighbors(v) if at == "col" else graph.row_neighbors(v)
        other = "row" if at == "col" else "col"
        for u in neighbors:
            edges += 1
            u = int(u)
            if level[other][u] == _INF:
                level[other][u] = level[at][v] + 1
                parent[other][u] = v
                queue.append((other, u))
    return BFSResult(row_level, col_level, row_parent, col_parent, edges)


# ----------------------------------------------------- matching-aware BFS'es
#: Below this frontier width the level-synchronous BFS variants expand the
#: level with a scalar walk instead of whole-array gathers — array ops only
#: amortise their per-call overhead past a few dozen elements (see the
#: measurement in docs/benchmarks.md).  Results are identical either way.
SCALAR_FRONTIER_MAX = 32


def alternating_level_bfs(
    col_ptr: np.ndarray,
    col_ind: np.ndarray,
    row_match: np.ndarray,
    col_match: np.ndarray,
    scalars: tuple[list[int], list[int], list[int]] | None = None,
) -> tuple[np.ndarray, int, int]:
    """Hopcroft–Karp level structure from all unmatched columns, vectorized.

    One BFS step is the *alternating-level expansion*: a whole column
    frontier crosses its adjacency to the row side, and matched rows contract
    to their partner columns (level ``d + 1``).  Reaching any unmatched row
    fixes the shortest augmenting length; the level being completed still
    labels its discoveries (a deque BFS also finishes the level — enqueued
    columns at the cut-off level are skipped unscanned).

    When ``scalars`` supplies ``(col_ptr, col_ind, row_match)`` as plain
    lists, levels narrower than :data:`SCALAR_FRONTIER_MAX` are expanded
    with a scalar walk over them instead — BFS frontiers shrink toward the
    tail of a phase, and below that width the array gathers cost more than
    they save.  Levels, shortest length and edge totals are identical on
    both paths.

    Returns ``(col_level, shortest, edges_scanned)`` with ``shortest`` in
    column levels (``numpy.iinfo(int64).max`` when no augmenting path
    exists) — exactly the values the historical per-edge loop produced.
    """
    fn = _compiled.implementation_for("alternating_level_bfs")
    if fn is not None and not _compiled.recording(col_ptr, col_ind, row_match, col_match):
        # The twin is scalar end to end, so the ``scalars`` views (the
        # narrow-frontier fallback of the NumPy path) are not needed.
        level, shortest, edges = fn(col_ptr, col_ind, row_match, col_match)
        return level, int(shortest), int(edges)
    n_cols = len(col_ptr) - 1
    level = np.full(n_cols, _INF, dtype=np.int64)
    frontier = np.flatnonzero(col_match == _UNMATCHED)
    level[frontier] = 0
    shortest = _INF
    edges = 0
    depth = 0
    while len(frontier):
        if scalars is not None and len(frontier) <= SCALAR_FRONTIER_MAX:
            lptr, lind, lmatch = scalars
            hit = False
            nxt: list[int] = []
            # hot-path compiled=alternating_level_bfs
            for v in frontier.tolist():
                begin, stop = lptr[v], lptr[v + 1]
                edges += stop - begin
                for idx in range(begin, stop):
                    w = lmatch[lind[idx]]
                    if w < 0:
                        hit = True
                    elif level[w] == _INF:
                        level[w] = depth + 1
                        nxt.append(w)
            # end hot-path
            if hit:
                shortest = depth + 1
            next_cols = np.array(nxt, dtype=np.int64)
        else:
            rows, _ = expand_frontier(col_ptr, col_ind, frontier)
            edges += len(rows)
            mates = row_match[rows]
            if np.any(mates == _UNMATCHED):
                shortest = depth + 1
            next_cols = mates[mates >= 0]
            next_cols = next_cols[level[next_cols] == _INF]
            next_cols = np.unique(next_cols)
            level[next_cols] = depth + 1
        depth += 1
        if depth >= shortest:
            break
        frontier = next_cols
    return level, int(shortest), int(edges)


def distance_label_bfs(
    row_ptr: np.ndarray,
    row_ind: np.ndarray,
    row_match: np.ndarray,
    col_match: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    infinity: int,
) -> tuple[int, int]:
    """Global relabeling (Algorithm 2) as a vectorized level-synchronous BFS.

    Resets ``psi_row``/``psi_col`` in place to the exact alternating-path
    distances from the unmatched rows: a whole row frontier crosses its
    adjacency (columns get ``level + 1``), and consistently matched columns
    contract to their partner rows (``level + 2``).

    Returns ``(max_level, edges_scanned)`` — the paper's ``maxLevel`` and
    the adjacency entries a deque BFS would have scanned.
    """
    fn = _compiled.implementation_for("distance_label_bfs")
    if fn is not None and not _compiled.recording(
        row_ptr, row_ind, row_match, col_match, psi_row, psi_col
    ):
        max_level, edges = fn(row_ptr, row_ind, row_match, col_match, psi_row, psi_col, infinity)
        return int(max_level), int(edges)
    psi_row.fill(infinity)
    psi_col.fill(infinity)
    frontier = np.flatnonzero(row_match == _UNMATCHED)
    psi_row[frontier] = 0
    max_level = 0
    edges = 0
    level = 0
    while len(frontier):
        cols, _ = expand_frontier(row_ptr, row_ind, frontier)
        edges += len(cols)
        fresh = cols[psi_col[cols] == infinity]
        if len(fresh) == 0:
            break
        fresh = np.unique(fresh)
        psi_col[fresh] = level + 1
        mates = col_match[fresh]
        mates = mates[mates >= 0]
        mates = mates[psi_row[mates] == infinity]
        if len(mates) == 0:
            break
        psi_row[mates] = level + 2
        max_level = level + 2
        frontier = mates
        level += 2
    return int(max_level), int(edges)


def claiming_bfs(
    col_ptr: list[int],
    col_ind: list[int],
    start: int,
    row_match: list[int],
    owner: list[int],
    thread_id: int,
) -> tuple[list[int] | None, float, int]:
    """P-DBFS vertex-disjoint search from unmatched column ``start``.

    The scalar member of the frontier layer: a P-DBFS thread search is
    *single*-source and usually terminates within a few claims, so its
    frontiers stay far below the ~64-element break-even of whole-array
    gathers — this walk therefore runs over the cached
    :meth:`~repro.graph.bipartite.BipartiteGraph.csr_lists` views (plain
    list indexing, no per-element ndarray boxing) and keeps the claim
    bookkeeping of Azad et al. exactly: rows owned by another thread are
    skipped, the first claimable occurrence of a row costs one atomic
    (claims persist in ``owner`` and block the other simulated threads),
    and the search stops at the first claimed row that is unmatched — rows
    after that edge in scan order stay unclaimed.

    All parameters are Python lists (``owner`` is mutated in place).
    Returns ``(path, work, atomics)`` with ``path`` alternating
    ``[col, row, ..., row]`` or ``None``, and ``work`` the scanned adjacency
    entries plus the constant the reference implementation charged.
    """
    parent_col: dict[int, int] = {start: -1}
    parent_row: dict[int, int] = {}
    queue: deque[int] = deque([start])
    work = 0
    atomics = 0
    # hot-path
    while queue:
        v = queue.popleft()
        begin, stop = col_ptr[v], col_ptr[v + 1]
        work += stop - begin
        for idx in range(begin, stop):
            u = col_ind[idx]
            own = owner[u]
            if own != -1 and own != thread_id:
                continue  # claimed by another thread's BFS
            if u in parent_row:
                continue
            atomics += 1  # compare-and-swap claiming the row
            owner[u] = thread_id
            parent_row[u] = v
            w = row_match[u]
            if w == _UNMATCHED:
                # Early exit mid-scan: edges after this one stay unscanned
                # and rows after it unclaimed.
                work -= stop - idx - 1
                path = [u]
                col = v
                while col != -1:
                    path.append(col)
                    row = parent_col[col]
                    if row == -1:
                        break
                    path.append(row)
                    col = parent_row[row]
                path.reverse()
                return path, 1.0 + work, atomics
            if w not in parent_col:
                parent_col[w] = u
                queue.append(w)
    # end hot-path
    return None, 1.0 + work, atomics
