"""Structural validation of bipartite graphs.

The builders in :mod:`repro.graph.builders` always produce valid graphs; this
module exists for graphs deserialised from disk or constructed manually, and
as the error-reporting backend of the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["GraphValidationError", "validate_graph"]


class GraphValidationError(ValueError):
    """Raised when a graph violates a structural invariant."""


def validate_graph(graph: BipartiteGraph) -> None:
    """Check all CSR invariants of ``graph``.

    Raises
    ------
    GraphValidationError
        With a message naming the first violated invariant.  The checks are:
        monotone pointer arrays, in-range indices, sorted and duplicate-free
        adjacency lists, and agreement between the column-major and row-major
        structures (same edge set).
    """
    _check_csr(graph.col_ptr, graph.col_ind, graph.n_cols, graph.n_rows, side="column")
    _check_csr(graph.row_ptr, graph.row_ind, graph.n_rows, graph.n_cols, side="row")

    # The two CSR structures must describe the same edge set.
    col_edges = graph.edges()
    rows = np.repeat(np.arange(graph.n_rows, dtype=np.int64), graph.row_degrees)
    row_edges = np.column_stack([rows, graph.row_ind])
    col_sorted = col_edges[np.lexsort((col_edges[:, 1], col_edges[:, 0]))]
    row_sorted = row_edges[np.lexsort((row_edges[:, 1], row_edges[:, 0]))]
    if not np.array_equal(col_sorted, row_sorted):
        raise GraphValidationError(
            "column-major and row-major CSR structures describe different edge sets"
        )


def _check_csr(ptr: np.ndarray, ind: np.ndarray, n_outer: int, n_inner: int, side: str) -> None:
    if np.any(np.diff(ptr) < 0):
        raise GraphValidationError(f"{side} pointer array is not monotone non-decreasing")
    if len(ind) and (ind.min() < 0 or ind.max() >= n_inner):
        raise GraphValidationError(
            f"{side} adjacency contains an index outside [0, {n_inner})"
        )
    for outer in range(n_outer):
        seg = ind[ptr[outer] : ptr[outer + 1]]
        if len(seg) > 1:
            diffs = np.diff(seg)
            if np.any(diffs < 0):
                raise GraphValidationError(f"{side} adjacency list of vertex {outer} is not sorted")
            if np.any(diffs == 0):
                raise GraphValidationError(
                    f"{side} adjacency list of vertex {outer} contains duplicate edges"
                )
