"""Bipartite graph substrate.

The matching algorithms in :mod:`repro` operate on a compressed sparse row
(CSR) representation of a bipartite graph, mirroring the data layout used by
the original CUDA implementation (the paper uses the matrix view of a
bipartite graph: rows ``VR`` and columns ``VC``).

Public classes / functions
--------------------------
:class:`BipartiteGraph`
    Immutable CSR bipartite graph with both column->row and row->column
    adjacency.
:func:`from_edges`, :func:`from_scipy_sparse`, :func:`from_networkx`,
:func:`from_dense`
    Builders.
:func:`read_matrix_market`, :func:`write_matrix_market`
    Matrix-Market I/O (the format of the UFL / SuiteSparse collection used in
    the paper's evaluation).
:class:`MatrixMarketStream`, :class:`MatrixMarketStreamWriter`,
:func:`chunked_content_hash`
    Streaming Matrix-Market I/O and incremental content hashing — the
    bounded-memory substrate of the out-of-core ingest
    (:mod:`repro.sharded`).
:func:`degree_statistics`, :func:`structure_summary`
    Descriptive statistics used by the benchmark reports.
:func:`validate_graph`
    Structural validation with informative errors.
:mod:`repro.graph.frontier`
    Vectorized whole-frontier CSR operations (multi-source BFS, alternating
    level/label BFS variants, first-admissible-neighbour selection) — the
    shared hot path of every CPU baseline.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.frontier import (
    BFSResult,
    alternating_level_bfs,
    claiming_bfs,
    distance_label_bfs,
    expand_frontier,
    first_free_offset,
    first_occurrence_mask,
    first_true,
    multi_source_bfs,
    reference_bfs,
)
from repro.graph.builders import (
    from_biadjacency,
    from_dense,
    from_edges,
    from_networkx,
    from_scipy_sparse,
)
from repro.graph.io import (
    ChunkedContentHasher,
    MatrixMarketHeader,
    MatrixMarketStream,
    MatrixMarketStreamWriter,
    chunked_content_hash,
    read_matrix_market,
    read_matrix_market_header,
    write_matrix_market,
)
from repro.graph.stats import GraphSummary, degree_statistics, structure_summary
from repro.graph.validate import GraphValidationError, validate_graph

__all__ = [
    "BipartiteGraph",
    "BFSResult",
    "alternating_level_bfs",
    "claiming_bfs",
    "distance_label_bfs",
    "expand_frontier",
    "first_free_offset",
    "first_occurrence_mask",
    "first_true",
    "multi_source_bfs",
    "reference_bfs",
    "from_edges",
    "from_dense",
    "from_scipy_sparse",
    "from_networkx",
    "from_biadjacency",
    "read_matrix_market",
    "read_matrix_market_header",
    "write_matrix_market",
    "MatrixMarketHeader",
    "MatrixMarketStream",
    "MatrixMarketStreamWriter",
    "ChunkedContentHasher",
    "chunked_content_hash",
    "degree_statistics",
    "structure_summary",
    "GraphSummary",
    "validate_graph",
    "GraphValidationError",
]
