"""Builders that construct :class:`~repro.graph.bipartite.BipartiteGraph` objects.

All builders deduplicate parallel edges, drop self-inconsistencies and sort
adjacency lists, so the resulting CSR structure is canonical: two graphs with
the same edge set produce bit-identical arrays.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "from_edges",
    "from_dense",
    "from_scipy_sparse",
    "from_networkx",
    "from_biadjacency",
    "empty_graph",
]


def _csr_from_pairs(
    rows: np.ndarray,
    cols: np.ndarray,
    n_rows: int,
    n_cols: int,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Build (col_ptr, col_ind, row_ptr, row_ind, weights) from deduplicated pairs.

    ``weights`` (one entry per input pair) comes back deduplicated in
    column-CSR order; parallel edges keep the maximum weight.
    """
    if len(rows) == 0:
        col_ptr = np.zeros(n_cols + 1, dtype=np.int64)
        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        out_weights = np.empty(0, dtype=np.float64) if weights is not None else None
        return col_ptr, empty, row_ptr, empty.copy(), out_weights

    # Deduplicate: sort by (col, row) lexicographically and drop repeats.
    order = np.lexsort((rows, cols))
    rows = rows[order]
    cols = cols[order]
    keep = np.empty(len(rows), dtype=bool)
    keep[0] = True
    keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    out_weights = None
    if weights is not None:
        # Reduce each run of duplicates to its maximum weight.
        out_weights = np.maximum.reduceat(
            np.asarray(weights, dtype=np.float64)[order], np.flatnonzero(keep)
        )
    rows = rows[keep]
    cols = cols[keep]

    col_counts = np.bincount(cols, minlength=n_cols)
    col_ptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(col_counts, out=col_ptr[1:])
    col_ind = rows.copy()  # already grouped by column, rows sorted within each column

    # Transposed CSR (rows -> columns): resort by (row, col).
    order_t = np.lexsort((cols, rows))
    rows_t = rows[order_t]
    cols_t = cols[order_t]
    row_counts = np.bincount(rows_t, minlength=n_rows)
    row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_ptr[1:])
    row_ind = cols_t

    return col_ptr, col_ind, row_ptr, row_ind, out_weights


def from_edges(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    n_rows: int | None = None,
    n_cols: int | None = None,
    name: str = "bipartite",
    weights: Iterable[float] | np.ndarray | None = None,
) -> BipartiteGraph:
    """Build a graph from an iterable of ``(row, col)`` pairs.

    Parameters
    ----------
    edges:
        Iterable of ``(row, col)`` index pairs, or an ``(k, 2)`` integer array.
    n_rows, n_cols:
        Vertex counts; inferred as ``max index + 1`` when omitted.
    name:
        Stored on the resulting graph; used in benchmark reports.
    weights:
        Optional edge weights, one per input pair.  Parallel edges are
        deduplicated keeping the *maximum* weight (for matching, only the
        best parallel edge can ever be used).

    Returns
    -------
    BipartiteGraph

    Raises
    ------
    ValueError
        If an edge references a vertex outside ``[0, n_rows) x [0, n_cols)``,
        indices are negative, or ``weights`` does not have one entry per pair.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be an iterable of (row, col) pairs, got shape {arr.shape}")
    if weights is not None:
        weights = np.asarray(
            list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64
        )
        if weights.shape != (len(arr),):
            raise ValueError(
                f"weights must have one entry per edge pair ({len(arr)}), "
                f"got shape {weights.shape}"
            )
    rows = arr[:, 0]
    cols = arr[:, 1]
    if len(rows) and (rows.min() < 0 or cols.min() < 0):
        raise ValueError("edge indices must be non-negative")
    inferred_rows = int(rows.max()) + 1 if len(rows) else 0
    inferred_cols = int(cols.max()) + 1 if len(cols) else 0
    n_rows = inferred_rows if n_rows is None else int(n_rows)
    n_cols = inferred_cols if n_cols is None else int(n_cols)
    if inferred_rows > n_rows or inferred_cols > n_cols:
        raise ValueError(
            f"edge indices exceed declared shape ({n_rows}, {n_cols}): "
            f"max row {inferred_rows - 1}, max col {inferred_cols - 1}"
        )
    col_ptr, col_ind, row_ptr, row_ind, col_weights = _csr_from_pairs(
        rows, cols, n_rows, n_cols, weights
    )
    return BipartiteGraph(
        n_rows=n_rows,
        n_cols=n_cols,
        col_ptr=col_ptr,
        col_ind=col_ind,
        row_ptr=row_ptr,
        row_ind=row_ind,
        name=name,
        weights=col_weights,
    )


def from_dense(matrix: Sequence[Sequence[float]] | np.ndarray, name: str = "dense") -> BipartiteGraph:
    """Build a graph from a dense biadjacency matrix (non-zero entries become edges)."""
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"biadjacency matrix must be 2-D, got {mat.ndim}-D")
    rows, cols = np.nonzero(mat)
    return from_edges(
        np.column_stack([rows, cols]), n_rows=mat.shape[0], n_cols=mat.shape[1], name=name
    )


def from_biadjacency(matrix, name: str = "biadjacency") -> BipartiteGraph:
    """Build a graph from any dense or scipy-sparse biadjacency matrix."""
    from scipy import sparse

    if sparse.issparse(matrix):
        return from_scipy_sparse(matrix, name=name)
    return from_dense(matrix, name=name)


def from_scipy_sparse(matrix, name: str = "scipy") -> BipartiteGraph:
    """Build a graph from a ``scipy.sparse`` biadjacency matrix.

    The sparsity pattern defines the edges; explicit zeros are dropped.
    """
    from scipy import sparse

    if not sparse.issparse(matrix):
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix).__name__}")
    coo = matrix.tocoo()
    mask = coo.data != 0
    edges = np.column_stack([coo.row[mask], coo.col[mask]])
    return from_edges(edges, n_rows=coo.shape[0], n_cols=coo.shape[1], name=name)


def from_networkx(graph, row_nodes=None, name: str = "networkx") -> BipartiteGraph:
    """Build a graph from a bipartite :class:`networkx.Graph`.

    Parameters
    ----------
    graph:
        An undirected networkx graph whose vertex set splits into two sides.
    row_nodes:
        The nodes forming the row side.  When omitted, nodes carrying
        ``bipartite=0`` are used (the networkx convention).
    """
    import networkx as nx

    if row_nodes is None:
        row_nodes = [node for node, data in graph.nodes(data=True) if data.get("bipartite") == 0]
        if not row_nodes and graph.number_of_nodes():
            raise ValueError(
                "row_nodes not given and no nodes carry the 'bipartite=0' attribute"
            )
    row_nodes = list(row_nodes)
    row_set = set(row_nodes)
    col_nodes = [node for node in graph.nodes if node not in row_set]
    if not nx.is_bipartite(graph):
        raise ValueError("graph is not bipartite")
    row_index = {node: i for i, node in enumerate(row_nodes)}
    col_index = {node: i for i, node in enumerate(col_nodes)}
    edges = []
    for a, b in graph.edges():
        if a in row_index and b in col_index:
            edges.append((row_index[a], col_index[b]))
        elif b in row_index and a in col_index:
            edges.append((row_index[b], col_index[a]))
        else:
            raise ValueError(f"edge ({a!r}, {b!r}) does not cross the declared bipartition")
    return from_edges(edges, n_rows=len(row_nodes), n_cols=len(col_nodes), name=name)


def empty_graph(n_rows: int, n_cols: int, name: str = "empty") -> BipartiteGraph:
    """A graph with the given shape and no edges."""
    return from_edges(np.empty((0, 2), dtype=np.int64), n_rows=n_rows, n_cols=n_cols, name=name)
