"""Matrix-Market I/O: in-memory readers plus the streaming/out-of-core layer.

The paper's evaluation uses 28 matrices from the University of Florida (UFL,
now SuiteSparse) sparse matrix collection, which ships Matrix-Market files.
This module reads/writes the ``coordinate`` Matrix-Market format directly
(pattern, real, integer and complex fields; general and symmetric
symmetries), so a user who *does* have the original instances can feed them
to the library unchanged.

Two access styles share one parser:

* :func:`read_matrix_market` materializes a full :class:`BipartiteGraph` —
  the right call for anything that fits in memory.
* :class:`MatrixMarketStream` yields ``(rows, cols, values)`` entry chunks
  (symmetry already expanded, indices 0-based) without ever holding the full
  edge list, which is what the sharded ingest (:mod:`repro.sharded.ingest`)
  builds on for 10^8-edge files.  :class:`MatrixMarketStreamWriter` is the
  matching chunked writer.  Both count *logical* lines — a ``.mtx.gz`` error
  names the same ``file:line`` as the uncompressed file would.

:class:`ChunkedContentHasher` computes ``BipartiteGraph.content_hash()``
incrementally from CSR chunks, so out-of-core pipelines get the exact cache
identity of the in-memory graph without materializing it.
"""

from __future__ import annotations

import gzip
import hashlib
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import TextIO

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = [
    "ChunkedContentHasher",
    "MatrixMarketHeader",
    "MatrixMarketStream",
    "MatrixMarketStreamWriter",
    "chunked_content_hash",
    "read_matrix_market",
    "read_matrix_market_header",
    "write_matrix_market",
]

_SUPPORTED_FIELDS = {"real", "integer", "pattern", "complex"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}

#: Entries parsed per chunk by :class:`MatrixMarketStream`; bounds the
#: reader's working set at a few MiB regardless of file size.
DEFAULT_CHUNK_ENTRIES = 1 << 17


def _open_text(path: str | Path, mode: str = "rt") -> TextIO:
    """Open ``path`` for text I/O, transparently gzipping ``.gz`` files.

    Shared by the reader and the writer so ``.mtx.gz`` round-trips: a file
    written by :func:`write_matrix_market` is always readable by
    :func:`read_matrix_market`.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


@dataclass(frozen=True)
class MatrixMarketHeader:
    """Parsed banner + size line of a Matrix-Market coordinate file."""

    path: str
    n_rows: int
    n_cols: int
    n_entries: int
    field: str
    symmetry: str

    @property
    def symmetric(self) -> bool:
        return self.symmetry != "general"


class MatrixMarketStream:
    """Streaming Matrix-Market reader with a bounded working set.

    Parses the banner and size line eagerly (available as :attr:`header`),
    then iterates ``(rows, cols, values)`` chunks of at most
    ``chunk_entries`` declared entries each: ``int64`` 0-based index arrays
    plus a ``float64`` value array (``None`` unless ``with_values=True``).
    Symmetric / skew-symmetric / hermitian mirrors are appended chunk-local,
    so consumers see the final expanded edge stream.

    Line numbers in error messages are *logical* line numbers counted by the
    parser itself — identical for ``.mtx`` and ``.mtx.gz`` inputs (the gzip
    layer never leaks decompressed byte offsets into diagnostics).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        with_values: bool = False,
        chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    ) -> None:
        if chunk_entries < 1:
            raise ValueError(f"chunk_entries must be >= 1, got {chunk_entries}")
        self._path = Path(path)
        self._with_values = with_values
        self._chunk_entries = int(chunk_entries)
        self._handle: TextIO | None = _open_text(self._path)
        self._lineno = 0
        self._iterated = False
        try:
            self.header = self._parse_header()
        except Exception:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MatrixMarketStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- header ------------------------------------------------------------
    def _parse_header(self) -> MatrixMarketHeader:
        path, handle = self._path, self._handle
        header = handle.readline()
        self._lineno = 1
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a Matrix-Market file (bad header {header!r})")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"{path}: malformed Matrix-Market header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError(
                f"{path}: only 'matrix coordinate' files are supported, got {obj} {fmt}"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in _SUPPORTED_FIELDS:
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRIES:
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")
        if self._with_values and field not in ("real", "integer"):
            raise ValueError(
                f"{path}: with_weights=True needs a 'real' or 'integer' field "
                f"(value entries), got {field!r}"
            )

        # Skip comments, read the size line.
        line = handle.readline()
        self._lineno += 1
        while line.startswith("%"):
            line = handle.readline()
            self._lineno += 1
        if not line:
            raise ValueError(f"{path}: missing size line")
        sizes = line.split()
        if len(sizes) != 3:
            raise ValueError(f"{path}: malformed size line {line!r}")
        n_rows, n_cols, n_entries = (int(s) for s in sizes)
        return MatrixMarketHeader(
            path=str(path),
            n_rows=n_rows,
            n_cols=n_cols,
            n_entries=n_entries,
            field=field,
            symmetry=symmetry,
        )

    # -- entry chunks ------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
        if self._handle is None:
            raise ValueError(f"{self._path}: stream is closed")
        if self._iterated:
            raise ValueError(f"{self._path}: stream already consumed (single pass)")
        self._iterated = True
        path = self._path
        handle = self._handle
        n_entries = self.header.n_entries
        consumed = 0
        while True:
            # Read one more line than could legally remain so a surplus entry
            # is diagnosed exactly like the eager reader did.
            limit = min(self._chunk_entries, n_entries - consumed + 1)
            lines: list[str] = []
            linenos: list[int] = []
            while len(lines) < limit:
                raw = handle.readline()
                if not raw:
                    break
                self._lineno += 1
                stripped = raw.strip()
                if not stripped or stripped.startswith("%"):
                    continue
                lines.append(stripped)
                linenos.append(self._lineno)
            if not lines:
                break
            remaining = n_entries - consumed
            if len(lines) > remaining:
                # Diagnose the legal prefix first: a malformed in-range entry
                # outranks the surplus, exactly like the per-line reader.
                if remaining:
                    self._parse_chunk(lines[:remaining], linenos[:remaining])
                raise ValueError(f"{path}: more entries than declared ({n_entries})")
            rows, cols, values = self._parse_chunk(lines, linenos)
            consumed += len(lines)
            yield self._expand(rows, cols, values)
        if consumed != n_entries:
            raise ValueError(f"{path}: expected {n_entries} entries, found {consumed}")

    def _parse_chunk(self, lines: list[str], linenos: list[int]):
        """Vectorized token parse; falls back to a per-line scan on anomalies.

        The fast path only applies when every line has a uniform token count
        and all tokens convert cleanly; anything irregular is re-parsed line
        by line so the error message names the exact offending line.
        """
        n = len(lines)
        tokens = np.array(" ".join(lines).split())
        rows = cols = values = None
        try:
            if tokens.size == 2 * n and not self._with_values:
                pairs = tokens.reshape(n, 2).astype(np.int64)
                rows, cols = pairs[:, 0], pairs[:, 1]
            elif tokens.size == 3 * n:
                triples = tokens.reshape(n, 3)
                pairs = triples[:, :2].astype(np.int64)
                rows, cols = pairs[:, 0], pairs[:, 1]
                if self._with_values:
                    values = triples[:, 2].astype(np.float64)
        except ValueError:
            rows = None
        if rows is None:
            return self._parse_chunk_slow(lines, linenos)
        self._check_ranges(rows, cols, lines, linenos)
        return rows, cols, values

    def _parse_chunk_slow(self, lines: list[str], linenos: list[int]):
        path = self._path
        header = self.header
        n = len(lines)
        rows = np.empty(n, dtype=np.int64)
        cols = np.empty(n, dtype=np.int64)
        values = np.empty(n, dtype=np.float64) if self._with_values else None
        for k, (line, lineno) in enumerate(zip(lines, linenos, strict=True)):
            tokens = line.split()
            if len(tokens) < 2:
                raise ValueError(
                    f"{path}:{lineno}: malformed entry line {line!r} "
                    "(expected at least 'row col')"
                )
            try:
                i, j = int(tokens[0]), int(tokens[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: non-integer indices in entry line {line!r}"
                ) from None
            if values is not None:
                if len(tokens) < 3:
                    raise ValueError(
                        f"{path}:{lineno}: entry line {line!r} has no value "
                        "(expected 'row col value')"
                    )
                try:
                    values[k] = float(tokens[2])
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: non-numeric value in entry line {line!r}"
                    ) from None
            if not 1 <= i <= header.n_rows:
                raise ValueError(
                    f"{path}:{lineno}: row index {i} outside the declared size "
                    f"{header.n_rows} in entry line {line!r}"
                )
            if not 1 <= j <= header.n_cols:
                raise ValueError(
                    f"{path}:{lineno}: column index {j} outside the declared size "
                    f"{header.n_cols} in entry line {line!r}"
                )
            rows[k] = i
            cols[k] = j
        return rows, cols, values

    def _check_ranges(self, rows, cols, lines, linenos) -> None:
        header = self.header
        bad_row = (rows < 1) | (rows > header.n_rows)
        bad_col = (cols < 1) | (cols > header.n_cols)
        bad = bad_row | bad_col
        if bad.any():
            k = int(np.argmax(bad))
            path, lineno, line = self._path, linenos[k], lines[k]
            if bad_row[k]:
                raise ValueError(
                    f"{path}:{lineno}: row index {int(rows[k])} outside the declared "
                    f"size {header.n_rows} in entry line {line!r}"
                )
            raise ValueError(
                f"{path}:{lineno}: column index {int(cols[k])} outside the declared "
                f"size {header.n_cols} in entry line {line!r}"
            )

    def _expand(self, rows, cols, values):
        """Convert to 0-based and append symmetry mirrors, chunk-local."""
        rows = rows - 1
        cols = cols - 1
        if self.header.symmetry == "general":
            return rows, cols, values
        off_diag = rows != cols
        mirror_rows = cols[off_diag]
        mirror_cols = rows[off_diag]
        out_rows = np.concatenate([rows, mirror_rows])
        out_cols = np.concatenate([cols, mirror_cols])
        if values is not None:
            mirrored = values[off_diag]
            if self.header.symmetry == "skew-symmetric":
                mirrored = -mirrored  # A[j,i] = -A[i,j]
            values = np.concatenate([values, mirrored])
        return out_rows, out_cols, values


def read_matrix_market_header(path: str | Path) -> MatrixMarketHeader:
    """Parse just the banner and size line (no entries are read)."""
    with MatrixMarketStream(path) as stream:
        return stream.header


def read_matrix_market(
    path: str | Path, name: str | None = None, *, with_weights: bool = False
) -> BipartiteGraph:
    """Read a Matrix-Market ``coordinate`` file as a bipartite graph.

    The sparsity pattern defines the edges: entry ``(i, j)`` becomes an edge
    between row vertex ``i`` and column vertex ``j``.  By default numerical
    values are ignored (cardinality matching only uses structure); with
    ``with_weights=True`` the value entries of ``real`` / ``integer`` files
    become edge weights for the :mod:`repro.weighted` solvers.  Symmetric
    matrices are expanded, matching how the paper builds bipartite graphs
    from square matrices.

    Parameters
    ----------
    path:
        Path to a ``.mtx`` or ``.mtx.gz`` file.
    name:
        Name stored on the graph; defaults to the file stem.
    with_weights:
        Read value entries as edge weights.

    Returns
    -------
    BipartiteGraph

    Raises
    ------
    ValueError
        Malformed files (each error names ``file:line``), or
        ``with_weights=True`` on a ``pattern`` / ``complex`` file.
    """
    path = Path(path)
    graph_name = name if name is not None else path.name.removesuffix(".gz").removesuffix(".mtx")
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    with MatrixMarketStream(path, with_values=with_weights) as stream:
        header = stream.header
        for rows, cols, values in stream:
            rows_parts.append(rows)
            cols_parts.append(cols)
            if values is not None:
                value_parts.append(values)
    if rows_parts:
        all_rows = np.concatenate(rows_parts)
        all_cols = np.concatenate(cols_parts)
    else:
        all_rows = np.empty(0, dtype=np.int64)
        all_cols = np.empty(0, dtype=np.int64)
    weights = np.concatenate(value_parts) if value_parts else None
    edges = np.column_stack([all_rows, all_cols])
    return from_edges(
        edges, n_rows=header.n_rows, n_cols=header.n_cols, name=graph_name, weights=weights
    )


def write_matrix_market(graph: BipartiteGraph, path: str | Path) -> None:
    """Write the graph as a Matrix-Market coordinate file.

    Structural graphs are written as ``pattern`` files; weighted graphs as
    ``real`` files whose value entries are the edge weights (the ``%.17g``
    format round-trips ``float64`` exactly, so
    ``read_matrix_market(..., with_weights=True)`` recovers the same graph).
    A ``.gz`` suffix (e.g. ``matrix.mtx.gz``) writes gzip-compressed text,
    mirroring what :func:`read_matrix_market` accepts.
    """
    field = "real" if graph.has_weights else "pattern"
    with MatrixMarketStreamWriter(
        path,
        n_rows=graph.n_rows,
        n_cols=graph.n_cols,
        n_entries=graph.n_edges,
        field=field,
        comment=f"written by repro ({graph.name})",
    ) as writer:
        edges = graph.edges()
        if graph.n_edges:
            writer.write_chunk(
                edges[:, 0], edges[:, 1], graph.weights if graph.has_weights else None
            )


class MatrixMarketStreamWriter:
    """Chunked Matrix-Market writer for instances too large to materialize.

    Declares ``n_entries`` up front, accepts 0-based ``(rows, cols[, values])``
    chunks, and verifies on :meth:`close` that exactly the declared number of
    entries was written (skipped when closing on an in-flight exception, so
    the original error propagates).  Used by the disk-materializing suite
    profile and the scaling benchmarks to emit multi-gigabyte ``.mtx.gz``
    files with a fixed-size working set.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        n_rows: int,
        n_cols: int,
        n_entries: int,
        field: str = "pattern",
        comment: str | None = None,
    ) -> None:
        if field not in ("pattern", "real"):
            raise ValueError(f"unsupported writer field {field!r} (pattern or real)")
        if min(n_rows, n_cols, n_entries) < 0:
            raise ValueError("n_rows, n_cols and n_entries must be non-negative")
        self._path = Path(path)
        self._field = field
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.n_entries = int(n_entries)
        self._written = 0
        self._handle: TextIO | None = _open_text(self._path, "wt")
        self._handle.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            self._handle.write(f"% {comment}\n")
        self._handle.write(f"{self.n_rows} {self.n_cols} {self.n_entries}\n")

    def write_chunk(self, rows, cols, values=None) -> None:
        if self._handle is None:
            raise ValueError(f"{self._path}: writer is closed")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be 1-D arrays of equal length")
        if rows.size and (
            rows.min() < 0 or rows.max() >= self.n_rows
            or cols.min() < 0 or cols.max() >= self.n_cols
        ):
            raise ValueError(
                f"{self._path}: chunk indices outside the declared "
                f"{self.n_rows}x{self.n_cols} shape"
            )
        if self._written + rows.size > self.n_entries:
            raise ValueError(
                f"{self._path}: more entries written than declared ({self.n_entries})"
            )
        if self._field == "real":
            if values is None:
                raise ValueError("a 'real' writer needs a values array per chunk")
            values = np.asarray(values, dtype=np.float64)
            if values.shape != rows.shape:
                raise ValueError("values must match rows/cols in length")
            lines = "\n".join(
                f"{u} {v} {w:.17g}"
                for u, v, w in zip((rows + 1).tolist(), (cols + 1).tolist(), values.tolist(), strict=True)
            )
        else:
            if values is not None:
                raise ValueError("a 'pattern' writer takes no values")
            lines = "\n".join(
                f"{u} {v}" for u, v in zip((rows + 1).tolist(), (cols + 1).tolist(), strict=True)
            )
        if lines:
            self._handle.write(lines)
            self._handle.write("\n")
        self._written += rows.size

    def close(self, *, check: bool = True) -> None:
        if self._handle is None:
            return
        self._handle.close()
        self._handle = None
        if check and self._written != self.n_entries:
            raise ValueError(
                f"{self._path}: declared {self.n_entries} entries but wrote {self._written}"
            )

    def __enter__(self) -> "MatrixMarketStreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On error, close without the count check so the original exception
        # is the one that propagates.
        self.close(check=exc_type is None)


# ------------------------------------------------------------------ hashing
class ChunkedContentHasher:
    """Incremental :meth:`BipartiteGraph.content_hash` over CSR chunks.

    Feed the same byte stream the in-memory hash consumes — ``col_ptr``,
    ``col_ind``, ``row_ptr``, ``row_ind`` (each as one or many ``int64``
    chunks, in order), then optionally ``weights`` (``float64`` chunks) —
    and :meth:`hexdigest` equals ``graph.content_hash()`` of the assembled
    graph.  Sections must be fed in that order; chunks within a section may
    be arbitrarily split.  This is what lets the out-of-core ingest compute
    the cache identity without a second full pass over the input file.
    """

    _SECTIONS = ("col_ptr", "col_ind", "row_ptr", "row_ind", "weights")

    def __init__(self, n_rows: int, n_cols: int) -> None:
        self._digest = hashlib.sha256()
        self._digest.update(f"bipartite:{n_rows}:{n_cols}:".encode("ascii"))
        self._section = 0
        self._weights_marked = False

    def update(self, section: str, chunk) -> None:
        """Absorb one chunk of ``section`` (array-like of indices/weights)."""
        try:
            index = self._SECTIONS.index(section)
        except ValueError:
            raise ValueError(
                f"unknown section {section!r} (expected one of {self._SECTIONS})"
            ) from None
        if index < self._section:
            raise ValueError(
                f"section {section!r} fed after {self._SECTIONS[self._section]!r}; "
                "sections must arrive in CSR order"
            )
        self._section = index
        if section == "weights":
            if not self._weights_marked:
                self._digest.update(b"weights:")
                self._weights_marked = True
            arr = np.ascontiguousarray(np.asarray(chunk, dtype=np.float64))
        else:
            arr = np.ascontiguousarray(np.asarray(chunk, dtype=np.int64))
        self._digest.update(arr.tobytes())

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def chunked_content_hash(
    n_rows: int,
    n_cols: int,
    col_ptr: Iterable,
    col_ind: Iterable,
    row_ptr: Iterable,
    row_ind: Iterable,
    weights: Iterable | None = None,
) -> str:
    """Compute ``BipartiteGraph.content_hash()`` from chunk iterables.

    Each argument is either a single array or an iterable of array chunks
    whose concatenation is the full CSR array.  Returns the same digest as
    the in-memory graph, without ever assembling it.
    """

    def _chunks(source):
        if isinstance(source, np.ndarray):
            return (source,)
        return source

    hasher = ChunkedContentHasher(n_rows, n_cols)
    for section, source in (
        ("col_ptr", col_ptr),
        ("col_ind", col_ind),
        ("row_ptr", row_ptr),
        ("row_ind", row_ind),
    ):
        for chunk in _chunks(source):
            hasher.update(section, chunk)
    if weights is not None:
        for chunk in _chunks(weights):
            hasher.update("weights", chunk)
    return hasher.hexdigest()
