"""Matrix-Market I/O.

The paper's evaluation uses 28 matrices from the University of Florida (UFL,
now SuiteSparse) sparse matrix collection, which ships Matrix-Market files.
This module reads/writes the ``coordinate`` Matrix-Market format directly
(pattern, real, integer and complex fields; general and symmetric
symmetries), so a user who *does* have the original instances can feed them
to the library unchanged.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges

__all__ = ["read_matrix_market", "write_matrix_market"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern", "complex"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def _open_text(path: str | Path, mode: str = "rt") -> TextIO:
    """Open ``path`` for text I/O, transparently gzipping ``.gz`` files.

    Shared by the reader and the writer so ``.mtx.gz`` round-trips: a file
    written by :func:`write_matrix_market` is always readable by
    :func:`read_matrix_market`.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_matrix_market(
    path: str | Path, name: str | None = None, *, with_weights: bool = False
) -> BipartiteGraph:
    """Read a Matrix-Market ``coordinate`` file as a bipartite graph.

    The sparsity pattern defines the edges: entry ``(i, j)`` becomes an edge
    between row vertex ``i`` and column vertex ``j``.  By default numerical
    values are ignored (cardinality matching only uses structure); with
    ``with_weights=True`` the value entries of ``real`` / ``integer`` files
    become edge weights for the :mod:`repro.weighted` solvers.  Symmetric
    matrices are expanded, matching how the paper builds bipartite graphs
    from square matrices.

    Parameters
    ----------
    path:
        Path to a ``.mtx`` or ``.mtx.gz`` file.
    name:
        Name stored on the graph; defaults to the file stem.
    with_weights:
        Read value entries as edge weights.

    Returns
    -------
    BipartiteGraph

    Raises
    ------
    ValueError
        Malformed files (each error names ``file:line``), or
        ``with_weights=True`` on a ``pattern`` / ``complex`` file.
    """
    path = Path(path)
    graph_name = name if name is not None else path.name.removesuffix(".gz").removesuffix(".mtx")
    with _open_text(path) as handle:
        header = handle.readline()
        lineno = 1
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a Matrix-Market file (bad header {header!r})")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"{path}: malformed Matrix-Market header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError(
                f"{path}: only 'matrix coordinate' files are supported, got {obj} {fmt}"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in _SUPPORTED_FIELDS:
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRIES:
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")
        if with_weights and field not in ("real", "integer"):
            raise ValueError(
                f"{path}: with_weights=True needs a 'real' or 'integer' field "
                f"(value entries), got {field!r}"
            )

        # Skip comments, read the size line.
        line = handle.readline()
        lineno += 1
        while line.startswith("%"):
            line = handle.readline()
            lineno += 1
        if not line:
            raise ValueError(f"{path}: missing size line")
        sizes = line.split()
        if len(sizes) != 3:
            raise ValueError(f"{path}: malformed size line {line!r}")
        n_rows, n_cols, n_entries = (int(s) for s in sizes)

        rows = np.empty(n_entries, dtype=np.int64)
        cols = np.empty(n_entries, dtype=np.int64)
        values = np.empty(n_entries, dtype=np.float64) if with_weights else None
        count = 0
        for line in handle:
            lineno += 1
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            tokens = line.split()
            if count >= n_entries:
                raise ValueError(f"{path}: more entries than declared ({n_entries})")
            if len(tokens) < 2:
                raise ValueError(
                    f"{path}:{lineno}: malformed entry line {line!r} "
                    "(expected at least 'row col')"
                )
            try:
                i, j = int(tokens[0]), int(tokens[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: non-integer indices in entry line {line!r}"
                ) from None
            if with_weights:
                if len(tokens) < 3:
                    raise ValueError(
                        f"{path}:{lineno}: entry line {line!r} has no value "
                        "(expected 'row col value')"
                    )
                try:
                    values[count] = float(tokens[2])
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: non-numeric value in entry line {line!r}"
                    ) from None
            if not 1 <= i <= n_rows:
                raise ValueError(
                    f"{path}:{lineno}: row index {i} outside the declared size "
                    f"{n_rows} in entry line {line!r}"
                )
            if not 1 <= j <= n_cols:
                raise ValueError(
                    f"{path}:{lineno}: column index {j} outside the declared size "
                    f"{n_cols} in entry line {line!r}"
                )
            rows[count] = i - 1
            cols[count] = j - 1
            count += 1
        if count != n_entries:
            raise ValueError(f"{path}: expected {n_entries} entries, found {count}")

    if symmetry != "general":
        off_diag = rows != cols
        rows = np.concatenate([rows, cols[off_diag]])
        cols = np.concatenate([cols, rows[: count][off_diag]])
        if values is not None:
            mirrored = values[off_diag]
            if symmetry == "skew-symmetric":
                mirrored = -mirrored  # A[j,i] = -A[i,j]
            values = np.concatenate([values, mirrored])
    edges = np.column_stack([rows, cols])
    return from_edges(edges, n_rows=n_rows, n_cols=n_cols, name=graph_name, weights=values)


def write_matrix_market(graph: BipartiteGraph, path: str | Path) -> None:
    """Write the graph as a Matrix-Market coordinate file.

    Structural graphs are written as ``pattern`` files; weighted graphs as
    ``real`` files whose value entries are the edge weights (the ``%.17g``
    format round-trips ``float64`` exactly, so
    ``read_matrix_market(..., with_weights=True)`` recovers the same graph).
    A ``.gz`` suffix (e.g. ``matrix.mtx.gz``) writes gzip-compressed text,
    mirroring what :func:`read_matrix_market` accepts.
    """
    path = Path(path)
    edges = graph.edges()
    field = "real" if graph.has_weights else "pattern"
    with _open_text(path, "wt") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        handle.write(f"% written by repro ({graph.name})\n")
        handle.write(f"{graph.n_rows} {graph.n_cols} {graph.n_edges}\n")
        if graph.has_weights:
            for (u, v), w in zip(edges, graph.weights):
                handle.write(f"{int(u) + 1} {int(v) + 1} {w:.17g}\n")
        else:
            for u, v in edges:
                handle.write(f"{int(u) + 1} {int(v) + 1}\n")
