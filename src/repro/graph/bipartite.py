"""CSR bipartite graph container.

The paper works with bipartite graphs ``G = (VR ∪ VC, E)`` where ``VR`` is the
set of *rows* and ``VC`` the set of *columns* of a sparse matrix.  Both the
push-relabel kernels (which iterate over the neighbourhood ``Γ(v)`` of an
active column ``v``) and the global-relabeling BFS (which iterates over the
neighbourhood ``Γ(u)`` of a row ``u``) need fast adjacency access, so the
graph stores two CSR structures: columns→rows and rows→columns.

All index arrays use ``numpy.int64``.  The structure is immutable once built;
algorithms never modify it, they only allocate their own label / matching
arrays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BipartiteGraph"]


def _as_int64(a) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D index array, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class BipartiteGraph:
    """An immutable bipartite graph in dual-CSR form.

    Attributes
    ----------
    n_rows:
        Number of row vertices (``m`` in the paper, the size of ``VR``).
    n_cols:
        Number of column vertices (``n`` in the paper, the size of ``VC``).
    col_ptr, col_ind:
        CSR adjacency of columns: the rows adjacent to column ``v`` are
        ``col_ind[col_ptr[v]:col_ptr[v + 1]]``.
    row_ptr, row_ind:
        CSR adjacency of rows: the columns adjacent to row ``u`` are
        ``row_ind[row_ptr[u]:row_ptr[u + 1]]``.
    weights:
        Optional ``float64`` edge weights, parallel to ``col_ind`` (one entry
        per edge, in column-CSR order).  ``None`` for purely structural
        graphs.  Weights participate in :meth:`content_hash`, so the result
        caches distinguish same-structure / different-weight graphs.
    b_row, b_col:
        Optional ``int64`` per-vertex capacities (the *b* of b-matching): row
        ``u`` may be matched to up to ``b_row[u]`` columns and column ``v``
        to up to ``b_col[v]`` rows.  Both are set together (or both
        ``None``); every capacity must be at least 1.  Like weights, the
        capacities participate in :meth:`content_hash`, and capacity-free
        graphs hash exactly as before capacities existed.

    Notes
    -----
    Use the builders in :mod:`repro.graph.builders` rather than constructing
    the arrays by hand; they deduplicate edges, sort adjacency lists and build
    the transposed CSR.

    **Hot-path convention** — the bounds-checked accessors
    (:meth:`column_neighbors` / :meth:`row_neighbors`) are the API for cold
    paths and user code.  Algorithm inner loops slice the CSR arrays
    directly (``col_ind[col_ptr[v]:col_ptr[v + 1]]``), use the whole-frontier
    helpers in :mod:`repro.graph.frontier`, and read degrees from the cached
    :attr:`col_degrees` / :attr:`row_degrees` properties; a Python-level
    bounds check per vertex is exactly the interpreter tax the vectorized
    frontier layer exists to avoid.
    """

    n_rows: int
    n_cols: int
    col_ptr: np.ndarray
    col_ind: np.ndarray
    row_ptr: np.ndarray
    row_ind: np.ndarray
    name: str = field(default="bipartite", compare=False)
    weights: np.ndarray | None = field(default=None, compare=False)
    b_row: np.ndarray | None = field(default=None, compare=False)
    b_col: np.ndarray | None = field(default=None, compare=False)

    # ------------------------------------------------------------------ init
    def __post_init__(self) -> None:
        object.__setattr__(self, "col_ptr", _as_int64(self.col_ptr))
        object.__setattr__(self, "col_ind", _as_int64(self.col_ind))
        object.__setattr__(self, "row_ptr", _as_int64(self.row_ptr))
        object.__setattr__(self, "row_ind", _as_int64(self.row_ind))
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("vertex counts must be non-negative")
        if len(self.col_ptr) != self.n_cols + 1:
            raise ValueError(
                f"col_ptr must have n_cols+1={self.n_cols + 1} entries, got {len(self.col_ptr)}"
            )
        if len(self.row_ptr) != self.n_rows + 1:
            raise ValueError(
                f"row_ptr must have n_rows+1={self.n_rows + 1} entries, got {len(self.row_ptr)}"
            )
        if self.col_ptr[0] != 0 or self.row_ptr[0] != 0:
            raise ValueError("CSR pointer arrays must start at 0")
        if self.col_ptr[-1] != len(self.col_ind):
            raise ValueError("col_ptr[-1] must equal len(col_ind)")
        if self.row_ptr[-1] != len(self.row_ind):
            raise ValueError("row_ptr[-1] must equal len(row_ind)")
        if len(self.col_ind) != len(self.row_ind):
            raise ValueError("column and row CSR structures must have the same edge count")
        if self.weights is not None:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.ndim != 1:
                raise ValueError(f"weights must be a 1-D array, got shape {weights.shape}")
            if len(weights) != len(self.col_ind):
                raise ValueError(
                    f"weights must have one entry per edge ({len(self.col_ind)}), "
                    f"got {len(weights)}"
                )
            if not np.all(np.isfinite(weights)):
                raise ValueError("edge weights must be finite")
            object.__setattr__(self, "weights", weights)
        if (self.b_row is None) != (self.b_col is None):
            raise ValueError("capacities must be set on both sides (b_row and b_col) or neither")
        if self.b_row is not None:
            for label, caps, count in (
                ("b_row", self.b_row, self.n_rows),
                ("b_col", self.b_col, self.n_cols),
            ):
                arr = np.asarray(caps, dtype=np.int64)
                if arr.ndim != 1:
                    raise ValueError(f"{label} must be a 1-D array, got shape {arr.shape}")
                if len(arr) != count:
                    raise ValueError(
                        f"{label} must have one entry per vertex ({count}), got {len(arr)}"
                    )
                if len(arr) and int(arr.min()) < 1:
                    raise ValueError(f"{label} capacities must all be >= 1")
                object.__setattr__(self, label, arr)
        # Make the arrays read-only so accidental in-place edits by an
        # algorithm fail loudly instead of corrupting shared state.
        arrays = (self.col_ptr, self.col_ind, self.row_ptr, self.row_ind)
        for extra in (self.weights, self.b_row, self.b_col):
            if extra is not None:
                arrays = arrays + (extra,)
        for arr in arrays:
            arr.setflags(write=False)

    # ------------------------------------------------------------ properties
    @property
    def n_edges(self) -> int:
        """Number of (deduplicated) edges, ``τ`` in the paper."""
        return int(len(self.col_ind))

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)`` — matches the shape of the biadjacency matrix."""
        return (self.n_rows, self.n_cols)

    @property
    def n_vertices(self) -> int:
        """Total vertex count ``m + n``."""
        return self.n_rows + self.n_cols

    @property
    def infinity_label(self) -> int:
        """The label used by the paper to mark unreachable vertices, ``m + n``."""
        return self.n_rows + self.n_cols

    @property
    def has_weights(self) -> bool:
        """Whether the graph carries an edge-weight array."""
        return self.weights is not None

    @property
    def has_capacities(self) -> bool:
        """Whether the graph carries per-vertex b-matching capacities."""
        return self.b_row is not None

    @property
    def col_degrees(self) -> np.ndarray:
        """Degree of every column vertex (lazily computed, cached, read-only).

        Hot loops read this instead of re-deriving ``np.diff(col_ptr)`` —
        see the hot-path convention in :mod:`repro.graph.frontier`.
        """
        cached = self.__dict__.get("_col_degrees")
        if cached is None:
            cached = np.diff(self.col_ptr)
            cached.setflags(write=False)
            object.__setattr__(self, "_col_degrees", cached)
        return cached

    @property
    def row_degrees(self) -> np.ndarray:
        """Degree of every row vertex (lazily computed, cached, read-only)."""
        cached = self.__dict__.get("_row_degrees")
        if cached is None:
            cached = np.diff(self.row_ptr)
            cached.setflags(write=False)
            object.__setattr__(self, "_row_degrees", cached)
        return cached

    # ------------------------------------------------------------- accessors
    def column_neighbors(self, v: int) -> np.ndarray:
        """Rows adjacent to column ``v`` (the paper's ``Γ(v)`` for ``v ∈ VC``)."""
        if not 0 <= v < self.n_cols:
            raise IndexError(f"column index {v} out of range [0, {self.n_cols})")
        return self.col_ind[self.col_ptr[v] : self.col_ptr[v + 1]]

    def row_neighbors(self, u: int) -> np.ndarray:
        """Columns adjacent to row ``u`` (the paper's ``Γ(u)`` for ``u ∈ VR``)."""
        if not 0 <= u < self.n_rows:
            raise IndexError(f"row index {u} out of range [0, {self.n_rows})")
        return self.row_ind[self.row_ptr[u] : self.row_ptr[u + 1]]

    def column_weights(self, v: int) -> np.ndarray:
        """Weights of the edges incident to column ``v``, parallel to
        :meth:`column_neighbors`.

        Raises ``ValueError`` when the graph carries no weights.
        """
        if self.weights is None:
            raise ValueError(f"graph {self.name!r} has no edge weights")
        if not 0 <= v < self.n_cols:
            raise IndexError(f"column index {v} out of range [0, {self.n_cols})")
        return self.weights[self.col_ptr[v] : self.col_ptr[v + 1]]

    def row_aligned_weights(self) -> np.ndarray:
        """The edge weights permuted into row-CSR order (parallel to ``row_ind``).

        Computed once and cached (the arrays are immutable).  Raises
        ``ValueError`` when the graph carries no weights.
        """
        if self.weights is None:
            raise ValueError(f"graph {self.name!r} has no edge weights")
        cached = self.__dict__.get("_row_aligned_weights")
        if cached is None:
            perm = np.lexsort((self.edge_columns(), self.col_ind))
            cached = self.weights[perm]
            cached.setflags(write=False)
            object.__setattr__(self, "_row_aligned_weights", cached)
        return cached

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge between row ``u`` and column ``v``.

        Raises ``ValueError`` when the graph has no weights or ``(u, v)`` is
        not an edge.
        """
        if self.weights is None:
            raise ValueError(f"graph {self.name!r} has no edge weights")
        rows = self.column_neighbors(v)
        idx = np.searchsorted(rows, u)
        if not (idx < len(rows) and rows[idx] == u):
            raise ValueError(f"({u}, {v}) is not an edge of graph {self.name!r}")
        return float(self.weights[self.col_ptr[v] + idx])

    def edge_columns(self) -> np.ndarray:
        """Column index of every edge, parallel to ``col_ind`` (cached).

        Together with ``col_ind`` (the row index of every edge) this is the
        flat edge list in column-CSR order; the weighted solvers and the
        certificate checks use it for vectorised per-edge sweeps.
        """
        cached = self.__dict__.get("_edge_columns")
        if cached is None:
            cached = np.repeat(np.arange(self.n_cols, dtype=np.int64), np.diff(self.col_ptr))
            cached.setflags(write=False)
            object.__setattr__(self, "_edge_columns", cached)
        return cached

    def csr_lists(self, side: str = "col") -> tuple[list[int], list[int]]:
        """One side's CSR structure as cached plain Python lists.

        The vectorized frontier layer (:mod:`repro.graph.frontier`) covers
        the whole-frontier traversals; the *scalar* walks that remain (DFS
        descents, push-relabel's per-push scan, P-DBFS claim searches) index
        one element at a time, where a Python list is ~4× faster than
        ndarray scalar access (no ``numpy`` boxing per element — measured in
        ``docs/benchmarks.md``).  Computed once per side and cached; the
        arrays are immutable.

        Parameters
        ----------
        side:
            ``"col"`` for ``(col_ptr, col_ind)``, ``"row"`` for
            ``(row_ptr, row_ind)``.
        """
        if side not in ("col", "row"):
            raise ValueError(f"side must be 'col' or 'row', not {side!r}")
        key = f"_csr_lists_{side}"
        cached = self.__dict__.get(key)
        if cached is None:
            if side == "col":
                cached = (self.col_ptr.tolist(), self.col_ind.tolist())
            else:
                cached = (self.row_ptr.tolist(), self.row_ind.tolist())
            object.__setattr__(self, key, cached)
        return cached

    def content_hash(self) -> str:
        """SHA-256 hex digest of the graph content (shape + CSR arrays + weights).

        Two graphs with identical vertex counts, adjacency and edge weights
        hash equal regardless of :attr:`name` (so :meth:`with_name` copies
        share the hash).  Used by :mod:`repro.service` to memoize matching
        results across repeated graphs; folding the weights in keeps those
        caches correct for same-structure / different-weight graphs.
        Weightless graphs hash exactly as before weights existed, so
        persistent disk caches stay valid.  The digest is cached after the
        first call — the arrays are immutable.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(f"bipartite:{self.n_rows}:{self.n_cols}:".encode("ascii"))
            for arr in (self.col_ptr, self.col_ind, self.row_ptr, self.row_ind):
                digest.update(np.ascontiguousarray(arr).tobytes())
            if self.weights is not None:
                digest.update(b"weights:")
                digest.update(np.ascontiguousarray(self.weights).tobytes())
            if self.b_row is not None:
                digest.update(b"capacities:")
                digest.update(np.ascontiguousarray(self.b_row).tobytes())
                digest.update(np.ascontiguousarray(self.b_col).tobytes())
            cached = digest.hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def has_edge(self, u: int, v: int) -> bool:
        """Whether row ``u`` and column ``v`` are adjacent.

        Adjacency lists are kept sorted by the builders, so this is a binary
        search over the smaller of the two lists.
        """
        rows = self.column_neighbors(v)
        cols = self.row_neighbors(u)
        if len(rows) <= len(cols):
            idx = np.searchsorted(rows, u)
            return bool(idx < len(rows) and rows[idx] == u)
        idx = np.searchsorted(cols, v)
        return bool(idx < len(cols) and cols[idx] == v)

    def edges(self) -> np.ndarray:
        """All edges as an ``(n_edges, 2)`` array of ``(row, col)`` pairs."""
        return np.column_stack([self.col_ind, self.edge_columns()])

    def transpose(self) -> "BipartiteGraph":
        """The graph with the roles of rows and columns swapped."""
        return BipartiteGraph(
            n_rows=self.n_cols,
            n_cols=self.n_rows,
            col_ptr=self.row_ptr,
            col_ind=self.row_ind,
            row_ptr=self.col_ptr,
            row_ind=self.col_ind,
            name=f"{self.name}^T",
            weights=self.row_aligned_weights() if self.has_weights else None,
            b_row=self.b_col,
            b_col=self.b_row,
        )

    def with_name(self, name: str) -> "BipartiteGraph":
        """A copy of this graph (sharing arrays) under a different name."""
        return BipartiteGraph(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            col_ptr=self.col_ptr,
            col_ind=self.col_ind,
            row_ptr=self.row_ptr,
            row_ind=self.row_ind,
            name=name,
            weights=self.weights,
            b_row=self.b_row,
            b_col=self.b_col,
        )

    def with_weights(self, weights: np.ndarray | None) -> "BipartiteGraph":
        """A copy of this graph (sharing index arrays) with new edge weights.

        Parameters
        ----------
        weights:
            One ``float`` per edge in column-CSR order (parallel to
            ``col_ind``), or ``None`` to strip weights.

        Returns
        -------
        BipartiteGraph

        Raises
        ------
        ValueError
            If ``weights`` has the wrong length or non-finite entries.
        """
        return BipartiteGraph(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            col_ptr=self.col_ptr,
            col_ind=self.col_ind,
            row_ptr=self.row_ptr,
            row_ind=self.row_ind,
            name=self.name,
            weights=None if weights is None else np.array(weights, dtype=np.float64),
            b_row=self.b_row,
            b_col=self.b_col,
        )

    def with_capacities(
        self, b_row: np.ndarray | None, b_col: np.ndarray | None
    ) -> "BipartiteGraph":
        """A copy of this graph (sharing index arrays) with new vertex capacities.

        Parameters
        ----------
        b_row, b_col:
            One positive integer per row / column vertex, or ``None`` for
            both to strip capacities.

        Returns
        -------
        BipartiteGraph

        Raises
        ------
        ValueError
            If the arrays have the wrong length, a capacity below 1, or only
            one side is given.
        """
        return BipartiteGraph(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            col_ptr=self.col_ptr,
            col_ind=self.col_ind,
            row_ptr=self.row_ptr,
            row_ind=self.row_ind,
            name=self.name,
            weights=self.weights,
            b_row=None if b_row is None else np.array(b_row, dtype=np.int64),
            b_col=None if b_col is None else np.array(b_col, dtype=np.int64),
        )

    # ---------------------------------------------------------------- export
    def to_scipy_sparse(self):
        """Biadjacency matrix as a ``scipy.sparse.csc_matrix`` of shape (n_rows, n_cols).

        Weighted graphs export their edge weights as the matrix values;
        structural graphs export ones.
        """
        from scipy import sparse

        data = self.weights.copy() if self.has_weights else np.ones(self.n_edges, dtype=np.int8)
        return sparse.csc_matrix(
            (data, self.col_ind.copy(), self.col_ptr.copy()),
            shape=(self.n_rows, self.n_cols),
        )

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``bipartite`` node attributes.

        Row vertex ``u`` becomes node ``("r", u)`` and column vertex ``v``
        becomes node ``("c", v)`` so the two sides never collide.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("r", int(u)) for u in range(self.n_rows)), bipartite=0)
        g.add_nodes_from((("c", int(v)) for v in range(self.n_cols)), bipartite=1)
        for u, v in self.edges():
            g.add_edge(("r", int(u)), ("c", int(v)))
        return g

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        weighted = ", weighted" if self.has_weights else ""
        capacitated = ", capacitated" if self.has_capacities else ""
        return (
            f"BipartiteGraph(name={self.name!r}, n_rows={self.n_rows}, "
            f"n_cols={self.n_cols}, n_edges={self.n_edges}{weighted}{capacitated})"
        )
