"""Descriptive statistics over bipartite graphs.

The benchmark reports (Table I of the paper) list, per instance, the number
of rows, columns and edges plus the cardinality of the initial and maximum
matchings.  This module provides the structural half of that table and a few
extra quantities (degree skew, isolated vertices) used to sanity-check the
synthetic instance suite against the families of the original UFL matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["GraphSummary", "degree_statistics", "structure_summary"]


@dataclass(frozen=True)
class GraphSummary:
    """Structural summary of a bipartite graph."""

    name: str
    n_rows: int
    n_cols: int
    n_edges: int
    min_row_degree: int
    max_row_degree: int
    mean_row_degree: float
    min_col_degree: int
    max_col_degree: int
    mean_col_degree: float
    isolated_rows: int
    isolated_cols: int
    degree_skew: float

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for report tables."""
        return {
            "name": self.name,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "n_edges": self.n_edges,
            "min_row_degree": self.min_row_degree,
            "max_row_degree": self.max_row_degree,
            "mean_row_degree": self.mean_row_degree,
            "min_col_degree": self.min_col_degree,
            "max_col_degree": self.max_col_degree,
            "mean_col_degree": self.mean_col_degree,
            "isolated_rows": self.isolated_rows,
            "isolated_cols": self.isolated_cols,
            "degree_skew": self.degree_skew,
        }


def degree_statistics(graph: BipartiteGraph) -> dict:
    """Min / max / mean / std of the row and column degree distributions."""
    row_deg = graph.row_degrees
    col_deg = graph.col_degrees

    def _stats(deg: np.ndarray) -> dict:
        if len(deg) == 0:
            return {"min": 0, "max": 0, "mean": 0.0, "std": 0.0}
        return {
            "min": int(deg.min()),
            "max": int(deg.max()),
            "mean": float(deg.mean()),
            "std": float(deg.std()),
        }

    return {"rows": _stats(row_deg), "cols": _stats(col_deg)}


def structure_summary(graph: BipartiteGraph) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``graph``."""
    row_deg = graph.row_degrees
    col_deg = graph.col_degrees
    mean_row = float(row_deg.mean()) if len(row_deg) else 0.0
    mean_col = float(col_deg.mean()) if len(col_deg) else 0.0
    max_row = int(row_deg.max()) if len(row_deg) else 0
    max_col = int(col_deg.max()) if len(col_deg) else 0
    # Degree skew: how far the maximum degree sits above the mean.  Power-law
    # graphs (web / social analogs) have a large skew; meshes are close to 1.
    mean_all = (mean_row + mean_col) / 2 if graph.n_vertices else 0.0
    skew = float(max(max_row, max_col) / mean_all) if mean_all > 0 else 0.0
    return GraphSummary(
        name=graph.name,
        n_rows=graph.n_rows,
        n_cols=graph.n_cols,
        n_edges=graph.n_edges,
        min_row_degree=int(row_deg.min()) if len(row_deg) else 0,
        max_row_degree=max_row,
        mean_row_degree=mean_row,
        min_col_degree=int(col_deg.min()) if len(col_deg) else 0,
        max_col_degree=max_col,
        mean_col_degree=mean_col,
        isolated_rows=int(np.count_nonzero(row_deg == 0)),
        isolated_cols=int(np.count_nonzero(col_deg == 0)),
        degree_skew=skew,
    )
