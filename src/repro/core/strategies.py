"""Global-relabeling frequency strategies (the paper's ``GETITERGR``).

Sequential push-relabel codes trigger a global relabel every
``k × (n + m)`` *pushes*; the GPU cannot count pushes cheaply across a
kernel launch, so the paper schedules the next global relabel in units of
*kernel iterations* instead and proposes two policies:

``fixed k``
    Relabel every ``k`` push-kernel iterations (the baseline policy,
    ``(fix, 10)`` and ``(fix, 50)`` in Figure 1).

``adaptive k``
    Relabel after ``k × maxLevel`` iterations, where ``maxLevel`` is the
    deepest BFS level reached by the previous global relabel.  The rationale
    (Theorem 2) is that a deficiency-``d`` matching admits ``d`` vertex
    disjoint augmenting paths whose average length is bounded by a fraction
    of ``maxLevel``, so ``k × maxLevel`` kernel iterations give the active
    columns enough time to traverse their paths before labels go stale.
    Figure 1 finds ``(adaptive, 0.3)`` and ``(adaptive, 0.7)`` best, and the
    final configuration of the paper is ``(adaptive, 0.7)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["GlobalRelabelStrategy", "AdaptiveStrategy", "FixedStrategy", "parse_strategy"]


class GlobalRelabelStrategy(ABC):
    """Decides, right after a global relabel, when the next one happens."""

    @abstractmethod
    def next_iteration(self, loop: int, max_level: int) -> int:
        """Iteration index of the next global relabel.

        Parameters
        ----------
        loop:
            The current main-loop iteration (the one the relabel just ran in).
        max_level:
            The ``maxLevel`` returned by that global relabel.
        """

    @property
    @abstractmethod
    def label(self) -> str:
        """Short identifier used in reports, e.g. ``"adaptive-0.7"``."""


@dataclass(frozen=True)
class AdaptiveStrategy(GlobalRelabelStrategy):
    """Next relabel after ``k × maxLevel`` further push-kernel iterations."""

    k: float = 0.7

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("adaptive strategy needs k > 0")

    def next_iteration(self, loop: int, max_level: int) -> int:
        return loop + max(1, int(round(self.k * max(1, max_level))))

    @property
    def label(self) -> str:
        return f"adaptive-{self.k:g}"


@dataclass(frozen=True)
class FixedStrategy(GlobalRelabelStrategy):
    """Next relabel after a fixed number of push-kernel iterations."""

    k: int = 10

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("fixed strategy needs k >= 1")

    def next_iteration(self, loop: int, max_level: int) -> int:
        return loop + self.k

    @property
    def label(self) -> str:
        return f"fix-{self.k}"


def parse_strategy(spec: str | GlobalRelabelStrategy) -> GlobalRelabelStrategy:
    """Parse ``"adaptive:0.7"`` / ``"fix:10"`` style strings (or pass a strategy through)."""
    if isinstance(spec, GlobalRelabelStrategy):
        return spec
    try:
        kind, _, value = spec.partition(":")
        kind = kind.strip().lower()
        if kind in ("adaptive", "adapt"):
            return AdaptiveStrategy(float(value) if value else 0.7)
        if kind in ("fix", "fixed"):
            return FixedStrategy(int(value) if value else 10)
    except ValueError as exc:
        raise ValueError(f"malformed strategy spec {spec!r}") from exc
    raise ValueError(f"unknown strategy kind in {spec!r}; use 'adaptive:<k>' or 'fix:<k>'")
