"""The paper's contribution: GPU push-relabel bipartite matching (G-PR).

Public entry points
-------------------
:func:`~repro.core.api.max_bipartite_matching`
    Unified API over every algorithm in the library (GPU, multicore and
    sequential).
:func:`~repro.core.gpr.gpr_matching` / :class:`~repro.core.gpr.GPRConfig`
    The G-PR algorithm itself with its three variants (``first``,
    ``noshrink``, ``shrink``) and global-relabel strategies.
:func:`~repro.core.ghkdw.ghkdw_matching`
    The GPU augmenting-path comparator G-HKDW.
"""

from repro.core.api import (
    MAXIMUM_ALGORITHMS,
    SPECS,
    AlgorithmSpec,
    ExecutionPlan,
    max_bipartite_matching,
    resolve_algorithm,
)
from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.core.strategies import (
    AdaptiveStrategy,
    FixedStrategy,
    GlobalRelabelStrategy,
    parse_strategy,
)

__all__ = [
    "max_bipartite_matching",
    "resolve_algorithm",
    "ExecutionPlan",
    "AlgorithmSpec",
    "SPECS",
    "MAXIMUM_ALGORITHMS",
    "gpr_matching",
    "GPRConfig",
    "GPRVariant",
    "ghkdw_matching",
    "GlobalRelabelStrategy",
    "AdaptiveStrategy",
    "FixedStrategy",
    "parse_strategy",
]


def __getattr__(name: str):
    # Legacy re-export of the deprecated ALGORITHMS mapping.  The warning is
    # emitted here (stacklevel=2 → the caller's access site) and suppressed
    # on the inner api.ALGORITHMS hop so it fires exactly once, attributed to
    # user code rather than to this package.
    if name == "ALGORITHMS":
        import warnings

        warnings.warn(
            "repro.core.ALGORITHMS is deprecated; enumerate repro.core.SPECS or call "
            "resolve_algorithm(name, **kwargs).run(graph, initial) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core import api

            # This *is* the deprecation shim: the one forwarding site.
            return api.ALGORITHMS  # repro-lint: disable=RPR006
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
