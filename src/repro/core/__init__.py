"""The paper's contribution: GPU push-relabel bipartite matching (G-PR).

Public entry points
-------------------
:func:`~repro.core.api.max_bipartite_matching`
    Unified API over every algorithm in the library (GPU, multicore and
    sequential).
:func:`~repro.core.gpr.gpr_matching` / :class:`~repro.core.gpr.GPRConfig`
    The G-PR algorithm itself with its three variants (``first``,
    ``noshrink``, ``shrink``) and global-relabel strategies.
:func:`~repro.core.ghkdw.ghkdw_matching`
    The GPU augmenting-path comparator G-HKDW.
"""

from repro.core.api import (
    ALGORITHMS,
    MAXIMUM_ALGORITHMS,
    AlgorithmSpec,
    ExecutionPlan,
    max_bipartite_matching,
    resolve_algorithm,
)
from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.core.strategies import (
    AdaptiveStrategy,
    FixedStrategy,
    GlobalRelabelStrategy,
    parse_strategy,
)

__all__ = [
    "max_bipartite_matching",
    "resolve_algorithm",
    "ExecutionPlan",
    "AlgorithmSpec",
    "ALGORITHMS",
    "MAXIMUM_ALGORITHMS",
    "gpr_matching",
    "GPRConfig",
    "GPRVariant",
    "ghkdw_matching",
    "GlobalRelabelStrategy",
    "AdaptiveStrategy",
    "FixedStrategy",
    "parse_strategy",
]
