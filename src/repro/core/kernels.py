"""Lockstep (vectorised) implementations of the paper's GPU kernels.

Every function in this module corresponds to one CUDA kernel of the paper
and follows the *lockstep* execution semantics described in
:mod:`repro.gpusim.kernel`: all reads observe the state of device memory at
launch time, and conflicting writes to the same location are resolved
last-writer-wins — a legal interleaving of the lock- and atomic-free CUDA
launch, and the exact scenario §III-B of the paper analyses for correctness.
The vectorized bodies get the launch-time-read guarantee structurally — each
wave performs its entire read phase before its first write — so no kernel
snapshots (copies) its inputs; a kernel would only need a copy if it read an
array *after* writing it within one wave, which none does
(``tests/test_core_kernels.py`` pins the conflict semantics).

Each kernel returns, besides its outputs, a **per-thread work vector**: the
number of elementary operations (adjacency entries scanned plus a small
constant) performed by every logical thread.  The caller charges that vector
to the :class:`~repro.gpusim.device.VirtualGPU` ledger, which converts it to
modelled seconds.

Kernel map (paper → here):

=======================  =====================================
Algorithm 5  G-GR-KRNL   :func:`global_relabel_kernel`
(§III-A)     INITRELABEL :func:`init_relabel_kernel`
Algorithm 6  G-PR-KRNL   :func:`push_kernel_all_columns`
Algorithm 8  G-PR-INITKRNL :func:`init_active_kernel`
Algorithm 9  G-PR-PUSHKRNL :func:`push_kernel_active_list`
§III-C2      G-PR-SHRKRNL  :func:`shrink_kernel`
§III         FIXMATCHING   :func:`fix_matching_kernel`
=======================  =====================================
"""

from __future__ import annotations

import numpy as np

from repro.compiled import dispatch as _compiled
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.kernel import wave_barrier
from repro.gpusim.primitives import device_exclusive_scan
from repro.matching import UNMATCHABLE, UNMATCHED

__all__ = [
    "active_columns_mask",
    "init_relabel_kernel",
    "global_relabel_kernel",
    "push_kernel_all_columns",
    "push_kernel_all_columns_serialized",
    "init_active_kernel",
    "push_kernel_active_list",
    "shrink_kernel",
    "fix_matching_kernel",
]


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
def active_columns_mask(mu_row: np.ndarray, mu_col: np.ndarray) -> np.ndarray:
    """Boolean mask of *active* columns.

    A column ``v`` is active when it is not consistently matched and has not
    been retired: ``µ(v) = −1``, or ``µ(v) ≥ 0`` but ``µ(µ(v)) ≠ v`` (the
    matching inconsistency the lock-free pushes leave behind).  Retired
    columns (``µ(v) = −2``) are inactive.
    """
    n = len(mu_col)
    active = mu_col == UNMATCHED
    pointed = np.flatnonzero(mu_col >= 0)
    if len(pointed):
        active[pointed] = mu_row[mu_col[pointed]] != pointed
    return active


def _first_true_per_segment(flags: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Index (into ``flags``) of the first ``True`` per segment, or ``-1``.

    ``offsets`` delimits the segments (length ``S + 1``, strictly increasing).
    """
    total = len(flags)
    candidates = np.where(flags, np.arange(total, dtype=np.int64), total)
    first = np.minimum.reduceat(candidates, offsets[:-1]) if total else np.empty(0, np.int64)
    return np.where(first < total, first, -1)


def _min_neighbor_scan(
    graph: BipartiteGraph,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lines 4–11 of Algorithm 6 for a batch of columns.

    For each column ``v`` in ``cols`` returns the minimum neighbouring row
    label ``ψmin``, the first row attaining it, and the number of adjacency
    entries the sequential scan with early exit (stop at ``ψ = ψ(v) − 1``)
    would have touched — the per-thread work of this part of the kernel.
    """
    infinity = graph.infinity_label
    col_ptr, col_ind = graph.col_ptr, graph.col_ind
    starts = col_ptr[cols]
    degrees = col_ptr[cols + 1] - starts

    psi_min = np.full(len(cols), infinity, dtype=np.int64)
    u_min = np.full(len(cols), -1, dtype=np.int64)
    scanned = np.zeros(len(cols), dtype=np.float64)

    nonempty = np.flatnonzero(degrees > 0)
    if len(nonempty) == 0:
        return psi_min, u_min, scanned

    seg_starts = starts[nonempty]
    seg_lens = degrees[nonempty]
    offsets = np.zeros(len(nonempty) + 1, dtype=np.int64)
    np.cumsum(seg_lens, out=offsets[1:])
    total = int(offsets[-1])
    # Flat gather of every neighbour of every selected column.
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], seg_lens) + np.repeat(
        seg_starts, seg_lens
    )
    nbr_rows = col_ind[flat]
    nbr_psi = psi_row[nbr_rows]
    seg_id = np.repeat(np.arange(len(nonempty), dtype=np.int64), seg_lens)

    mins = np.minimum.reduceat(nbr_psi, offsets[:-1])
    psi_min[nonempty] = mins
    first_min = _first_true_per_segment(nbr_psi == mins[seg_id], offsets)
    u_min[nonempty] = np.where(first_min >= 0, nbr_rows[np.clip(first_min, 0, None)], -1)

    # Early-exit work: stop at the first neighbour whose label equals ψ(v) − 1.
    target = psi_col[cols[nonempty]] - 1
    first_hit = _first_true_per_segment(nbr_psi == target[seg_id], offsets)
    scanned[nonempty] = np.where(first_hit >= 0, first_hit - offsets[:-1] + 1, seg_lens)
    return psi_min, u_min, scanned


# --------------------------------------------------------------------------
# global relabeling kernels (Algorithms 4 and 5)
# --------------------------------------------------------------------------
def init_relabel_kernel(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
) -> np.ndarray:
    """``INITRELABEL``: unmatched rows get label 0, every other vertex gets ``m + n``."""
    infinity = graph.infinity_label
    psi_row.fill(infinity)
    psi_col.fill(infinity)
    psi_row[mu_row == UNMATCHED] = 0
    return np.ones(graph.n_rows + graph.n_cols, dtype=np.float64)


def global_relabel_kernel(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    c_level: int,
) -> tuple[bool, np.ndarray]:
    """``G-GR-KRNL`` (Algorithm 5): one BFS level of the global relabeling.

    Every row whose label equals ``c_level`` relaxes its unvisited neighbour
    columns to ``c_level + 1`` and, if such a column is consistently matched,
    its matched row to ``c_level + 2``.  Several threads may write the same
    entry, but always with the same value, so the races are benign (as the
    paper notes).

    Returns ``(u_added, thread_work)`` where ``u_added`` reports whether any
    row received a new label (the loop-continuation flag of Algorithm 4).
    """
    fn = _compiled.implementation_for("global_relabel")
    if fn is not None and not _compiled.recording(mu_row, mu_col, psi_row, psi_col):
        u_added, thread_work = fn(
            graph.row_ptr,
            graph.row_ind,
            mu_row,
            mu_col,
            psi_row,
            psi_col,
            c_level,
            graph.infinity_label,
        )
        return bool(u_added), thread_work
    infinity = graph.infinity_label
    thread_work = np.ones(graph.n_rows, dtype=np.float64)
    frontier = np.flatnonzero(psi_row == c_level)
    if len(frontier) == 0:
        return False, thread_work

    row_ptr, row_ind = graph.row_ptr, graph.row_ind
    degrees = row_ptr[frontier + 1] - row_ptr[frontier]
    thread_work[frontier] += degrees

    total = int(degrees.sum())
    if total == 0:
        return False, thread_work
    offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], degrees) + np.repeat(
        row_ptr[frontier], degrees
    )
    nbr_cols = row_ind[flat]

    unvisited = psi_col[nbr_cols] == infinity
    to_set = np.unique(nbr_cols[unvisited])
    if len(to_set) == 0:
        return False, thread_work
    psi_col[to_set] = c_level + 1

    matches = mu_col[to_set]
    has_match = matches >= 0
    consistent = np.zeros(len(to_set), dtype=bool)
    if has_match.any():
        idx = np.flatnonzero(has_match)
        consistent[idx] = mu_row[matches[idx]] == to_set[idx]
    next_rows = matches[consistent]
    u_added = False
    if len(next_rows):
        fresh = psi_row[next_rows] == infinity
        next_rows = next_rows[fresh]
        if len(next_rows):
            psi_row[next_rows] = c_level + 2
            u_added = True
    return u_added, thread_work


# --------------------------------------------------------------------------
# push kernel over all columns (Algorithm 6, variant G-PR-First)
# --------------------------------------------------------------------------
def _push_wave(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    wave_cols: np.ndarray,
) -> np.ndarray:
    """Push for one *wave* of concurrently resident threads (lockstep within the wave).

    No defensive snapshot of ``psi_row`` is needed: the vectorized engine
    performs the wave's entire read phase (the min-neighbour scan below)
    before its first write, so every read already observes launch-time
    state — copying the array would only model the same semantics slower.

    Returns the per-column scanned-edge counts for the wave.
    """
    fn = _compiled.implementation_for("push_wave")
    if fn is not None and not _compiled.recording(mu_row, mu_col, psi_row, psi_col):
        return fn(
            graph.col_ptr,
            graph.col_ind,
            psi_row,
            psi_col,
            mu_row,
            mu_col,
            wave_cols,
            graph.infinity_label,
        )
    psi_min, u_min, scanned = _min_neighbor_scan(graph, psi_row, psi_col, wave_cols)
    pushable = psi_min < graph.infinity_label
    # Columns whose every neighbour is unreachable are retired (µ(v) ← −2).
    mu_col[wave_cols[~pushable]] = UNMATCHABLE
    push_cols = wave_cols[pushable]
    push_rows = u_min[pushable]
    push_min = psi_min[pushable]
    # Each thread matches its column; conflicting writes to the same row are
    # resolved last-writer-wins, leaving the losers' µ(v) inconsistent — they
    # become active again in the next launch.
    mu_col[push_cols] = push_rows
    psi_col[push_cols] = push_min + 1
    mu_row[push_rows] = push_cols
    psi_row[push_rows] = push_min + 2
    return scanned


def _wave_slices(n_items: int, wave_size: int | None) -> list[slice]:
    """Split ``n_items`` logical threads into resident-wave slices."""
    if not n_items:
        return []
    if wave_size is None or wave_size >= n_items:
        return [slice(0, n_items)]
    return [slice(start, min(start + wave_size, n_items)) for start in range(0, n_items, wave_size)]


def push_kernel_all_columns(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    wave_size: int | None = None,
) -> tuple[bool, np.ndarray]:
    """``G-PR-KRNL`` (Algorithm 6): one thread per column of the graph.

    Mutates ``mu_row``, ``mu_col``, ``psi_row`` and ``psi_col`` in place with
    lockstep semantics and returns ``(act_exists, thread_work)``.

    ``wave_size`` models the number of threads that are simultaneously
    resident on the device (``waves × cores``): threads within a wave observe
    the launch-time snapshot, threads of later waves observe the writes of
    earlier waves — exactly the visibility a real launch with more threads
    than cores provides.  ``None`` treats the whole launch as one wave.
    """
    n = graph.n_cols
    # Every thread — active or not — performs the activity test of line 3
    # (two reads of µ); only active threads go on to scan their adjacency.
    thread_work = np.full(n, 2.0, dtype=np.float64)
    active = active_columns_mask(mu_row, mu_col)
    act_cols = np.flatnonzero(active)
    if len(act_cols) == 0:
        return False, thread_work
    for wave in _wave_slices(len(act_cols), wave_size):
        wave_cols = act_cols[wave]
        scanned = _push_wave(graph, mu_row, mu_col, psi_row, psi_col, wave_cols)
        thread_work[wave_cols] += scanned
        wave_barrier(mu_row, mu_col, psi_row, psi_col)
    return True, thread_work


def push_kernel_all_columns_serialized(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    rng: np.random.Generator | None = None,
) -> tuple[bool, np.ndarray]:
    """Reference (per-thread, live-memory) implementation of Algorithm 6.

    Executes one Python "thread" per column, one at a time, in index order or
    in a random permutation — a different legal interleaving than the
    lockstep engine.  Used by the race-tolerance tests; far too slow for the
    benchmark suite.
    """
    from repro.gpusim.kernel import launch_serialized

    infinity = graph.infinity_label
    col_ptr, col_ind = graph.col_ptr, graph.col_ind
    act_exists = False

    def body(v: int) -> float:
        nonlocal act_exists
        work = 1.0
        mv = mu_col[v]
        is_active = mv == UNMATCHED or (mv >= 0 and mu_row[mv] != v)
        if not is_active:
            return work
        act_exists = True
        psi_min = infinity
        u_min = -1
        target = psi_col[v] - 1
        for idx in range(col_ptr[v], col_ptr[v + 1]):
            work += 1.0
            u = col_ind[idx]
            if psi_row[u] < psi_min:
                psi_min = psi_row[u]
                u_min = u
                if psi_min == target:
                    break
        if psi_min < infinity:
            mu_row[u_min] = v
            mu_col[v] = u_min
            psi_col[v] = psi_min + 1
            psi_row[u_min] = psi_min + 2
        else:
            mu_col[v] = UNMATCHABLE
        return work

    thread_work = launch_serialized(body, graph.n_cols, rng=rng)
    return act_exists, thread_work


# --------------------------------------------------------------------------
# active-list kernels (Algorithms 8 and 9) and the shrink kernel (§III-C2)
# --------------------------------------------------------------------------
def init_active_kernel(
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    ac: np.ndarray,
    ap: np.ndarray,
    ia: np.ndarray,
    loop: int,
) -> tuple[bool, np.ndarray]:
    """``G-PR-INITKRNL`` (Algorithm 8): repair the active list before a push round.

    ``ap`` holds the columns processed in the previous push round and ``ac``
    the new active columns those pushes produced.  A previously processed
    column that is still unmatched lost its push to a conflict and is rolled
    back into ``ac``; every surviving entry of ``ac`` is registered in ``ia``
    with the current ``loop`` stamp.  Duplicate occurrences of the same
    column (possible when two conflicting pushes both re-activated the same
    victim) are cleared so a column is processed by exactly one thread.

    Returns ``(act_exists, thread_work)``.
    """
    size = len(ap)
    thread_work = np.full(size, 2.0, dtype=np.float64)
    if size == 0:
        return False, thread_work

    def _still_unmatched(cols: np.ndarray) -> np.ndarray:
        unmatched = mu_col[cols] == UNMATCHED
        pointed = np.flatnonzero(mu_col[cols] >= 0)
        if len(pointed):
            unmatched[pointed] = mu_row[mu_col[cols[pointed]]] != cols[pointed]
        return unmatched

    # Roll back conflicting pushes of the previous round.
    prev_slots = np.flatnonzero(ap >= 0)
    if len(prev_slots):
        rollback = _still_unmatched(ap[prev_slots])
        ac[prev_slots[rollback]] = ap[prev_slots[rollback]]

    # Drop candidates that are in fact consumed (consistently matched or retired).
    cand_slots = np.flatnonzero(ac >= 0)
    if len(cand_slots):
        keep = _still_unmatched(ac[cand_slots])
        ac[cand_slots[~keep]] = -1

    # Deduplicate: the first slot holding a column keeps it.
    reg_slots = np.flatnonzero(ac >= 0)
    if len(reg_slots):
        cols = ac[reg_slots]
        _, first_idx = np.unique(cols, return_index=True)
        duplicate = np.ones(len(cols), dtype=bool)
        duplicate[first_idx] = False
        ac[reg_slots[duplicate]] = -1
        reg_slots = reg_slots[~duplicate]
        ia[ac[reg_slots]] = loop
    return len(reg_slots) > 0, thread_work


def push_kernel_active_list(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    ac: np.ndarray,
    ap: np.ndarray,
    ia: np.ndarray,
    loop: int,
    wave_size: int | None = None,
) -> np.ndarray:
    """``G-PR-PUSHKRNL`` (Algorithm 9): push-relabel over the active list only.

    One thread per active-list slot.  Differences to Algorithm 6: the thread
    count is ``|Ac|`` instead of ``n``; a successful double push records the
    newly activated column in ``ap`` (slot-local, no atomics); and a push
    onto a row whose current match is itself active in this round
    (``ia(µ(u)) = loop``) is postponed, which prevents the same column from
    ending up in two slots of the next round.

    ``wave_size`` has the same meaning as in :func:`push_kernel_all_columns`.

    Returns the per-thread work vector; ``ac``/``ap`` are updated in place.
    """
    size = len(ac)
    thread_work = np.ones(size, dtype=np.float64)
    # Empty slots produce no new active column (Algorithm 9, line 24).
    ap[ac < 0] = -1
    all_slots = np.flatnonzero(ac >= 0)
    if len(all_slots) == 0:
        return thread_work
    infinity = graph.infinity_label

    # Dispatch decision hoisted out of the wave loop (RPR004 flags lookups
    # inside hot-path regions); the compiled twin keeps the same
    # read-before-write wave structure as the vectorized body below.
    fn = _compiled.implementation_for("push_active_wave")
    use_compiled = fn is not None and not _compiled.recording(
        mu_row, mu_col, psi_row, psi_col, ac, ap, ia
    )

    for wave in _wave_slices(len(all_slots), wave_size):
        slots = all_slots[wave]
        if use_compiled:
            scanned = fn(
                graph.col_ptr,
                graph.col_ind,
                psi_row,
                psi_col,
                mu_row,
                mu_col,
                ac,
                ap,
                ia,
                slots,
                loop,
                infinity,
            )
            thread_work[slots] += scanned
            wave_barrier(mu_row, mu_col, psi_row, psi_col, ac, ap)
            continue
        cols = ac[slots]
        # All of the wave's reads of mu_row / psi_row (the scan and the
        # old-match gather below) complete before its first write, so the
        # live arrays already show launch-time state — no snapshot copies.
        psi_min, u_min, scanned = _min_neighbor_scan(graph, psi_row, psi_col, cols)
        thread_work[slots] += scanned

        pushable = psi_min < infinity

        # Unreachable columns are retired and their slots cleared (lines 19–22).
        retire_slots = slots[~pushable]
        mu_col[ac[retire_slots]] = UNMATCHABLE
        ac[retire_slots] = -1
        ap[retire_slots] = -1

        push_slots = slots[pushable]
        push_cols = cols[pushable]
        push_rows = u_min[pushable]
        push_min = psi_min[pushable]
        old_match = mu_row[push_rows]

        # Line 13: postpone the push when the row's current match is active this round.
        allowed = (old_match < 0) | (ia[np.clip(old_match, 0, None)] != loop)
        postponed = push_slots[~allowed]
        ap[postponed] = -1  # the column stays in ac and is rolled back next round

        ok_slots = push_slots[allowed]
        ok_cols = push_cols[allowed]
        ok_rows = push_rows[allowed]
        ok_min = push_min[allowed]
        ok_old = old_match[allowed]

        mu_col[ok_cols] = ok_rows
        psi_col[ok_cols] = ok_min + 1
        mu_row[ok_rows] = ok_cols
        psi_row[ok_rows] = ok_min + 2
        # Line 18: record the column displaced by a double push (or −1 for a single push).
        ap[ok_slots] = np.where(ok_old >= 0, ok_old, -1)
        wave_barrier(mu_row, mu_col, psi_row, psi_col, ac, ap)
    return thread_work


def shrink_kernel(
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    ac: np.ndarray,
    ap: np.ndarray,
    ia: np.ndarray,
    loop: int,
) -> tuple[bool, np.ndarray, np.ndarray, np.ndarray]:
    """``G-PR-SHRKRNL`` (§III-C2): repair *and compact* the active list.

    Performs the same repair as :func:`init_active_kernel`, then compacts the
    surviving columns into freshly sized ``ac``/``ap`` arrays with a
    count-pass / prefix-sum / write-pass sequence (each thread owns a private
    output region), so the next push round launches exactly one thread per
    active column.

    Returns ``(act_exists, new_ac, new_ap, thread_work)``.
    """
    act_exists, repair_work = init_active_kernel(mu_row, mu_col, ac, ap, ia, loop)
    survivors = ac[ac >= 0]
    # Count pass + write pass: two extra operations per slot, plus the scan.
    _, scan_work = device_exclusive_scan(np.ones(len(ap), dtype=np.int64))
    thread_work = repair_work + 2.0
    if len(scan_work):
        thread_work = thread_work + scan_work
    new_ac = survivors.astype(np.int64).copy()
    new_ap = np.full(len(survivors), -1, dtype=np.int64)
    return act_exists, new_ac, new_ap, thread_work


# --------------------------------------------------------------------------
# FIXMATCHING
# --------------------------------------------------------------------------
def fix_matching_kernel(mu_row: np.ndarray, mu_col: np.ndarray) -> np.ndarray:
    """``FIXMATCHING``: clear every column entry that its row does not confirm.

    ``µ(v) ← −1`` for any ``v`` with ``µ(µ(v)) ≠ v`` (including retired
    columns, whose ``−2`` marker is cleared as well).  The row side is left
    untouched — the paper proves it is correct at termination.
    """
    thread_work = np.ones(len(mu_col), dtype=np.float64)
    pointed = np.flatnonzero(mu_col >= 0)
    stale = pointed[mu_row[mu_col[pointed]] != pointed]
    mu_col[stale] = UNMATCHED
    mu_col[mu_col == UNMATCHABLE] = UNMATCHED
    return thread_work
