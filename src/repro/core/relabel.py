"""GPU global relabeling driver (Algorithm 4, ``G-GR``)."""

from __future__ import annotations

import numpy as np

from repro.core.kernels import global_relabel_kernel, init_relabel_kernel
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.device import VirtualGPU

__all__ = ["gpu_global_relabel"]


def gpu_global_relabel(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    gpu: VirtualGPU,
) -> int:
    """Run the full GPU global relabeling and return ``maxLevel``.

    ``INITRELABEL`` sets unmatched rows to 0 and everything else to
    ``m + n``; then one ``G-GR-KRNL`` launch per BFS level propagates exact
    alternating-path distances from the unmatched rows.  Every launch is
    charged to ``gpu``'s ledger.  Vertices the BFS never reaches keep the
    ``m + n`` label and are thereby removed from further consideration.
    """
    work = init_relabel_kernel(graph, mu_row, psi_row, psi_col)
    gpu.charge_kernel("init-relabel", work)

    c_level = 0
    u_added = True
    while u_added:
        u_added, work = global_relabel_kernel(graph, mu_row, mu_col, psi_row, psi_col, c_level)
        gpu.charge_kernel("g-gr-krnl", work)
        c_level += 2
    return c_level
