"""G-PR: the GPU push-relabel maximum cardinality bipartite matching algorithm.

This module implements the three variants the paper evaluates in Figure 1:

``G-PR-First`` (Algorithm 3 + Algorithm 6)
    One thread per column of the graph in every push kernel.

``G-PR-NoShr`` (Algorithm 7 with Algorithms 8 and 9, shrinking disabled)
    The push kernels run over an explicit active-column list kept in the two
    arrays ``Ac`` / ``Ap`` (with rollback of conflicting pushes), so the
    thread count equals the number of unmatched columns after the greedy
    initialisation instead of ``n``.

``G-PR-Shr`` (Algorithm 7 with the shrink kernel of §III-C2)
    Additionally compacts the active list with a prefix-sum pass after every
    global relabel, as long as it still holds at least
    ``shrink_threshold`` (= 512 in the paper) entries.

All variants share the GPU global relabeling of Algorithms 4–5 and the
global-relabel scheduling strategies of :mod:`repro.core.strategies`; the
matching inconsistencies left behind by the lock-free pushes are resolved by
a final ``FIXMATCHING`` kernel.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import (
    active_columns_mask,
    fix_matching_kernel,
    init_active_kernel,
    push_kernel_active_list,
    push_kernel_all_columns,
    push_kernel_all_columns_serialized,
    shrink_kernel,
)
from repro.core.relabel import gpu_global_relabel
from repro.core.strategies import GlobalRelabelStrategy, parse_strategy
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["GPRVariant", "GPRConfig", "gpr_matching"]


class GPRVariant(str, enum.Enum):
    """The three G-PR implementations compared in Figure 1 of the paper."""

    FIRST = "first"
    NO_SHRINK = "noshrink"
    SHRINK = "shrink"


@dataclass(frozen=True)
class GPRConfig:
    """Configuration of a G-PR run.

    Attributes
    ----------
    variant:
        Which of the three implementations to run; the paper's final
        configuration is :attr:`GPRVariant.SHRINK`.
    strategy:
        Global-relabel scheduling policy, either a
        :class:`~repro.core.strategies.GlobalRelabelStrategy` or a string
        such as ``"adaptive:0.7"`` (the paper's best) or ``"fix:10"``.
    shrink_threshold:
        Minimum active-list length for which the shrink kernel is worth its
        overhead (512 in the paper, §III-C2).
    engine:
        ``"lockstep"`` (vectorised, default) or ``"serialized"`` (per-thread
        reference interpreter; only supported for the ``first`` variant and
        meant for the race-tolerance tests).
    max_iterations:
        Safety bound on main-loop iterations; ``None`` derives
        ``50 × (n + m) + 1000`` from the graph.
    seed:
        Seed for the serialized engine's thread-order permutation.
    """

    variant: GPRVariant | str = GPRVariant.SHRINK
    strategy: GlobalRelabelStrategy | str = "adaptive:0.7"
    shrink_threshold: int = 512
    engine: str = "lockstep"
    max_iterations: int | None = None
    seed: int | None = None
    #: Number of hardware waves kept in flight per launch; the lockstep engine
    #: makes writes of earlier waves visible to later waves of the same
    #: launch, matching the visibility a launch with more threads than cores
    #: has on a real device.  ``wave_size = waves_in_flight × total_cores``.
    waves_in_flight: int = 4

    def resolved_variant(self) -> GPRVariant:
        return GPRVariant(self.variant)

    def resolved_strategy(self) -> GlobalRelabelStrategy:
        return parse_strategy(self.strategy)


@dataclass
class _RunState:
    """Mutable device-side state of one G-PR run."""

    mu_row: np.ndarray
    mu_col: np.ndarray
    psi_row: np.ndarray
    psi_col: np.ndarray
    counters: dict = field(default_factory=dict)


def _initial_state(graph: BipartiteGraph, initial: Matching | None) -> tuple[_RunState, int]:
    """Build µ and ψ arrays from the initial matching (cheap matching by default)."""
    if initial is None:
        initial = cheap_matching(graph).matching
    else:
        initial = initial.copy().canonical()
    mu_row = initial.row_match.copy()
    mu_col = initial.col_match.copy()
    psi_row = np.zeros(graph.n_rows, dtype=np.int64)
    psi_col = np.ones(graph.n_cols, dtype=np.int64)
    state = _RunState(mu_row=mu_row, mu_col=mu_col, psi_row=psi_row, psi_col=psi_col)
    return state, int(np.count_nonzero(mu_row >= 0))


def gpr_matching(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    config: GPRConfig | None = None,
    device: VirtualGPU | None = None,
) -> MatchingResult:
    """Run G-PR on ``graph`` and return the maximum cardinality matching.

    Parameters
    ----------
    graph:
        The bipartite graph (kept read-only).
    initial:
        Starting matching; the paper's cheap greedy matching when omitted.
        Its construction is *not* charged to the GPU ledger — the paper
        compares all algorithms after this common initialisation.
    config:
        Variant / strategy / engine selection, see :class:`GPRConfig`.
    device:
        A :class:`~repro.gpusim.device.VirtualGPU`; a fresh default device is
        created when omitted.  Pass ``VirtualGPU(DeviceSpec().scaled())``
        when running the scaled-down reproduction suite.

    Returns
    -------
    MatchingResult
        ``modeled_time`` holds the GPU cost-model seconds; ``counters``
        includes per-kernel breakdowns, loop and global-relabel counts and
        the initial-matching cardinality.
    """
    config = config or GPRConfig()
    variant = config.resolved_variant()
    strategy = config.resolved_strategy()
    if config.engine not in ("lockstep", "serialized"):
        raise ValueError(f"unknown engine {config.engine!r}")
    if config.engine == "serialized" and variant is not GPRVariant.FIRST:
        raise ValueError("the serialized reference engine only supports the 'first' variant")
    gpu = device or VirtualGPU(DeviceSpec())
    rng = np.random.default_rng(config.seed) if config.seed is not None else None

    t0 = time.perf_counter()
    state, initial_cardinality = _initial_state(graph, initial)
    # Under shadow-access mode the µ/ψ arrays become recording views (shared
    # buffers); without it shadow_wrap is the identity on these arrays.
    state.mu_row = gpu.shadow_wrap(state.mu_row, "mu_row")
    state.mu_col = gpu.shadow_wrap(state.mu_col, "mu_col")
    state.psi_row = gpu.shadow_wrap(state.psi_row, "psi_row")
    state.psi_col = gpu.shadow_wrap(state.psi_col, "psi_col")
    max_iterations = (
        config.max_iterations
        if config.max_iterations is not None
        else 50 * (graph.n_rows + graph.n_cols) + 1000
    )

    if variant is GPRVariant.FIRST:
        loops, relabels = _run_first(graph, state, strategy, gpu, config, rng, max_iterations)
    else:
        loops, relabels = _run_active_list(graph, state, strategy, gpu, config, variant, max_iterations)

    work = fix_matching_kernel(state.mu_row, state.mu_col)
    gpu.charge_kernel("fixmatching", work)
    wall = time.perf_counter() - t0

    counters = {
        "variant": variant.value,
        "strategy": strategy.label,
        "loops": loops,
        "global_relabels": relabels,
        "initial_matching": initial_cardinality,
        **gpu.ledger.counters(),
    }
    return MatchingResult.create(
        f"G-PR-{variant.value}",
        Matching(np.asarray(state.mu_row), np.asarray(state.mu_col)),
        counters=counters,
        modeled_time=gpu.ledger.total_seconds,
        wall_time=wall,
    )


# --------------------------------------------------------------------------
# variant drivers
# --------------------------------------------------------------------------
def _run_first(
    graph: BipartiteGraph,
    state: _RunState,
    strategy: GlobalRelabelStrategy,
    gpu: VirtualGPU,
    config: GPRConfig,
    rng: np.random.Generator | None,
    max_iterations: int,
) -> tuple[int, int]:
    """Algorithm 3: the all-columns variant."""
    loop = 0
    iter_gr = 0
    relabels = 0
    act_exists = True
    while act_exists:
        if loop >= max_iterations:
            raise RuntimeError(
                f"G-PR-first exceeded {max_iterations} iterations on {graph.name!r}; "
                "this indicates a livelock — please report it"
            )
        if loop == iter_gr:
            max_level = gpu_global_relabel(
                graph, state.mu_row, state.mu_col, state.psi_row, state.psi_col, gpu
            )
            relabels += 1
            iter_gr = strategy.next_iteration(loop, max_level)
        if config.engine == "serialized":
            act_exists, work = push_kernel_all_columns_serialized(
                graph, state.mu_row, state.mu_col, state.psi_row, state.psi_col, rng=rng
            )
        else:
            act_exists, work = push_kernel_all_columns(
                graph,
                state.mu_row,
                state.mu_col,
                state.psi_row,
                state.psi_col,
                wave_size=max(1, config.waves_in_flight) * gpu.spec.total_cores,
            )
        gpu.charge_kernel("g-pr-krnl", work)
        loop += 1
    return loop, relabels


def _run_active_list(
    graph: BipartiteGraph,
    state: _RunState,
    strategy: GlobalRelabelStrategy,
    gpu: VirtualGPU,
    config: GPRConfig,
    variant: GPRVariant,
    max_iterations: int,
) -> tuple[int, int]:
    """Algorithm 7: the active-list variants (with and without shrinking)."""
    unmatched = np.flatnonzero(state.mu_col == UNMATCHED).astype(np.int64)
    ac = gpu.shadow_wrap(unmatched.copy(), "ac")
    ap = gpu.shadow_wrap(unmatched.copy(), "ap")
    ia = gpu.shadow_wrap(np.full(graph.n_cols, -1, dtype=np.int64), "ia")

    loop = 0
    iter_gr = 0
    relabels = 0
    shrink_pending = False
    act_exists = True
    while act_exists:
        if loop >= max_iterations:
            raise RuntimeError(
                f"G-PR-{variant.value} exceeded {max_iterations} iterations on {graph.name!r}; "
                "this indicates a livelock — please report it"
            )
        if loop == iter_gr:
            max_level = gpu_global_relabel(
                graph, state.mu_row, state.mu_col, state.psi_row, state.psi_col, gpu
            )
            relabels += 1
            iter_gr = strategy.next_iteration(loop, max_level)
            shrink_pending = True

        use_shrink = (
            variant is GPRVariant.SHRINK
            and shrink_pending
            and len(ac) >= config.shrink_threshold
        )
        if use_shrink:
            act_exists, ac, ap, work = shrink_kernel(
                state.mu_row, state.mu_col, ac, ap, ia, loop
            )
            gpu.charge_kernel("g-pr-shrkrnl", work)
            # The shrink kernel compacts into freshly allocated lists; rewrap
            # them so shadow mode keeps recording accesses to the new buffers.
            ac = gpu.shadow_wrap(ac, "ac")
            ap = gpu.shadow_wrap(ap, "ap")
            shrink_pending = False
        else:
            act_exists, work = init_active_kernel(state.mu_row, state.mu_col, ac, ap, ia, loop)
            gpu.charge_kernel("g-pr-initkrnl", work)

        if act_exists:
            work = push_kernel_active_list(
                graph,
                state.mu_row,
                state.mu_col,
                state.psi_row,
                state.psi_col,
                ac,
                ap,
                ia,
                loop,
                wave_size=max(1, config.waves_in_flight) * gpu.spec.total_cores,
            )
            gpu.charge_kernel("g-pr-pushkrnl", work)
            ac, ap = ap, ac
        loop += 1

    # The worklist must cover every active column: when it drains, no column
    # may remain active (sanity check, costs one vectorised pass on the host).
    if active_columns_mask(state.mu_row, state.mu_col).any():  # pragma: no cover - defensive
        raise RuntimeError("active-list invariant violated: worklist drained with active columns left")
    return loop, relabels
