"""Unified public API and dispatch pipeline over every matching algorithm.

Every caller — :func:`max_bipartite_matching`, the CLI, the benchmark
harness and the batched :mod:`repro.service` — goes through the same two
steps:

1. :func:`resolve_algorithm` turns an algorithm name plus keyword arguments
   into an :class:`ExecutionPlan`: the registry entry, a fully-built config
   object and the validated extra arguments.  Unknown keywords raise
   ``TypeError`` uniformly across the registry, and an explicit ``config=``
   conflicts with config-field keywords instead of silently winning.
2. :meth:`ExecutionPlan.run` executes the plan on a graph (optionally from a
   warm-start matching).  Plans are immutable and graph-independent, so one
   plan can be reused across a whole batch of graphs.

The legacy ``ALGORITHMS`` callable mapping is deprecated: accessing it emits
a :class:`DeprecationWarning` and returns a thin view onto the same pipeline
(each value is ``resolve_algorithm(name, **kwargs).run(graph, initial)``
behind a plain callable).  Enumerate :data:`SPECS` instead.
"""

from __future__ import annotations

import dataclasses
import difflib
import enum
import warnings
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Any

from repro.capacity.augment import capacitated_augment_matching
from repro.capacity.auction import capacitated_auction_matching
from repro.capacity.expand import capacitated_expand_matching
from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.device import VirtualGPU
from repro.matching import Matching, MatchingResult
from repro.multicore.pdbfs import PDBFSConfig, pdbfs_matching
from repro.seq.greedy import cheap_matching, karp_sipser_matching
from repro.seq.hopcroft_karp import hkdw_matching, hopcroft_karp_matching
from repro.seq.pothen_fan import pothen_fan_matching
from repro.seq.push_relabel import PushRelabelConfig, push_relabel_matching
from repro.weighted.auction import AuctionConfig, weighted_auction_matching
from repro.weighted.sap import SAPConfig, weighted_sap_matching

__all__ = [
    "MAXIMUM_ALGORITHMS",
    "SPECS",
    "AlgorithmSpec",
    "ExecutionPlan",
    "max_bipartite_matching",
    "resolve_algorithm",
]


# --------------------------------------------------------------------- specs
@dataclass(frozen=True)
class AlgorithmSpec:
    """Registry entry describing one algorithm and what it accepts.

    Attributes
    ----------
    name:
        Canonical (lower-case) registry key.
    runner:
        ``runner(graph, initial, config, device, **extra) -> MatchingResult``.
        Runners for algorithms without a config or device simply ignore those
        positions; argument validation happens in :func:`resolve_algorithm`,
        never here.
    maximum:
        Whether the algorithm guarantees a *maximum* cardinality matching.
    config_cls:
        Dataclass of tuning knobs (``GPRConfig``, ``PushRelabelConfig``,
        ``PDBFSConfig``) or ``None`` for knob-free algorithms.
    config_overrides:
        Config fields pinned by the registry entry (e.g. the G-PR variant);
        they cannot be overridden by keyword arguments.
    extra_params:
        Non-config keyword arguments the runner accepts (e.g. ``max_phases``
        for G-HKDW, ``seed`` for the greedy heuristics).
    accepts_device:
        Whether the algorithm runs on the virtual GPU.
    accepts_initial:
        Whether the algorithm consumes a warm-start matching (the greedy
        initialisation heuristics do not — they *produce* one).
    entropy_seeded:
        Whether the runner draws from an entropy-seeded RNG when no ``seed``
        is given, making unseeded runs non-deterministic (Karp–Sipser);
        consumers like the service's result cache must not memoize such runs.
    weighted:
        Whether the algorithm optimises edge weights (the
        :mod:`repro.weighted` solvers).  Weighted algorithms still return a
        maximum-cardinality matching on weightless graphs (unit weights).
    capacitated:
        Whether the algorithm honours per-vertex b-matching capacities (the
        :mod:`repro.capacity` solvers).  Capacitated algorithms return a
        :class:`repro.capacity.CapacitatedMatching` on capacitated graphs
        and delegate to their uncapacitated counterpart (bit-identical
        plain :class:`~repro.matching.Matching`) on capacity-free graphs.
    """

    name: str
    runner: Callable[..., MatchingResult]
    maximum: bool = True
    config_cls: type | None = None
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    extra_params: tuple[str, ...] = ()
    accepts_device: bool = False
    accepts_initial: bool = True
    entropy_seeded: bool = False
    weighted: bool = False
    capacitated: bool = False

    def config_fields(self) -> frozenset[str]:
        """Config-dataclass fields settable through keyword arguments."""
        if self.config_cls is None:
            return frozenset()
        names = {f.name for f in dataclasses.fields(self.config_cls)}
        return frozenset(names - set(self.config_overrides))

    def accepted_kwargs(self) -> tuple[str, ...]:
        """Every keyword :func:`resolve_algorithm` accepts for this entry."""
        return tuple(sorted(self.config_fields() | set(self.extra_params)))


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved, reusable recipe for running one algorithm.

    A plan is graph-independent: build it once with
    :func:`resolve_algorithm`, then :meth:`run` it on any number of graphs.
    ``device_factory`` (rather than a device instance) is stored so every run
    of a GPU algorithm gets a fresh virtual device and therefore a clean
    cost-model ledger.
    """

    algorithm: str
    spec: AlgorithmSpec
    config: Any | None = None
    device_factory: Callable[[], VirtualGPU] | None = None
    extra: tuple[tuple[str, Any], ...] = ()
    #: When set, :meth:`run` partitions the graph into this many column-block
    #: shards and solves through :class:`repro.sharded.ShardedMatcher`
    #: (per-shard jobs + boundary reconciliation) instead of one kernel call.
    shards: int | None = None
    partition_method: str | None = None

    @property
    def deterministic(self) -> bool:
        """Whether repeated runs of this plan return identical results.

        ``False`` only for entropy-seeded heuristics run without a ``seed``
        (each run draws a fresh random sample); such plans must not be
        memoized or deduplicated.
        """
        return not (self.spec.entropy_seeded and dict(self.extra).get("seed") is None)

    def run(self, graph: BipartiteGraph, initial: Matching | None = None) -> MatchingResult:
        """Execute the plan on ``graph``, optionally from a warm-start matching."""
        if self.shards is not None:
            return self._run_sharded(graph, initial)
        if initial is not None and not self.spec.accepts_initial:
            raise TypeError(
                f"algorithm {self.algorithm!r} produces an initial matching; "
                "it does not accept a warm-start"
            )
        if initial is not None:
            initial.check_compatible(graph, context="warm-start matching")
        device = None
        if self.spec.accepts_device and self.device_factory is not None:
            device = self.device_factory()
        return self.spec.runner(graph, initial, self.config, device, **dict(self.extra))

    def _run_sharded(self, graph, initial):
        # Imported lazily: repro.sharded pulls in the engine, which resolves
        # plans through this module.
        from repro.sharded.matcher import ShardedMatcher
        from repro.sharded.partition import ShardedBipartiteGraph, partition_graph

        if initial is not None:
            raise TypeError(
                f"sharded execution of {self.algorithm!r} does not accept a warm-start"
            )
        if isinstance(graph, ShardedBipartiteGraph):
            sharded = graph
        else:
            sharded = partition_graph(graph, self.shards, self.partition_method)
        inner = dataclasses.replace(self, shards=None, partition_method=None)
        matcher = ShardedMatcher(
            sharded, self.algorithm, plan=inner, kwargs=dict(self.extra)
        )
        return matcher.run()


# ------------------------------------------------------------------- runners
def _run_gpr(graph, initial, config, device, **_):
    return gpr_matching(graph, initial=initial, config=config, device=device)


def _run_ghkdw(graph, initial, config, device, *, max_phases=None):
    return ghkdw_matching(graph, initial=initial, device=device, max_phases=max_phases)


def _run_pdbfs(graph, initial, config, device, **_):
    return pdbfs_matching(graph, initial=initial, config=config)


def _run_pr(graph, initial, config, device, **_):
    return push_relabel_matching(graph, initial=initial, config=config)


def _run_hk(graph, initial, config, device, **_):
    return hopcroft_karp_matching(graph, initial=initial)


def _run_hkdw(graph, initial, config, device, **_):
    return hkdw_matching(graph, initial=initial)


def _run_pfp(graph, initial, config, device, **_):
    return pothen_fan_matching(graph, initial=initial)


def _run_cheap(graph, initial, config, device, *, seed=None):
    return cheap_matching(graph, seed=seed)


def _run_karp_sipser(graph, initial, config, device, *, seed=None):
    return karp_sipser_matching(graph, seed=seed)


def _run_weighted_sap(graph, initial, config, device, **_):
    return weighted_sap_matching(graph, config=config)


def _run_weighted_auction(graph, initial, config, device, **_):
    return weighted_auction_matching(graph, config=config, device=device)


def _run_b_expand(graph, initial, config, device, *, inner="hk"):
    return capacitated_expand_matching(graph, inner=inner)


def _run_b_aug(graph, initial, config, device, **_):
    return capacitated_augment_matching(graph, initial=initial)


def _run_b_auction(graph, initial, config, device, **_):
    return capacitated_auction_matching(graph, config=config, device=device)


def _gpr_spec(name: str, variant: GPRVariant) -> AlgorithmSpec:
    return AlgorithmSpec(
        name=name,
        runner=_run_gpr,
        config_cls=GPRConfig,
        config_overrides={"variant": variant},
        accepts_device=True,
    )


#: Registry of canonical algorithm name → :class:`AlgorithmSpec`.
SPECS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        # the paper's contribution (three variants; "g-pr" is the final configuration)
        _gpr_spec("g-pr", GPRVariant.SHRINK),
        _gpr_spec("g-pr-first", GPRVariant.FIRST),
        _gpr_spec("g-pr-noshrink", GPRVariant.NO_SHRINK),
        _gpr_spec("g-pr-shrink", GPRVariant.SHRINK),
        # GPU comparator
        AlgorithmSpec(
            name="g-hkdw",
            runner=_run_ghkdw,
            extra_params=("max_phases",),
            accepts_device=True,
        ),
        # multicore comparator
        AlgorithmSpec(name="p-dbfs", runner=_run_pdbfs, config_cls=PDBFSConfig),
        # sequential baselines
        AlgorithmSpec(name="pr", runner=_run_pr, config_cls=PushRelabelConfig),
        AlgorithmSpec(name="hk", runner=_run_hk),
        AlgorithmSpec(name="hkdw", runner=_run_hkdw),
        AlgorithmSpec(name="pfp", runner=_run_pfp),
        # weighted assignment (optimal weight among maximum-cardinality
        # matchings; unit weights on structural graphs).  Neither consumes a
        # warm start — their dual certificates must be built from scratch.
        AlgorithmSpec(
            name="weighted-sap",
            runner=_run_weighted_sap,
            config_cls=SAPConfig,
            accepts_initial=False,
            weighted=True,
        ),
        AlgorithmSpec(
            name="weighted-auction",
            runner=_run_weighted_auction,
            config_cls=AuctionConfig,
            accepts_device=True,
            accepts_initial=False,
            weighted=True,
        ),
        # capacitated b-matching (per-vertex b_row / b_col capacities on the
        # graph; each delegates to its uncapacitated counterpart when every
        # capacity is 1, so capacity-free runs are bit-identical to it)
        AlgorithmSpec(
            name="b-expand",
            runner=_run_b_expand,
            extra_params=("inner",),
            accepts_initial=False,
            capacitated=True,
        ),
        AlgorithmSpec(
            name="b-aug",
            runner=_run_b_aug,
            capacitated=True,
        ),
        AlgorithmSpec(
            name="b-auction",
            runner=_run_b_auction,
            config_cls=AuctionConfig,
            accepts_device=True,
            accepts_initial=False,
            weighted=True,
            capacitated=True,
        ),
        # greedy heuristics (not maximum; exposed for initialisation studies)
        AlgorithmSpec(
            name="cheap",
            runner=_run_cheap,
            maximum=False,
            extra_params=("seed",),
            accepts_initial=False,
        ),
        AlgorithmSpec(
            name="karp-sipser",
            runner=_run_karp_sipser,
            maximum=False,
            extra_params=("seed",),
            accepts_initial=False,
            entropy_seeded=True,
        ),
    )
}

#: Algorithms guaranteed to return a *maximum* matching.
MAXIMUM_ALGORITHMS = tuple(name for name, spec in SPECS.items() if spec.maximum)


# ------------------------------------------------------------------ pipeline
def resolve_algorithm(
    name: str,
    *,
    config: Any | None = None,
    device: VirtualGPU | None = None,
    device_factory: Callable[[], VirtualGPU] | None = None,
    shards: int | None = None,
    partition: str | None = None,
    **kwargs,
) -> ExecutionPlan:
    """Resolve an algorithm name and keyword arguments into an :class:`ExecutionPlan`.

    Parameters
    ----------
    name:
        Registry key (case-insensitive), e.g. ``"g-pr"`` or ``"pr"``.
    config:
        Pre-built config object; mutually exclusive with config-field
        keywords.
    device / device_factory:
        For GPU algorithms: a virtual device to reuse, or a factory invoked
        once per :meth:`ExecutionPlan.run` (so every run gets a fresh
        cost-model ledger).  Mutually exclusive.
    shards / partition:
        When ``shards`` is given, :meth:`ExecutionPlan.run` executes through
        the :mod:`repro.sharded` subsystem: the graph is column-block
        partitioned into ``shards`` shards (``partition`` is one of
        :data:`repro.sharded.PARTITION_METHODS`; default ``"contiguous"``),
        each shard is solved with this algorithm, and boundary
        reconciliation restores global maximality.  Requires a
        maximum-cardinality, non-weighted, uncapacitated algorithm.
    **kwargs:
        Config fields (e.g. ``strategy="fix:10"``, ``global_relabel_k=0.7``,
        ``n_threads=4``) or the algorithm's extra parameters (e.g.
        ``max_phases``, ``seed``).  Anything else raises ``TypeError`` —
        uniformly, for every algorithm in the registry.

    Raises
    ------
    ValueError
        Unknown algorithm name, ``shards < 1``, or an unknown partition
        method.
    TypeError
        Unknown keyword arguments, a ``config`` of the wrong type, a
        ``config`` combined with config-field keywords, a ``device`` for
        an algorithm that does not accept one, ``partition=`` without
        ``shards=``, or ``shards=`` with an algorithm that cannot run
        sharded.
    """
    key = str(name).strip().lower()
    if key not in SPECS:
        close = difflib.get_close_matches(key, SPECS, n=1, cutoff=0.6)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown algorithm {name!r}{hint}; available: {', '.join(sorted(SPECS))}"
        )
    spec = SPECS[key]

    partition_method: str | None = None
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not spec.maximum or spec.weighted or spec.capacitated:
            raise TypeError(
                f"algorithm {key!r} cannot run sharded: sharded matching "
                "needs a maximum-cardinality, cardinality-only, "
                "uncapacitated algorithm"
            )
        from repro.sharded.partition import PARTITION_METHODS

        partition_method = "contiguous" if partition is None else str(partition).lower()
        if partition_method not in PARTITION_METHODS:
            raise ValueError(
                f"unknown partition method {partition!r}; "
                f"available: {', '.join(PARTITION_METHODS)}"
            )
    elif partition is not None:
        raise TypeError("partition= requires shards=")

    if device is not None and device_factory is not None:
        raise TypeError("pass either device= or device_factory=, not both")
    if (device is not None or device_factory is not None) and not spec.accepts_device:
        raise TypeError(f"algorithm {key!r} does not run on a device")
    if device is not None:
        def device_factory(_device=device):  # noqa: F811 - deliberate rebinding
            return _device

    config_fields = spec.config_fields()
    config_kwargs = {k: v for k, v in kwargs.items() if k in config_fields}
    extra_kwargs = {k: v for k, v in kwargs.items() if k in spec.extra_params}
    unknown = sorted(set(kwargs) - set(config_kwargs) - set(extra_kwargs))
    if unknown:
        accepted = spec.accepted_kwargs()
        raise TypeError(
            f"algorithm {key!r} got unexpected keyword argument(s) {unknown}; "
            f"accepted: {list(accepted) if accepted else 'none'}"
        )

    if config is not None:
        if spec.config_cls is None:
            raise TypeError(f"algorithm {key!r} does not take a config")
        if not isinstance(config, spec.config_cls):
            raise TypeError(
                f"algorithm {key!r} expects a {spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        if config_kwargs:
            raise TypeError(
                f"pass either config= or config field keyword(s) "
                f"{sorted(config_kwargs)}, not both"
            )
        for field_name, pinned in spec.config_overrides.items():
            given = getattr(config, field_name)
            if isinstance(pinned, enum.Enum):
                try:
                    given = type(pinned)(given)
                except ValueError:
                    pass
            if given != pinned:
                raise TypeError(
                    f"algorithm {key!r} pins {field_name}={pinned!r}; "
                    f"got a config with {field_name}={getattr(config, field_name)!r}"
                )
    elif spec.config_cls is not None:
        config = spec.config_cls(**{**dict(spec.config_overrides), **config_kwargs})

    return ExecutionPlan(
        algorithm=key,
        spec=spec,
        config=config,
        device_factory=device_factory,
        extra=tuple(sorted(extra_kwargs.items())),
        shards=shards,
        partition_method=partition_method,
    )


def max_bipartite_matching(
    graph: BipartiteGraph,
    algorithm: str = "g-pr",
    initial: Matching | None = None,
    **kwargs,
) -> MatchingResult:
    """Compute a matching of ``graph`` with the selected algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    algorithm:
        One of :data:`SPECS` (case-insensitive).  ``"g-pr"`` — the
        paper's final configuration (active list + shrinking, adaptive 0.7
        global relabeling) — is the default.  All entries except ``"cheap"``
        and ``"karp-sipser"`` return a maximum cardinality matching; the
        weighted solvers (``"weighted-sap"``, ``"weighted-auction"``)
        additionally optimise the graph's edge weights among the
        maximum-cardinality matchings (``objective="max"`` / ``"min"``) and
        attach a dual optimality certificate to ``result.duals``.
    initial:
        Optional starting matching; by default every algorithm starts from
        the cheap greedy matching, as in the paper's experiments.
    **kwargs:
        Forwarded to :func:`resolve_algorithm` — either a pre-built
        ``config=`` / ``device=``, or individual config fields such as
        ``strategy="fix:10"`` or ``global_relabel_k=0.7``.  Unknown keywords
        raise ``TypeError``.

    Returns
    -------
    MatchingResult

    Raises
    ------
    ValueError
        For an unknown algorithm name.
    TypeError
        For keyword arguments the algorithm does not accept.

    Examples
    --------
    >>> from repro.generators import uniform_random_bipartite
    >>> g = uniform_random_bipartite(500, 500, avg_degree=4, seed=0)
    >>> gpu = max_bipartite_matching(g, "g-pr")
    >>> cpu = max_bipartite_matching(g, "pr")
    >>> gpu.cardinality == cpu.cardinality
    True
    """
    return resolve_algorithm(algorithm, **kwargs).run(graph, initial)


# ------------------------------------------------- deprecated legacy registry
def _registry_callable(key: str) -> Callable[..., MatchingResult]:
    def run(graph, initial=None, **kwargs):
        return resolve_algorithm(key, **kwargs).run(graph, initial)

    run.__name__ = f"run_{key.replace('-', '_')}"
    run.__qualname__ = run.__name__
    run.__doc__ = f"Dispatch {key!r} through :func:`resolve_algorithm`."
    return run


#: Built on first deprecated access and then reused, so legacy code relying
#: on a stable mapping (mutation, identity of the wrappers) keeps working.
_LEGACY_ALGORITHMS: dict[str, Callable[..., MatchingResult]] | None = None


def __getattr__(name: str) -> Any:
    # PEP 562 shim: the old ALGORITHMS callable mapping still works but warns.
    if name == "ALGORITHMS":
        warnings.warn(
            "repro.core.api.ALGORITHMS is deprecated; enumerate SPECS or call "
            "resolve_algorithm(name, **kwargs).run(graph, initial) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        global _LEGACY_ALGORITHMS
        if _LEGACY_ALGORITHMS is None:
            _LEGACY_ALGORITHMS = {key: _registry_callable(key) for key in SPECS}
        return _LEGACY_ALGORITHMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
