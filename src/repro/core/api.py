"""Unified public API over every matching algorithm in the library."""

from __future__ import annotations

from typing import Callable

from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.device import VirtualGPU
from repro.matching import Matching, MatchingResult
from repro.multicore.pdbfs import PDBFSConfig, pdbfs_matching
from repro.seq.greedy import cheap_matching, karp_sipser_matching
from repro.seq.hopcroft_karp import hkdw_matching, hopcroft_karp_matching
from repro.seq.pothen_fan import pothen_fan_matching
from repro.seq.push_relabel import PushRelabelConfig, push_relabel_matching

__all__ = ["ALGORITHMS", "max_bipartite_matching"]


def _gpr_variant(variant: GPRVariant) -> Callable[..., MatchingResult]:
    def run(graph, initial=None, *, config: GPRConfig | None = None, device: VirtualGPU | None = None, **kwargs):
        if config is None:
            config = GPRConfig(variant=variant, **kwargs)
        return gpr_matching(graph, initial=initial, config=config, device=device)

    return run


def _pr(graph, initial=None, *, config: PushRelabelConfig | None = None, **kwargs):
    if config is None and kwargs:
        config = PushRelabelConfig(**kwargs)
    return push_relabel_matching(graph, initial=initial, config=config)


def _pdbfs(graph, initial=None, *, config: PDBFSConfig | None = None, **kwargs):
    if config is None and kwargs:
        config = PDBFSConfig(**kwargs)
    return pdbfs_matching(graph, initial=initial, config=config)


#: Registry of algorithm name → callable.  Keys are the names accepted by
#: :func:`max_bipartite_matching` and by the CLI / benchmark harness.
ALGORITHMS: dict[str, Callable[..., MatchingResult]] = {
    # the paper's contribution (three variants; "g-pr" is the final configuration)
    "g-pr": _gpr_variant(GPRVariant.SHRINK),
    "g-pr-first": _gpr_variant(GPRVariant.FIRST),
    "g-pr-noshrink": _gpr_variant(GPRVariant.NO_SHRINK),
    "g-pr-shrink": _gpr_variant(GPRVariant.SHRINK),
    # GPU comparator
    "g-hkdw": lambda graph, initial=None, *, device=None, **kw: ghkdw_matching(
        graph, initial=initial, device=device, **kw
    ),
    # multicore comparator
    "p-dbfs": _pdbfs,
    # sequential baselines
    "pr": _pr,
    "hk": lambda graph, initial=None, **kw: hopcroft_karp_matching(graph, initial=initial),
    "hkdw": lambda graph, initial=None, **kw: hkdw_matching(graph, initial=initial),
    "pfp": lambda graph, initial=None, **kw: pothen_fan_matching(graph, initial=initial),
    # greedy heuristics (not maximum; exposed for initialisation studies)
    "cheap": lambda graph, initial=None, **kw: cheap_matching(graph, **kw),
    "karp-sipser": lambda graph, initial=None, **kw: karp_sipser_matching(graph, **kw),
}

#: Algorithms guaranteed to return a *maximum* matching.
MAXIMUM_ALGORITHMS = (
    "g-pr",
    "g-pr-first",
    "g-pr-noshrink",
    "g-pr-shrink",
    "g-hkdw",
    "p-dbfs",
    "pr",
    "hk",
    "hkdw",
    "pfp",
)


def max_bipartite_matching(
    graph: BipartiteGraph,
    algorithm: str = "g-pr",
    initial: Matching | None = None,
    **kwargs,
) -> MatchingResult:
    """Compute a matching of ``graph`` with the selected algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    algorithm:
        One of :data:`ALGORITHMS` (case-insensitive).  ``"g-pr"`` — the
        paper's final configuration (active list + shrinking, adaptive 0.7
        global relabeling) — is the default.  All entries except ``"cheap"``
        and ``"karp-sipser"`` return a maximum cardinality matching.
    initial:
        Optional starting matching; by default every algorithm starts from
        the cheap greedy matching, as in the paper's experiments.
    **kwargs:
        Forwarded to the algorithm (e.g. ``config=GPRConfig(...)`` or
        ``device=VirtualGPU(...)`` for the GPU algorithms,
        ``config=PushRelabelConfig(...)`` for the sequential PR).

    Returns
    -------
    MatchingResult

    Raises
    ------
    ValueError
        For an unknown algorithm name.

    Examples
    --------
    >>> from repro.generators import uniform_random_bipartite
    >>> g = uniform_random_bipartite(500, 500, avg_degree=4, seed=0)
    >>> gpu = max_bipartite_matching(g, "g-pr")
    >>> cpu = max_bipartite_matching(g, "pr")
    >>> gpu.cardinality == cpu.cardinality
    True
    """
    key = algorithm.strip().lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(sorted(ALGORITHMS))}"
        )
    return ALGORITHMS[key](graph, initial, **kwargs)
