"""G-HKDW: the GPU augmenting-path comparator.

The paper compares G-PR against the authors' earlier GPU implementation of
the HKDW algorithm (Hopcroft–Karp with the Duff–Wassel extra augmentation
round).  We reproduce it on the same virtual device:

* **BFS phase** — level-synchronous kernels build the shortest-augmenting-
  path level structure from all unmatched columns, one kernel launch per
  level (the frontier columns are the threads), exactly like the global
  relabeling of G-PR but starting from the column side.
* **Augmentation phase** — one logical thread per unmatched column walks a
  level-restricted alternating DFS and claims rows as it goes; claims are
  serialised within the launch (a legal interleaving of the lock-free
  kernel), so the per-thread work of the longest path bounds the kernel and
  the cost model charges the poor parallelism of this phase — which is the
  structural reason the paper finds G-PR ahead of G-HKDW on most instances.
* **Duff–Wassel round** — a second augmentation kernel without the level
  restriction, run from the columns that are still unmatched.

Phases repeat until the BFS proves no augmenting path exists.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compiled import dispatch as _compiled
from repro.graph.bipartite import BipartiteGraph
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["ghkdw_matching"]

_INF = np.iinfo(np.int64).max


def _bfs_phase(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    gpu: VirtualGPU,
) -> tuple[np.ndarray, bool]:
    """Level-synchronous BFS from unmatched columns; one kernel launch per level.

    Returns the column level array and whether an unmatched row was reached
    (i.e. an augmenting path exists).
    """
    n_cols = graph.n_cols
    level = gpu.shadow_wrap(np.full(n_cols, _INF, dtype=np.int64), "level")
    frontier = np.flatnonzero(mu_col == UNMATCHED)
    level[frontier] = 0
    reached_free_row = False
    current = 0
    col_ptr, col_ind = graph.col_ptr, graph.col_ind

    while len(frontier):
        degrees = col_ptr[frontier + 1] - col_ptr[frontier]
        # Like the paper's G-GR-KRNL, each BFS level launches one thread per
        # column vertex; only frontier columns scan their adjacency, the rest
        # just test their level.  This is what makes high-diameter graphs
        # expensive for the level-synchronous GPU codes.
        thread_work = np.ones(n_cols, dtype=np.float64)
        thread_work[frontier] += degrees.astype(np.float64)

        total = int(degrees.sum())
        if total == 0:
            gpu.charge_kernel("ghkdw-bfs", thread_work)
            break
        offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        flat = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], degrees) + np.repeat(
            col_ptr[frontier], degrees
        )
        rows = col_ind[flat]
        row_matches = mu_row[rows]
        if np.any(row_matches == UNMATCHED):
            reached_free_row = True
        next_cols = row_matches[row_matches >= 0]
        next_cols = np.unique(next_cols)
        next_cols = next_cols[level[next_cols] == _INF]
        level[next_cols] = current + 1
        # Charge-after-access: this level's frontier scan and level writes
        # belong to the launch just completed (same value and order as the
        # golden counters — only the call site moved past the accesses).
        gpu.charge_kernel("ghkdw-bfs", thread_work)
        frontier = next_cols
        current += 1
        if reached_free_row:
            # HK stops the BFS at the level of the shortest augmenting path.
            break
    return level, reached_free_row


def _augment_phase(
    graph: BipartiteGraph,
    mu_row: np.ndarray,
    mu_col: np.ndarray,
    level: np.ndarray,
    gpu: VirtualGPU,
    restrict_levels: bool,
    kernel_name: str,
    shared_claims: bool = True,
    use_level: bool = True,
) -> int:
    """One augmentation kernel: a claim-based alternating DFS per unmatched column.

    ``shared_claims`` models the lock-free row claiming of the GPU kernel
    (claims persist across threads of the launch); the fallback pass used to
    guarantee progress gives each thread a fresh claim set and no level
    restriction (``shared_claims=False, use_level=False``), which corresponds
    to the correction sweep of the original G-HKDW implementation.

    Returns the number of augmentations performed.
    """
    col_ptr, col_ind = graph.col_ptr, graph.col_ind
    start_cols = np.flatnonzero(mu_col == UNMATCHED)
    if use_level:
        start_cols = start_cols[level[start_cols] != _INF]
    if len(start_cols) == 0:
        gpu.charge_kernel(kernel_name, np.ones(1))
        return 0
    fn = _compiled.implementation_for("ghkdw_augment")
    if fn is not None and not _compiled.recording(mu_row, mu_col, level):
        thread_work, augmented = fn(
            graph.col_ptr,
            graph.col_ind,
            mu_row,
            mu_col,
            level,
            start_cols,
            restrict_levels,
            use_level,
            shared_claims,
            graph.n_rows,
        )
        gpu.charge_kernel(kernel_name, thread_work)
        return int(augmented)
    row_claimed = np.zeros(graph.n_rows, dtype=bool)
    thread_work = np.ones(len(start_cols), dtype=np.float64)
    augmented = 0

    # hot-path compiled=ghkdw_augment
    for t, start in enumerate(start_cols):
        if not shared_claims:
            row_claimed = np.zeros(graph.n_rows, dtype=bool)
        stack: list[list[int]] = [[int(start), int(col_ptr[start])]]
        path_rows: list[int] = []
        work = 1.0
        success = False
        while stack and not success:
            v, idx = stack[-1]
            stop = int(col_ptr[v + 1])
            advanced = False
            while idx < stop:
                u = int(col_ind[idx])
                idx += 1
                work += 1.0
                if row_claimed[u]:
                    continue
                w = int(mu_row[u])
                if w == UNMATCHED:
                    row_claimed[u] = True
                    mu_row[u] = v
                    mu_col[v] = u
                    for depth in range(len(stack) - 2, -1, -1):
                        prev_col = stack[depth][0]
                        prev_row = path_rows[depth]
                        mu_row[prev_row] = prev_col
                        mu_col[prev_col] = prev_row
                    augmented += 1
                    success = True
                    break
                if use_level:
                    if restrict_levels and level[w] != level[v] + 1:
                        continue
                    if not restrict_levels and level[w] == _INF:
                        continue
                row_claimed[u] = True
                stack[-1][1] = idx
                path_rows.append(u)
                stack.append([w, int(col_ptr[w])])
                advanced = True
                break
            if success:
                break
            if advanced:
                continue
            stack[-1][1] = idx
            if idx >= stop:
                stack.pop()
                if path_rows:
                    path_rows.pop()
        thread_work[t] = work
    # end hot-path
    gpu.charge_kernel(kernel_name, thread_work)
    return augmented


def ghkdw_matching(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    device: VirtualGPU | None = None,
    max_phases: int | None = None,
) -> MatchingResult:
    """Maximum cardinality matching with the GPU HKDW comparator.

    Parameters mirror :func:`repro.core.gpr.gpr_matching`; the result's
    ``modeled_time`` is the GPU cost-model time of all BFS and augmentation
    kernels.
    """
    gpu = device or VirtualGPU(DeviceSpec())
    t0 = time.perf_counter()
    if initial is None:
        initial = cheap_matching(graph).matching
    else:
        initial = initial.copy().canonical()
    mu_row = gpu.shadow_wrap(initial.row_match.copy(), "mu_row")
    mu_col = gpu.shadow_wrap(initial.col_match.copy(), "mu_col")
    initial_cardinality = int(np.count_nonzero(mu_row >= 0))
    limit = max_phases if max_phases is not None else 4 * (graph.n_rows + graph.n_cols) + 16

    phases = 0
    augmentations = 0
    while True:
        if phases >= limit:
            raise RuntimeError(f"G-HKDW exceeded {limit} phases on {graph.name!r}")
        level, has_path = _bfs_phase(graph, mu_row, mu_col, gpu)
        phases += 1
        if not has_path:
            break
        got = _augment_phase(graph, mu_row, mu_col, level, gpu, True, "ghkdw-augment")
        got += _augment_phase(graph, mu_row, mu_col, level, gpu, False, "ghkdw-dw-augment")
        if got == 0:
            # The claim-based kernels can be blocked by each other's claims even
            # though an augmenting path exists; run the correction sweep
            # (fresh claims, no level restriction) to guarantee progress.
            got = _augment_phase(
                graph,
                mu_row,
                mu_col,
                level,
                gpu,
                False,
                "ghkdw-correction",
                shared_claims=False,
                use_level=False,
            )
        augmentations += got
        if got == 0:
            break

    wall = time.perf_counter() - t0
    counters = {
        "phases": phases,
        "augmentations": augmentations,
        "initial_matching": initial_cardinality,
        **gpu.ledger.counters(),
    }
    return MatchingResult.create(
        "G-HKDW",
        Matching(np.asarray(mu_row), np.asarray(mu_col)),
        counters=counters,
        modeled_time=gpu.ledger.total_seconds,
        wall_time=wall,
    )
