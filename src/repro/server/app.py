"""The asyncio matching server: HTTP/JSON over the execution engine.

A deliberately small HTTP/1.1 implementation on ``asyncio`` streams (no
third-party web framework — the container ships none), serving four routes:

``GET /healthz``
    Liveness probe.
``GET /metrics``
    The full metrics document (see :mod:`repro.server.metrics`).
``POST /v1/match``
    One matching request; the response is one JSON result row.  Shed
    requests get HTTP 429 with a machine-readable ``reason``.
``POST /v1/batch``
    Many requests from one tenant; the response streams newline-delimited
    JSON rows **in completion order** (chunked transfer encoding) via the
    engine's ``as_completed``, ending with a summary row.

Execution runs on the engine's backend threads/processes; the event loop
only parses, admits, submits and awaits.  Per-request deadlines map directly
onto the engine's :class:`~repro.engine.JobHandle` deadline path; quota
slots are released by the handle's done-callback, so a request that is
answered early (deadline grace) keeps holding its slot until its worker
actually finishes — in-flight accounting never undercounts busy workers.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any

from repro.engine import Engine, EngineSaturatedError, create_backend
from repro.engine import as_completed as engine_as_completed
from repro.engine.faults import FaultInjectingBackend, FaultSchedule
from repro.engine.handles import JobStatus
from repro.server.admission import AdmissionController, AdmissionError, QuotaPolicy
from repro.server.metrics import METRICS_SCHEMA, ServerMetrics
from repro.server.protocol import (
    GraphCache,
    ProtocolError,
    build_job,
    handle_row,
    parse_request,
    result_row,
)
from repro.service.cache import ResultCache

__all__ = ["MatchingServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}
_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100


def _encode_response(status: int, body: bytes, *, content_type: str = "application/json") -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Any) -> bytes:
    return _encode_response(status, json.dumps(payload).encode("utf-8"))


def _chunk(data: bytes) -> bytes:
    return f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"


class _Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict, body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def close_requested(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one HTTP/1.1 request; ``None`` on EOF or malformed framing."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    try:
        method, path, _version = line.decode("ascii").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        return None
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return None
    if length < 0 or length > _MAX_BODY:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
    return _Request(method, path.split("?", 1)[0], headers, body)


class MatchingServer:
    """A long-lived matching-as-a-service front end.

    Parameters
    ----------
    backend / workers:
        Engine execution backend (``"inline"`` / ``"thread"`` / ``"process"``
        / ``"device"``) and its pool size.
    policy:
        The :class:`~repro.server.admission.QuotaPolicy`; its
        ``max_queue_depth`` is also installed as the engine's
        ``max_inflight`` backpressure bound (defense in depth — a bypass of
        admission still cannot queue without bound).
    default_deadline:
        Deadline in seconds for requests that do not carry one (``None`` =
        no deadline).
    default_profile / default_seed:
        Defaults for suite-instance graph references.
    max_cache_entries / graph_cache_entries:
        Bounds of the warm result- and graph-caches.
    fault_schedule:
        A :class:`~repro.engine.faults.FaultSchedule` wrapping the backend in
        deterministic fault injection (the test/CI configuration); response
        rows then carry an ``injected_fault`` field for attribution.
    grace:
        Seconds past a request's deadline the server keeps awaiting the
        handle before answering ``timeout`` on its behalf.
    """

    def __init__(
        self,
        *,
        backend: str = "thread",
        workers: int = 4,
        policy: QuotaPolicy | None = None,
        default_deadline: float | None = None,
        default_profile: str = "small",
        default_seed: int = 20130421,
        max_cache_entries: int = 1024,
        graph_cache_entries: int = 128,
        fault_schedule: FaultSchedule | None = None,
        grace: float = 0.25,
        latency_window: int = 8192,
    ) -> None:
        self.policy = policy or QuotaPolicy()
        inner = create_backend(backend, max_workers=workers or None)
        self.fault_backend: FaultInjectingBackend | None = None
        if fault_schedule is not None and fault_schedule.any_faults:
            inner = FaultInjectingBackend(inner, fault_schedule)
            self.fault_backend = inner
        self.engine = Engine(
            backend=inner, own_backend=True, max_inflight=self.policy.max_queue_depth
        )
        self.admission = AdmissionController(self.policy)
        self.metrics = ServerMetrics(latency_window)
        self.results = ResultCache(max_cache_entries)
        self.graphs = GraphCache(graph_cache_entries)
        self.default_deadline = default_deadline
        self.default_profile = default_profile
        self.default_seed = default_seed
        self.grace = grace
        self.host: str | None = None
        self.port: int | None = None
        self._request_counter = 0
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def fault_injection(self) -> bool:
        return self.fault_backend is not None

    # ------------------------------------------------------------- lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (``port=0`` = ephemeral)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(self._on_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_until_stopped(self, ttl: float | None = None) -> None:
        """Serve until :meth:`stop` is called (or ``ttl`` seconds elapse)."""
        assert self._stop_event is not None, "call start() first"
        try:
            await asyncio.wait_for(self._stop_event.wait(), ttl)
        except asyncio.TimeoutError:
            pass
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        """Request shutdown (thread-safe; usable from signal handlers and tests)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)

    def start_in_background(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Run the server on its own event loop in a daemon thread.

        Blocks until the socket is bound; returns ``(host, port)``.  Stop it
        with :meth:`shutdown`.  This is how the tests, the latency benchmark
        and embedded callers boot a server.
        """
        started = threading.Event()
        failures: list[BaseException] = []

        def run() -> None:
            async def main() -> None:
                await self.start(host, port)
                started.set()
                await self.serve_until_stopped()

            try:
                asyncio.run(main())
            except BaseException as exc:  # surface bind errors to the caller
                failures.append(exc)
                started.set()

        self._thread = threading.Thread(target=run, name="repro-server", daemon=True)
        self._thread.start()
        started.wait()
        if failures:
            raise failures[0]
        return self.host, self.port

    def shutdown(self) -> None:
        """Stop serving, join the background thread and tear the engine down."""
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self.engine.shutdown()

    def __enter__(self) -> "MatchingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ connection
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                keep_alive = await self._route(request, writer)
                if not keep_alive or request.close_requested:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        self.metrics.record_request()
        try:
            if request.path == "/healthz" and request.method == "GET":
                writer.write(_json_response(200, {"status": "ok"}))
            elif request.path == "/metrics" and request.method == "GET":
                writer.write(_json_response(200, self.metrics_snapshot()))
            elif request.path == "/v1/match":
                if request.method != "POST":
                    writer.write(_json_response(405, {"error": "POST required"}))
                else:
                    status, payload = await self._serve_match(request.body)
                    writer.write(_json_response(status, payload))
            elif request.path == "/v1/batch":
                if request.method != "POST":
                    writer.write(_json_response(405, {"error": "POST required"}))
                else:
                    return await self._serve_batch(request.body, writer)
            else:
                writer.write(_json_response(404, {"error": f"no route {request.path!r}"}))
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # a 500 is server breakage: counted as leakage
            self.metrics.record_server_error()
            writer.write(_json_response(500, {"error": f"{type(exc).__name__}: {exc}"}))
        await writer.drain()
        return True

    # ----------------------------------------------------------------- match
    def _next_request_id(self) -> str:
        self._request_counter += 1
        return f"req-{self._request_counter}"

    def _parse(self, payload: Any, request_id: str, **overrides):
        return parse_request(
            payload,
            default_profile=self.default_profile,
            default_seed=self.default_seed,
            default_deadline=self.default_deadline,
            request_id=request_id,
            **overrides,
        )

    async def _serve_match(self, body: bytes) -> tuple[int, dict]:
        arrival = time.perf_counter()
        try:
            payload = json.loads(body or b"null")
            request = self._parse(payload, self._next_request_id())
            job = await asyncio.get_running_loop().run_in_executor(
                None, build_job, request, self.graphs
            )
        except (ProtocolError, ValueError, OSError) as exc:
            # ValueError/OSError cover graph materialisation (malformed or
            # unreadable Matrix-Market content discovered on first read).
            self.metrics.record_bad_request()
            return 400, {"error": str(exc)}
        try:
            ticket = self.admission.try_admit(request.tenant)
        except AdmissionError as exc:
            return 429, {"error": str(exc), "reason": exc.reason, "id": request.request_id}
        row, status = await self._execute(request, job, ticket, arrival)
        return status, row

    async def _execute(self, request, job, ticket, arrival: float) -> tuple[dict, int]:
        """Serve one admitted request: cache tier, then the engine."""
        cache_key = job.cache_key() if request.plan.deterministic else None
        if cache_key is not None:
            hit = self.results.get(cache_key)
            if hit is not None:
                ticket.release()
                latency = time.perf_counter() - arrival
                self.metrics.record_response("ok", latency, cached=True)
                return (
                    result_row(
                        request, status="ok", result=hit, cached=True, worker="cache",
                        server_seconds=latency, fault_injection=self.fault_injection,
                    ),
                    200,
                )
        loop = asyncio.get_running_loop()
        done = asyncio.Event()

        def on_done(_handle) -> None:
            ticket.release()
            try:
                loop.call_soon_threadsafe(done.set)
            except RuntimeError:
                pass  # loop already closed during shutdown

        try:
            handle = self.engine.submit(job, plan=request.plan, timeout=request.deadline)
        except EngineSaturatedError as exc:
            ticket.release()
            self.admission.rejected += 1
            reason = "engine-saturated"
            self.admission.rejected_by_reason[reason] = (
                self.admission.rejected_by_reason.get(reason, 0) + 1
            )
            return {"error": str(exc), "reason": reason, "id": request.request_id}, 429
        except RuntimeError as exc:  # engine shut down mid-request
            ticket.release()
            self.metrics.record_server_error()
            return {"error": str(exc), "id": request.request_id}, 500
        handle._add_done_callback(on_done)
        wait = None
        if handle.deadline is not None:
            wait = max(0.0, handle.deadline - time.monotonic()) + self.grace
        try:
            await asyncio.wait_for(done.wait(), wait)
        except asyncio.TimeoutError:
            # Answer the deadline on the handle's behalf; a pending job is
            # cancelled, a running one keeps its quota slot until it drains.
            handle.cancel()
        latency = time.perf_counter() - arrival
        row = handle_row(
            request, handle, server_seconds=latency, fault_injection=self.fault_injection
        )
        if handle.status is JobStatus.OK and cache_key is not None:
            self.results.put(cache_key, handle._result)
        self.metrics.record_response(
            row["status"], latency, injected=getattr(handle, "injected_fault", None)
        )
        return row, 200

    # ----------------------------------------------------------------- batch
    async def _serve_batch(self, body: bytes, writer: asyncio.StreamWriter) -> bool:
        arrival = time.perf_counter()
        try:
            payload = json.loads(body or b"null")
            if not isinstance(payload, dict):
                raise ProtocolError("batch payload must be an object")
            jobs_payload = payload.get("jobs")
            if not isinstance(jobs_payload, list) or not jobs_payload:
                raise ProtocolError("'jobs' must be a non-empty array")
            shared = {
                key: payload[key]
                for key in ("tenant", "deadline", "include_matching", "profile", "seed")
                if key in payload
            }
            requests = [
                self._parse({**shared, **entry}, f"job-{index}")
                if isinstance(entry, dict)
                else self._parse(entry, f"job-{index}")  # delegates the type error
                for index, entry in enumerate(jobs_payload)
            ]
            loop = asyncio.get_running_loop()
            jobs = [
                await loop.run_in_executor(None, build_job, request, self.graphs)
                for request in requests
            ]
        except (ProtocolError, ValueError, OSError) as exc:
            self.metrics.record_bad_request()
            writer.write(_json_response(400, {"error": str(exc)}))
            await writer.drain()
            return True

        writer.write(
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\nConnection: keep-alive\r\n\r\n".encode("ascii")
        )
        counts = {"ok": 0, "failed": 0, "timeout": 0, "cancelled": 0,
                  "rejected": 0, "cached": 0}

        async def emit(row: dict) -> None:
            writer.write(_chunk((json.dumps(row) + "\n").encode("utf-8")))
            await writer.drain()

        pending: list[tuple[Any, Any]] = []  # (request, handle)
        by_handle: dict[int, Any] = {}
        for request, job in zip(requests, jobs, strict=True):
            # Admission is per job: overflow is shed as a row, siblings run.
            try:
                ticket = self.admission.try_admit(request.tenant)
            except AdmissionError as exc:
                counts["rejected"] += 1
                await emit({
                    "type": "result", **request.describe(),
                    "status": "rejected", "reason": exc.reason, "error": str(exc),
                })
                continue
            cache_key = job.cache_key() if request.plan.deterministic else None
            hit = self.results.get(cache_key) if cache_key is not None else None
            if hit is not None:
                ticket.release()
                latency = time.perf_counter() - arrival
                counts["ok"] += 1
                counts["cached"] += 1
                self.metrics.record_response("ok", latency, cached=True)
                await emit(result_row(
                    request, status="ok", result=hit, cached=True, worker="cache",
                    server_seconds=latency, fault_injection=self.fault_injection,
                ))
                continue
            try:
                handle = self.engine.submit(job, plan=request.plan, timeout=request.deadline)
            except (EngineSaturatedError, RuntimeError) as exc:
                ticket.release()
                counts["rejected"] += 1
                self.admission.rejected += 1
                self.admission.rejected_by_reason["engine-saturated"] = (
                    self.admission.rejected_by_reason.get("engine-saturated", 0) + 1
                )
                await emit({
                    "type": "result", **request.describe(),
                    "status": "rejected", "reason": "engine-saturated", "error": str(exc),
                })
                continue
            handle._add_done_callback(lambda _h, t=ticket: t.release())
            pending.append((request, handle))
            by_handle[id(handle)] = (request, cache_key)

        if pending:
            loop = asyncio.get_running_loop()
            queue: asyncio.Queue = asyncio.Queue()

            def pump() -> None:
                try:
                    for finished in engine_as_completed([h for _, h in pending]):
                        loop.call_soon_threadsafe(queue.put_nowait, finished)
                finally:
                    try:
                        loop.call_soon_threadsafe(queue.put_nowait, None)
                    except RuntimeError:
                        pass

            threading.Thread(target=pump, name="repro-batch-pump", daemon=True).start()
            while True:
                finished = await queue.get()
                if finished is None:
                    break
                request, cache_key = by_handle[id(finished)]
                latency = time.perf_counter() - arrival
                row = handle_row(
                    request, finished, server_seconds=latency,
                    fault_injection=self.fault_injection,
                )
                if finished.status is JobStatus.OK and cache_key is not None:
                    self.results.put(cache_key, finished._result)
                counts[row["status"]] = counts.get(row["status"], 0) + 1
                self.metrics.record_response(
                    row["status"], latency,
                    injected=getattr(finished, "injected_fault", None),
                )
                await emit(row)

        await emit({
            "type": "summary",
            "jobs": len(requests),
            "admitted": len(requests) - counts["rejected"],
            "wall_seconds": round(time.perf_counter() - arrival, 6),
            **counts,
        })
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return True

    # --------------------------------------------------------------- metrics
    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` document: counters + admission + caches + engine."""
        doc: dict[str, Any] = {"schema": METRICS_SCHEMA}
        doc.update(self.metrics.snapshot())
        admission = self.admission.snapshot()
        doc["admission"] = admission
        doc["queue"] = {"depth": admission["depth"], "peak_depth": admission["peak_depth"]}
        lookups = self.results.hits + self.results.misses
        doc["cache"] = {
            "result": {
                "hits": self.results.hits,
                "misses": self.results.misses,
                "entries": len(self.results),
                "hit_rate": self.results.hits / lookups if lookups else 0.0,
            },
            "graph": self.graphs.snapshot(),
        }
        doc["engine"] = {
            "backend": self.engine.backend.name,
            "jobs_submitted": self.engine.jobs_submitted,
            "inflight": self.engine.inflight,
            "max_inflight": self.engine.max_inflight,
        }
        doc["faults"]["enabled"] = self.fault_injection
        if self.fault_backend is not None:
            doc["faults"]["scheduled"] = dict(self.fault_backend.counts)
            doc["faults"]["scheduled_total"] = sum(self.fault_backend.counts.values())
        return doc
