"""Async matching-as-a-service front end with admission control.

The paper's premise — no single matching algorithm/backend wins everywhere —
pays off when jobs from many tenants are queued, scheduled and observed by
one long-lived server rather than one-shot CLI runs.  This package wraps the
:class:`~repro.engine.Engine` in an asyncio HTTP/JSON front end:

* :class:`~repro.server.app.MatchingServer` — the server itself: request
  queueing, per-request deadlines mapped onto the engine's
  :class:`~repro.engine.JobHandle` deadline/cancellation paths, streaming
  batch results in completion order, warm graph- and result-caches keyed on
  :meth:`~repro.graph.bipartite.BipartiteGraph.content_hash`, and a
  ``/metrics`` endpoint;
* :class:`~repro.server.admission.AdmissionController` — per-tenant
  in-flight quotas and a server-wide queue-depth bound; overload is *shed*
  with 429-style errors instead of queueing without bound;
* :class:`~repro.server.metrics.ServerMetrics` — counters, p50/p99 latency
  and fault-leakage accounting exported by ``/metrics``;
* :mod:`~repro.server.loadgen` — the load generator driving the latency
  benchmark and the CI ``server-smoke`` job.

Start one from the CLI with ``python -m repro.cli serve`` (see
``docs/service.md`` for the wire protocol) or in-process::

    from repro.server import MatchingServer, QuotaPolicy

    server = MatchingServer(backend="thread", workers=4,
                            policy=QuotaPolicy(max_inflight_per_tenant=8))
    host, port = server.start_in_background()
    ...
    server.stop()
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionTicket,
    QuotaPolicy,
)
from repro.server.app import MatchingServer
from repro.server.metrics import METRICS_SCHEMA, ServerMetrics
from repro.server.protocol import GraphCache, ProtocolError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "GraphCache",
    "METRICS_SCHEMA",
    "MatchingServer",
    "ProtocolError",
    "QuotaPolicy",
    "ServerMetrics",
]
