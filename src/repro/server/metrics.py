"""Server metrics: counters, latency percentiles and fault-leakage accounting.

One :class:`ServerMetrics` instance per server, updated from the asyncio
loop and from backend completion callbacks (hence the lock).  ``/metrics``
exports :meth:`ServerMetrics.snapshot` merged with the admission, cache and
engine sections — the same counter-schema style as the perf-baseline files
(``schema`` tag + flat numeric sections), so the load generator and the CI
``server-smoke`` job can assert on it mechanically.

Fault leakage.  When the server runs with fault injection (the test/CI
configuration), every response is classified against the fault that was (or
was not) injected into its job:

* an injected ``crash`` must surface as ``status="failed"`` — a crash that
  reports ``ok`` leaked;
* a ``failed`` response with *no* injected crash is collateral damage —
  isolation leaked;
* ``timeout`` is never leakage: it is the documented deadline semantics
  (injected stalls on deadlined requests are *expected* to land here).

``leaked`` staying at zero under a seeded crash+stall schedule is the CI
gate that the server sheds or fails only the affected requests.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["METRICS_SCHEMA", "ServerMetrics", "classify_leak"]

METRICS_SCHEMA = "repro-server-metrics/v1"

#: Response statuses the server can emit for an admitted request.
TERMINAL_STATUSES = ("ok", "failed", "timeout", "cancelled")


def classify_leak(status: str, injected: str | None) -> bool:
    """Whether a response leaked an injected fault (or a fault leaked in).

    See the module docstring for the rule; with no injection active this
    reduces to "any ``failed`` response is a leak", which is what the clean
    server configuration asserts too.
    """
    if injected == "crash":
        return status == "ok"
    return status == "failed"


class _LatencyWindow:
    """Bounded reservoir of recent request latencies with nearest-rank percentiles."""

    def __init__(self, window: int = 8192) -> None:
        self._values: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self._values.append(seconds)
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    def percentile(self, q: float) -> float:
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class ServerMetrics:
    """Aggregated request accounting for one server instance."""

    def __init__(self, latency_window: int = 8192) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self.statuses = {status: 0 for status in TERMINAL_STATUSES}
        self.requests_total = 0
        self.bad_requests = 0
        self.server_errors = 0
        self.cached_responses = 0
        self.injected = {"crash": 0, "stall": 0, "slow": 0}
        self.leaked = 0
        self.latency = _LatencyWindow(latency_window)

    # ------------------------------------------------------------- recording
    def record_request(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_bad_request(self) -> None:
        with self._lock:
            self.bad_requests += 1

    def record_server_error(self) -> None:
        """An unhandled 500 — always counted into ``leaked`` as well."""
        with self._lock:
            self.server_errors += 1
            self.leaked += 1

    def record_response(
        self,
        status: str,
        latency_seconds: float,
        *,
        cached: bool = False,
        injected: str | None = None,
    ) -> None:
        """Record one admitted request's terminal outcome."""
        with self._lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if cached:
                self.cached_responses += 1
            if injected is not None:
                self.injected[injected] = self.injected.get(injected, 0) + 1
            if classify_leak(status, injected):
                self.leaked += 1
            self.latency.record(latency_seconds)

    # -------------------------------------------------------------- exporting
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "requests": {
                    "total": self.requests_total,
                    "bad_requests": self.bad_requests,
                    "server_errors": self.server_errors,
                    "cached_responses": self.cached_responses,
                    **dict(self.statuses),
                },
                "latency_seconds": self.latency.snapshot(),
                "faults": {
                    "injected": dict(self.injected),
                    "injected_total": sum(self.injected.values()),
                    "leaked": self.leaked,
                },
            }
