"""Wire protocol: request validation, graph resolution and response rows.

Requests reference graphs the same way JSONL manifests do — a suite instance
name (``graph`` + ``profile`` + ``seed``) or a server-local Matrix-Market
path (``mtx``), optionally layered with a ``weights`` spec — rather than
shipping edge lists over the wire.  Resolved graphs are memoized in a
:class:`GraphCache` keyed on the source tuple; results are memoized by the
server's :class:`~repro.service.cache.ResultCache` keyed on
:meth:`MatchingJob.cache_key`, which embeds the graph's ``content_hash()``,
so renamed copies of the same structure share warm entries.

All validation errors raise :class:`ProtocolError` (HTTP 400): like the
batch service, a malformed request must fail before anything executes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.api import SPECS
from repro.engine.execution import validate_job_args
from repro.engine.handles import JobHandle
from repro.engine.job import INITIAL_CHOICES, MatchingJob
from repro.generators.capacities import apply_capacity_spec, parse_capacity_spec
from repro.generators.suite import SCALE_PROFILES, SUITE_SPECS, generate_instance
from repro.generators.weights import apply_weight_spec, parse_weight_spec
from repro.graph.io import read_matrix_market

__all__ = ["GraphCache", "ProtocolError", "ServerRequest", "parse_request", "result_row"]


class ProtocolError(ValueError):
    """A malformed or invalid request payload (HTTP 400)."""


@dataclass(frozen=True)
class ServerRequest:
    """One validated ``/v1/match`` request (or one job of a ``/v1/batch``)."""

    tenant: str
    algorithm: str
    kwargs: dict
    initial: str | None
    deadline: float | None
    request_id: str
    include_matching: bool
    source: tuple
    graph_label: str
    plan: Any = field(repr=False, default=None)

    def describe(self) -> dict:
        return {
            "id": self.request_id,
            "tenant": self.tenant,
            "graph": self.graph_label,
            "algorithm": self.algorithm,
        }


class GraphCache:
    """Thread-safe memo of resolved graphs, keyed on their request source.

    The *source* is the fully-determined recipe (suite instance + profile +
    seed + weight spec, or mtx path + weight spec + seed), so two requests
    naming the same recipe share one in-memory
    :class:`~repro.graph.bipartite.BipartiteGraph` — generation cost is paid
    once per distinct source for the server's lifetime.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._graphs: dict[tuple, Any] = {}

    def resolve(self, source: tuple):
        """The graph for ``source``, building (and caching) it on first use."""
        with self._lock:
            graph = self._graphs.get(source)
            if graph is not None:
                self.hits += 1
                return graph
        # Built outside the lock: generation can take a while and concurrent
        # requests for *different* sources must not serialise on it.  A
        # racing duplicate build is benign — last writer wins, same content.
        graph = _build_graph(source)
        with self._lock:
            self.misses += 1
            if len(self._graphs) >= self.max_entries:
                # Simple FIFO bound; the server's working set of distinct
                # sources is tiny compared to the result cache's key space.
                self._graphs.pop(next(iter(self._graphs)))
            self._graphs[source] = graph
        return graph

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def snapshot(self) -> dict:
        with self._lock:
            return {"entries": len(self._graphs), "hits": self.hits, "misses": self.misses}


def _build_graph(source: tuple):
    kind = source[0]
    if kind == "suite":
        _, name, profile, seed, weights, capacities = source
        graph = generate_instance(name, profile=profile, seed=seed)
        cap_seed = seed
    else:
        _, path, weights, seed, capacities, cap_seed = source
        weights_kind = parse_weight_spec(weights)[0] if weights else None
        graph = read_matrix_market(path, with_weights=weights_kind == "values")
    if weights is not None:
        graph = apply_weight_spec(graph, weights, seed=seed)
    if capacities is not None:
        graph = apply_capacity_spec(graph, capacities, seed=cap_seed)
    return graph


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(
    payload: Any,
    *,
    default_profile: str = "small",
    default_seed: int = 20130421,
    default_deadline: float | None = None,
    default_tenant: str = "anonymous",
    request_id: str = "",
) -> ServerRequest:
    """Validate one job payload into a :class:`ServerRequest`.

    Mirrors the manifest loader's checks (graph/mtx exclusivity, known
    profile and suite instance, weight-spec parsing, algorithm + kwargs +
    warm-start validation via :func:`validate_job_args`) so a request that
    would be rejected by ``repro batch`` is rejected here too — before any
    graph is built or any quota consumed.
    """
    _require(isinstance(payload, dict), f"request must be an object, got {type(payload).__name__}")
    known = {
        "tenant", "graph", "mtx", "profile", "seed", "algorithm", "kwargs",
        "initial", "weights", "objective", "capacities", "deadline", "id",
        "include_matching",
    }
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown request fields: {', '.join(unknown)}")

    tenant = payload.get("tenant", default_tenant)
    _require(isinstance(tenant, str) and tenant, "'tenant' must be a non-empty string")
    _require(
        ("graph" in payload) != ("mtx" in payload),
        "each request needs exactly one of 'graph' or 'mtx'",
    )
    profile = payload.get("profile", default_profile)
    _require(isinstance(profile, str), "'profile' must be a string")
    _require(
        profile in SCALE_PROFILES,
        f"unknown profile {profile!r}; choose from {sorted(SCALE_PROFILES)}",
    )
    seed = payload.get("seed", default_seed)
    _require(isinstance(seed, int) and not isinstance(seed, bool), "'seed' must be an integer")
    kwargs = payload.get("kwargs", {})
    _require(isinstance(kwargs, dict), "'kwargs' must be an object")
    kwargs = dict(kwargs)
    initial = payload.get("initial")
    _require(
        initial in INITIAL_CHOICES,
        f"unknown warm-start {initial!r}; choose from {INITIAL_CHOICES}",
    )
    algorithm = str(payload.get("algorithm", "g-pr")).strip().lower()

    weights = payload.get("weights")
    weights_kind = None
    if weights is not None:
        _require(isinstance(weights, str), "'weights' must be a weight-spec string")
        try:
            weights_kind = parse_weight_spec(weights)[0]
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        _require(
            weights_kind != "values" or "mtx" in payload,
            "weight spec 'values' needs an 'mtx' source (suite instances carry no value entries)",
        )
    objective = payload.get("objective")
    if objective is not None:
        _require(objective in ("max", "min"), "'objective' must be 'max' or 'min'")
        _require(
            kwargs.get("objective", objective) == objective,
            "'objective' conflicts with kwargs['objective']",
        )
        kwargs["objective"] = objective
    capacities = payload.get("capacities")
    if capacities is not None:
        _require(isinstance(capacities, str), "'capacities' must be a capacity-spec string")
        try:
            parse_capacity_spec(capacities)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        spec_entry = SPECS.get(algorithm)
        _require(
            spec_entry is None or spec_entry.capacitated,
            f"algorithm {algorithm!r} ignores vertex capacities; pick b-aug, "
            "b-expand or b-auction, or drop 'capacities'",
        )

    deadline = payload.get("deadline", default_deadline)
    if deadline is not None:
        _require(
            isinstance(deadline, (int, float)) and not isinstance(deadline, bool)
            and deadline > 0,
            "'deadline' must be a positive number of seconds",
        )
        deadline = float(deadline)
    include_matching = payload.get("include_matching", False)
    _require(isinstance(include_matching, bool), "'include_matching' must be a boolean")
    rid = payload.get("id", request_id)
    _require(isinstance(rid, (str, int)), "'id' must be a string or integer")

    try:
        plan = validate_job_args(algorithm, kwargs, initial)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(str(exc)) from exc

    if "mtx" in payload:
        path = payload["mtx"]
        _require(isinstance(path, str) and Path(path).is_file(),
                 f"no such Matrix-Market file {path!r}")
        weight_seed = seed if weights is not None and weights_kind != "values" else None
        cap_seed = seed if capacities is not None else None
        source = ("mtx", path, weights, weight_seed, capacities, cap_seed)
        graph_label = Path(path).name
    else:
        ref = payload["graph"]
        _require(isinstance(ref, str), "'graph' must be a string")
        _require(
            any(spec.name == ref or spec.instance_id == ref for spec in SUITE_SPECS),
            f"unknown suite instance {ref!r} (see `repro.cli list` for the available names)",
        )
        source = ("suite", ref, profile, seed, weights, capacities)
        graph_label = ref

    return ServerRequest(
        tenant=tenant,
        algorithm=algorithm,
        kwargs=kwargs,
        initial=initial,
        deadline=deadline,
        request_id=str(rid),
        include_matching=include_matching,
        source=source,
        graph_label=graph_label,
        plan=plan,
    )


def build_job(request: ServerRequest, graphs: GraphCache) -> MatchingJob:
    """Materialise the request's graph (cached) and wrap it into a job."""
    graph = graphs.resolve(request.source)
    return MatchingJob(
        graph=graph,
        algorithm=request.algorithm,
        kwargs=request.kwargs,
        initial=request.initial,
        job_id=request.request_id,
    )


def result_row(
    request: ServerRequest,
    *,
    status: str,
    result=None,
    error=None,
    cached: bool = False,
    worker: str | None = None,
    seconds: float = 0.0,
    server_seconds: float = 0.0,
    injected: str | None = None,
    fault_injection: bool = False,
) -> dict:
    """One JSON response row — shared by ``/v1/match`` and ``/v1/batch``."""
    row = {
        "type": "result",
        **request.describe(),
        "status": status,
        "cardinality": result.cardinality if result is not None else None,
        "cached": cached,
        "worker": worker,
        "seconds": round(seconds, 6),
        "server_seconds": round(server_seconds, 6),
    }
    if result is not None and "total_weight" in result.counters:
        row["total_weight"] = result.counters["total_weight"]
    if request.include_matching and result is not None:
        matching = result.matching
        if hasattr(matching, "row_match"):
            row["row_match"] = [int(v) for v in matching.row_match]
        else:
            # Capacitated results carry an edge list, not a 1-regular map.
            row["pairs"] = [[int(u), int(v)] for u, v in matching.pairs()]
    if error is not None:
        row["error"] = str(error)
    if fault_injection:
        row["injected_fault"] = injected
    return row


def handle_row(
    request: ServerRequest,
    handle: JobHandle,
    *,
    server_seconds: float,
    fault_injection: bool = False,
) -> dict:
    """Response row for a finished (or deadline-expired) engine handle."""
    status = handle.status.value
    if not handle.done():
        # The await timed out past the deadline grace: report the deadline
        # outcome now rather than holding the client while a stalled worker
        # drains (the quota slot stays held until the handle terminates).
        status = "timeout"
    result = handle._result if handle.status.value == "ok" else None
    return result_row(
        request,
        status=status,
        result=result,
        error=handle.failure,
        worker=handle.worker,
        seconds=handle.seconds,
        server_seconds=server_seconds,
        injected=getattr(handle, "injected_fault", None),
        fault_injection=fault_injection,
    )
