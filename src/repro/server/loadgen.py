"""Threaded load generator for the matching server.

Drives ``POST /v1/match`` from ``--concurrency`` worker threads over plain
``http.client`` (the server's own stack must not serve both sides), spreads
requests across ``--tenants`` synthetic tenants and a pool of suite graphs,
then scrapes ``GET /metrics`` and folds everything into a
:class:`LoadReport`.  Used three ways:

* ``benchmarks/test_service_latency.py`` — latency/throughput assertions;
* the CI ``server-smoke`` job — boots ``repro serve`` with fault injection
  and fails the build on any fault leakage (``--expect-no-leakage``);
* by hand: ``python -m repro.server.loadgen --port N --requests 200``.

Client-side 429s are *expected* under saturation and are reported, not
failed; ``failed_requests`` counts transport errors only.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.server.metrics import classify_leak

__all__ = ["LoadReport", "run_load", "scrape_metrics"]

_DEFAULT_GRAPHS = ("amazon0505", "roadNet-PA", "delaunay_n20")
_DEFAULT_ALGORITHMS = ("pr", "g-pr", "karp-sipser")


@dataclass
class LoadReport:
    """Aggregated outcome of one load run (client-side view + /metrics)."""

    requests: int = 0
    statuses: dict = field(default_factory=dict)
    http_statuses: dict = field(default_factory=dict)
    rejected: int = 0
    failed_requests: int = 0  # transport-level failures, not job failures
    leaked: int = 0
    wall_seconds: float = 0.0
    latencies: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]

    @property
    def throughput(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "statuses": dict(self.statuses),
            "http_statuses": {str(k): v for k, v in self.http_statuses.items()},
            "rejected": self.rejected,
            "failed_requests": self.failed_requests,
            "leaked": self.leaked,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "latency_seconds": {
                "p50": self.percentile(0.50),
                "p90": self.percentile(0.90),
                "p99": self.percentile(0.99),
            },
            "server_metrics": self.metrics,
        }


def scrape_metrics(host: str, port: int, timeout: float = 10.0) -> dict:
    """Fetch and decode the server's ``/metrics`` document."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        payload = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"/metrics returned HTTP {response.status}: {payload}")
        return payload
    finally:
        conn.close()


def run_load(
    host: str,
    port: int,
    *,
    requests: int = 100,
    concurrency: int = 4,
    tenants: int = 2,
    graphs: tuple = _DEFAULT_GRAPHS,
    algorithms: tuple = _DEFAULT_ALGORITHMS,
    profile: str = "tiny",
    seed: int = 1,
    deadline: float | None = None,
    include_matching: bool = False,
    timeout: float = 30.0,
) -> LoadReport:
    """Fire ``requests`` match calls at the server and aggregate the outcome.

    Request ``i`` deterministically picks tenant ``tenant-{i % tenants}``,
    graph ``graphs[i % len(graphs)]`` and ``algorithms[i % len(algorithms)]``
    — the mix is reproducible, so runs against a fault-injecting server see
    the same (request, fault) pairing every time.
    """
    report = LoadReport()
    lock = threading.Lock()
    counter = iter(range(requests))

    def payload_for(index: int) -> dict:
        body = {
            "tenant": f"tenant-{index % tenants}",
            "graph": graphs[index % len(graphs)],
            "profile": profile,
            "seed": seed,
            "algorithm": algorithms[index % len(algorithms)],
            "id": f"load-{index}",
            "include_matching": include_matching,
        }
        if deadline is not None:
            body["deadline"] = deadline
        return body

    def worker() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                with lock:
                    index = next(counter, None)
                if index is None:
                    return
                started = time.perf_counter()
                try:
                    conn.request(
                        "POST",
                        "/v1/match",
                        body=json.dumps(payload_for(index)),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    row = json.loads(response.read())
                except (OSError, http.client.HTTPException, ValueError):
                    # Transport trouble invalidates this connection; reopen.
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=timeout)
                    with lock:
                        report.failed_requests += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    report.requests += 1
                    report.http_statuses[response.status] = (
                        report.http_statuses.get(response.status, 0) + 1
                    )
                    if response.status == 429:
                        report.rejected += 1
                    elif response.status == 200:
                        status = row.get("status", "?")
                        report.statuses[status] = report.statuses.get(status, 0) + 1
                        report.latencies.append(elapsed)
                        if classify_leak(status, row.get("injected_fault")):
                            report.leaked += 1
                    else:
                        report.failed_requests += 1
        finally:
            conn.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    try:
        report.metrics = scrape_metrics(host, port, timeout=timeout)
    except (OSError, RuntimeError, ValueError):
        report.metrics = {}
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadgen",
        description="Load-test a running matching server and report latency/leakage.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--graphs", nargs="+", default=list(_DEFAULT_GRAPHS))
    parser.add_argument("--algorithms", nargs="+", default=list(_DEFAULT_ALGORITHMS))
    parser.add_argument("--profile", default="tiny")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--include-matching", action="store_true")
    parser.add_argument(
        "--expect-no-leakage",
        action="store_true",
        help="exit 1 unless client- and server-side fault leakage are both zero",
    )
    parser.add_argument("--format", choices=("json", "text"), default="text")
    args = parser.parse_args(argv)

    report = run_load(
        args.host,
        args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        tenants=args.tenants,
        graphs=tuple(args.graphs),
        algorithms=tuple(args.algorithms),
        profile=args.profile,
        seed=args.seed,
        deadline=args.deadline,
        include_matching=args.include_matching,
    )
    doc = report.to_dict()
    server_leaked = (
        report.metrics.get("faults", {}).get("leaked", 0) if report.metrics else None
    )
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        latency = doc["latency_seconds"]
        print(
            f"{report.requests} requests in {report.wall_seconds:.2f}s "
            f"({doc['throughput_rps']} rps), statuses={doc['statuses']}, "
            f"rejected={report.rejected}, transport_failures={report.failed_requests}"
        )
        print(
            f"latency p50={latency['p50'] * 1e3:.1f}ms p99={latency['p99'] * 1e3:.1f}ms; "
            f"leaked(client)={report.leaked} leaked(server)={server_leaked}"
        )
    if args.expect_no_leakage:
        if report.leaked or (server_leaked is None or server_leaked > 0):
            print(
                f"FAULT LEAKAGE: client={report.leaked} server={server_leaked}",
                file=sys.stderr,
            )
            return 1
        if report.failed_requests:
            print(f"{report.failed_requests} transport failures", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
