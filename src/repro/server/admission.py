"""Admission control: per-tenant in-flight quotas and a global queue-depth bound.

The server admits a request only while (a) its tenant holds fewer than
``max_inflight_per_tenant`` admitted-but-unfinished requests and (b) the
server-wide depth is below ``max_queue_depth``.  Anything else is *shed*
immediately — an :class:`AdmissionError` the server maps onto HTTP 429 —
so overload degrades into fast rejections instead of unbounded queueing.

Admission hands out an :class:`AdmissionTicket`; releasing it returns the
slots.  Release is idempotent and thread-safe: the server releases on the
job's done-callback, and a late ``cancel()`` on an already-finished job (or
any double release) must not free the slot twice.  The invariants the
controller maintains — per-tenant in-flight never exceeds its quota, global
depth never exceeds the bound, rejected requests consume nothing — are
pinned by seeded property tests in ``tests/test_server.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionError", "AdmissionTicket", "QuotaPolicy"]


class AdmissionError(RuntimeError):
    """The request was shed by admission control (HTTP 429 at the server edge).

    ``reason`` is machine-readable: ``"tenant-quota"`` (the tenant's
    in-flight limit) or ``"queue-depth"`` (the server-wide bound).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class QuotaPolicy:
    """Admission limits for one server.

    ``max_inflight_per_tenant`` bounds each tenant's admitted-but-unfinished
    requests; ``max_queue_depth`` bounds the sum over all tenants (and is
    also installed as the engine's ``max_inflight`` backpressure bound).
    """

    max_inflight_per_tenant: int = 8
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_inflight_per_tenant <= 0:
            raise ValueError("max_inflight_per_tenant must be positive")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")


class AdmissionTicket:
    """One admitted request's hold on its quota slots (release is idempotent)."""

    __slots__ = ("tenant", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str) -> None:
        self.tenant = tenant
        self._controller = controller
        self._released = False

    def release(self) -> bool:
        """Return the slots; ``True`` only for the first release."""
        return self._controller._release(self)

    @property
    def released(self) -> bool:
        return self._released


class AdmissionController:
    """Thread-safe quota accounting shared by every request handler."""

    def __init__(self, policy: QuotaPolicy | None = None) -> None:
        self.policy = policy or QuotaPolicy()
        self._lock = threading.Lock()
        self._tenant_inflight: dict[str, int] = {}
        self.depth = 0
        self.peak_depth = 0
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_reason: dict[str, int] = {}
        self._tenant_stats: dict[str, dict[str, int]] = {}

    def _stats(self, tenant: str) -> dict[str, int]:
        return self._tenant_stats.setdefault(tenant, {"admitted": 0, "rejected": 0})

    def try_admit(self, tenant: str) -> AdmissionTicket:
        """Admit one request for ``tenant`` or raise :class:`AdmissionError`.

        Rejection consumes nothing: no slot, no queue depth, no engine
        submission — only the reject counters move.
        """
        with self._lock:
            if self.depth >= self.policy.max_queue_depth:
                self.rejected += 1
                self._stats(tenant)["rejected"] += 1
                reason = "queue-depth"
                self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
                raise AdmissionError(
                    reason,
                    f"server at capacity: {self.depth} requests in flight "
                    f">= max_queue_depth={self.policy.max_queue_depth}",
                )
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= self.policy.max_inflight_per_tenant:
                self.rejected += 1
                self._stats(tenant)["rejected"] += 1
                reason = "tenant-quota"
                self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
                raise AdmissionError(
                    reason,
                    f"tenant {tenant!r} at quota: {inflight} requests in flight "
                    f">= max_inflight_per_tenant={self.policy.max_inflight_per_tenant}",
                )
            self._tenant_inflight[tenant] = inflight + 1
            self.depth += 1
            self.peak_depth = max(self.peak_depth, self.depth)
            self.admitted += 1
            self._stats(tenant)["admitted"] += 1
            return AdmissionTicket(self, tenant)

    def _release(self, ticket: AdmissionTicket) -> bool:
        with self._lock:
            if ticket._released:
                return False
            ticket._released = True
            self._tenant_inflight[ticket.tenant] -= 1
            self.depth -= 1
            return True

    def tenant_inflight(self, tenant: str) -> int:
        with self._lock:
            return self._tenant_inflight.get(tenant, 0)

    def snapshot(self) -> dict:
        """The controller's state as a JSON-ready dict (for ``/metrics``)."""
        with self._lock:
            return {
                "depth": self.depth,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "rejected_by_reason": dict(self.rejected_by_reason),
                "max_inflight_per_tenant": self.policy.max_inflight_per_tenant,
                "max_queue_depth": self.policy.max_queue_depth,
                "tenants": {
                    tenant: {
                        "inflight": self._tenant_inflight.get(tenant, 0),
                        **stats,
                    }
                    for tenant, stats in sorted(self._tenant_stats.items())
                },
            }
