"""Pothen–Fan (PFP) augmenting-path matching with lookahead.

PFP performs, for every unmatched column, a DFS that first tries the
*lookahead*: scanning the column's adjacency for a directly unmatched row
before descending.  A phase visits all unmatched columns; phases repeat until
one makes no progress.  This is the third sequential algorithm used in §IV of
the paper to filter out instances every sequential code solves in under a
second ("Pothen-Fan-Plus").
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["pothen_fan_matching"]


def pothen_fan_matching(graph: BipartiteGraph, initial: Matching | None = None) -> MatchingResult:
    """Maximum cardinality matching with the Pothen–Fan algorithm (with lookahead)."""
    t0 = time.perf_counter()
    if initial is None:
        matching = cheap_matching(graph).matching
    else:
        matching = initial.copy().canonical()
    row_match, col_match = matching.row_match, matching.col_match
    counters = {"edges_scanned": 0, "phases": 0, "augmentations": 0, "lookahead_hits": 0}

    col_ptr, col_ind = graph.col_ptr, graph.col_ind
    # Lookahead pointer: next adjacency offset to inspect for a free row, per column.
    lookahead = col_ptr[:-1].astype(np.int64).copy()

    n_rows = graph.n_rows

    def _augment_from(start: int, visited_round: np.ndarray, round_id: int) -> bool:
        """Iterative DFS with lookahead from unmatched column ``start``."""
        stack: list[list[int]] = [[start, int(col_ptr[start])]]
        path_rows: list[int] = []
        while stack:
            v, idx = stack[-1]
            stop = int(col_ptr[v + 1])
            # Lookahead: scan for an immediately free row first.
            found_free = -1
            la = int(lookahead[v])
            while la < stop:
                u = int(col_ind[la])
                la += 1
                counters["edges_scanned"] += 1
                if row_match[u] == UNMATCHED:
                    found_free = u
                    break
            lookahead[v] = la
            if found_free >= 0:
                counters["lookahead_hits"] += 1
                u = found_free
                row_match[u] = v
                col_match[v] = u
                for depth in range(len(stack) - 2, -1, -1):
                    prev_col = stack[depth][0]
                    prev_row = path_rows[depth]
                    row_match[prev_row] = prev_col
                    col_match[prev_col] = prev_row
                return True
            # Regular DFS descent over matched rows not yet visited this round.
            advanced = False
            while idx < stop:
                u = int(col_ind[idx])
                idx += 1
                counters["edges_scanned"] += 1
                if visited_round[u] == round_id:
                    continue
                w = int(row_match[u])
                if w == UNMATCHED:
                    # The lookahead pointer already passed this row in an earlier
                    # call; treat it as a direct augmentation anyway.
                    visited_round[u] = round_id
                    row_match[u] = v
                    col_match[v] = u
                    for depth in range(len(stack) - 2, -1, -1):
                        prev_col = stack[depth][0]
                        prev_row = path_rows[depth]
                        row_match[prev_row] = prev_col
                        col_match[prev_col] = prev_row
                    return True
                visited_round[u] = round_id
                stack[-1][1] = idx
                path_rows.append(u)
                stack.append([w, int(col_ptr[w])])
                advanced = True
                break
            if advanced:
                continue
            stack[-1][1] = idx
            if idx >= stop:
                stack.pop()
                if path_rows:
                    path_rows.pop()
        return False

    visited_round = np.full(n_rows, -1, dtype=np.int64)
    round_id = 0
    while True:
        counters["phases"] += 1
        progressed = 0
        for v in np.flatnonzero(col_match == UNMATCHED):
            round_id += 1
            if _augment_from(int(v), visited_round, round_id):
                progressed += 1
                counters["augmentations"] += 1
        if progressed == 0:
            break

    wall = time.perf_counter() - t0
    return MatchingResult.create(
        "PFP", Matching(row_match, col_match), counters=counters, wall_time=wall
    )
