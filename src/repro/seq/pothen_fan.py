"""Pothen–Fan (PFP) augmenting-path matching with lookahead.

PFP performs, for every unmatched column, a DFS that first tries the
*lookahead*: scanning the column's adjacency for a directly unmatched row
before descending.  A phase visits all unmatched columns; phases repeat until
one makes no progress.  This is the third sequential algorithm used in §IV of
the paper to filter out instances every sequential code solves in under a
second ("Pothen-Fan-Plus").

The whole DFS — lookahead and descent — works one small adjacency slice at
a time, so per the frontier-layer split (:mod:`repro.graph.frontier`) it
runs as a scalar walk over the cached ``csr_lists()`` views with matching,
lookahead and visited state in plain Python lists (one function call per
*phase*, locals only in the per-edge scans): no per-edge ndarray boxing,
bulk counter updates per phase, end-values identical to the historical
implementation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["pothen_fan_matching"]


def _pfp_phase(
    col_ptr: list[int],
    col_ind: list[int],
    row_match: list[int],
    col_match: list[int],
    lookahead: list[int],
    visited_round: list[int],
    round_id: int,
) -> tuple[int, int, int, int]:
    """One PFP phase: a lookahead DFS from every currently unmatched column.

    Returns ``(augmentations, lookahead_hits, edges_scanned, round_id)``.
    """
    unmatched = UNMATCHED
    n_cols = len(col_ptr) - 1
    augmentations = 0
    lookahead_hits = 0
    edges = 0
    # hot-path
    for start in range(n_cols):
        if col_match[start] != unmatched:
            continue
        round_id += 1
        stack: list[list[int]] = [[start, col_ptr[start]]]
        path_rows: list[int] = []
        while stack:
            v, idx = stack[-1]
            stop = col_ptr[v + 1]
            # Lookahead: scan for an immediately free row first.
            found_free = -1
            la = lookahead[v]
            while la < stop:
                u = col_ind[la]
                la += 1
                edges += 1
                if row_match[u] == unmatched:
                    found_free = u
                    break
            lookahead[v] = la
            if found_free >= 0:
                lookahead_hits += 1
                augmentations += 1
                u = found_free
                row_match[u] = v
                col_match[v] = u
                for depth in range(len(stack) - 2, -1, -1):
                    prev_col = stack[depth][0]
                    prev_row = path_rows[depth]
                    row_match[prev_row] = prev_col
                    col_match[prev_col] = prev_row
                break
            # Regular DFS descent over matched rows not yet visited this round.
            advanced = False
            done = False
            while idx < stop:
                u = col_ind[idx]
                idx += 1
                edges += 1
                if visited_round[u] == round_id:
                    continue
                visited_round[u] = round_id
                w = row_match[u]
                if w == unmatched:
                    # The lookahead pointer already passed this row in an
                    # earlier call; treat it as a direct augmentation anyway.
                    done = True
                    break
                stack[-1][1] = idx
                path_rows.append(u)
                stack.append([w, col_ptr[w]])
                advanced = True
                break
            if advanced:
                continue
            if done:
                augmentations += 1
                row_match[u] = v
                col_match[v] = u
                for depth in range(len(stack) - 2, -1, -1):
                    prev_col = stack[depth][0]
                    prev_row = path_rows[depth]
                    row_match[prev_row] = prev_col
                    col_match[prev_col] = prev_row
                break
            stack[-1][1] = idx
            if idx >= stop:
                stack.pop()
                if path_rows:
                    path_rows.pop()
    # end hot-path
    return augmentations, lookahead_hits, edges, round_id


def pothen_fan_matching(graph: BipartiteGraph, initial: Matching | None = None) -> MatchingResult:
    """Maximum cardinality matching with the Pothen–Fan algorithm (with lookahead)."""
    t0 = time.perf_counter()
    if initial is None:
        matching = cheap_matching(graph).matching
    else:
        matching = initial.copy().canonical()
    row_match = matching.row_match.tolist()
    col_match = matching.col_match.tolist()
    counters = {"edges_scanned": 0, "phases": 0, "augmentations": 0, "lookahead_hits": 0}

    col_ptr, col_ind = graph.csr_lists("col")
    # Lookahead pointer: next adjacency offset to inspect for a free row, per column.
    lookahead = list(col_ptr[:-1])
    visited_round = [-1] * graph.n_rows
    round_id = 0

    while True:
        counters["phases"] += 1
        augmented, hits, edges, round_id = _pfp_phase(
            col_ptr, col_ind, row_match, col_match, lookahead, visited_round, round_id
        )
        counters["augmentations"] += augmented
        counters["lookahead_hits"] += hits
        counters["edges_scanned"] += edges
        if augmented == 0:
            break

    wall = time.perf_counter() - t0
    result = Matching(
        np.array(row_match, dtype=np.int64), np.array(col_match, dtype=np.int64)
    )
    return MatchingResult.create("PFP", result, counters=counters, wall_time=wall)
