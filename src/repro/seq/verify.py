"""Verification utilities for matchings.

Used throughout the test-suite and by the benchmark harness to check that
every algorithm returns a valid *maximum* matching (Theorem 1 of the paper:
a matching is maximum iff it admits no augmenting path).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching

__all__ = [
    "is_valid_matching",
    "is_maximal_matching",
    "is_maximum_matching",
    "maximum_matching_cardinality",
    "find_augmenting_path",
]


def is_valid_matching(graph: BipartiteGraph, matching: Matching) -> bool:
    """Whether ``matching`` is a consistent matching of ``graph``.

    Checks that the two arrays are mutually consistent, that every matched
    pair is an edge of the graph and that no vertex appears twice.
    """
    row_match, col_match = matching.row_match, matching.col_match
    if len(row_match) != graph.n_rows or len(col_match) != graph.n_cols:
        return False
    matched_rows = np.flatnonzero(row_match >= 0)
    if len(matched_rows) and row_match[matched_rows].max() >= graph.n_cols:
        return False
    # Mutual consistency.
    if np.any(col_match[row_match[matched_rows]] != matched_rows):
        return False
    matched_cols = np.flatnonzero(col_match >= 0)
    if len(matched_cols) and col_match[matched_cols].max() >= graph.n_rows:
        return False
    if np.any(row_match[col_match[matched_cols]] != matched_cols):
        return False
    # No column matched twice (injectivity of row_match on matched rows).
    cols = row_match[matched_rows]
    if len(np.unique(cols)) != len(cols):
        return False
    # Every matched pair must be an edge.
    return all(graph.has_edge(int(u), int(row_match[u])) for u in matched_rows)


def is_maximal_matching(graph: BipartiteGraph, matching: Matching) -> bool:
    """Whether no edge can be added directly (both endpoints unmatched)."""
    row_match, col_match = matching.row_match, matching.col_match
    for v in np.flatnonzero(col_match < 0):
        for u in graph.column_neighbors(v):
            if row_match[u] == UNMATCHED:
                return False
    return True


def find_augmenting_path(graph: BipartiteGraph, matching: Matching, start_col: int) -> list[int] | None:
    """BFS for an augmenting path starting at the unmatched column ``start_col``.

    Returns the path as an alternating vertex list ``[col, row, col, row, ...]``
    (columns and rows interleaved, ending at an unmatched row), or ``None``.
    """
    row_match, col_match = matching.row_match, matching.col_match
    if col_match[start_col] != UNMATCHED:
        raise ValueError(f"column {start_col} is already matched")
    parent_row: dict[int, int] = {}
    parent_col: dict[int, int] = {start_col: -1}
    queue: deque[int] = deque([start_col])
    while queue:
        v = queue.popleft()
        for u in graph.column_neighbors(v):
            u = int(u)
            if u in parent_row:
                continue
            parent_row[u] = v
            if row_match[u] == UNMATCHED:
                # Reconstruct column/row alternating path.
                path = [u]
                col = v
                while col != -1:
                    path.append(col)
                    row = parent_col[col]
                    if row == -1:
                        break
                    path.append(row)
                    col = parent_row[row]
                path.reverse()
                return path
            w = int(row_match[u])
            if w not in parent_col:
                parent_col[w] = u
                queue.append(w)
    return None


def is_maximum_matching(graph: BipartiteGraph, matching: Matching) -> bool:
    """Whether ``matching`` is maximum (valid and admits no augmenting path)."""
    if not is_valid_matching(graph, matching):
        return False
    for v in np.flatnonzero(matching.col_match < 0):
        if find_augmenting_path(graph, matching, int(v)) is not None:
            return False
    return True


def maximum_matching_cardinality(graph: BipartiteGraph) -> int:
    """Cardinality of a maximum matching, computed with SciPy's Hopcroft–Karp.

    Used as an independent oracle by the tests and to fill the ``MM`` column
    of the Table-I report.
    """
    if graph.n_edges == 0:
        return 0
    from scipy.sparse.csgraph import maximum_bipartite_matching

    matrix = graph.to_scipy_sparse().tocsr()
    match = maximum_bipartite_matching(matrix, perm_type="column")
    return int(np.count_nonzero(match >= 0))
