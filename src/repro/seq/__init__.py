"""Sequential matching algorithms — the baselines of the paper's evaluation.

* :func:`cheap_matching` / :func:`karp_sipser_matching` — the greedy
  initialisation heuristics used by every algorithm in the paper (§IV: "A
  standard heuristic called the cheap matching is used to initialize all
  tested algorithms").
* :func:`push_relabel_matching` — the sequential FIFO push-relabel algorithm
  **PR** (Algorithm 1) with global relabeling (Algorithm 2) and gap
  relabeling, the paper's sequential reference.
* :func:`hopcroft_karp_matching` / :func:`hkdw_matching` — the augmenting
  path baselines HK and HKDW.
* :func:`pothen_fan_matching` — the DFS+lookahead algorithm PFP used for the
  "harder than one second" instance filter in §IV.
* :func:`is_valid_matching`, :func:`is_maximum_matching`,
  :func:`maximum_matching_cardinality` — verification utilities.
"""

from repro.seq.greedy import cheap_matching, karp_sipser_matching
from repro.seq.hopcroft_karp import hkdw_matching, hopcroft_karp_matching
from repro.seq.pothen_fan import pothen_fan_matching
from repro.seq.push_relabel import PushRelabelConfig, push_relabel_matching
from repro.seq.verify import (
    is_maximal_matching,
    is_maximum_matching,
    is_valid_matching,
    maximum_matching_cardinality,
)

__all__ = [
    "cheap_matching",
    "karp_sipser_matching",
    "push_relabel_matching",
    "PushRelabelConfig",
    "hopcroft_karp_matching",
    "hkdw_matching",
    "pothen_fan_matching",
    "is_valid_matching",
    "is_maximal_matching",
    "is_maximum_matching",
    "maximum_matching_cardinality",
]
