"""Greedy initial-matching heuristics.

The paper initialises every algorithm (sequential, multicore and GPU) with
the *cheap matching* heuristic and compares runtimes only after that common
initialisation; Table I reports its cardinality as the ``IM`` column.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult

__all__ = ["cheap_matching", "karp_sipser_matching"]


def cheap_matching(graph: BipartiteGraph, seed: int | None = None) -> MatchingResult:
    """The cheap greedy matching heuristic.

    Scans the columns in order and matches each to its first unmatched
    neighbouring row.  This is the standard heuristic of Duff et al. used in
    the paper's experiments ("cheap matching").

    Parameters
    ----------
    graph:
        The bipartite graph.
    seed:
        When given, the columns are visited in a seeded random order instead
        of index order — useful for sensitivity tests; ``None`` reproduces the
        deterministic textbook variant.
    """
    col_ptr, col_ind = graph.csr_lists("col")

    if seed is not None:
        order = np.arange(graph.n_cols)
        np.random.default_rng(seed).shuffle(order)
        order = order.tolist()
    else:
        order = range(graph.n_cols)

    # Scalar walk over the cached list views (see the frontier-layer split in
    # repro.graph.frontier): the scan order — and hence the matching and the
    # scanned-edge total — is identical to the historical per-edge loop.
    unmatched = UNMATCHED
    row_match = [unmatched] * graph.n_rows
    col_match = [unmatched] * graph.n_cols
    edges_scanned = 0
    # hot-path
    for v in order:
        stop = col_ptr[v + 1]
        for idx in range(col_ptr[v], stop):
            edges_scanned += 1
            u = col_ind[idx]
            if row_match[u] == unmatched:
                row_match[u] = v
                col_match[v] = u
                break
    # end hot-path
    matching = Matching(
        np.array(row_match, dtype=np.int64), np.array(col_match, dtype=np.int64)
    )
    return MatchingResult.create(
        "cheap", matching, counters={"edges_scanned": edges_scanned, "phases": 1}
    )


def karp_sipser_matching(graph: BipartiteGraph, seed: int | None = None) -> MatchingResult:
    """The Karp–Sipser heuristic.

    Repeatedly matches degree-1 vertices (whose pendant edge is always safe to
    take in some maximum matching) and falls back to a random edge when no
    degree-1 vertex remains.  Produces matchings with a smaller deficiency
    than :func:`cheap_matching` on most graph families; provided as the
    stronger initialisation option mentioned in the matching literature the
    paper builds on.
    """
    rng = np.random.default_rng(seed)
    matching = Matching.empty(graph)
    row_match, col_match = matching.row_match, matching.col_match

    # Dynamic degrees of both sides (only counting still-unmatched partners).
    row_deg = graph.row_degrees.astype(np.int64).copy()
    col_deg = graph.col_degrees.astype(np.int64).copy()
    edges_scanned = 0

    # Queue of degree-1 vertices encoded as (side, index); side 0 = row, 1 = column.
    def _initial_degree_one() -> list[tuple[int, int]]:
        ones: list[tuple[int, int]] = []
        ones.extend((0, int(u)) for u in np.flatnonzero(row_deg == 1))
        ones.extend((1, int(v)) for v in np.flatnonzero(col_deg == 1))
        return ones

    queue = _initial_degree_one()
    remaining_cols = list(np.flatnonzero(col_deg > 0))
    rng.shuffle(remaining_cols)
    cursor = 0

    def _match(u: int, v: int) -> None:
        nonlocal edges_scanned
        row_match[u] = v
        col_match[v] = u
        for w in graph.row_neighbors(u):
            edges_scanned += 1
            if col_match[w] == UNMATCHED:
                col_deg[w] -= 1
                if col_deg[w] == 1:
                    queue.append((1, int(w)))
        for w in graph.column_neighbors(v):
            edges_scanned += 1
            if row_match[w] == UNMATCHED:
                row_deg[w] -= 1
                if row_deg[w] == 1:
                    queue.append((0, int(w)))

    def _pick_unmatched_neighbor(side: int, idx: int) -> int | None:
        nonlocal edges_scanned
        neighbors = graph.row_neighbors(idx) if side == 0 else graph.column_neighbors(idx)
        partner_match = col_match if side == 0 else row_match
        for w in neighbors:
            edges_scanned += 1
            if partner_match[w] == UNMATCHED:
                return int(w)
        return None

    while True:
        while queue:
            side, idx = queue.pop()
            own_match = row_match if side == 0 else col_match
            if own_match[idx] != UNMATCHED:
                continue
            partner = _pick_unmatched_neighbor(side, idx)
            if partner is None:
                continue
            if side == 0:
                _match(idx, partner)
            else:
                _match(partner, idx)
        # No degree-1 vertices left: take a random still-unmatched column.
        progressed = False
        while cursor < len(remaining_cols):
            v = int(remaining_cols[cursor])
            cursor += 1
            if col_match[v] != UNMATCHED:
                continue
            u = _pick_unmatched_neighbor(1, v)
            if u is not None:
                _match(u, v)
                progressed = True
                break
        if not progressed and not queue:
            break

    return MatchingResult.create(
        "karp-sipser", matching, counters={"edges_scanned": edges_scanned, "phases": 1}
    )
