"""Hopcroft–Karp (HK) and HKDW augmenting-path baselines.

HK repeatedly (i) builds, with a BFS from all unmatched columns, the level
structure of shortest augmenting paths and (ii) augments along a maximal set
of vertex-disjoint shortest augmenting paths found with level-restricted DFS.
Its worst-case complexity is ``O(τ √(n + m))`` — the best known bound, as the
paper notes in §II-D.

HKDW (Duff–Wassel variant) adds, after each HK phase, an extra round of
unrestricted DFS augmentations from the remaining unmatched rows; it has the
same worst case but is often faster in practice.  The GPU comparator of the
paper, G-HKDW, parallelises this variant.

Hot paths follow the frontier-layer split (:mod:`repro.graph.frontier`): the
phase BFS is the whole-frontier vectorized
:func:`~repro.graph.frontier.alternating_level_bfs` (with the scalar
tail-level fallback enabled), while the vertex-disjoint DFS — whose working
set is one small adjacency slice per stack frame — walks the cached
``csr_lists()`` views with the matching and level state held in plain
Python lists, one call per *phase* rather than per root.  Matchings and
counter end-values are bit-identical to the historical per-edge
implementation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.frontier import alternating_level_bfs
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["hopcroft_karp_matching", "hkdw_matching"]

_INF = np.iinfo(np.int64).max


def _prepare(graph: BipartiteGraph, initial: Matching | None):
    if initial is None:
        matching = cheap_matching(graph).matching
    else:
        matching = initial.copy().canonical()
    return matching.row_match, matching.col_match


def _augment_phase(
    col_ptr: list[int],
    col_ind: list[int],
    roots: list[int],
    level: list[int],
    row_match: list[int],
    col_match: list[int],
    row_used: bytearray,
    restrict_levels: bool,
) -> tuple[int, int]:
    """One DFS augmentation round over ``roots`` (vertex-disjoint paths).

    Iterative DFS with an explicit stack (no Python recursion limits on long
    paths), pure list/bytearray state, the level comparand hoisted out of
    the per-edge scan, and the restricted/unrestricted variants split so the
    scan pays no per-edge mode test.  Returns ``(augmentations,
    edges_scanned)`` so the caller can bulk-update counters.
    """
    unmatched = UNMATCHED
    inf = _INF
    augmented = 0
    edges = 0
    # hot-path
    for start in roots:
        # Stack of (column, next neighbour offset); path_rows[i] is the row
        # taken out of stack[i].
        stack: list[list[int]] = [[start, col_ptr[start]]]
        path_rows: list[int] = []
        while stack:
            v, idx = stack[-1]
            stop = col_ptr[v + 1]
            advanced = False
            done = False
            if restrict_levels:
                want = level[v] + 1
                while idx < stop:
                    u = col_ind[idx]
                    idx += 1
                    edges += 1
                    if row_used[u]:
                        continue
                    w = row_match[u]
                    if w != unmatched:
                        if level[w] != want:
                            continue
                        row_used[u] = True
                        stack[-1][1] = idx
                        path_rows.append(u)
                        stack.append([w, col_ptr[w]])
                        advanced = True
                        break
                    row_used[u] = True
                    done = True
                    break
            else:
                while idx < stop:
                    u = col_ind[idx]
                    idx += 1
                    edges += 1
                    if row_used[u]:
                        continue
                    w = row_match[u]
                    if w != unmatched:
                        if level[w] == inf:
                            continue
                        row_used[u] = True
                        stack[-1][1] = idx
                        path_rows.append(u)
                        stack.append([w, col_ptr[w]])
                        advanced = True
                        break
                    row_used[u] = True
                    done = True
                    break
            if advanced:
                continue
            if done:
                # Augment along the stack.
                row_match[u] = v
                col_match[v] = u
                for depth in range(len(stack) - 2, -1, -1):
                    prev_col = stack[depth][0]
                    prev_row = path_rows[depth]
                    row_match[prev_row] = prev_col
                    col_match[prev_col] = prev_row
                augmented += 1
                break
            stack[-1][1] = idx
            if stack[-1][1] >= stop:
                stack.pop()
                if path_rows:
                    path_rows.pop()
    # end hot-path
    return augmented, edges


def _run(graph: BipartiteGraph, initial: Matching | None, duff_wassel: bool):
    row_match_arr, col_match_arr = _prepare(graph, initial)
    counters = {"edges_scanned": 0, "phases": 0, "augmentations": 0}
    if duff_wassel:
        counters["extra_augmentations"] = 0
    col_ptr_l, col_ind_l = graph.csr_lists("col")
    row_match = row_match_arr.tolist()
    col_match = col_match_arr.tolist()
    n_cols = graph.n_cols

    while True:
        # The matching state crosses the list/ndarray boundary once per
        # phase: ndarrays for the whole-frontier BFS, lists for the DFS.
        row_match_arr = np.array(row_match, dtype=np.int64)
        col_match_arr = np.array(col_match, dtype=np.int64)
        level_arr, shortest, bfs_edges = alternating_level_bfs(
            graph.col_ptr,
            graph.col_ind,
            row_match_arr,
            col_match_arr,
            scalars=(col_ptr_l, col_ind_l, row_match),
        )
        counters["edges_scanned"] += bfs_edges
        counters["phases"] += 1
        if shortest == _INF:
            break
        level = level_arr.tolist()
        roots = np.flatnonzero(col_match_arr == UNMATCHED).tolist()
        augmented, edges = _augment_phase(
            col_ptr_l, col_ind_l, roots, level, row_match, col_match,
            bytearray(graph.n_rows), restrict_levels=True,
        )
        counters["edges_scanned"] += edges
        counters["augmentations"] += augmented
        extra = 0
        if duff_wassel:
            # Duff–Wassel extra pass: unrestricted DFS for the remaining
            # unmatched columns with a finite BFS level.
            roots = [
                v for v in range(n_cols)
                if col_match[v] == UNMATCHED and level[v] != _INF
            ]
            extra, edges = _augment_phase(
                col_ptr_l, col_ind_l, roots, level, row_match, col_match,
                bytearray(graph.n_rows), restrict_levels=False,
            )
            counters["edges_scanned"] += edges
            counters["extra_augmentations"] += extra
        if augmented == 0 and extra == 0:
            break

    matching = Matching(
        np.array(row_match, dtype=np.int64), np.array(col_match, dtype=np.int64)
    )
    return matching, counters


def hopcroft_karp_matching(
    graph: BipartiteGraph, initial: Matching | None = None
) -> MatchingResult:
    """Maximum cardinality matching with the Hopcroft–Karp algorithm."""
    t0 = time.perf_counter()
    matching, counters = _run(graph, initial, duff_wassel=False)
    wall = time.perf_counter() - t0
    return MatchingResult.create("HK", matching, counters=counters, wall_time=wall)


def hkdw_matching(graph: BipartiteGraph, initial: Matching | None = None) -> MatchingResult:
    """Maximum cardinality matching with the HKDW (Hopcroft–Karp + Duff–Wassel) variant.

    Identical to :func:`hopcroft_karp_matching` but, after the level-restricted
    augmentation round of each phase, performs additional unrestricted DFS
    augmentations from the still-unmatched columns whose BFS level is finite.
    """
    t0 = time.perf_counter()
    matching, counters = _run(graph, initial, duff_wassel=True)
    wall = time.perf_counter() - t0
    return MatchingResult.create("HKDW", matching, counters=counters, wall_time=wall)
