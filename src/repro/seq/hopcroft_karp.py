"""Hopcroft–Karp (HK) and HKDW augmenting-path baselines.

HK repeatedly (i) builds, with a BFS from all unmatched columns, the level
structure of shortest augmenting paths and (ii) augments along a maximal set
of vertex-disjoint shortest augmenting paths found with level-restricted DFS.
Its worst-case complexity is ``O(τ √(n + m))`` — the best known bound, as the
paper notes in §II-D.

HKDW (Duff–Wassel variant) adds, after each HK phase, an extra round of
unrestricted DFS augmentations from the remaining unmatched rows; it has the
same worst case but is often faster in practice.  The GPU comparator of the
paper, G-HKDW, parallelises this variant.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["hopcroft_karp_matching", "hkdw_matching"]

_INF = np.iinfo(np.int64).max


def _prepare(graph: BipartiteGraph, initial: Matching | None):
    if initial is None:
        matching = cheap_matching(graph).matching
    else:
        matching = initial.copy().canonical()
    return matching.row_match, matching.col_match


def _bfs_levels(
    graph: BipartiteGraph,
    row_match: np.ndarray,
    col_match: np.ndarray,
    counters: dict,
) -> tuple[np.ndarray, int]:
    """Level-structure BFS from all unmatched columns.

    Returns the column levels and the length (in column levels) of the
    shortest augmenting path, or ``_INF`` when none exists.
    """
    level = np.full(graph.n_cols, _INF, dtype=np.int64)
    queue: deque[int] = deque()
    for v in np.flatnonzero(col_match == UNMATCHED):
        level[v] = 0
        queue.append(int(v))
    shortest = _INF
    while queue:
        v = queue.popleft()
        if level[v] >= shortest:
            continue
        for u in graph.column_neighbors(v):
            counters["edges_scanned"] += 1
            w = row_match[u]
            if w == UNMATCHED:
                shortest = min(shortest, level[v] + 1)
            elif level[w] == _INF:
                level[w] = level[v] + 1
                queue.append(int(w))
    return level, int(shortest)


def _dfs_augment_iterative(
    graph: BipartiteGraph,
    start: int,
    level: np.ndarray,
    row_match: np.ndarray,
    col_match: np.ndarray,
    row_used: np.ndarray,
    counters: dict,
    restrict_levels: bool,
) -> bool:
    """Iterative DFS (explicit stack) to avoid Python recursion limits on long paths."""
    col_ptr, col_ind = graph.col_ptr, graph.col_ind
    # Stack of (column, next neighbour offset); path_rows[i] is the row taken out of stack[i].
    stack: list[list[int]] = [[start, int(col_ptr[start])]]
    path_rows: list[int] = []
    while stack:
        v, idx = stack[-1]
        stop = int(col_ptr[v + 1])
        advanced = False
        while idx < stop:
            u = int(col_ind[idx])
            idx += 1
            counters["edges_scanned"] += 1
            if row_used[u]:
                continue
            w = int(row_match[u])
            if w == UNMATCHED:
                row_used[u] = True
                # Augment along the stack.
                row_match[u] = v
                col_match[v] = u
                for depth in range(len(stack) - 2, -1, -1):
                    prev_col = stack[depth][0]
                    prev_row = path_rows[depth]
                    row_match[prev_row] = prev_col
                    col_match[prev_col] = prev_row
                return True
            if restrict_levels and level[w] != level[v] + 1:
                continue
            if not restrict_levels and level[w] == _INF:
                continue
            row_used[u] = True
            stack[-1][1] = idx
            path_rows.append(u)
            stack.append([w, int(col_ptr[w])])
            advanced = True
            break
        if advanced:
            continue
        stack[-1][1] = idx
        if stack[-1][1] >= stop:
            stack.pop()
            if path_rows:
                path_rows.pop()
    return False


def hopcroft_karp_matching(
    graph: BipartiteGraph, initial: Matching | None = None
) -> MatchingResult:
    """Maximum cardinality matching with the Hopcroft–Karp algorithm."""
    t0 = time.perf_counter()
    row_match, col_match = _prepare(graph, initial)
    counters = {"edges_scanned": 0, "phases": 0, "augmentations": 0}

    while True:
        level, shortest = _bfs_levels(graph, row_match, col_match, counters)
        counters["phases"] += 1
        if shortest == _INF:
            break
        row_used = np.zeros(graph.n_rows, dtype=bool)
        augmented = 0
        for v in np.flatnonzero(col_match == UNMATCHED):
            if _dfs_augment_iterative(
                graph, int(v), level, row_match, col_match, row_used, counters, restrict_levels=True
            ):
                augmented += 1
        counters["augmentations"] += augmented
        if augmented == 0:
            break

    wall = time.perf_counter() - t0
    return MatchingResult.create(
        "HK", Matching(row_match, col_match), counters=counters, wall_time=wall
    )


def hkdw_matching(graph: BipartiteGraph, initial: Matching | None = None) -> MatchingResult:
    """Maximum cardinality matching with the HKDW (Hopcroft–Karp + Duff–Wassel) variant.

    Identical to :func:`hopcroft_karp_matching` but, after the level-restricted
    augmentation round of each phase, performs additional unrestricted DFS
    augmentations from the still-unmatched columns whose BFS level is finite.
    """
    t0 = time.perf_counter()
    row_match, col_match = _prepare(graph, initial)
    counters = {"edges_scanned": 0, "phases": 0, "augmentations": 0, "extra_augmentations": 0}

    while True:
        level, shortest = _bfs_levels(graph, row_match, col_match, counters)
        counters["phases"] += 1
        if shortest == _INF:
            break
        row_used = np.zeros(graph.n_rows, dtype=bool)
        augmented = 0
        for v in np.flatnonzero(col_match == UNMATCHED):
            if _dfs_augment_iterative(
                graph, int(v), level, row_match, col_match, row_used, counters, restrict_levels=True
            ):
                augmented += 1
        counters["augmentations"] += augmented
        # Duff–Wassel extra pass: unrestricted DFS for the remaining unmatched columns.
        extra = 0
        row_used.fill(False)
        for v in np.flatnonzero(col_match == UNMATCHED):
            if level[v] == _INF:
                continue
            if _dfs_augment_iterative(
                graph, int(v), level, row_match, col_match, row_used, counters, restrict_levels=False
            ):
                extra += 1
        counters["extra_augmentations"] += extra
        if augmented == 0 and extra == 0:
            break

    wall = time.perf_counter() - t0
    return MatchingResult.create(
        "HKDW", Matching(row_match, col_match), counters=counters, wall_time=wall
    )
