"""Sequential push-relabel bipartite matching (the paper's ``PR`` baseline).

This is Algorithm 1 of the paper with the standard practical refinements the
paper describes in §II-B/C:

* FIFO processing of active columns,
* full ``ψ`` arrays for both rows and columns,
* periodic **global relabeling** (Algorithm 2): a BFS from all unmatched rows
  that resets every label to the exact alternating-path distance, triggered
  every ``k × (n + m)`` pushes (the paper uses ``k = 0.5`` for its data set),
* optional **gap relabeling**: when some label value has no remaining column,
  every column above the gap is unreachable and is retired immediately.

The implementation counts its work (edges scanned, pushes, relabels, global
relabel traversals) so the benchmark harness can convert the counts into a
modelled sequential runtime comparable with the GPU cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["PushRelabelConfig", "push_relabel_matching"]


@dataclass(frozen=True)
class PushRelabelConfig:
    """Tuning knobs of the sequential push-relabel algorithm.

    Attributes
    ----------
    global_relabel_k:
        A global relabel is performed every ``global_relabel_k * (n + m)``
        pushes.  The paper reports ``k = 0.5`` as the best value for its data
        set and uses it in the experiments.
    gap_relabeling:
        Enable the gap heuristic.
    initial_global_relabel:
        Run a global relabel before the first push (the paper does this for
        the GPU algorithm and the sequential reference benefits equally).
    """

    global_relabel_k: float = 0.5
    gap_relabeling: bool = True
    initial_global_relabel: bool = True


def _global_relabel(
    graph: BipartiteGraph,
    row_match: np.ndarray,
    col_match: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    counters: dict,
) -> int:
    """Algorithm 2: exact distance labels via BFS from all unmatched rows.

    Returns the maximum (finite) level reached, i.e. the paper's
    ``maxLevel`` quantity used by the adaptive GPU strategy.
    """
    infinity = graph.infinity_label
    psi_row.fill(infinity)
    psi_col.fill(infinity)
    queue: deque[int] = deque()
    for u in np.flatnonzero(row_match == UNMATCHED):
        psi_row[u] = 0
        queue.append(int(u))
    max_level = 0
    edges = 0
    while queue:
        u = queue.popleft()
        level = psi_row[u]
        for v in graph.row_neighbors(u):
            edges += 1
            v = int(v)
            if psi_col[v] == infinity:
                psi_col[v] = level + 1
                w = col_match[v]
                if w >= 0 and psi_row[w] == infinity:
                    psi_row[w] = level + 2
                    max_level = max(max_level, level + 2)
                    queue.append(int(w))
    counters["global_relabels"] += 1
    counters["gr_edges_scanned"] += edges
    return int(max_level)


def push_relabel_matching(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    config: PushRelabelConfig | None = None,
) -> MatchingResult:
    """Compute a maximum cardinality matching with the sequential PR algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Starting matching; when ``None`` the cheap greedy matching is used, as
        in the paper's experimental setup.
    config:
        Algorithm parameters; defaults follow the paper (``k = 0.5``).

    Returns
    -------
    MatchingResult
        With counters ``pushes``, ``single_pushes``, ``double_pushes``,
        ``edges_scanned``, ``relabels``, ``global_relabels``,
        ``gr_edges_scanned``, ``gap_events`` and ``init_edges_scanned``.
    """
    config = config or PushRelabelConfig()
    t0 = time.perf_counter()

    if initial is None:
        init_result = cheap_matching(graph)
        matching = init_result.matching
        init_edges = init_result.counters["edges_scanned"]
    else:
        matching = initial.copy().canonical()
        init_edges = 0
    row_match = matching.row_match
    col_match = matching.col_match

    m, n = graph.n_rows, graph.n_cols
    infinity = graph.infinity_label
    col_ptr, col_ind = graph.col_ptr, graph.col_ind

    counters = {
        "pushes": 0,
        "single_pushes": 0,
        "double_pushes": 0,
        "edges_scanned": 0,
        "relabels": 0,
        "global_relabels": 0,
        "gr_edges_scanned": 0,
        "gap_events": 0,
        "init_edges_scanned": int(init_edges),
    }

    psi_row = np.zeros(m, dtype=np.int64)
    psi_col = np.ones(n, dtype=np.int64)

    if config.initial_global_relabel:
        _global_relabel(graph, row_match, col_match, psi_row, psi_col, counters)

    active: deque[int] = deque(
        int(v) for v in np.flatnonzero(col_match == UNMATCHED) if psi_col[v] < infinity
    )
    # Columns already unreachable after the first global relabel are retired.
    for v in np.flatnonzero(col_match == UNMATCHED):
        if psi_col[v] >= infinity:
            col_match[v] = UNMATCHED  # stays unmatched; nothing to do

    # Gap heuristic bookkeeping: number of columns per label value.
    label_counts = np.zeros(2 * infinity + 3, dtype=np.int64)
    if config.gap_relabeling:
        finite = psi_col[psi_col < infinity]
        np.add.at(label_counts, finite, 1)

    relabel_threshold = max(1, int(config.global_relabel_k * (n + m)))
    pushes_since_relabel = 0

    while active:
        v = active.popleft()
        if col_match[v] >= 0:
            continue  # matched meanwhile (can happen after a global relabel rebuild)
        psi_v = psi_col[v]
        if psi_v >= infinity:
            continue

        # Find the neighbouring row with minimum label (early exit at ψ(v) − 1).
        start, stop = col_ptr[v], col_ptr[v + 1]
        psi_min = infinity
        u_min = -1
        target = psi_v - 1
        for idx in range(start, stop):
            counters["edges_scanned"] += 1
            u = col_ind[idx]
            pu = psi_row[u]
            if pu < psi_min:
                psi_min = pu
                u_min = u
                if psi_min == target:
                    break

        if psi_min < infinity:
            u = int(u_min)
            w = int(row_match[u])
            counters["pushes"] += 1
            pushes_since_relabel += 1
            if w != UNMATCHED:
                counters["double_pushes"] += 1
                col_match[w] = UNMATCHED
                active.append(w)
            else:
                counters["single_pushes"] += 1
            row_match[u] = v
            col_match[v] = u
            # Relabel v and u (maintaining the neighbourhood invariant).
            old_label = psi_col[v]
            psi_col[v] = psi_min + 1
            psi_row[u] = psi_min + 2
            counters["relabels"] += 2
            if config.gap_relabeling:
                if old_label < infinity:
                    label_counts[old_label] -= 1
                    if label_counts[old_label] == 0 and old_label > 0:
                        # Gap: every column strictly above the gap is unreachable.
                        counters["gap_events"] += 1
                        above = psi_col > old_label
                        above &= psi_col < infinity
                        if np.any(above):
                            gapped = np.flatnonzero(above)
                            label_counts[psi_col[gapped]] -= 1
                            psi_col[gapped] = infinity
                if psi_col[v] < infinity:
                    label_counts[psi_col[v]] += 1
        else:
            # v cannot reach an unmatched row: retire it.
            psi_col[v] = infinity
            continue

        if pushes_since_relabel >= relabel_threshold:
            pushes_since_relabel = 0
            _global_relabel(graph, row_match, col_match, psi_row, psi_col, counters)
            if config.gap_relabeling:
                label_counts.fill(0)
                finite = psi_col[psi_col < infinity]
                np.add.at(label_counts, finite, 1)
            active = deque(
                int(c) for c in np.flatnonzero(col_match == UNMATCHED) if psi_col[c] < infinity
            )

    wall = time.perf_counter() - t0
    return MatchingResult.create(
        "PR", Matching(row_match, col_match), counters=counters, wall_time=wall
    )
