"""Sequential push-relabel bipartite matching (the paper's ``PR`` baseline).

This is Algorithm 1 of the paper with the standard practical refinements the
paper describes in §II-B/C:

* FIFO processing of active columns,
* full ``ψ`` arrays for both rows and columns,
* periodic **global relabeling** (Algorithm 2): a BFS from all unmatched rows
  that resets every label to the exact alternating-path distance, triggered
  every ``k × (n + m)`` pushes (the paper uses ``k = 0.5`` for its data set),
* optional **gap relabeling**: when some label value has no remaining column,
  every column above the gap is unreachable and is retired immediately.

The implementation counts its work (edges scanned, pushes, relabels, global
relabel traversals) so the benchmark harness can convert the counts into a
modelled sequential runtime comparable with the GPU cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.frontier import distance_label_bfs
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.seq.greedy import cheap_matching

__all__ = ["PushRelabelConfig", "push_relabel_matching"]


@dataclass(frozen=True)
class PushRelabelConfig:
    """Tuning knobs of the sequential push-relabel algorithm.

    Attributes
    ----------
    global_relabel_k:
        A global relabel is performed every ``global_relabel_k * (n + m)``
        pushes.  The paper reports ``k = 0.5`` as the best value for its data
        set and uses it in the experiments.
    gap_relabeling:
        Enable the gap heuristic.
    initial_global_relabel:
        Run a global relabel before the first push (the paper does this for
        the GPU algorithm and the sequential reference benefits equally).
    """

    global_relabel_k: float = 0.5
    gap_relabeling: bool = True
    initial_global_relabel: bool = True


def _global_relabel(
    graph: BipartiteGraph,
    row_match: np.ndarray,
    col_match: np.ndarray,
    psi_row: np.ndarray,
    psi_col: np.ndarray,
    counters: dict,
) -> int:
    """Algorithm 2: exact distance labels via BFS from all unmatched rows.

    Runs as one whole-frontier :func:`~repro.graph.frontier.distance_label_bfs`
    per call — levels and scanned-edge totals are identical to the historical
    deque traversal.  Returns the maximum (finite) level reached, i.e. the
    paper's ``maxLevel`` quantity used by the adaptive GPU strategy.
    """
    max_level, edges = distance_label_bfs(
        graph.row_ptr,
        graph.row_ind,
        row_match,
        col_match,
        psi_row,
        psi_col,
        graph.infinity_label,
    )
    counters["global_relabels"] += 1
    counters["gr_edges_scanned"] += edges
    return max_level


def push_relabel_matching(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    config: PushRelabelConfig | None = None,
) -> MatchingResult:
    """Compute a maximum cardinality matching with the sequential PR algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Starting matching; when ``None`` the cheap greedy matching is used, as
        in the paper's experimental setup.
    config:
        Algorithm parameters; defaults follow the paper (``k = 0.5``).

    Returns
    -------
    MatchingResult
        With counters ``pushes``, ``single_pushes``, ``double_pushes``,
        ``edges_scanned``, ``relabels``, ``global_relabels``,
        ``gr_edges_scanned``, ``gap_events`` and ``init_edges_scanned``.
    """
    config = config or PushRelabelConfig()
    t0 = time.perf_counter()

    if initial is None:
        init_result = cheap_matching(graph)
        matching = init_result.matching
        init_edges = init_result.counters["edges_scanned"]
    else:
        matching = initial.copy().canonical()
        init_edges = 0
    row_match_arr = matching.row_match
    col_match_arr = matching.col_match

    m, n = graph.n_rows, graph.n_cols
    infinity = graph.infinity_label
    col_ptr, col_ind = graph.csr_lists("col")

    counters = {
        "pushes": 0,
        "single_pushes": 0,
        "double_pushes": 0,
        "edges_scanned": 0,
        "relabels": 0,
        "global_relabels": 0,
        "gr_edges_scanned": 0,
        "gap_events": 0,
        "init_edges_scanned": int(init_edges),
    }

    psi_row_arr = np.zeros(m, dtype=np.int64)
    psi_col_arr = np.ones(n, dtype=np.int64)

    if config.initial_global_relabel:
        _global_relabel(graph, row_match_arr, col_match_arr, psi_row_arr, psi_col_arr, counters)

    # The push loop touches one adjacency slice and a handful of labels per
    # iteration, so it runs on plain list state (frontier-layer split, see
    # repro.graph.frontier); the ndarrays cross back only for the vectorized
    # global relabels.
    row_match = row_match_arr.tolist()
    col_match = col_match_arr.tolist()
    psi_row = psi_row_arr.tolist()
    psi_col = psi_col_arr.tolist()

    active: deque[int] = deque(
        v for v in range(n) if col_match[v] == UNMATCHED and psi_col[v] < infinity
    )

    # Gap heuristic bookkeeping: number of columns per label value.
    label_counts = [0] * (2 * infinity + 3)
    if config.gap_relabeling:
        for label in psi_col:
            if label < infinity:
                label_counts[label] += 1

    relabel_threshold = max(1, int(config.global_relabel_k * (n + m)))
    pushes_since_relabel = 0
    edges_scanned = 0

    # hot-path
    while active:
        v = active.popleft()
        if col_match[v] >= 0:
            continue  # matched meanwhile (can happen after a global relabel rebuild)
        psi_v = psi_col[v]
        if psi_v >= infinity:
            continue

        # Find the neighbouring row with minimum label (early exit at ψ(v) − 1).
        stop = col_ptr[v + 1]
        psi_min = infinity
        u_min = -1
        target = psi_v - 1
        for idx in range(col_ptr[v], stop):
            edges_scanned += 1
            pu = psi_row[col_ind[idx]]
            if pu < psi_min:
                psi_min = pu
                u_min = col_ind[idx]
                if psi_min == target:
                    break

        if psi_min < infinity:
            u = u_min
            w = row_match[u]
            counters["pushes"] += 1
            pushes_since_relabel += 1
            if w != UNMATCHED:
                counters["double_pushes"] += 1
                col_match[w] = UNMATCHED
                active.append(w)
            else:
                counters["single_pushes"] += 1
            row_match[u] = v
            col_match[v] = u
            # Relabel v and u (maintaining the neighbourhood invariant).
            old_label = psi_col[v]
            psi_col[v] = psi_min + 1
            psi_row[u] = psi_min + 2
            counters["relabels"] += 2
            if config.gap_relabeling:
                if old_label < infinity:
                    label_counts[old_label] -= 1
                    if label_counts[old_label] == 0 and old_label > 0:
                        # Gap: every column strictly above the gap is unreachable.
                        # Each label value present above the gap is decremented
                        # once — the (buffered) fancy-assignment semantics of
                        # the historical `label_counts[psi_col[gapped]] -= 1`,
                        # which dropped duplicate occurrences.
                        counters["gap_events"] += 1
                        decremented = set()
                        for c in range(n):
                            label = psi_col[c]
                            if old_label < label < infinity:
                                if label not in decremented:
                                    decremented.add(label)
                                    label_counts[label] -= 1
                                psi_col[c] = infinity
                if psi_col[v] < infinity:
                    label_counts[psi_col[v]] += 1
        else:
            # v cannot reach an unmatched row: retire it.
            psi_col[v] = infinity
            continue

        if pushes_since_relabel >= relabel_threshold:
            pushes_since_relabel = 0
            row_match_arr = np.array(row_match, dtype=np.int64)
            col_match_arr = np.array(col_match, dtype=np.int64)
            _global_relabel(
                graph, row_match_arr, col_match_arr, psi_row_arr, psi_col_arr, counters
            )
            psi_row = psi_row_arr.tolist()
            psi_col = psi_col_arr.tolist()
            if config.gap_relabeling:
                label_counts = [0] * (2 * infinity + 3)
                for label in psi_col:
                    if label < infinity:
                        label_counts[label] += 1
            active = deque(
                c for c in range(n) if col_match[c] == UNMATCHED and psi_col[c] < infinity
            )
    # end hot-path

    counters["edges_scanned"] += edges_scanned
    wall = time.perf_counter() - t0
    result = Matching(
        np.array(row_match, dtype=np.int64), np.array(col_match, dtype=np.int64)
    )
    return MatchingResult.create("PR", result, counters=counters, wall_time=wall)
