"""Validity and weight checks for b-matchings.

These are the capacitated counterparts of the uncapacitated invariant
helpers the test-suite uses: a b-matching is *valid* when every selected
pair is an edge of the graph, no edge is selected twice, and no vertex
exceeds its capacity.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.matching import CapacitatedMatching, effective_capacities
from repro.graph.bipartite import BipartiteGraph

__all__ = ["assignment_demand", "b_matching_weight", "is_valid_b_matching"]


def is_valid_b_matching(graph: BipartiteGraph, matching: CapacitatedMatching) -> bool:
    """Whether ``matching`` is a valid b-matching of ``graph``.

    Checks shape compatibility, that every selected pair is an edge of the
    graph, and that per-vertex loads respect the (effective) capacities.
    Duplicate edges are rejected by the container itself.
    """
    try:
        matching.check_compatible(graph, context="b-matching")
    except ValueError:
        return False
    for u, v in matching.pairs():
        if not graph.has_edge(u, v):
            return False
    b_row, b_col = effective_capacities(graph)
    if np.any(matching.row_loads() > b_row):
        return False
    if np.any(matching.col_loads() > b_col):
        return False
    return True


def b_matching_weight(graph: BipartiteGraph, matching: CapacitatedMatching) -> float:
    """Total edge weight of ``matching`` on ``graph`` (unit weights if none)."""
    if not graph.has_weights:
        return float(matching.cardinality)
    return float(sum(graph.edge_weight(u, v) for u, v in matching.pairs()))


def assignment_demand(graph: BipartiteGraph) -> int:
    """Serviceable demand: the smaller side's total capacity, isolated
    vertices excluded.

    A vertex with no edges can never be assigned, so it contributes no
    demand — this is what makes the streaming assignment rate
    (``cardinality / demand``) meaningful under vertex retirement, where
    departed vertices stay behind as isolated indices.  Unit capacities are
    assumed where the graph carries none.
    """
    b_row, b_col = effective_capacities(graph)
    row_deg = np.asarray(graph.row_degrees)
    col_deg = np.asarray(graph.col_degrees)
    return int(min(b_row[row_deg > 0].sum(), b_col[col_deg > 0].sum()))
