"""The b-matching container shared by every capacitated solver.

A *b-matching* of a bipartite graph ``G = (VR ∪ VC, E)`` with per-vertex
capacities ``b_row`` / ``b_col`` is a set of edges ``S ⊆ E`` (each edge at
most once) such that row ``u`` is covered by at most ``b_row[u]`` edges of
``S`` and column ``v`` by at most ``b_col[v]``.  A 1-regular b-matching is an
ordinary matching, but in general a vertex pairs with *several* partners, so
the ``row_match`` / ``col_match`` arrays of :class:`repro.matching.Matching`
cannot represent it.  This container stores the selected edge set directly,
as two parallel index arrays kept in lexicographic ``(row, col)`` order so
that equal edge sets compare (and serialize) identically.

:class:`CapacitatedMatching` implements the same structural protocol the
result pipeline relies on for :class:`~repro.matching.Matching` —
``canonical()``, ``cardinality``, ``copy()``, ``pairs()`` and
``check_compatible()`` — so :class:`~repro.matching.MatchingResult` and the
engine backends (including pickling across process boundaries) handle both
containers uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["CapacitatedMatching", "effective_capacities"]


def effective_capacities(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """The graph's ``(b_row, b_col)``, defaulting to all-ones when absent.

    Every capacitated solver goes through this helper so a capacity-free
    graph uniformly means "ordinary matching" (b = 1 everywhere).
    """
    if graph.has_capacities:
        return graph.b_row, graph.b_col
    return (
        np.ones(graph.n_rows, dtype=np.int64),
        np.ones(graph.n_cols, dtype=np.int64),
    )


@dataclass
class CapacitatedMatching:
    """A (not necessarily maximum) b-matching stored as an explicit edge set.

    Attributes
    ----------
    edge_rows, edge_cols:
        Parallel ``int64`` arrays: the ``k``-th selected edge joins row
        ``edge_rows[k]`` and column ``edge_cols[k]``.  Kept sorted by
        ``(row, col)`` and duplicate-free (``__post_init__`` enforces both).
    n_rows, n_cols:
        Vertex counts of the graph the matching was built for, needed to
        size the load vectors and to validate compatibility.
    """

    edge_rows: np.ndarray
    edge_cols: np.ndarray
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        rows = np.asarray(self.edge_rows, dtype=np.int64)
        cols = np.asarray(self.edge_cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError(
                f"edge_rows/edge_cols must be parallel 1-D arrays, "
                f"got shapes {rows.shape} and {cols.shape}"
            )
        if len(rows):
            order = np.lexsort((cols, rows))
            rows, cols = rows[order], cols[order]
            keys = rows * (int(cols.max()) + 1 if len(cols) else 1) + cols
            if len(np.unique(keys)) != len(keys):
                raise ValueError("a b-matching selects each edge at most once")
        self.edge_rows = rows
        self.edge_cols = cols

    # ------------------------------------------------------------ constructors
    @classmethod
    def empty(cls, graph: BipartiteGraph) -> "CapacitatedMatching":
        """The empty b-matching of ``graph``."""
        zero = np.empty(0, dtype=np.int64)
        return cls(zero, zero.copy(), graph.n_rows, graph.n_cols)

    @classmethod
    def from_pairs(
        cls, graph: BipartiteGraph, pairs: Iterable[tuple[int, int]]
    ) -> "CapacitatedMatching":
        """Build a b-matching from ``(row, col)`` pairs, bounds-checked."""
        pair_list = [(int(u), int(v)) for u, v in pairs]
        for u, v in pair_list:
            if not 0 <= u < graph.n_rows:
                raise ValueError(
                    f"pair ({u}, {v}): row index {u} out of range [0, {graph.n_rows})"
                )
            if not 0 <= v < graph.n_cols:
                raise ValueError(
                    f"pair ({u}, {v}): column index {v} out of range [0, {graph.n_cols})"
                )
        rows = np.array([u for u, _ in pair_list], dtype=np.int64)
        cols = np.array([v for _, v in pair_list], dtype=np.int64)
        return cls(rows, cols, graph.n_rows, graph.n_cols)

    # -------------------------------------------------------------- properties
    @property
    def cardinality(self) -> int:
        """Number of selected edges (the objective of maximum b-matching)."""
        return int(len(self.edge_rows))

    def row_loads(self) -> np.ndarray:
        """How many selected edges cover each row vertex."""
        return np.bincount(self.edge_rows, minlength=self.n_rows).astype(np.int64)

    def col_loads(self) -> np.ndarray:
        """How many selected edges cover each column vertex."""
        return np.bincount(self.edge_cols, minlength=self.n_cols).astype(np.int64)

    def check_compatible(self, graph: BipartiteGraph, *, context: str = "matching") -> None:
        """Raise ``ValueError`` unless this b-matching fits ``graph``'s shape.

        Mirrors :meth:`repro.matching.Matching.check_compatible`: shape and
        index-range checks with a message naming the graph, so a matching
        built for a different graph fails loudly at the API boundary.
        """
        if self.n_rows != graph.n_rows or self.n_cols != graph.n_cols:
            raise ValueError(
                f"{context} has shape ({self.n_rows}, {self.n_cols}) "
                f"but graph {graph.name!r} has shape ({graph.n_rows}, {graph.n_cols}); "
                "was it built for a different graph?"
            )
        if len(self.edge_rows):
            if int(self.edge_rows.min()) < 0 or int(self.edge_rows.max()) >= graph.n_rows:
                raise ValueError(
                    f"{context} selects a row outside graph {graph.name!r}'s "
                    f"row range [0, {graph.n_rows})"
                )
            if int(self.edge_cols.min()) < 0 or int(self.edge_cols.max()) >= graph.n_cols:
                raise ValueError(
                    f"{context} selects a column outside graph {graph.name!r}'s "
                    f"column range [0, {graph.n_cols})"
                )

    # ------------------------------------------------------------------- utils
    def copy(self) -> "CapacitatedMatching":
        """Deep copy."""
        return CapacitatedMatching(
            self.edge_rows.copy(), self.edge_cols.copy(), self.n_rows, self.n_cols
        )

    def canonical(self) -> "CapacitatedMatching":
        """This b-matching in canonical form.

        ``__post_init__`` already sorts and rejects duplicates, so the
        canonical form is simply a copy — the method exists because
        :meth:`repro.matching.MatchingResult.create` canonicalises every
        matching it is handed, whichever container it is.
        """
        return self.copy()

    def pairs(self) -> list[tuple[int, int]]:
        """All selected ``(row, col)`` pairs in lexicographic order."""
        return [
            (int(u), int(v))
            for u, v in zip(self.edge_rows.tolist(), self.edge_cols.tolist())
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CapacitatedMatching):
            return NotImplemented
        return (
            self.n_rows == other.n_rows
            and self.n_cols == other.n_cols
            and np.array_equal(self.edge_rows, other.edge_rows)
            and np.array_equal(self.edge_cols, other.edge_cols)
        )
