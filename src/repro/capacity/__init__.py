"""Capacitated (b-matching) solvers and containers.

Generalizes the library from 1-regular matchings to *b-matchings*: row ``u``
may be matched to up to ``b_row[u]`` columns and column ``v`` to up to
``b_col[v]`` rows.  Capacities live on :class:`repro.graph.bipartite.
BipartiteGraph` (``with_capacities``); the solvers here are registered in
:data:`repro.core.api.SPECS` as ``b-expand``, ``b-aug`` and ``b-auction``
and flow through the ordinary pipeline (engine, service, server, CLI).  On
capacity-free graphs every solver delegates to its uncapacitated
counterpart and returns a bit-identical result.
"""

from repro.capacity.augment import capacitated_augment_matching
from repro.capacity.auction import capacitated_auction_matching
from repro.capacity.expand import build_expansion, capacitated_expand_matching
from repro.capacity.matching import CapacitatedMatching, effective_capacities
from repro.capacity.verify import (
    assignment_demand,
    b_matching_weight,
    is_valid_b_matching,
)

__all__ = [
    "CapacitatedMatching",
    "assignment_demand",
    "b_matching_weight",
    "build_expansion",
    "capacitated_augment_matching",
    "capacitated_auction_matching",
    "capacitated_expand_matching",
    "effective_capacities",
    "is_valid_b_matching",
]
