"""Capacitated ε-scaling auction: many-to-one weighted assignment.

Reuses the Jacobi bidding rounds of :func:`repro.weighted.auction.
weighted_auction_matching` unchanged.  Column ``v`` (an *object* in auction
terms) with capacity ``c_v`` becomes ``c_v`` clone objects carrying the same
edge weights; rows bid on the clones exactly as in the 1-regular auction,
and the matched clones fold back to ``c_v``-many assignments on the
original column.  Row capacities must all be 1 — a row (a *person*) bids
for a single object per auction round, so one-to-many rows have no faithful
auction formulation here; general b-matchings go through ``b-expand`` or
``b-aug`` instead.

With every effective capacity at 1 the clone graph is the input graph, so
the solver delegates to the uncapacitated auction outright and returns its
bit-identical result (dual certificate included).  On the genuinely
capacitated path the certificate is dropped: the expanded duals price the
clone objects, not the original columns.
"""

from __future__ import annotations

import time

import numpy as np

from repro.capacity.matching import CapacitatedMatching, effective_capacities
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges
from repro.matching import MatchingResult
from repro.weighted.auction import AuctionConfig, weighted_auction_matching

__all__ = ["capacitated_auction_matching"]


def capacitated_auction_matching(
    graph: BipartiteGraph,
    initial=None,
    config: AuctionConfig | None = None,
    device=None,
) -> MatchingResult:
    """Maximum-cardinality, weight-optimal many-to-one assignment of ``graph``."""
    b_row, b_col = effective_capacities(graph)
    if int(b_row.max(initial=1)) == 1 and int(b_col.max(initial=1)) == 1:
        result = weighted_auction_matching(graph, config=config, device=device)
        result.counters["capacity_delegated"] = 1
        return result
    if int(b_row.max(initial=1)) > 1:
        offender = int(np.argmax(b_row))
        raise ValueError(
            "b-auction solves many-to-one assignment: every row capacity "
            f"must be 1, but b_row[{offender}]={int(b_row[offender])} on "
            f"graph {graph.name!r}; use 'b-expand' or 'b-aug' for general "
            "b-matchings"
        )

    start = time.perf_counter()
    # Expand each column into b_col[v] clone objects with replicated weights.
    edge_u = graph.col_ind
    edge_v = graph.edge_columns()
    base_col = np.concatenate([[0], np.cumsum(b_col)]).astype(np.int64)
    reps = b_col[edge_v]
    if graph.n_edges:
        csum = np.cumsum(reps)
        offsets = np.arange(int(csum[-1]), dtype=np.int64) - np.repeat(csum - reps, reps)
        rows_exp = np.repeat(edge_u, reps)
        cols_exp = np.repeat(base_col[edge_v], reps) + offsets
        weights_exp = np.repeat(graph.weights, reps) if graph.has_weights else None
        edges_exp = np.column_stack([rows_exp, cols_exp])
    else:
        edges_exp = np.empty((0, 2), dtype=np.int64)
        weights_exp = np.empty(0, dtype=np.float64) if graph.has_weights else None
    expanded = from_edges(
        edges_exp,
        n_rows=graph.n_rows,
        n_cols=int(base_col[-1]),
        name=f"{graph.name}:b-auction",
        weights=weights_exp,
    )

    result = weighted_auction_matching(expanded, config=config, device=device)

    # Fold clone objects back to their original columns.
    row_match = result.matching.row_match
    matched = np.flatnonzero(row_match >= 0)
    orig_cols = np.searchsorted(base_col, row_match[matched], side="right") - 1
    matching = CapacitatedMatching(
        matched.astype(np.int64), orig_cols.astype(np.int64), graph.n_rows, graph.n_cols
    )

    counters = dict(result.counters)
    counters.update(
        expansion_cols=expanded.n_cols,
        expansion_edges=expanded.n_edges,
        # Recomputed on the original graph; the clones replicate weights, so
        # this equals the expanded objective, but the original graph is the
        # contract the caller cares about.
        total_weight=float(
            sum(
                graph.edge_weight(u, v) if graph.has_weights else 1.0
                for u, v in matching.pairs()
            )
        ),
    )
    return MatchingResult.create(
        "B-AUC",
        matching,
        counters=counters,
        wall_time=time.perf_counter() - start,
    )
