"""Direct degree-constrained augmenting-path b-matching solver.

Solves maximum b-matching *without* materializing the clone expansion of
:mod:`repro.capacity.expand`.  The implicit flow network is

    source ──(c_v)──▶ columns ──(1 per edge)──▶ rows ──(b_u)──▶ sink

and the solver runs alternating-path searches on its residual graph: from a
column with spare capacity, forward along an unselected edge to a row;
if the row is saturated, backward along one of its selected edges to
another column; until a row with spare capacity is found.  Augmenting flips
the path, raising the selected-edge count by one.

Searches are scalar DFS walks in the style of
:mod:`repro.dynamic.incremental` — explicit stacks, cached CSR lists,
per-search ``bytearray`` visited maps — and the selected edge set lives in
insertion-ordered per-vertex dicts plus integer load vectors, so runs are
deterministic.  Columns are swept in index order until a full sweep yields
no augmentation (the flow value is then maximum: no residual path exists
from any column with spare source capacity).

With every effective capacity at 1 the network *is* ordinary bipartite
matching, so the solver delegates to Hopcroft–Karp outright and returns its
bit-identical result.
"""

from __future__ import annotations

import time

import numpy as np

from repro.capacity.matching import CapacitatedMatching, effective_capacities
from repro.graph.bipartite import BipartiteGraph
from repro.matching import Matching, MatchingResult

__all__ = ["capacitated_augment_matching"]


def _seed_pairs(graph, initial, b_row, b_col):
    """Validate a warm-start matching and return its pairs.

    Accepts either container (:class:`Matching` from the uncapacitated
    solvers or :class:`CapacitatedMatching`); every pair must be an edge of
    ``graph`` and the loads must respect the capacities, otherwise the warm
    start would silently corrupt the invariant every search relies on.
    """
    pairs = initial.pairs()
    row_load = np.zeros(graph.n_rows, dtype=np.int64)
    col_load = np.zeros(graph.n_cols, dtype=np.int64)
    for u, v in pairs:
        if not graph.has_edge(u, v):
            raise ValueError(
                f"warm-start matching selects ({u}, {v}), which is not an "
                f"edge of graph {graph.name!r}"
            )
        row_load[u] += 1
        col_load[v] += 1
    if np.any(row_load > b_row) or np.any(col_load > b_col):
        raise ValueError(
            "warm-start matching exceeds a vertex capacity of graph "
            f"{graph.name!r}"
        )
    return pairs


def capacitated_augment_matching(
    graph: BipartiteGraph,
    initial: Matching | CapacitatedMatching | None = None,
    config=None,
    device=None,
) -> MatchingResult:
    """Maximum b-matching of ``graph`` by residual augmenting-path search."""
    b_row, b_col = effective_capacities(graph)
    if int(b_row.max(initial=1)) == 1 and int(b_col.max(initial=1)) == 1:
        # Ordinary matching: delegate to Hopcroft–Karp (bit-identical).
        from repro.seq.hopcroft_karp import hopcroft_karp_matching

        if isinstance(initial, CapacitatedMatching):
            initial = Matching.from_pairs(graph, initial.pairs())
        result = hopcroft_karp_matching(graph, initial=initial)
        result.counters["capacity_delegated"] = 1
        return result

    start = time.perf_counter()
    n_rows, n_cols = graph.n_rows, graph.n_cols
    cptr, cind = graph.csr_lists("col")
    b_row_list, b_col_list = b_row.tolist(), b_col.tolist()

    # Selected edge set: per-row and per-column insertion-ordered dict-sets
    # plus integer loads (kept in lockstep).
    row_sel: list[dict[int, None]] = [dict() for _ in range(n_rows)]
    col_sel: list[dict[int, None]] = [dict() for _ in range(n_cols)]
    row_load = [0] * n_rows
    col_load = [0] * n_cols

    def select(u: int, v: int) -> None:
        row_sel[u][v] = None
        col_sel[v][u] = None
        row_load[u] += 1
        col_load[v] += 1

    def deselect(u: int, v: int) -> None:
        del row_sel[u][v]
        del col_sel[v][u]
        row_load[u] -= 1
        col_load[v] -= 1

    if initial is not None:
        for u, v in _seed_pairs(graph, initial, b_row, b_col):
            select(u, v)

    counters = {"edges_scanned": 0, "searches": 0, "augmentations": 0, "sweeps": 0}

    def try_augment(v0: int) -> bool:
        """One residual DFS from column ``v0``; flips the path on success."""
        counters["searches"] += 1
        scanned = 0
        visited_row = bytearray(n_rows)
        visited_col = bytearray(n_cols)
        visited_col[v0] = 1
        # Frame: [col, forward CSR cursor, entry_row, bwd_cols, bwd_idx,
        # pending_row].  ``entry_row`` is the saturated row whose selected
        # edge led into this column (None at the root); it is what
        # augmentation flips on the way back up.  ``bwd_cols``/``bwd_idx``
        # iterate the selected columns of ``pending_row`` (the saturated row
        # currently being explored), so a failed descent resumes with that
        # row's *next* selected column before the forward scan moves on.
        frames: list[list] = [[v0, cptr[v0], None, None, 0, -1]]
        try:
            while frames:
                frame = frames[-1]
                descended = False
                while frame[3] is not None:
                    # Resume the backward iteration of the pending row.
                    if frame[4] < len(frame[3]):
                        v2 = frame[3][frame[4]]
                        frame[4] += 1
                        if not visited_col[v2]:
                            visited_col[v2] = 1
                            frames.append([v2, cptr[v2], frame[5], None, 0, -1])
                            descended = True
                            break
                    else:
                        frame[3] = None
                if descended:
                    continue
                v, ptr = frame[0], frame[1]
                end = cptr[v + 1]
                while ptr < end:
                    u = cind[ptr]
                    ptr += 1
                    scanned += 1
                    if visited_row[u] or v in row_sel[u]:
                        continue  # already explored, or not a forward edge
                    visited_row[u] = 1
                    if row_load[u] < b_row_list[u]:
                        # Free row: flip the alternating path frame by frame.
                        select(u, v)
                        for depth in range(len(frames) - 1, 0, -1):
                            child = frames[depth]
                            parent = frames[depth - 1]
                            deselect(child[2], child[0])
                            select(child[2], parent[0])
                        return True
                    # Saturated row: descend through its selected columns
                    # (insertion order keeps this deterministic).
                    frame[1] = ptr
                    frame[3] = list(row_sel[u])
                    frame[4] = 0
                    frame[5] = u
                    descended = True
                    break
                if descended:
                    continue
                frame[1] = ptr
                frames.pop()
            return False
        finally:
            counters["edges_scanned"] += scanned

    while True:
        counters["sweeps"] += 1
        progress = False
        for v in range(n_cols):
            while col_load[v] < b_col_list[v] and try_augment(v):
                counters["augmentations"] += 1
                progress = True
        if not progress:
            break

    pairs = [(u, v) for u in range(n_rows) for v in row_sel[u]]
    matching = CapacitatedMatching.from_pairs(graph, pairs)
    return MatchingResult.create(
        "B-AUG",
        matching,
        counters=counters,
        wall_time=time.perf_counter() - start,
    )
