"""Capacitated b-matching by clone expansion.

The textbook reduction: replace row ``u`` by ``b_row[u]`` clones and column
``v`` by ``b_col[v]`` clones, then solve an ordinary maximum matching on the
expanded graph.  Cloning *both* endpoints of an edge would let the edge be
used ``min(b_u, c_v)`` times, which a b-matching forbids — so every edge
whose endpoints are both cloned goes through a 2-vertex *gadget* instead:

.. code-block:: text

    u_1 .. u_bu ──── c_e ──── r_e ──── v_1 .. v_cv

Row clones connect to the gadget column ``c_e``, the gadget row ``r_e``
connects to the column clones, and ``c_e — r_e`` is itself an edge.  A
maximum matching always matches each gadget at least once (``c_e — r_e`` is
free otherwise), and matches it **twice** exactly when the original edge is
selected, so

    ``max-matching(expansion) = n_gadgets + max-b-matching(G)``

and the selected edge set reads off the matched gadgets.  Edges with at most
one cloned endpoint skip the gadget and connect the clones directly.

The expansion is solved with any registered maximum-cardinality algorithm
(``inner``, default ``"hk"``); with all capacities at 1 the expansion *is*
the input graph, so the solver delegates to the inner algorithm outright and
returns its bit-identical result.
"""

from __future__ import annotations

import time

import numpy as np

from repro.capacity.matching import CapacitatedMatching, effective_capacities
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges
from repro.matching import MatchingResult

__all__ = ["build_expansion", "capacitated_expand_matching"]


def _inner_plan(inner: str):
    """Resolve and validate the inner (expansion) algorithm."""
    # Imported lazily: repro.core.api registers *this* module's runner.
    from repro.core.api import SPECS, resolve_algorithm

    key = str(inner).strip().lower()
    spec = SPECS.get(key)
    if spec is None:
        raise ValueError(
            f"unknown inner algorithm {inner!r} for b-expand; "
            f"available: {', '.join(sorted(SPECS))}"
        )
    if not spec.maximum or spec.weighted or spec.capacitated:
        raise ValueError(
            f"b-expand needs a maximum-cardinality, cardinality-only inner "
            f"algorithm to solve the expansion; {key!r} is not one"
        )
    return resolve_algorithm(key)


def build_expansion(
    graph: BipartiteGraph,
) -> tuple[BipartiteGraph, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The clone-expansion of ``graph`` plus the bookkeeping to fold back.

    Returns ``(expansion, base_row, base_col, gadget_u, gadget_v)`` where
    ``base_row[u]`` is the first expansion row index of ``u``'s clones
    (``base_col`` likewise for columns), and gadget ``g`` — expansion row
    ``n_row_clones + g``, expansion column ``n_col_clones + g`` — stands for
    the original edge ``(gadget_u[g], gadget_v[g])``.
    """
    b_row, b_col = effective_capacities(graph)
    base_row = np.concatenate([[0], np.cumsum(b_row)]).astype(np.int64)
    base_col = np.concatenate([[0], np.cumsum(b_col)]).astype(np.int64)
    n_row_clones = int(base_row[-1])
    n_col_clones = int(base_col[-1])

    edge_u = graph.col_ind.tolist()
    edge_v = graph.edge_columns().tolist()
    b_row_list, b_col_list = b_row.tolist(), b_col.tolist()
    row_base, col_base = base_row.tolist(), base_col.tolist()

    exp_edges: list[tuple[int, int]] = []
    gadget_u: list[int] = []
    gadget_v: list[int] = []
    for u, v in zip(edge_u, edge_v):
        bu, cv = b_row_list[u], b_col_list[v]
        if bu > 1 and cv > 1:
            g = len(gadget_u)
            r_e = n_row_clones + g
            c_e = n_col_clones + g
            gadget_u.append(u)
            gadget_v.append(v)
            for i in range(bu):
                exp_edges.append((row_base[u] + i, c_e))
            for j in range(cv):
                exp_edges.append((r_e, col_base[v] + j))
            exp_edges.append((r_e, c_e))
        elif bu > 1:  # cv == 1: clone the row side only
            for i in range(bu):
                exp_edges.append((row_base[u] + i, col_base[v]))
        else:  # bu == 1: clone the column side only (or neither)
            for j in range(cv):
                exp_edges.append((row_base[u], col_base[v] + j))

    n_gadgets = len(gadget_u)
    expansion = from_edges(
        exp_edges,
        n_rows=n_row_clones + n_gadgets,
        n_cols=n_col_clones + n_gadgets,
        name=f"{graph.name}:b-expand",
    )
    return (
        expansion,
        base_row,
        base_col,
        np.asarray(gadget_u, dtype=np.int64),
        np.asarray(gadget_v, dtype=np.int64),
    )


def capacitated_expand_matching(
    graph: BipartiteGraph,
    initial=None,
    config=None,
    device=None,
    *,
    inner: str = "hk",
) -> MatchingResult:
    """Maximum b-matching of ``graph`` via the clone expansion.

    With every (effective) capacity equal to 1 the expansion is the input
    graph itself, so the call delegates to the ``inner`` algorithm and
    returns its result unchanged (bit-identical matching arrays).
    """
    plan = _inner_plan(inner)
    b_row, b_col = effective_capacities(graph)
    if int(b_row.max(initial=1)) == 1 and int(b_col.max(initial=1)) == 1:
        result = plan.run(graph)
        result.counters["capacity_delegated"] = 1
        return result

    start = time.perf_counter()
    expansion, base_row, base_col, gadget_u, gadget_v = build_expansion(graph)
    inner_result = plan.run(expansion)

    n_row_clones = int(base_row[-1])
    n_col_clones = int(base_col[-1])
    n_gadgets = len(gadget_u)
    row_match = inner_result.matching.row_match  # canonical: row side is truth

    pairs: list[tuple[int, int]] = []
    # Direct clone edges: a matched (row-clone, column-clone) pair folds
    # straight back to its original endpoints.
    clone_rows = np.arange(n_row_clones, dtype=np.int64)
    clone_cols = row_match[:n_row_clones]
    direct = clone_cols >= 0
    direct &= clone_cols < n_col_clones
    orig_u = np.searchsorted(base_row, clone_rows[direct], side="right") - 1
    orig_v = np.searchsorted(base_col, clone_cols[direct], side="right") - 1
    pairs.extend(zip(orig_u.tolist(), orig_v.tolist()))
    # Gadgets: edge g is selected exactly when both gadget vertices are
    # matched *away* from each other (c_e to a row clone, r_e to a column
    # clone); c_e—r_e matched (or a half-matched gadget) means unselected.
    if n_gadgets:
        c_e_matched = np.zeros(n_gadgets, dtype=bool)
        gadget_col_hit = row_match[:n_row_clones] - n_col_clones
        hit = gadget_col_hit >= 0
        c_e_matched[gadget_col_hit[hit]] = True
        r_e_match = row_match[n_row_clones:]
        r_e_matched = (r_e_match >= 0) & (r_e_match < n_col_clones)
        selected = np.flatnonzero(c_e_matched & r_e_matched)
        pairs.extend(zip(gadget_u[selected].tolist(), gadget_v[selected].tolist()))

    matching = CapacitatedMatching.from_pairs(graph, pairs)
    counters = dict(inner_result.counters)
    counters.update(
        expansion_rows=expansion.n_rows,
        expansion_cols=expansion.n_cols,
        expansion_edges=expansion.n_edges,
        gadgets=n_gadgets,
    )
    return MatchingResult.create(
        f"B-EXP[{inner_result.algorithm}]",
        matching,
        counters=counters,
        wall_time=time.perf_counter() - start,
    )
