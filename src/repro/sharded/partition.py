"""Column-block partitioning of the dual-CSR bipartite graph.

A :class:`ShardedBipartiteGraph` splits the column side into contiguous
blocks: shard ``s`` owns the global columns ``[boundaries[s],
boundaries[s+1])`` and stores them as an ordinary :class:`BipartiteGraph`
with *local* column ids and *global* row ids.  Rows are replicated — a row
adjacent to columns in several shards appears in each of them — and the
boundary index records exactly which rows those are, because they are the
only place augmenting paths can cross shards.

Two splitters produce the boundaries (:data:`PARTITION_METHODS`):

* ``contiguous`` — equal column counts per shard (no degree information
  needed, so the out-of-core ingest can use it in a single pass);
* ``degree`` — boundaries chosen on the cumulative column-degree curve so
  shards carry roughly equal *edge* counts (degree-balanced).

Shards are served by a store: :class:`MaterializedShardStore` keeps them in
memory (cheap views of an existing graph), :class:`SpilledShardStore` keeps
them on disk and loads at most ``max_resident`` at a time — the contract the
out-of-core ingest (:mod:`repro.sharded.ingest`) and the CI memory gate rely
on.  Always-resident metadata is vertex-sized only (degrees, boundaries,
boundary index), never edge-sized.

``content_hash()`` reproduces the *unsharded* ``BipartiteGraph.content_hash``
byte for byte by streaming the global CSR arrays out of the shards (the
column side concatenates; the row side is a stable per-row-block merge), so
sharded and in-memory representations of the same graph share one cache
identity.
"""

from __future__ import annotations

import shutil
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import _csr_from_pairs, from_edges
from repro.graph.io import ChunkedContentHasher

__all__ = [
    "PARTITION_METHODS",
    "ColumnPartition",
    "MaterializedShardStore",
    "ShardedBipartiteGraph",
    "SpilledShardStore",
    "load_shard",
    "make_partition",
    "partition_graph",
    "save_shard",
]

PARTITION_METHODS = ("contiguous", "degree")


@dataclass(frozen=True)
class ColumnPartition:
    """Contiguous column-block boundaries: shard ``s`` owns ``[b[s], b[s+1])``."""

    n_cols: int
    boundaries: np.ndarray
    method: str

    def __post_init__(self) -> None:
        boundaries = np.ascontiguousarray(np.asarray(self.boundaries, dtype=np.int64))
        boundaries.setflags(write=False)
        object.__setattr__(self, "boundaries", boundaries)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise ValueError("boundaries must be a 1-D array with at least 2 entries")
        if boundaries[0] != 0 or boundaries[-1] != self.n_cols:
            raise ValueError(
                f"boundaries must span [0, n_cols={self.n_cols}], got "
                f"[{boundaries[0]}, {boundaries[-1]}]"
            )
        if np.any(np.diff(boundaries) < 0):
            raise ValueError("boundaries must be non-decreasing")

    @property
    def n_shards(self) -> int:
        return self.boundaries.size - 1

    def column_range(self, shard: int) -> tuple[int, int]:
        return int(self.boundaries[shard]), int(self.boundaries[shard + 1])

    def width(self, shard: int) -> int:
        lo, hi = self.column_range(shard)
        return hi - lo

    def shard_of(self, cols: np.ndarray) -> np.ndarray:
        """Owning shard of each global column id (vectorized)."""
        return np.searchsorted(self.boundaries, np.asarray(cols), side="right") - 1


def make_partition(
    method: str,
    n_cols: int,
    n_shards: int,
    col_degrees: np.ndarray | None = None,
) -> ColumnPartition:
    """Build a :class:`ColumnPartition` with the named splitter.

    ``degree`` places the boundaries on the cumulative column-degree curve
    (requires ``col_degrees``); ``contiguous`` splits the column range
    evenly.  ``n_shards`` may exceed ``n_cols`` — surplus shards come out
    zero-width (a supported boundary case, not an error).
    """
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"unknown partition method {method!r} (expected one of {PARTITION_METHODS})"
        )
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if method == "degree":
        if col_degrees is None:
            raise ValueError("degree-balanced partitioning needs col_degrees")
        col_degrees = np.asarray(col_degrees, dtype=np.int64)
        if col_degrees.size != n_cols:
            raise ValueError(
                f"col_degrees has {col_degrees.size} entries for n_cols={n_cols}"
            )
        cumulative = np.concatenate([[0], np.cumsum(col_degrees)])
        total = int(cumulative[-1])
        targets = total * np.arange(1, n_shards, dtype=np.float64) / n_shards
        inner = np.searchsorted(cumulative, targets, side="left")
        boundaries = np.concatenate([[0], inner, [n_cols]])
        boundaries = np.maximum.accumulate(boundaries)
        boundaries = np.minimum(boundaries, n_cols)
    else:
        boundaries = (np.arange(n_shards + 1, dtype=np.int64) * n_cols) // n_shards
    return ColumnPartition(n_cols=n_cols, boundaries=boundaries, method=method)


# ------------------------------------------------------------- shard stores
#: The four CSR arrays persisted per shard, one raw ``.npy`` file each —
#: raw (not ``.npz``) so any of them can be memory-mapped individually,
#: which is how the reconciler walks spilled shards without heap loads.
_SHARD_ARRAYS = ("col_ptr", "col_ind", "row_ptr", "row_ind")


def save_shard(graph: BipartiteGraph, base: str | Path) -> None:
    """Persist one shard's CSR arrays as ``<base>.<array>.npy`` files.

    The shape needs no sidecar: ``n_cols`` / ``n_rows`` are the pointer
    array lengths minus one.
    """
    for field in _SHARD_ARRAYS:
        np.save(f"{base}.{field}.npy", getattr(graph, field))


def load_shard(path: str | Path, name: str = "shard") -> BipartiteGraph:
    """Load a shard previously written by :func:`save_shard`."""
    arrays = {field: np.load(f"{path}.{field}.npy") for field in _SHARD_ARRAYS}
    return BipartiteGraph(
        n_rows=arrays["row_ptr"].size - 1,
        n_cols=arrays["col_ptr"].size - 1,
        name=name,
        **arrays,
    )


class MaterializedShardStore:
    """All shards resident in memory (views over an in-memory graph)."""

    resident = True

    def __init__(self, shards: list[BipartiteGraph]) -> None:
        self._shards = list(shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def load(self, index: int) -> BipartiteGraph:
        return self._shards[index]

    def column_csr(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """The shard's ``(col_ptr, col_ind)`` without loading anything new."""
        graph = self._shards[index]
        return graph.col_ptr, graph.col_ind

    def close(self) -> None:
        self._shards.clear()


class SpilledShardStore:
    """Disk-backed shards with an LRU of at most ``max_resident`` loaded.

    This is the piece that turns graph size into a per-shard bound: only the
    ``.npy`` files live for the whole graph, and ``load`` keeps a small LRU
    so a matcher walking shard by shard never holds more than
    ``max_resident`` edge-sized arrays.  :meth:`column_csr` additionally
    serves the column adjacency *memory-mapped* — random cross-shard access
    (the reconciler's DFS) touches pages the OS caches and reclaims, with no
    edge-sized heap allocation at all.  With ``cleanup=True`` the directory
    is removed on :meth:`close` (and by a GC finalizer as a backstop).
    """

    resident = False

    def __init__(
        self,
        directory: str | Path,
        n_shards: int,
        *,
        max_resident: int = 1,
        cleanup: bool = False,
    ) -> None:
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self._directory = Path(directory)
        self._n_shards = int(n_shards)
        self.max_resident = int(max_resident)
        self._cache: OrderedDict[int, BipartiteGraph] = OrderedDict()
        self._finalizer = (
            weakref.finalize(self, shutil.rmtree, str(self._directory), True)
            if cleanup
            else None
        )

    @staticmethod
    def shard_path(directory: str | Path, index: int) -> Path:
        """Base path of a shard's ``.npy`` quartet (no extension)."""
        return Path(directory) / f"shard-{index:05d}"

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def directory(self) -> Path:
        return self._directory

    def load(self, index: int) -> BipartiteGraph:
        if not 0 <= index < self._n_shards:
            raise IndexError(f"shard index {index} out of range [0, {self._n_shards})")
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        graph = load_shard(self.shard_path(self._directory, index), name=f"shard{index}")
        self._cache[index] = graph
        while len(self._cache) > self.max_resident:
            self._cache.popitem(last=False)
        return graph

    def column_csr(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(col_ptr, col_ind)`` with the edge-sized ``col_ind`` mmapped.

        ``col_ptr`` is vertex-sized and loaded onto the heap; ``col_ind``
        is a read-only memory map, so holding every shard's view at once
        still costs O(n_cols) heap — the residency of the edge data is the
        page cache's problem, not the process's.
        """
        if not 0 <= index < self._n_shards:
            raise IndexError(f"shard index {index} out of range [0, {self._n_shards})")
        base = self.shard_path(self._directory, index)
        col_ptr = np.load(f"{base}.col_ptr.npy")
        n_edges = int(col_ptr[-1]) if col_ptr.size else 0
        if n_edges == 0:
            # Zero-length arrays cannot be mmapped; an empty shard has no
            # edge data to map anyway.
            return col_ptr, np.empty(0, dtype=np.int64)
        return col_ptr, np.load(f"{base}.col_ind.npy", mmap_mode="r")

    def close(self) -> None:
        self._cache.clear()
        if self._finalizer is not None and self._finalizer.alive:
            self._finalizer()


# ---------------------------------------------------- the sharded container
class ShardedBipartiteGraph:
    """A column-block partitioned dual-CSR bipartite graph.

    Shard ``s`` is an ordinary :class:`BipartiteGraph` over the global rows
    and the local columns ``[boundaries[s], boundaries[s+1])``; the store
    decides whether shards are resident or spilled.  Resident metadata is
    vertex-sized: global degree arrays, the partition boundaries and the
    boundary-row index (rows adjacent to more than one shard — the only
    rows a cross-shard augmenting path can pivot on).
    """

    def __init__(
        self,
        *,
        partition: ColumnPartition,
        store,
        n_rows: int,
        col_degrees: np.ndarray,
        row_degrees: np.ndarray,
        shard_edge_counts: np.ndarray,
        shard_rows: list[np.ndarray] | None = None,
        name: str = "sharded",
    ) -> None:
        if store.n_shards != partition.n_shards:
            raise ValueError(
                f"store has {store.n_shards} shards, partition {partition.n_shards}"
            )
        self.partition = partition
        self.store = store
        self.n_rows = int(n_rows)
        self.n_cols = int(partition.n_cols)
        self.name = name
        self.col_degrees = np.ascontiguousarray(col_degrees, dtype=np.int64)
        self.row_degrees = np.ascontiguousarray(row_degrees, dtype=np.int64)
        self.shard_edge_counts = np.ascontiguousarray(shard_edge_counts, dtype=np.int64)
        if self.col_degrees.size != self.n_cols:
            raise ValueError("col_degrees must have one entry per column")
        if self.row_degrees.size != self.n_rows:
            raise ValueError("row_degrees must have one entry per row")
        if self.shard_edge_counts.size != partition.n_shards:
            raise ValueError("shard_edge_counts must have one entry per shard")
        self._build_boundary_index(shard_rows)
        self._content_hash: str | None = None

    def _build_boundary_index(self, shard_rows: list[np.ndarray] | None) -> None:
        """Index the rows adjacent to >= 2 shards (CSR row -> shard ids)."""
        if shard_rows is None:
            shard_rows = []
            for index in range(self.n_shards):
                shard = self.store.load(index)
                shard_rows.append(np.flatnonzero(shard.row_degrees > 0))
        counts = np.zeros(self.n_rows, dtype=np.int64)
        for present in shard_rows:
            counts[present] += 1
        self.row_shard_counts = counts
        boundary_mask = counts >= 2
        self.boundary_rows = np.flatnonzero(boundary_mask)
        pair_rows: list[np.ndarray] = []
        pair_shards: list[np.ndarray] = []
        for index, present in enumerate(shard_rows):
            hit = present[boundary_mask[present]]
            if hit.size:
                pair_rows.append(hit)
                pair_shards.append(np.full(hit.size, index, dtype=np.int64))
        if pair_rows:
            rows = np.concatenate(pair_rows)
            shards = np.concatenate(pair_shards)
            order = np.argsort(rows, kind="stable")
            rows = rows[order]
            self._boundary_shard_ind = shards[order]
            self._boundary_ptr = np.searchsorted(
                rows, np.concatenate([self.boundary_rows, [self.n_rows]])
            )
        else:
            self._boundary_shard_ind = np.empty(0, dtype=np.int64)
            self._boundary_ptr = np.zeros(self.boundary_rows.size + 1, dtype=np.int64)

    # -- shape -------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    @property
    def n_edges(self) -> int:
        return int(self.shard_edge_counts.sum())

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def shard(self, index: int) -> BipartiteGraph:
        return self.store.load(index)

    def col_offset(self, index: int) -> int:
        return int(self.partition.boundaries[index])

    def column_range(self, index: int) -> tuple[int, int]:
        return self.partition.column_range(index)

    def boundary_shards(self, row: int) -> np.ndarray:
        """Shard ids a *boundary* row is adjacent to (empty for other rows)."""
        slot = np.searchsorted(self.boundary_rows, row)
        if slot >= self.boundary_rows.size or self.boundary_rows[slot] != row:
            return np.empty(0, dtype=np.int64)
        return self._boundary_shard_ind[self._boundary_ptr[slot] : self._boundary_ptr[slot + 1]]

    def close(self) -> None:
        self.store.close()

    # -- identity ----------------------------------------------------------
    def content_hash(self, *, row_block: int | None = None) -> str:
        """The digest of the *unsharded* graph, streamed out of the shards.

        Column side: global ``col_ptr``/``col_ind`` are per-shard
        concatenations (plus edge offsets), hashed shard by shard.  Row
        side: global ``row_ptr`` comes from the resident degree array;
        global ``row_ind`` is reassembled in row blocks with a stable merge
        (shards are visited in column order, so each row's neighbours come
        out sorted).  With a spilled store the default block count equals
        the shard count, keeping the working set at O(largest shard).
        """
        if self._content_hash is not None:
            return self._content_hash
        hasher = ChunkedContentHasher(self.n_rows, self.n_cols)

        col_ptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        np.cumsum(self.col_degrees, out=col_ptr[1:])
        hasher.update("col_ptr", col_ptr)
        del col_ptr
        for index in range(self.n_shards):
            shard = self.store.load(index)
            if shard.n_edges:
                hasher.update("col_ind", shard.col_ind)

        row_ptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(self.row_degrees, out=row_ptr[1:])
        hasher.update("row_ptr", row_ptr)
        del row_ptr
        for chunk in self._iter_row_ind_blocks(row_block):
            hasher.update("row_ind", chunk)

        self._content_hash = hasher.hexdigest()
        return self._content_hash

    def _iter_row_ind_blocks(self, row_block: int | None):
        if row_block is None:
            if getattr(self.store, "resident", False):
                row_block = self.n_rows
            else:
                row_block = -(-self.n_rows // max(1, self.n_shards))
        row_block = max(1, int(row_block))
        boundaries = self.partition.boundaries
        for r0 in range(0, self.n_rows, row_block):
            r1 = min(self.n_rows, r0 + row_block)
            rows_parts: list[np.ndarray] = []
            cols_parts: list[np.ndarray] = []
            for index in range(self.n_shards):
                shard = self.store.load(index)
                start = int(shard.row_ptr[r0])
                stop = int(shard.row_ptr[r1])
                if stop == start:
                    continue
                cols_parts.append(shard.row_ind[start:stop] + boundaries[index])
                degrees = np.diff(shard.row_ptr[r0 : r1 + 1])
                rows_parts.append(np.repeat(np.arange(r0, r1, dtype=np.int64), degrees))
            if not rows_parts:
                continue
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
            # Stable by row: shards were appended in column order, so each
            # row's neighbours are already ascending within the merge.
            order = np.argsort(rows, kind="stable")
            yield cols[order]

    # -- materialization ---------------------------------------------------
    def to_graph(self, name: str | None = None) -> BipartiteGraph:
        """Reassemble the full in-memory graph (testing / small instances)."""
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for index in range(self.n_shards):
            shard = self.store.load(index)
            if not shard.n_edges:
                continue
            rows_parts.append(shard.col_ind)
            local_cols = np.repeat(
                np.arange(shard.n_cols, dtype=np.int64), np.diff(shard.col_ptr)
            )
            cols_parts.append(local_cols + self.col_offset(index))
        if rows_parts:
            edges = np.column_stack([np.concatenate(rows_parts), np.concatenate(cols_parts)])
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        return from_edges(
            edges,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            name=name if name is not None else self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedBipartiteGraph(name={self.name!r}, shape={self.shape}, "
            f"n_edges={self.n_edges}, n_shards={self.n_shards}, "
            f"method={self.partition.method!r})"
        )


def partition_graph(
    graph: BipartiteGraph,
    n_shards: int,
    method: str = "contiguous",
    *,
    name: str | None = None,
) -> ShardedBipartiteGraph:
    """Partition an in-memory graph into column-block shards (views).

    Each shard's column CSR is a slice of the parent's arrays; the row CSR
    is rebuilt per shard (rows keep their global ids).  Weighted graphs are
    rejected — sharded matching is cardinality-only, strip the weights
    first (``graph.with_weights(None)``).
    """
    if graph.weights is not None:
        raise ValueError(
            "sharded matching is cardinality-only: strip the weights first "
            "(graph.with_weights(None))"
        )
    partition = make_partition(method, graph.n_cols, n_shards, col_degrees=graph.col_degrees)
    shards: list[BipartiteGraph] = []
    shard_rows: list[np.ndarray] = []
    edge_counts = np.zeros(partition.n_shards, dtype=np.int64)
    for index in range(partition.n_shards):
        lo, hi = partition.column_range(index)
        ptr = graph.col_ptr[lo : hi + 1]
        base = int(ptr[0]) if ptr.size else 0
        width = hi - lo
        rows = graph.col_ind[base : int(ptr[-1])] if ptr.size else np.empty(0, dtype=np.int64)
        local_cols = np.repeat(np.arange(width, dtype=np.int64), np.diff(ptr))
        col_ptr, col_ind, row_ptr, row_ind, _ = _csr_from_pairs(
            rows, local_cols, graph.n_rows, width
        )
        shard = BipartiteGraph(
            n_rows=graph.n_rows,
            n_cols=width,
            col_ptr=col_ptr,
            col_ind=col_ind,
            row_ptr=row_ptr,
            row_ind=row_ind,
            name=f"{graph.name}[s{index}]",
        )
        shards.append(shard)
        shard_rows.append(np.flatnonzero(shard.row_degrees > 0))
        edge_counts[index] = shard.n_edges
    return ShardedBipartiteGraph(
        partition=partition,
        store=MaterializedShardStore(shards),
        n_rows=graph.n_rows,
        col_degrees=graph.col_degrees,
        row_degrees=graph.row_degrees,
        shard_edge_counts=edge_counts,
        shard_rows=shard_rows,
        name=name if name is not None else f"{graph.name}@{partition.n_shards}",
    )
