"""Coarse-grained sharded matching: per-shard Engine jobs + reconciliation.

The :class:`ShardedMatcher` runs in two acts:

1. **Local solves.**  Every non-empty shard becomes an ordinary
   :class:`~repro.engine.job.MatchingJob` (the shard *is* a
   :class:`BipartiteGraph`), executed through an
   :class:`~repro.engine.Engine` on any backend — Inline, Thread or
   ProcessPool all work because shards and resolved plans are picklable.
   Local matchings merge into a global one with a deterministic conflict
   rule: a row matched in several shards keeps its lowest-shard assignment,
   the displaced columns go back to unmatched.  The merge is
   arrival-order-independent, so thread/process completion races cannot
   change the result.

2. **Frontier-exchange reconciliation.**  The merged matching is maximal
   per shard but can miss augmenting paths that cross shard boundaries
   (pivoting on the boundary rows indexed by the partition).  Reconciliation
   runs Hopcroft–Karp phases over the *sharded* adjacency: the level BFS
   expands each global column frontier shard by shard with
   :func:`~repro.graph.frontier.expand_frontier` and exchanges the
   discovered rows globally (rows keep global ids, so a row found in one
   shard seeds columns of every shard it touches); the level-restricted DFS
   then augments along vertex-disjoint shortest paths, hopping shards via
   per-shard column views that spilled stores serve *memory-mapped* — a
   cross-shard hop is a page access, not a shard reload, and the
   reconciler's heap stays vertex-sized.  Phases repeat until no
   augmenting path exists anywhere — at which point the matching is maximum
   on the *whole* graph, hence bit-identical in cardinality to the
   single-graph solver.

Every step is deterministic given a deterministic per-shard algorithm, so
the final matching is bit-identical across engine backends.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import deque

import numpy as np

from repro.engine import Engine, MatchingJob, as_completed
from repro.graph.bipartite import BipartiteGraph
from repro.graph.frontier import expand_frontier
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.sharded.partition import ShardedBipartiteGraph, partition_graph

__all__ = ["ShardedMatcher", "sharded_matching"]

_INF = np.iinfo(np.int64).max


class ShardedMatcher:
    """Match a :class:`ShardedBipartiteGraph` via per-shard jobs + reconcile.

    Parameters
    ----------
    sharded:
        The partitioned graph (see :func:`partition_graph` /
        :func:`~repro.sharded.ingest.ingest_matrix_market_sharded`).
    algorithm:
        Registry name of the per-shard kernel; must be a maximum-cardinality
        algorithm (greedy heuristics would break the parity guarantee).
    plan:
        A pre-resolved :class:`~repro.core.api.ExecutionPlan` for the
        per-shard kernel (must not itself be sharded); ``None`` resolves one
        from ``algorithm`` / ``kwargs``.
    engine:
        Engine for the per-shard jobs; ``None`` builds a private one from
        ``backend`` / ``workers`` and shuts it down afterwards.
    backend / workers:
        Used only when ``engine`` is ``None``.
    window:
        Maximum per-shard jobs in flight at once.  Defaults to all shards
        for resident stores and to the store's ``max_resident`` for spilled
        stores — the knob that keeps out-of-core runs at O(largest shard)
        peak memory.
    kwargs:
        Extra keyword arguments for the per-shard algorithm.
    """

    def __init__(
        self,
        sharded: ShardedBipartiteGraph,
        algorithm: str = "hk",
        *,
        plan=None,
        engine: Engine | None = None,
        backend: str = "inline",
        workers: int = 0,
        window: int | None = None,
        kwargs: dict | None = None,
    ) -> None:
        self.sharded = sharded
        self.algorithm = str(algorithm).strip().lower()
        self.kwargs = dict(kwargs or {})
        if plan is None:
            from repro.core.api import resolve_algorithm

            plan = resolve_algorithm(self.algorithm, **self.kwargs)
        elif getattr(plan, "shards", None) is not None:
            raise ValueError("the per-shard plan must not itself be sharded")
        else:
            self.algorithm = plan.algorithm
        if not plan.spec.maximum or plan.spec.weighted:
            raise ValueError(
                f"sharded matching needs a maximum-cardinality algorithm, "
                f"got {self.algorithm!r}"
            )
        self._plan = plan
        self._engine = engine
        self._backend = backend
        self._workers = workers
        if window is None:
            store = sharded.store
            if getattr(store, "resident", False):
                window = max(1, sharded.n_shards)
            else:
                window = max(1, getattr(store, "max_resident", 1))
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = int(window)

    # ------------------------------------------------------------------ run
    def run(self) -> MatchingResult:
        t0 = time.perf_counter()
        sharded = self.sharded
        counters = {
            "shards": sharded.n_shards,
            "shard_jobs": 0,
            "shard_edges_max": int(sharded.shard_edge_counts.max(initial=0)),
            "boundary_rows": int(sharded.boundary_rows.size),
            "merge_conflicts": 0,
            "reconcile_phases": 0,
            "reconcile_augmentations": 0,
            "frontier_handoffs": 0,
            "edges_scanned": 0,
        }
        row_match = np.full(sharded.n_rows, UNMATCHED, dtype=np.int64)
        col_match = np.full(sharded.n_cols, UNMATCHED, dtype=np.int64)

        engine = self._engine
        own_engine = engine is None
        if own_engine:
            engine = Engine(
                backend=self._backend,
                max_workers=self._workers or None,
            )
        try:
            self._solve_shards(engine, row_match, col_match, counters)
        finally:
            if own_engine:
                engine.shutdown()

        self._reconcile(row_match, col_match, counters)

        matching = Matching(row_match, col_match)
        wall = time.perf_counter() - t0
        return MatchingResult.create(
            f"sharded-{self.algorithm}",
            matching,
            counters=counters,
            wall_time=wall,
        )

    # ---------------------------------------------------- act 1: local solves
    def _solve_shards(self, engine, row_match, col_match, counters) -> None:
        sharded = self.sharded
        # The owner array makes the merge arrival-order independent: a row
        # always ends up with its lowest-shard assignment.
        row_owner = np.full(sharded.n_rows, np.iinfo(np.int64).max, dtype=np.int64)
        pending = deque(
            s for s in range(sharded.n_shards) if sharded.shard_edge_counts[s] > 0
        )
        inflight: dict[object, int] = {}
        while pending or inflight:
            while pending and len(inflight) < self._window:
                index = pending.popleft()
                job = MatchingJob(
                    graph=sharded.shard(index),
                    algorithm=self.algorithm,
                    kwargs=self.kwargs,
                    job_id=f"shard-{index}",
                )
                inflight[engine.submit(job, plan=self._plan)] = index
                counters["shard_jobs"] += 1
            handle = next(as_completed(list(inflight)))
            index = inflight.pop(handle)
            result = handle.result()  # propagate per-shard failures verbatim
            self._merge_shard(
                index, result, row_match, col_match, row_owner, counters
            )
            for key in ("edges_scanned",):
                if key in result.counters:
                    counters["edges_scanned"] += int(result.counters[key])

    def _merge_shard(self, index, result, row_match, col_match, row_owner, counters):
        offset = self.sharded.col_offset(index)
        local_col_match = result.matching.col_match
        matched_local = np.flatnonzero(local_col_match >= 0)
        if matched_local.size == 0:
            return
        rows = local_col_match[matched_local]
        cols = matched_local + offset
        current = row_match[rows]
        take = (current == UNMATCHED) | (row_owner[rows] > index)
        conflicts = take & (current != UNMATCHED)
        if conflicts.any():
            counters["merge_conflicts"] += int(np.count_nonzero(conflicts))
            col_match[current[conflicts]] = UNMATCHED
        row_match[rows[take]] = cols[take]
        row_owner[rows[take]] = index
        col_match[cols[take]] = rows[take]

    # ------------------------------------------- act 2: frontier reconciliation
    def _reconcile(self, row_match, col_match, counters) -> None:
        views = self._column_views()
        while True:
            level, shortest, bfs_edges = self._level_bfs(
                row_match, col_match, counters, views
            )
            counters["edges_scanned"] += bfs_edges
            counters["reconcile_phases"] += 1
            if shortest == _INF:
                break
            augmented, dfs_edges = self._augment_phase(
                level, row_match, col_match, views
            )
            counters["edges_scanned"] += dfs_edges
            counters["reconcile_augmentations"] += augmented
            if augmented == 0:
                break

    def _column_views(self) -> list[tuple]:
        """Per-shard ``(col_ptr, col_ind, column offset)`` for reconciliation.

        Served by the store's ``column_csr``: resident stores hand out the
        graphs' own arrays; spilled stores a heap-loaded vertex-sized
        ``col_ptr`` plus a *memory-mapped* ``col_ind``.  Cross-shard
        augmenting paths hop shards essentially at random (a matched row's
        column can live anywhere), so the reconciler holds every shard's
        view for its whole run — at O(n_cols) heap, because the edge-sized
        side is file-backed and paged by the OS, never reloaded per hop.
        """
        sharded = self.sharded
        boundaries = sharded.partition.boundaries
        return [
            (*sharded.store.column_csr(index), int(boundaries[index]))
            for index in range(sharded.n_shards)
        ]

    def _level_bfs(self, row_match, col_match, counters, views):
        """Global alternating level BFS, one shard-frontier exchange per level.

        The column frontier is split by owning shard, each slice expands with
        the vectorized :func:`expand_frontier` over that shard's column CSR,
        and the discovered rows (global ids) are pooled — the *exchange* —
        before stepping to their matched columns, which may live in any
        shard.
        """
        sharded = self.sharded
        boundaries = sharded.partition.boundaries
        level = np.full(sharded.n_cols, _INF, dtype=np.int64)
        frontier = np.flatnonzero(col_match == UNMATCHED)
        level[frontier] = 0
        depth = 0
        shortest = _INF
        edges = 0
        while frontier.size:
            shard_ids = sharded.partition.shard_of(frontier)
            rows_parts: list[np.ndarray] = []
            handoffs = 0
            for index in np.unique(shard_ids):
                local = frontier[shard_ids == index] - boundaries[index]
                ptr, ind, _ = views[int(index)]
                targets, _ = expand_frontier(ptr, ind, local)
                if targets.size:
                    rows_parts.append(targets)
                    mates = row_match[targets]
                    crossing = mates[mates >= 0]
                    if crossing.size:
                        handoffs += int(
                            np.count_nonzero(
                                sharded.partition.shard_of(crossing) != index
                            )
                        )
            counters["frontier_handoffs"] += handoffs
            if not rows_parts:
                break
            rows = np.concatenate(rows_parts)
            edges += rows.size
            mates = row_match[rows]
            if (mates == UNMATCHED).any():
                shortest = depth + 1
            next_cols = np.unique(mates[mates >= 0])
            next_cols = next_cols[level[next_cols] == _INF]
            level[next_cols] = depth + 1
            depth += 1
            if depth >= shortest:
                break
            frontier = next_cols
        return level, shortest, edges

    def _augment_phase(self, level_arr, row_match_arr, col_match_arr, views):
        """Vertex-disjoint level-restricted DFS round (HK semantics).

        Mirrors :func:`repro.seq.hopcroft_karp._augment_phase`, with one
        twist: a column's adjacency is looked up through the partition
        (``bisect`` on the boundaries) because the path may hop shards at
        every boundary row.  The hops land on the pre-opened ``views`` —
        array (or memory-map) indexing, never a shard load.
        """
        sharded = self.sharded
        boundary_list = sharded.partition.boundaries.tolist()
        level = level_arr.tolist()
        row_match = row_match_arr.tolist()
        col_match = col_match_arr.tolist()
        row_used = bytearray(sharded.n_rows)
        unmatched = UNMATCHED
        augmented = 0
        edges = 0
        roots = np.flatnonzero(col_match_arr == UNMATCHED).tolist()

        def frame(v: int) -> list:
            shard_index = bisect_right(boundary_list, v) - 1
            ptr, ind, offset = views[shard_index]
            local = v - offset
            return [v, ind, int(ptr[local]), int(ptr[local + 1])]

        for start in roots:
            stack = [frame(start)]
            path_rows: list[int] = []
            u = -1
            while stack:
                top = stack[-1]
                v, ind, idx, stop = top
                want = level[v] + 1
                advanced = False
                done = False
                while idx < stop:
                    u = int(ind[idx])
                    idx += 1
                    edges += 1
                    if row_used[u]:
                        continue
                    w = row_match[u]
                    if w != unmatched:
                        if level[w] != want:
                            continue
                        row_used[u] = True
                        top[2] = idx
                        path_rows.append(u)
                        stack.append(frame(w))
                        advanced = True
                        break
                    row_used[u] = True
                    done = True
                    break
                if advanced:
                    continue
                if done:
                    # Augment along the stack: flip every (col, row) pair.
                    row_match[u] = v
                    col_match[v] = u
                    for depth in range(len(stack) - 2, -1, -1):
                        prev_col = stack[depth][0]
                        prev_row = path_rows[depth]
                        row_match[prev_row] = prev_col
                        col_match[prev_col] = prev_row
                    augmented += 1
                    break
                top[2] = idx
                if idx >= stop:
                    stack.pop()
                    if path_rows:
                        path_rows.pop()

        row_match_arr[:] = row_match
        col_match_arr[:] = col_match
        return augmented, edges


def sharded_matching(
    graph: BipartiteGraph | ShardedBipartiteGraph,
    algorithm: str = "hk",
    *,
    shards: int | None = None,
    partition: str = "contiguous",
    engine: Engine | None = None,
    backend: str = "inline",
    workers: int = 0,
    window: int | None = None,
    **kwargs,
) -> MatchingResult:
    """One-call sharded matching.

    Accepts either an in-memory :class:`BipartiteGraph` (partitioned on the
    fly with ``shards`` / ``partition``) or a ready
    :class:`ShardedBipartiteGraph` (as produced by the out-of-core ingest),
    and returns a :class:`MatchingResult` whose cardinality equals the
    single-graph solver's.
    """
    if isinstance(graph, ShardedBipartiteGraph):
        sharded = graph
    else:
        if shards is None:
            raise ValueError("shards= is required when passing an in-memory graph")
        sharded = partition_graph(graph, shards, partition)
    matcher = ShardedMatcher(
        sharded,
        algorithm,
        engine=engine,
        backend=backend,
        workers=workers,
        window=window,
        kwargs=kwargs,
    )
    return matcher.run()
