"""Out-of-core Matrix-Market ingest: stream ``.mtx``/``.mtx.gz`` into shards.

The full edge list never materializes.  The file is scanned in bounded
chunks (:class:`~repro.graph.io.MatrixMarketStream`):

* **Boundary pass** (``degree`` partitioning only) — accumulate the
  column-degree histogram, an O(n_cols) array, to place degree-balanced
  boundaries.  ``contiguous`` boundaries need only the header, so that
  method ingests in a single pass over the entries.
* **Routing pass** — each chunk is split by owning shard and appended as
  raw ``(row, local_col)`` int64 pairs to one spill file per shard.
* **Shard builds** — spill files are read back *one at a time*, each built
  into a canonical :class:`BipartiteGraph` (deduplicated, sorted — exactly
  like :func:`repro.graph.builders.from_edges`) and saved as raw ``.npy``
  arrays (mmap-able) for the
  :class:`~repro.sharded.partition.SpilledShardStore`.

Peak memory is O(chunk + largest shard + vertex arrays) — independent of
the total edge count, which is what the CI ``shard-smoke`` job asserts.
The exact global degree arrays fall out of the shard builds, so the
resulting :class:`ShardedBipartiteGraph` hashes identically to
``read_matrix_market(path).content_hash()`` without a dedicated full pass.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.graph.io import DEFAULT_CHUNK_ENTRIES, MatrixMarketStream
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import _csr_from_pairs
from repro.sharded.partition import (
    ColumnPartition,
    ShardedBipartiteGraph,
    SpilledShardStore,
    make_partition,
    save_shard,
)

__all__ = ["ingest_matrix_market_sharded", "stream_random_bipartite_mtx"]


def _scan_col_degrees(path: Path, n_cols: int, chunk_entries: int) -> np.ndarray:
    """Degree-histogram pass (duplicates included — only boundaries use it)."""
    degrees = np.zeros(n_cols, dtype=np.int64)
    with MatrixMarketStream(path, chunk_entries=chunk_entries) as stream:
        for _, cols, _ in stream:
            degrees += np.bincount(cols, minlength=n_cols)
    return degrees


def _route_to_spools(
    path: Path,
    partition: ColumnPartition,
    spool_dir: Path,
    chunk_entries: int,
) -> None:
    """Append each entry chunk, split by owning shard, to the spill files."""
    boundaries = partition.boundaries
    spools = [
        open(spool_dir / f"shard-{index:05d}.edges", "wb")
        for index in range(partition.n_shards)
    ]
    try:
        with MatrixMarketStream(path, chunk_entries=chunk_entries) as stream:
            for rows, cols, _ in stream:
                shard_ids = partition.shard_of(cols)
                for index in np.unique(shard_ids):
                    mask = shard_ids == index
                    pairs = np.empty((int(mask.sum()), 2), dtype=np.int64)
                    pairs[:, 0] = rows[mask]
                    pairs[:, 1] = cols[mask] - boundaries[index]
                    spools[index].write(pairs.tobytes())
    finally:
        for handle in spools:
            handle.close()


def _build_shard(
    spool_path: Path, n_rows: int, width: int, name: str
) -> BipartiteGraph:
    raw = np.fromfile(spool_path, dtype=np.int64)
    pairs = raw.reshape(-1, 2)
    col_ptr, col_ind, row_ptr, row_ind, _ = _csr_from_pairs(
        pairs[:, 0], pairs[:, 1], n_rows, width
    )
    return BipartiteGraph(
        n_rows=n_rows,
        n_cols=width,
        col_ptr=col_ptr,
        col_ind=col_ind,
        row_ptr=row_ptr,
        row_ind=row_ind,
        name=name,
    )


def ingest_matrix_market_sharded(
    path: str | Path,
    n_shards: int,
    method: str = "contiguous",
    *,
    spool_dir: str | Path | None = None,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    max_resident: int = 1,
    name: str | None = None,
) -> ShardedBipartiteGraph:
    """Stream a Matrix-Market file into a disk-backed sharded graph.

    Parameters
    ----------
    path:
        ``.mtx`` or ``.mtx.gz`` file (pattern or value field; values are
        ignored — sharded matching is cardinality-only).
    n_shards / method:
        Partition shape (see :data:`~repro.sharded.partition.PARTITION_METHODS`).
    spool_dir:
        Directory for the spill files and shard ``.npy`` arrays.  ``None``
        creates a temporary directory that is removed when the returned
        graph is closed or garbage collected; an explicit directory is kept.
    chunk_entries:
        Entries parsed per chunk — the streaming working set.
    max_resident:
        How many built shards the store keeps in memory at a time.
    """
    path = Path(path)
    graph_name = (
        name
        if name is not None
        else path.name.removesuffix(".gz").removesuffix(".mtx") + f"@{int(n_shards)}"
    )
    with MatrixMarketStream(path, chunk_entries=chunk_entries) as stream:
        header = stream.header
    if method == "degree":
        boundary_degrees = _scan_col_degrees(path, header.n_cols, chunk_entries)
        partition = make_partition(
            "degree", header.n_cols, n_shards, col_degrees=boundary_degrees
        )
        del boundary_degrees
    else:
        partition = make_partition(method, header.n_cols, n_shards)

    cleanup = spool_dir is None
    if cleanup:
        spool_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
    else:
        spool_dir = Path(spool_dir)
        spool_dir.mkdir(parents=True, exist_ok=True)

    _route_to_spools(path, partition, spool_dir, chunk_entries)

    # Build + spill shards one at a time; exact global degrees fall out.
    col_degrees = np.zeros(header.n_cols, dtype=np.int64)
    row_degrees = np.zeros(header.n_rows, dtype=np.int64)
    edge_counts = np.zeros(partition.n_shards, dtype=np.int64)
    shard_rows: list[np.ndarray] = []
    for index in range(partition.n_shards):
        lo, hi = partition.column_range(index)
        spool_path = spool_dir / f"shard-{index:05d}.edges"
        shard = _build_shard(spool_path, header.n_rows, hi - lo, f"shard{index}")
        spool_path.unlink()
        save_shard(shard, SpilledShardStore.shard_path(spool_dir, index))
        col_degrees[lo:hi] = shard.col_degrees
        shard_row_degrees = shard.row_degrees
        row_degrees += shard_row_degrees
        shard_rows.append(np.flatnonzero(shard_row_degrees > 0))
        edge_counts[index] = shard.n_edges
        del shard

    store = SpilledShardStore(
        spool_dir, partition.n_shards, max_resident=max_resident, cleanup=cleanup
    )
    return ShardedBipartiteGraph(
        partition=partition,
        store=store,
        n_rows=header.n_rows,
        col_degrees=col_degrees,
        row_degrees=row_degrees,
        shard_edge_counts=edge_counts,
        shard_rows=shard_rows,
        name=graph_name,
    )


def stream_random_bipartite_mtx(
    path: str | Path,
    n_rows: int,
    n_cols: int,
    n_entries: int,
    *,
    seed: int = 20130421,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
) -> Path:
    """Write a uniform-random bipartite ``.mtx``/``.mtx.gz`` chunk by chunk.

    The file declares ``n_entries`` coordinate lines (duplicates possible —
    readers deduplicate, exactly as SuiteSparse files may), generated and
    written in fixed-size chunks so arbitrarily large on-disk instances cost
    O(chunk) memory to produce.  This is the instance factory for the
    scaling benchmarks and the CI ``shard-smoke`` job.
    """
    from repro.graph.io import MatrixMarketStreamWriter

    if min(n_rows, n_cols) < 1 and n_entries > 0:
        raise ValueError("entries need at least one row and one column")
    rng = np.random.default_rng(seed)
    path = Path(path)
    with MatrixMarketStreamWriter(
        path,
        n_rows=n_rows,
        n_cols=n_cols,
        n_entries=n_entries,
        comment=f"uniform random bipartite, seed={seed}",
    ) as writer:
        remaining = int(n_entries)
        while remaining > 0:
            size = min(remaining, chunk_entries)
            rows = rng.integers(0, n_rows, size=size, dtype=np.int64)
            cols = rng.integers(0, n_cols, size=size, dtype=np.int64)
            writer.write_chunk(rows, cols)
            remaining -= size
    return path
