"""Sharded matching over column-block partitioned bipartite graphs.

This subsystem turns graph size from a per-process memory bound into a
per-shard one:

* :mod:`repro.sharded.partition` — :class:`ShardedBipartiteGraph`: the
  column-block partition of the dual-CSR representation (contiguous or
  degree-balanced splitters), per-shard :class:`BipartiteGraph` views, the
  boundary-row index, and a ``content_hash()`` identical to the unsharded
  graph's.
* :mod:`repro.sharded.matcher` — :class:`ShardedMatcher`: per-shard kernels
  as Engine jobs on any backend, then frontier-exchange reconciliation of
  cross-shard augmenting paths until the matching is maximum on the whole
  graph.
* :mod:`repro.sharded.ingest` — out-of-core Matrix-Market ingest that
  streams ``.mtx``/``.mtx.gz`` files directly into disk-backed shards with
  an O(largest shard) working set.

>>> from repro.generators import generate_instance
>>> from repro.sharded import sharded_matching
>>> graph = generate_instance("roadNet-PA", profile="tiny", seed=20130421)
>>> result = sharded_matching(graph, "hk", shards=4, partition="degree")
"""

from repro.sharded.ingest import ingest_matrix_market_sharded, stream_random_bipartite_mtx
from repro.sharded.matcher import ShardedMatcher, sharded_matching
from repro.sharded.partition import (
    PARTITION_METHODS,
    ColumnPartition,
    MaterializedShardStore,
    ShardedBipartiteGraph,
    SpilledShardStore,
    make_partition,
    partition_graph,
)

__all__ = [
    "PARTITION_METHODS",
    "ColumnPartition",
    "MaterializedShardStore",
    "ShardedBipartiteGraph",
    "ShardedMatcher",
    "SpilledShardStore",
    "ingest_matrix_market_sharded",
    "make_partition",
    "partition_graph",
    "sharded_matching",
    "stream_random_bipartite_mtx",
]
