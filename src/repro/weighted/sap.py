"""Sequential shortest-augmenting-path (Hungarian / Jonker–Volgenant style)
weighted matching with dual variables.

The solver computes a **maximum-weight matching among the maximum-cardinality
matchings** of a weighted bipartite graph (or minimum-weight, with
``objective="min"``) by successive shortest augmenting paths:

* effective weights ``ŵ`` are turned into non-negative costs
  ``c = max(ŵ) − ŵ``; minimising cost per cardinality level is then
  equivalent to maximising effective weight per cardinality level (the
  constant shift cancels between matchings of equal cardinality);
* each *phase* runs one Dijkstra over reduced costs
  ``c(u, v) − π_row[u] − π_col[v]`` from **all** free rows simultaneously (a
  virtual super-source) and augments along the globally cheapest alternating
  path to a free column.  Starting from every free row at once is what makes
  the invariant "after ``k`` phases the matching is a minimum-cost matching
  of cardinality ``k``" hold on graphs where some rows are unmatchable;
* dual updates keep every reduced cost non-negative and every matched edge
  tight, so at termination the potentials convert directly into the
  reduced-form :class:`~repro.weighted.duals.DualCertificate` (conditions
  listed in :mod:`repro.weighted.duals`): every free row holds the same
  potential ``Δ`` (the sum of all phase distances — each phase adds ``δ`` to
  every still-free row), giving ``π = Δ − u ≥ 0`` with ``π = 0`` exactly on
  the free rows.

This is the exact-arithmetic reference solver; the ε-scaling auction in
:mod:`repro.weighted.auction` trades exactness guarantees for a massively
parallel structure.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.weighted.duals import (
    DualCertificate,
    _check_objective,
    effective_weights,
    matching_total_weight,
)

__all__ = ["SAPConfig", "weighted_sap_matching"]


@dataclass(frozen=True)
class SAPConfig:
    """Tuning knobs of the shortest-augmenting-path solver.

    Attributes
    ----------
    objective:
        ``"max"`` (default) maximises total weight, ``"min"`` minimises it —
        in both cases among *maximum-cardinality* matchings.
    """

    objective: str = "max"

    def __post_init__(self) -> None:
        _check_objective(self.objective)


def weighted_sap_matching(
    graph: BipartiteGraph, config: SAPConfig | None = None
) -> MatchingResult:
    """Optimal-weight maximum-cardinality matching via shortest augmenting paths.

    Parameters
    ----------
    graph:
        The bipartite graph.  Weightless graphs are solved with unit weights
        (plain maximum-cardinality matching).
    config:
        A :class:`SAPConfig`; defaults to weight maximisation.

    Returns
    -------
    MatchingResult
        ``counters["total_weight"]`` holds the matching's total weight under
        the graph's original weights, and ``result.duals`` carries the
        reduced-form :class:`~repro.weighted.duals.DualCertificate`.
    """
    t0 = time.perf_counter()
    cfg = config or SAPConfig()
    n_rows, n_cols = graph.n_rows, graph.n_cols
    what = effective_weights(graph, cfg.objective, row_aligned=True)
    w_max = float(what.max()) if len(what) else 0.0
    cost = w_max - what  # ≥ 0, parallel to graph.row_ind

    row_ptr, row_ind = graph.row_ptr, graph.row_ind
    row_match = np.full(n_rows, UNMATCHED, dtype=np.int64)
    col_match = np.full(n_cols, UNMATCHED, dtype=np.int64)
    u = np.zeros(n_rows, dtype=np.float64)  # row potentials
    v = np.zeros(n_cols, dtype=np.float64)  # column potentials
    delta_total = 0.0
    counters = {"phases": 0, "augmentations": 0, "edges_scanned": 0}

    dist = np.empty(n_cols, dtype=np.float64)
    prev_row = np.empty(n_cols, dtype=np.int64)
    entry = np.empty(n_rows, dtype=np.float64)

    while True:
        free_rows = np.flatnonzero(row_match == UNMATCHED)
        if len(free_rows) == 0:
            break
        counters["phases"] += 1
        # Multi-source Dijkstra over reduced costs, starting from every free
        # row at distance 0.
        dist.fill(np.inf)
        prev_row.fill(-1)
        entry.fill(np.inf)
        heap: list[tuple[float, int]] = []
        popped_cols: list[int] = []
        for i in free_rows:
            entry[i] = 0.0
            start, stop = row_ptr[i], row_ptr[i + 1]
            counters["edges_scanned"] += int(stop - start)
            for e in range(start, stop):
                j = row_ind[e]
                nd = cost[e] - u[i] - v[j]
                if nd < dist[j]:
                    dist[j] = nd
                    prev_row[j] = i
                    heapq.heappush(heap, (nd, int(j)))
        target = -1
        delta = np.inf
        matched_scanned: list[int] = []
        while heap:
            d, j = heapq.heappop(heap)
            if d > dist[j]:
                continue  # stale entry
            if col_match[j] == UNMATCHED:
                target = j
                delta = d
                break
            popped_cols.append(j)
            i = int(col_match[j])
            entry[i] = d
            matched_scanned.append(i)
            start, stop = row_ptr[i], row_ptr[i + 1]
            counters["edges_scanned"] += int(stop - start)
            for e in range(start, stop):
                j2 = row_ind[e]
                nd = d + cost[e] - u[i] - v[j2]
                if nd < dist[j2]:
                    dist[j2] = nd
                    prev_row[j2] = i
                    heapq.heappush(heap, (nd, int(j2)))
        if target < 0:
            break  # no augmenting path exists: the matching is maximum
        # Dual updates: columns finalised strictly below δ sink by δ − dist,
        # every scanned row (all free rows enter at distance 0) rises by
        # δ − entry.  Matched edges stay tight, reduced costs stay ≥ 0.
        for j in popped_cols:
            v[j] += dist[j] - delta
        u[free_rows] += delta
        for i in matched_scanned:
            u[i] += delta - entry[i]
        delta_total += delta
        # Augment along the shortest-path tree.
        j = target
        while True:
            i = int(prev_row[j])
            j_next = int(row_match[i])
            row_match[i] = j
            col_match[j] = i
            if j_next == UNMATCHED:
                break
            j = j_next
        counters["augmentations"] += 1

    duals = DualCertificate(
        objective=cfg.objective,
        lam=w_max - delta_total,
        row_duals=delta_total - u,
        col_duals=-v,
    )
    matching = Matching(row_match, col_match)
    counters["total_weight"] = matching_total_weight(graph, matching)
    counters["objective"] = cfg.objective
    return MatchingResult.create(
        "W-SAP",
        matching,
        counters=counters,
        wall_time=time.perf_counter() - t0,
        duals=duals,
    )
