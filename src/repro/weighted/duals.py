"""Dual certificates for the weighted matching solvers.

Both weighted solvers return, alongside the matching itself, LP dual
variables that *certify* optimality through complementary slackness.  The
objective they certify is always

    maximise   Σ ŵ(u, v)   over maximum-cardinality matchings,

where ``ŵ`` are the *effective* weights: the graph's edge weights for
``objective="max"``, their negation for ``objective="min"``, and unit
weights when the graph carries none.  Two certificate forms exist, one per
solver; :func:`repro.weighted.verify.certify_optimal` understands both.

**Reduced form** (:class:`DualCertificate`, produced by the SAP solver).
Duals ``(λ, π, ρ)`` of the cardinality-constrained assignment LP.  The
complementary-slackness conditions, all checked by the verifier:

1. feasibility: ``π[u] + ρ[v] + λ ≥ ŵ(u, v)`` for every edge,
2. tightness:   equality on every matched edge,
3. sign:        ``π ≥ 0`` and ``ρ ≥ 0``,
4. support:     ``π[u] = 0`` on unmatched rows, ``ρ[v] = 0`` on unmatched
   columns,
5. the matching has maximum cardinality.

Together these prove every other maximum-cardinality matching ``M'``
satisfies ``ŵ(M') ≤ ŵ(M)``: summing (1) over ``M'`` and using (3) gives
``ŵ(M') ≤ kλ + Σπ + Σρ``, which by (4) and (2) equals ``ŵ(M)``.

**Augmented form** (:class:`AuctionCertificate`, produced by the auction
solver).  The auction solves the classic *square augmented* assignment
problem (see :mod:`repro.weighted.auction`) in which a perfect assignment
always exists, so the free-vertex conditions disappear: the certificate is
ε-complementary-slackness of the augmented perfect assignment — profits
``π`` on persons and prices ``p`` on objects with ``π + p ≥ w_aug − ε`` on
every augmented edge and equality on assigned pairs.  The verifier turns the
*measured* violations into an explicit bound on the real matching's weight
suboptimality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AuctionCertificate",
    "DualCertificate",
    "effective_weights",
    "matching_total_weight",
]

_OBJECTIVES = ("max", "min")


def effective_weights(graph, objective: str = "max", *, row_aligned: bool = False) -> np.ndarray:
    """The effective weights ``ŵ`` every certificate refers to.

    The graph's edge weights for ``objective="max"``, their negation for
    ``objective="min"``, and unit weights when the graph carries none (so the
    weighted solvers degrade gracefully to cardinality matching on purely
    structural graphs).  ``row_aligned`` returns them parallel to
    ``graph.row_ind`` instead of ``graph.col_ind``.
    """
    _check_objective(objective)
    if not graph.has_weights:
        return np.ones(graph.n_edges, dtype=np.float64)
    weights = graph.row_aligned_weights() if row_aligned else graph.weights
    return -weights if objective == "min" else weights.astype(np.float64, copy=True)


def matching_total_weight(graph, matching) -> float:
    """Total weight of ``matching`` under the graph's original weights.

    Parameters
    ----------
    graph:
        The graph the matching belongs to.  Weightless graphs count unit
        weights, so the total equals the cardinality.
    matching:
        A consistent matching of ``graph``.  Matched pairs that are not
        edges contribute nothing — structural validity is checked separately
        (see :func:`repro.weighted.verify.certify_optimal`), not here.

    Returns
    -------
    float
    """
    row_match = np.asarray(matching.row_match)
    if not graph.has_weights:
        return float(np.count_nonzero(row_match >= 0))
    # An edge (u, v) is matched iff row_match[u] == v; one vectorised pass
    # over the column-CSR edge list covers every matched pair exactly once.
    return float(graph.weights[row_match[graph.col_ind] == graph.edge_columns()].sum())


def _check_objective(objective: str) -> str:
    if objective not in _OBJECTIVES:
        raise ValueError(
            f"objective must be one of {_OBJECTIVES}, got {objective!r}"
        )
    return objective


def _frozen_float_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class DualCertificate:
    """Reduced-form duals ``(λ, π, ρ)`` (see the module docstring).

    Attributes
    ----------
    objective:
        ``"max"`` or ``"min"`` — which user objective the effective weights
        encode.
    lam:
        Scalar dual ``λ`` of the cardinality constraint.
    row_duals, col_duals:
        ``π`` (one per row vertex) and ``ρ`` (one per column vertex).
    """

    objective: str
    lam: float
    row_duals: np.ndarray
    col_duals: np.ndarray

    def __post_init__(self) -> None:
        _check_objective(self.objective)
        object.__setattr__(self, "row_duals", _frozen_float_array(self.row_duals))
        object.__setattr__(self, "col_duals", _frozen_float_array(self.col_duals))


@dataclass(frozen=True)
class AuctionCertificate:
    """Augmented-form ε-CS duals of the auction solver.

    The augmented square problem has ``n_rows + n_cols`` persons (real rows,
    then one artificial person per column) and as many objects (real
    columns, then one artificial object per row); see
    :func:`repro.weighted.auction.build_augmented_problem` for the exact
    edge set, which the verifier reconstructs deterministically from the
    graph.

    Attributes
    ----------
    objective:
        ``"max"`` or ``"min"``.
    epsilon:
        Final ε of the scaling loop — the slack admitted by the ε-CS
        conditions.
    person_profits, object_prices:
        Dual arrays over augmented persons / objects.
    person_match:
        The augmented perfect assignment: object index per person.
    """

    objective: str
    epsilon: float
    person_profits: np.ndarray
    object_prices: np.ndarray
    person_match: np.ndarray

    def __post_init__(self) -> None:
        _check_objective(self.objective)
        object.__setattr__(self, "person_profits", _frozen_float_array(self.person_profits))
        object.__setattr__(self, "object_prices", _frozen_float_array(self.object_prices))
        match = np.asarray(self.person_match, dtype=np.int64)
        match.setflags(write=False)
        object.__setattr__(self, "person_match", match)
